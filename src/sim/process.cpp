#include "sim/process.hpp"

#include "common/logging.hpp"

namespace rog {
namespace sim {

void
Process::promise_type::unhandled_exception()
{
    // A process body must handle its own errors; an escaped exception
    // inside a suspended call chain cannot be propagated sensibly
    // through the event loop.
    ROG_PANIC("unhandled exception escaped a simulation process");
}

void
DelayAwaiter::await_suspend(std::coroutine_handle<> h)
{
    ROG_ASSERT(delay_ >= 0.0, "negative process delay");
    sim_.after(
        delay_, [h] { h.resume(); }, [h] { h.destroy(); });
}

Condition::~Condition()
{
    // Processes still parked here can never be resumed; destroy their
    // frames so captured resources are released.
    for (auto h : waiters_)
        h.destroy();
}

void
Condition::Awaiter::await_suspend(std::coroutine_handle<> h)
{
    cond_.waiters_.push_back(h);
}

void
Condition::notifyAll()
{
    // Move out first: resumed processes may wait() again immediately,
    // and those new waiters belong to the *next* notification round.
    std::vector<std::coroutine_handle<>> woken;
    woken.swap(waiters_);
    for (auto h : woken)
        sim_.after(
            0.0, [h] { h.resume(); }, [h] { h.destroy(); });
}

} // namespace sim
} // namespace rog
