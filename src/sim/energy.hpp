/**
 * @file
 * Device power-state tracking and energy integration.
 *
 * The paper identifies three device states — computation,
 * communication, and stall — and measures their power draw on a Jetson
 * Xavier NX (Table III: 13.35 W / 4.25 W / 4.04 W; stall stays at ~30%
 * of compute power because of static leakage). EnergyMeter reproduces
 * the paper's methodology exactly: it matches the power model against
 * the device's state timeline and integrates joules over virtual time.
 */
#ifndef ROG_SIM_ENERGY_HPP
#define ROG_SIM_ENERGY_HPP

#include <array>
#include <cstddef>
#include <string_view>

#include "sim/simulation.hpp"

namespace rog {
namespace sim {

/** Power state of a training device. */
enum class DeviceState : std::size_t
{
    Compute = 0,      //!< running forward/backward (+ compression).
    Communicate = 1,  //!< pushing/pulling gradients on the radio.
    Stall = 2,        //!< blocked on a synchronization requirement.
    NumStates
};

/** Human-readable state name. */
std::string_view deviceStateName(DeviceState s);

/** Per-state power draw in watts. Defaults are the paper's Table III. */
struct PowerModel
{
    double compute_w = 13.35;
    double communicate_w = 4.25;
    double stall_w = 4.04;

    /** Watts drawn in @p state. */
    double watts(DeviceState state) const;
};

/**
 * Tracks one device's state timeline and accumulates energy.
 * The device starts in Compute (a training iteration begins by
 * computing gradients).
 */
class EnergyMeter
{
  public:
    /** @param sim time source; must outlive the meter. */
    EnergyMeter(Simulation &sim, PowerModel model);

    /** Transition to @p state, charging the elapsed interval first. */
    void setState(DeviceState state);

    /** Current state. */
    DeviceState state() const { return state_; }

    /** Total joules consumed up to the current virtual time. */
    double totalJoules() const;

    /** Seconds spent in @p state up to the current virtual time. */
    double secondsIn(DeviceState state) const;

    /** Joules consumed in @p state up to the current virtual time. */
    double joulesIn(DeviceState state) const;

    const PowerModel &model() const { return model_; }

  private:
    /** Charge the interval since the last transition to state_. */
    void settle() const;

    Simulation &sim_;
    PowerModel model_;
    DeviceState state_ = DeviceState::Compute;
    mutable double last_transition_ = 0.0;
    mutable std::array<double,
                       static_cast<std::size_t>(DeviceState::NumStates)>
        seconds_{};
};

/**
 * RAII state scope: enters @p state on construction and restores the
 * previous state on destruction. Keeps worker code exception-safe and
 * mirrors the paper's "system status log" instrumentation.
 */
class StateScope
{
  public:
    StateScope(EnergyMeter &meter, DeviceState state)
        : meter_(meter), prev_(meter.state())
    {
        meter_.setState(state);
    }

    ~StateScope() { meter_.setState(prev_); }

    StateScope(const StateScope &) = delete;
    StateScope &operator=(const StateScope &) = delete;

  private:
    EnergyMeter &meter_;
    DeviceState prev_;
};

} // namespace sim
} // namespace rog

#endif // ROG_SIM_ENERGY_HPP
