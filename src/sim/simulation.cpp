#include "sim/simulation.hpp"

#include "common/logging.hpp"

namespace rog {
namespace sim {

EventId
Simulation::after(double delay, SmallFn fire, SmallFn drop)
{
    ROG_ASSERT(delay >= 0.0, "negative delay");
    return queue_.schedule(now() + delay, std::move(fire),
                           std::move(drop));
}

EventId
Simulation::at(double time, SmallFn fire, SmallFn drop)
{
    return queue_.schedule(time, std::move(fire), std::move(drop));
}

void
Simulation::run()
{
    while (queue_.step()) {
    }
}

void
Simulation::runUntil(double horizon)
{
    while (!queue_.empty() && queue_.peekTime() <= horizon)
        queue_.step();
}

} // namespace sim
} // namespace rog
