#include "sim/simulation.hpp"

#include "common/logging.hpp"

namespace rog {
namespace sim {

EventId
Simulation::after(double delay, std::function<void()> fire,
                  std::function<void()> drop)
{
    ROG_ASSERT(delay >= 0.0, "negative delay");
    return queue_.schedule(now() + delay, std::move(fire),
                           std::move(drop));
}

EventId
Simulation::at(double time, std::function<void()> fire,
               std::function<void()> drop)
{
    return queue_.schedule(time, std::move(fire), std::move(drop));
}

void
Simulation::run()
{
    while (queue_.step()) {
    }
}

void
Simulation::runUntil(double horizon)
{
    while (!queue_.empty() && queue_.peekTime() <= horizon)
        queue_.step();
}

} // namespace sim
} // namespace rog
