/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are ordered by (time, insertion sequence) so simultaneous
 * events fire in insertion order — runs are bit-reproducible. Events
 * may be cancelled; an event that is dropped without firing (cancelled
 * or still pending at queue destruction) invokes its drop handler so
 * owners of resources captured in the closure (notably suspended
 * coroutine frames) can release them.
 *
 * Implementation (the fleet-scale event core): a 4-ary min-heap of
 * (time, seq, slot) entries over a free-list node arena. The sort key
 * is embedded in the heap entry itself, so every sift comparison
 * touches only the contiguous heap array — never the closure arena —
 * which keeps the compare path in cache at fleet-scale queue depths.
 * Scheduling an event never allocates per-event nodes — the arena
 * grows geometrically and slots recycle through the free list — and
 * the fire/drop closures live inline in the node via SmallFn's wide
 * small-buffer storage. EventId carries the arena slot, so cancel() is
 * an O(1) handle check: the closures are dropped and the slot is
 * recycled immediately; the heap entry goes stale (its seq no longer
 * matches the slot's) and is skimmed off lazily when it surfaces at
 * the top. Firing order is exactly the (time, seq) lexicographic
 * order the previous std::map implementation produced (verified by a
 * differential fuzz oracle against sim/event_queue_ref.hpp).
 *
 * Destruction guarantee: drop handlers of still-pending events run in
 * deterministic *reverse* key order — latest (time, seq) first — so
 * teardown unwinds like a stack regardless of heap shape. Replay-
 * sensitive cleanup (e.g. chained process frames) can rely on this
 * order; it is part of the queue's contract, not an accident of the
 * container.
 */
#ifndef ROG_SIM_EVENT_QUEUE_HPP
#define ROG_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <vector>

#include "sim/small_fn.hpp"

namespace rog {
namespace sim {

/** Opaque handle to a scheduled event (for cancellation). */
struct EventId
{
    double time = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0; //!< arena slot (O(1) cancel lookup).

    bool valid() const { return seq != 0; }
};

/** A time-ordered queue of callbacks. */
class EventQueue
{
  public:
    /** Handle type (generic code templated over queue kinds). */
    using id_type = EventId;

    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p fire at absolute @p time.
     *
     * @param drop invoked instead of @p fire if the event is cancelled
     *        or destroyed unfired (may be empty).
     * @pre time >= now()
     */
    EventId schedule(double time, SmallFn fire, SmallFn drop = {});

    /** Cancel a pending event; no-op if it already fired. O(1): the
     *  drop handler runs immediately, the heap entry dies lazily. */
    void cancel(EventId id);

    /** Fire the earliest event; returns false if the queue is empty. */
    bool step();

    /** True if no events are pending. */
    bool empty() const { return live_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return live_; }

    /** Current simulated time (time of the last fired event). */
    double now() const { return now_; }

    /** Time of the earliest pending event. @pre !empty() */
    double peekTime() const;

  private:
    static constexpr std::uint32_t kNone = 0xffffffffu;

    /** Arena slots use 20 bits of the packed heap key: up to ~1M
     *  simultaneously pending events, far beyond any fleet sweep. */
    static constexpr std::uint32_t kSlotBits = 20;
    static constexpr std::uint64_t kSlotMask = (1u << kSlotBits) - 1;

    /**
     * Heap entry: the full sort key plus the arena slot packed into a
     * single 128-bit integer, so sift comparisons never dereference
     * into the arena AND compile to one branchless compare — the
     * child-min selection in siftDown becomes cmov instead of a
     * data-dependent (hence unpredictable) branch, which is the
     * difference between ~30 and ~100 ns per pop at fleet depths.
     *
     * Layout: time-bits(64) | seq(44) | slot(20). Simulated time is
     * never negative (schedule() asserts time >= now >= 0), so the
     * IEEE-754 bit pattern of the double sorts identically to its
     * value; seq breaks ties exactly as the old std::map key did, and
     * slot in the low bits never influences order because seqs are
     * unique.
     */
    struct HeapEntry
    {
        unsigned __int128 key;

        static HeapEntry
        make(double time, std::uint64_t seq, std::uint32_t slot)
        {
            std::uint64_t tb;
            __builtin_memcpy(&tb, &time, sizeof tb);
            return HeapEntry{
                (static_cast<unsigned __int128>(tb) << 64) |
                (seq << kSlotBits) | slot};
        }

        double
        time() const
        {
            const std::uint64_t tb =
                static_cast<std::uint64_t>(key >> 64);
            double t;
            __builtin_memcpy(&t, &tb, sizeof t);
            return t;
        }
        std::uint64_t
        seq() const
        {
            return static_cast<std::uint64_t>(key) >> kSlotBits;
        }
        std::uint32_t
        slot() const
        {
            return static_cast<std::uint32_t>(key & kSlotMask);
        }
    };

    /** (time, seq) lexicographic order — identical to the old map's. */
    static bool
    before(const HeapEntry &a, const HeapEntry &b)
    {
        return a.key < b.key;
    }

    /** A heap entry whose event was cancelled (slot freed or reused;
     *  seq values never repeat, so a mismatch is definitive). */
    bool
    stale(const HeapEntry &e) const
    {
        return seq_[e.slot()] != e.seq();
    }

    std::uint32_t allocNode();
    void freeNode(std::uint32_t slot);
    void heapPush(const HeapEntry &e);
    HeapEntry heapPopTop();
    void siftUp(std::size_t pos);
    void siftDown(std::size_t pos);
    /** Discard stale entries sitting at the heap top so the top is
     *  live whenever live_ > 0; rebuilds the whole heap (filter +
     *  Floyd heapify, O(n)) once stale entries outnumber live ones,
     *  so cancel-heavy phases never pay per-stale-pop sift costs. */
    void pruneTop();
    void compact();

    // Arena in struct-of-arrays layout: the handle-validation path
    // (cancel, stale checks) touches only the small seq_ array, which
    // stays L1-resident at fleet depths where an array-of-structs node
    // arena would spill L2. Drop closures are rare, so drops_ lines
    // are only touched for events that actually carry one (has_drop_).
    std::vector<std::uint64_t> seq_;       //!< 0 = slot free.
    std::vector<SmallFn> fires_;
    std::vector<SmallFn> drops_;
    std::vector<std::uint8_t> has_drop_;
    std::vector<std::uint32_t> next_free_; //!< free-list links.
    std::vector<HeapEntry> heap_;          //!< 4-ary min-heap.
    std::uint32_t free_head_ = kNone;
    std::size_t live_ = 0;
    double now_ = 0.0;
    std::uint64_t next_seq_ = 1;
};

} // namespace sim
} // namespace rog

#endif // ROG_SIM_EVENT_QUEUE_HPP
