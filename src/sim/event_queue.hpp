/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events are ordered by (time, insertion sequence) so simultaneous
 * events fire in insertion order — runs are bit-reproducible. Events
 * may be cancelled; an event that is dropped without firing (cancelled
 * or still pending at queue destruction) invokes its drop handler so
 * owners of resources captured in the closure (notably suspended
 * coroutine frames) can release them.
 */
#ifndef ROG_SIM_EVENT_QUEUE_HPP
#define ROG_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <map>

namespace rog {
namespace sim {

/** Opaque handle to a scheduled event (for cancellation). */
struct EventId
{
    double time = 0.0;
    std::uint64_t seq = 0;

    bool valid() const { return seq != 0; }
};

/** A time-ordered queue of callbacks. */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p fire at absolute @p time.
     *
     * @param drop invoked instead of @p fire if the event is cancelled
     *        or destroyed unfired (may be empty).
     * @pre time >= now()
     */
    EventId schedule(double time, std::function<void()> fire,
                     std::function<void()> drop = {});

    /** Cancel a pending event; no-op if it already fired. */
    void cancel(EventId id);

    /** Fire the earliest event; returns false if the queue is empty. */
    bool step();

    /** True if no events are pending. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return events_.size(); }

    /** Current simulated time (time of the last fired event). */
    double now() const { return now_; }

    /** Time of the earliest pending event. @pre !empty() */
    double peekTime() const;

  private:
    struct Entry
    {
        std::function<void()> fire;
        std::function<void()> drop;
    };

    struct Key
    {
        double time;
        std::uint64_t seq;

        bool
        operator<(const Key &o) const
        {
            if (time != o.time)
                return time < o.time;
            return seq < o.seq;
        }
    };

    std::map<Key, Entry> events_;
    double now_ = 0.0;
    std::uint64_t next_seq_ = 1;
};

} // namespace sim
} // namespace rog

#endif // ROG_SIM_EVENT_QUEUE_HPP
