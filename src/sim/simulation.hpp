/**
 * @file
 * Simulation facade over the event queue.
 */
#ifndef ROG_SIM_SIMULATION_HPP
#define ROG_SIM_SIMULATION_HPP

#include "sim/event_queue.hpp"

namespace rog {
namespace sim {

/**
 * A discrete-event simulation with virtual time in seconds.
 *
 * Processes (see process.hpp) suspend on awaitables that schedule their
 * resumption here. run() executes events until the queue drains or the
 * optional horizon is reached.
 */
class Simulation
{
  public:
    Simulation() = default;

    /** Current virtual time in seconds. */
    double now() const { return queue_.now(); }

    /** Schedule a callback after @p delay seconds. @pre delay >= 0 */
    EventId after(double delay, SmallFn fire, SmallFn drop = {});

    /** Schedule a callback at absolute time @p time. @pre time>=now */
    EventId at(double time, SmallFn fire, SmallFn drop = {});

    /** Cancel a pending event. */
    void cancel(EventId id) { queue_.cancel(id); }

    /** Run until the event queue drains. */
    void run();

    /**
     * Run until the queue drains or virtual time would exceed
     * @p horizon; events scheduled beyond the horizon stay pending (and
     * have their drop handlers invoked at destruction).
     */
    void runUntil(double horizon);

    /** Direct queue access (used by awaitable implementations). */
    EventQueue &queue() { return queue_; }

  private:
    EventQueue queue_;
};

} // namespace sim
} // namespace rog

#endif // ROG_SIM_SIMULATION_HPP
