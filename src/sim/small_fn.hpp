/**
 * @file
 * Small-buffer move-only callable for event closures.
 *
 * The event queue stores two closures per event (fire and drop).
 * std::function's inline buffer is implementation-defined and small
 * (16 bytes on libstdc++), so the engine's typical capture sets — a
 * `this` pointer plus a few ids and copies — heap-allocate on every
 * schedule(). At fleet scale (1024 workers, millions of events) those
 * allocations dominate the event core. SmallFn widens the inline
 * buffer so every closure the simulator actually schedules is stored
 * in place inside the event arena, falling back to the heap only for
 * outsized or throwing-move captures.
 *
 * Deliberately minimal: void() signature, move-only, no allocator or
 * target_type machinery — exactly what a DES event needs and nothing
 * that would add a branch to the fire path.
 */
#ifndef ROG_SIM_SMALL_FN_HPP
#define ROG_SIM_SMALL_FN_HPP

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rog {
namespace sim {

/** Move-only void() callable with a wide inline buffer. */
class SmallFn
{
  public:
    /** Inline capture budget: fits the engine's largest closures
     *  (a handful of pointers, doubles, and a copied std::function). */
    static constexpr std::size_t kInlineBytes = 56;

    SmallFn() = default;
    SmallFn(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    SmallFn(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(inline_)) Fn(std::forward<F>(f));
            on_heap_ = false;
            // POD captures (the common case: pointers, ids, doubles)
            // relocate by memcpy and destroy as a no-op — the event
            // queue moves closures three times per event, so skipping
            // the indirect relocate/destroy calls is a measurable
            // share of the event core's cost.
            trivial_ = std::is_trivially_copyable_v<Fn> &&
                       std::is_trivially_destructible_v<Fn>;
        } else {
            heap_ = new Fn(std::forward<F>(f));
            on_heap_ = true;
            trivial_ = false;
        }
        ops_ = &opsFor<Fn>;
    }

    SmallFn(SmallFn &&o) noexcept { moveFrom(o); }

    SmallFn &
    operator=(SmallFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->invoke(target());
    }

    /** Destroy the target and become empty. */
    void
    reset()
    {
        if (ops_ == nullptr)
            return;
        if (trivial_)
            ; // trivially destructible, nothing to run
        else if (on_heap_)
            ops_->destroyHeap(heap_);
        else
            ops_->destroyInline(target());
        ops_ = nullptr;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct into @p to from @p from, destroying from. */
        void (*relocate)(void *from, void *to);
        void (*destroyInline)(void *);
        void (*destroyHeap)(void *);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn> static inline const Ops opsFor = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *from, void *to) {
            ::new (to) Fn(std::move(*static_cast<Fn *>(from)));
            static_cast<Fn *>(from)->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
        [](void *p) { delete static_cast<Fn *>(p); },
    };

    void *
    target()
    {
        return on_heap_ ? heap_ : static_cast<void *>(inline_);
    }

    void
    moveFrom(SmallFn &o) noexcept
    {
        ops_ = o.ops_;
        on_heap_ = o.on_heap_;
        trivial_ = o.trivial_;
        if (ops_ != nullptr) {
            if (trivial_)
                __builtin_memcpy(inline_, o.inline_, kInlineBytes);
            else if (on_heap_)
                heap_ = o.heap_;
            else
                ops_->relocate(o.inline_, inline_);
        }
        o.ops_ = nullptr;
    }

    union
    {
        alignas(std::max_align_t) unsigned char inline_[kInlineBytes];
        void *heap_;
    };
    const Ops *ops_ = nullptr;
    bool on_heap_ = false;
    bool trivial_ = false;
};

} // namespace sim
} // namespace rog

#endif // ROG_SIM_SMALL_FN_HPP
