#include "sim/event_queue_ref.hpp"

#include <utility>
#include <vector>

#include "common/logging.hpp"

namespace rog {
namespace sim {

MapEventQueue::~MapEventQueue()
{
    // Match the heap queue's documented teardown contract: drop
    // handlers run in reverse (time, seq) order.
    std::vector<std::function<void()>> drops;
    drops.reserve(events_.size());
    for (auto it = events_.rbegin(); it != events_.rend(); ++it)
        if (it->second.drop)
            drops.push_back(std::move(it->second.drop));
    events_.clear();
    for (auto &d : drops)
        d();
}

MapEventId
MapEventQueue::schedule(double time, std::function<void()> fire,
                        std::function<void()> drop)
{
    ROG_ASSERT(time >= now_, "cannot schedule into the past: ", time,
               " < ", now_);
    const Key key{time, next_seq_++};
    events_.emplace(key, Entry{std::move(fire), std::move(drop)});
    return MapEventId{key.time, key.seq};
}

void
MapEventQueue::cancel(MapEventId id)
{
    if (!id.valid())
        return;
    auto it = events_.find(Key{id.time, id.seq});
    if (it == events_.end())
        return;
    Entry entry = std::move(it->second);
    events_.erase(it);
    if (entry.drop)
        entry.drop();
}

bool
MapEventQueue::step()
{
    if (events_.empty())
        return false;
    auto it = events_.begin();
    now_ = it->first.time;
    // Move out before erasing: the callback may schedule or cancel.
    Entry entry = std::move(it->second);
    events_.erase(it);
    if (entry.fire)
        entry.fire();
    return true;
}

double
MapEventQueue::peekTime() const
{
    ROG_ASSERT(!events_.empty(), "peekTime on empty queue");
    return events_.begin()->first.time;
}

} // namespace sim
} // namespace rog
