#include "sim/event_queue.hpp"

#include <utility>

#include "common/logging.hpp"

namespace rog {
namespace sim {

EventQueue::~EventQueue()
{
    // Drop handlers may schedule nothing but must not throw; give every
    // unfired event a chance to release captured resources.
    for (auto &[key, entry] : events_)
        if (entry.drop)
            entry.drop();
}

EventId
EventQueue::schedule(double time, std::function<void()> fire,
                     std::function<void()> drop)
{
    ROG_ASSERT(time >= now_, "cannot schedule into the past: ", time,
               " < ", now_);
    const Key key{time, next_seq_++};
    events_.emplace(key, Entry{std::move(fire), std::move(drop)});
    return EventId{key.time, key.seq};
}

void
EventQueue::cancel(EventId id)
{
    if (!id.valid())
        return;
    auto it = events_.find(Key{id.time, id.seq});
    if (it == events_.end())
        return;
    Entry entry = std::move(it->second);
    events_.erase(it);
    if (entry.drop)
        entry.drop();
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    auto it = events_.begin();
    now_ = it->first.time;
    // Move out before erasing: the callback may schedule or cancel.
    Entry entry = std::move(it->second);
    events_.erase(it);
    if (entry.fire)
        entry.fire();
    return true;
}

double
EventQueue::peekTime() const
{
    ROG_ASSERT(!events_.empty(), "peekTime on empty queue");
    return events_.begin()->first.time;
}

} // namespace sim
} // namespace rog
