#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"

namespace rog {
namespace sim {

namespace {
/** Heap arity: 4-ary trades a slightly deeper compare fan-out per
 *  level for half the levels of a binary heap — the four children are
 *  contiguous HeapEntry values (two cache lines), so a whole level
 *  costs at most two misses. */
constexpr std::size_t kArity = 4;
} // namespace

EventQueue::~EventQueue()
{
    // Deterministic teardown: drop every still-pending event in
    // reverse (time, seq) order — latest first, like unwinding a
    // stack. Part of the queue's contract (see header).
    std::vector<HeapEntry> pending;
    pending.reserve(live_);
    for (const HeapEntry &e : heap_)
        if (!stale(e))
            pending.push_back(e);
    std::sort(pending.begin(), pending.end(),
              [](const HeapEntry &a, const HeapEntry &b) {
                  return before(b, a);
              });
    for (const HeapEntry &e : pending) {
        if (!has_drop_[e.slot()])
            continue;
        SmallFn drop = std::move(drops_[e.slot()]);
        if (drop)
            drop();
    }
}

std::uint32_t
EventQueue::allocNode()
{
    if (free_head_ != kNone) {
        const std::uint32_t slot = free_head_;
        free_head_ = next_free_[slot];
        return slot;
    }
    ROG_ASSERT(seq_.size() <= kSlotMask, "event arena exhausted");
    seq_.push_back(0);
    fires_.emplace_back();
    drops_.emplace_back();
    has_drop_.push_back(0);
    next_free_.push_back(kNone);
    return static_cast<std::uint32_t>(seq_.size() - 1);
}

void
EventQueue::freeNode(std::uint32_t slot)
{
    seq_[slot] = 0;
    fires_[slot].reset();
    if (has_drop_[slot]) {
        drops_[slot].reset();
        has_drop_[slot] = 0;
    }
    next_free_[slot] = free_head_;
    free_head_ = slot;
}

void
EventQueue::siftUp(std::size_t pos)
{
    const HeapEntry e = heap_[pos];
    while (pos > 0) {
        const std::size_t parent = (pos - 1) / kArity;
        if (!before(e, heap_[parent]))
            break;
        heap_[pos] = heap_[parent];
        pos = parent;
    }
    heap_[pos] = e;
}

void
EventQueue::siftDown(std::size_t pos)
{
    const std::size_t n = heap_.size();
    const HeapEntry e = heap_[pos];
    for (;;) {
        const std::size_t first = pos * kArity + 1;
        if (first >= n)
            break;
        const std::size_t last = std::min(first + kArity, n);
        // Branchless child-min scan: the 128-bit key compare lowers to
        // cmov, so random keys cost no mispredicts.
        std::size_t best = first;
        HeapEntry bk = heap_[first];
        for (std::size_t c = first + 1; c < last; ++c) {
            const bool lt = before(heap_[c], bk);
            bk = lt ? heap_[c] : bk;
            best = lt ? c : best;
        }
        if (!before(bk, e))
            break;
        heap_[pos] = bk;
        pos = best;
    }
    heap_[pos] = e;
}

void
EventQueue::heapPush(const HeapEntry &e)
{
    heap_.push_back(e);
    siftUp(heap_.size() - 1);
}

EventQueue::HeapEntry
EventQueue::heapPopTop()
{
    const HeapEntry top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
    return top;
}

void
EventQueue::compact()
{
    std::size_t w = 0;
    for (const HeapEntry &e : heap_)
        if (!stale(e))
            heap_[w++] = e;
    heap_.resize(w);
    if (w < 2)
        return;
    // Floyd heapify: sift down every parent, deepest first.
    for (std::size_t i = (w - 2) / kArity;; --i) {
        siftDown(i);
        if (i == 0)
            break;
    }
}

void
EventQueue::pruneTop()
{
    // Cancel-heavy phases (the fleet's airtime-fair channel cancels
    // and reschedules on every transfer change) would otherwise pay a
    // full siftDown per stale entry as it surfaces; one O(n) rebuild
    // amortizes to a few ns per cancelled event.
    if (heap_.size() > 64 && heap_.size() - live_ > live_ / 4) {
        compact();
        return;
    }
    while (!heap_.empty() && stale(heap_.front()))
        heapPopTop();
}

EventId
EventQueue::schedule(double time, SmallFn fire, SmallFn drop)
{
    ROG_ASSERT(time >= now_, "cannot schedule into the past: ", time,
               " < ", now_);
    const std::uint32_t slot = allocNode();
    const std::uint64_t seq = next_seq_++;
    seq_[slot] = seq;
    fires_[slot] = std::move(fire);
    if (drop) { // the slot's drop is already empty (freeNode resets it)
        drops_[slot] = std::move(drop);
        has_drop_[slot] = 1;
    }
    heapPush(HeapEntry::make(time, seq, slot));
    ++live_;
    return EventId{time, seq, slot};
}

void
EventQueue::cancel(EventId id)
{
    if (!id.valid() || id.slot >= seq_.size())
        return;
    // The slot recycles: the seq check rejects handles to events that
    // already fired (or were cancelled) even if the slot was reused.
    if (seq_[id.slot] != id.seq)
        return;
    SmallFn drop;
    if (has_drop_[id.slot])
        drop = std::move(drops_[id.slot]);
    // Recycle the slot now; the heap entry goes stale (seq mismatch)
    // and is skimmed off lazily when it surfaces at the top.
    freeNode(id.slot);
    --live_;
    pruneTop(); // keep the heap top live for peekTime()/step().
    if (drop)
        drop();
}

bool
EventQueue::step()
{
    if (live_ == 0)
        return false;
    // pruneTop() maintains a live top whenever live_ > 0.
    const HeapEntry top = heapPopTop();
    now_ = top.time();
    // Move out before freeing: the callback may schedule or cancel,
    // growing the arena or recycling this very slot.
    SmallFn fire = std::move(fires_[top.slot()]);
    freeNode(top.slot());
    --live_;
    pruneTop();
    if (fire)
        fire();
    return true;
}

double
EventQueue::peekTime() const
{
    ROG_ASSERT(live_ > 0, "peekTime on empty queue");
    return heap_.front().time();
}

} // namespace sim
} // namespace rog
