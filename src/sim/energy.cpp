#include "sim/energy.hpp"

#include "common/logging.hpp"

namespace rog {
namespace sim {

std::string_view
deviceStateName(DeviceState s)
{
    switch (s) {
      case DeviceState::Compute:
        return "compute";
      case DeviceState::Communicate:
        return "communicate";
      case DeviceState::Stall:
        return "stall";
      default:
        return "invalid";
    }
}

double
PowerModel::watts(DeviceState state) const
{
    switch (state) {
      case DeviceState::Compute:
        return compute_w;
      case DeviceState::Communicate:
        return communicate_w;
      case DeviceState::Stall:
        return stall_w;
      default:
        ROG_PANIC("invalid device state");
    }
}

EnergyMeter::EnergyMeter(Simulation &sim, PowerModel model)
    : sim_(sim), model_(model), last_transition_(sim.now())
{
}

void
EnergyMeter::settle() const
{
    const double now = sim_.now();
    ROG_ASSERT(now >= last_transition_, "time went backwards");
    seconds_[static_cast<std::size_t>(state_)] += now - last_transition_;
    last_transition_ = now;
}

void
EnergyMeter::setState(DeviceState state)
{
    settle();
    state_ = state;
}

double
EnergyMeter::totalJoules() const
{
    settle();
    double j = 0.0;
    for (std::size_t s = 0;
         s < static_cast<std::size_t>(DeviceState::NumStates); ++s) {
        j += seconds_[s] * model_.watts(static_cast<DeviceState>(s));
    }
    return j;
}

double
EnergyMeter::secondsIn(DeviceState state) const
{
    settle();
    return seconds_[static_cast<std::size_t>(state)];
}

double
EnergyMeter::joulesIn(DeviceState state) const
{
    return secondsIn(state) * model_.watts(state);
}

} // namespace sim
} // namespace rog
