/**
 * @file
 * Reference event queue over std::map — the seed implementation kept
 * as a differential oracle and benchmark baseline for the heap event
 * core in sim/event_queue.hpp (same pattern as tensor ops_ref and
 * crc32cRef). Every operation matches the heap queue observably:
 * identical firing sequences for identical schedule/cancel/step
 * traces, including equal-timestamp bursts, and the same reverse-key
 * drop order at destruction. Not used on any hot path.
 */
#ifndef ROG_SIM_EVENT_QUEUE_REF_HPP
#define ROG_SIM_EVENT_QUEUE_REF_HPP

#include <cstdint>
#include <functional>
#include <map>

namespace rog {
namespace sim {

/** Handle to an event scheduled on a MapEventQueue. */
struct MapEventId
{
    double time = 0.0;
    std::uint64_t seq = 0;

    bool valid() const { return seq != 0; }
};

/** The seed std::map event queue (oracle / bench baseline). */
class MapEventQueue
{
  public:
    /** Handle type (generic code templated over queue kinds). */
    using id_type = MapEventId;

    MapEventQueue() = default;
    ~MapEventQueue();

    MapEventQueue(const MapEventQueue &) = delete;
    MapEventQueue &operator=(const MapEventQueue &) = delete;

    MapEventId schedule(double time, std::function<void()> fire,
                        std::function<void()> drop = {});
    void cancel(MapEventId id);
    bool step();
    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }
    double now() const { return now_; }
    double peekTime() const;

  private:
    struct Entry
    {
        std::function<void()> fire;
        std::function<void()> drop;
    };

    struct Key
    {
        double time;
        std::uint64_t seq;

        bool
        operator<(const Key &o) const
        {
            if (time != o.time)
                return time < o.time;
            return seq < o.seq;
        }
    };

    std::map<Key, Entry> events_;
    double now_ = 0.0;
    std::uint64_t next_seq_ = 1;
};

} // namespace sim
} // namespace rog

#endif // ROG_SIM_EVENT_QUEUE_REF_HPP
