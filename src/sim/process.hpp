/**
 * @file
 * Coroutine-based simulation processes.
 *
 * A Process is an eagerly started, detached C++20 coroutine that runs
 * inside a Simulation: it executes synchronously until it awaits a
 * delay() or a Condition, at which point control returns to the event
 * loop and the process resumes when the corresponding event fires.
 * This lets the worker / parameter-server logic read like the paper's
 * pseudocode (Algo 1 & 2) instead of a hand-written state machine.
 *
 * Lifetime: frames self-destroy on completion (final_suspend never
 * suspends). If the simulation is torn down while a process is
 * suspended, the pending event's drop handler destroys the frame, so
 * nothing leaks even on early exits.
 */
#ifndef ROG_SIM_PROCESS_HPP
#define ROG_SIM_PROCESS_HPP

#include <coroutine>
#include <vector>

#include "sim/simulation.hpp"

namespace rog {
namespace sim {

/** Return type of simulation-process coroutines (detached). */
class Process
{
  public:
    struct promise_type
    {
        Process get_return_object() { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() {}
        [[noreturn]] void unhandled_exception();
    };
};

/** Awaitable that resumes after a virtual-time delay. */
class DelayAwaiter
{
  public:
    DelayAwaiter(Simulation &sim, double delay)
        : sim_(sim), delay_(delay) {}

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}

  private:
    Simulation &sim_;
    double delay_;
};

/** Suspend the calling process for @p seconds. @pre seconds >= 0 */
inline DelayAwaiter
delay(Simulation &sim, double seconds)
{
    return {sim, seconds};
}

/**
 * A broadcast condition: processes wait(); notifyAll() wakes every
 * current waiter (at the current virtual time, in FIFO order). Typical
 * use is a predicate loop:
 *
 *     while (!ready())
 *         co_await cond.wait();
 */
class Condition
{
  public:
    explicit Condition(Simulation &sim) : sim_(sim) {}
    ~Condition();

    Condition(const Condition &) = delete;
    Condition &operator=(const Condition &) = delete;

    class Awaiter
    {
      public:
        explicit Awaiter(Condition &cond) : cond_(cond) {}
        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h);
        void await_resume() const noexcept {}

      private:
        Condition &cond_;
    };

    /** Await the next notifyAll(). */
    Awaiter wait() { return Awaiter(*this); }

    /** Wake every currently waiting process. */
    void notifyAll();

    /** Number of processes currently waiting. */
    std::size_t waiters() const { return waiters_.size(); }

  private:
    friend class Awaiter;

    Simulation &sim_;
    std::vector<std::coroutine_handle<>> waiters_;
};

} // namespace sim
} // namespace rog

#endif // ROG_SIM_PROCESS_HPP
