#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace rog {
namespace fault {

namespace {

/** Render a double so the spec round-trips exactly. */
std::string
num(double v)
{
    if (std::isinf(v))
        return "inf";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

double
parseNum(const std::string &s, const std::string &line)
{
    if (s == "inf")
        return std::numeric_limits<double>::infinity();
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(s, &pos);
    } catch (...) {
        ROG_FATAL("bad number '", s, "' in fault spec line: ", line);
    }
    if (pos != s.size())
        ROG_FATAL("bad number '", s, "' in fault spec line: ", line);
    return v;
}

/** key=value fields of one spec line, after the event keyword. */
struct Fields
{
    std::string keyword;
    std::vector<std::pair<std::string, std::string>> kv;

    double
    get(const std::string &key, const std::string &line) const
    {
        for (const auto &[k, v] : kv)
            if (k == key)
                return parseNum(v, line);
        ROG_FATAL("fault spec line missing '", key, "=': ", line);
    }

    double
    getOr(const std::string &key, double fallback,
          const std::string &line) const
    {
        for (const auto &[k, v] : kv)
            if (k == key)
                return parseNum(v, line);
        return fallback;
    }
};

Fields
splitLine(const std::string &line)
{
    Fields f;
    std::istringstream is(line);
    is >> f.keyword;
    std::string tok;
    while (is >> tok) {
        const auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
            ROG_FATAL("expected key=value in fault spec line: ", line);
        f.kv.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
    }
    return f;
}

} // namespace

FaultPlan
FaultPlan::random(std::uint64_t seed, const FaultPlanConfig &cfg)
{
    ROG_ASSERT(cfg.horizon_s > 0.0, "fault horizon must be positive");
    Rng rng(seed);
    FaultPlan plan;

    for (std::size_t l = 0; l < cfg.links; ++l) {
        const auto blackouts =
            rng.uniformInt(cfg.max_blackouts_per_link + 1);
        for (std::uint64_t i = 0; i < blackouts; ++i) {
            LinkFault f;
            f.link = l;
            f.start_s = rng.uniform(0.0, cfg.horizon_s);
            f.duration_s =
                rng.uniform(cfg.blackout_min_s, cfg.blackout_max_s);
            f.factor = 0.0;
            plan.link_faults.push_back(f);
        }
        const auto degrades =
            rng.uniformInt(cfg.max_degrades_per_link + 1);
        for (std::uint64_t i = 0; i < degrades; ++i) {
            LinkFault f;
            f.link = l;
            f.start_s = rng.uniform(0.0, cfg.horizon_s);
            f.duration_s =
                rng.uniform(cfg.degrade_min_s, cfg.degrade_max_s);
            f.factor = rng.uniform(cfg.degrade_min_factor,
                                   cfg.degrade_max_factor);
            plan.link_faults.push_back(f);
        }
        const auto truncations =
            rng.uniformInt(cfg.max_truncations_per_link + 1);
        for (std::uint64_t i = 0; i < truncations; ++i) {
            TransferFaultRule r;
            r.link = l;
            r.at_s = rng.uniform(0.0, cfg.horizon_s);
            r.truncate_bytes = rng.uniform(cfg.truncate_min_bytes,
                                           cfg.truncate_max_bytes);
            plan.transfer_faults.push_back(r);
        }
        const auto timeouts =
            rng.uniformInt(cfg.max_timeouts_per_link + 1);
        for (std::uint64_t i = 0; i < timeouts; ++i) {
            TransferFaultRule r;
            r.link = l;
            r.at_s = rng.uniform(0.0, cfg.horizon_s);
            r.force_timeout_s =
                rng.uniform(cfg.timeout_min_s, cfg.timeout_max_s);
            plan.transfer_faults.push_back(r);
        }
    }

    for (std::size_t w = 0; w < cfg.workers; ++w) {
        if (rng.uniform() < cfg.crash_prob) {
            ChurnEvent e;
            e.worker = w;
            e.at_s = rng.uniform(0.0, cfg.horizon_s);
            e.detect_s = cfg.detect_s;
            if (rng.uniform() < cfg.rejoin_prob)
                e.rejoin_s =
                    e.at_s + rng.uniform(1.0, 0.5 * cfg.horizon_s);
            plan.churn.push_back(e);
        } else if (rng.uniform() < cfg.leave_prob) {
            ChurnEvent e;
            e.worker = w;
            e.at_s = rng.uniform(0.0, cfg.horizon_s);
            e.graceful = true;
            plan.churn.push_back(e);
        }
    }

    plan.validate();
    return plan;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::istringstream is(spec);
    std::string line;
    while (std::getline(is, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        const Fields f = splitLine(line);
        if (f.keyword == "blackout" || f.keyword == "degrade") {
            LinkFault lf;
            lf.link = static_cast<std::size_t>(f.get("link", line));
            lf.start_s = f.get("start", line);
            lf.duration_s = f.get("dur", line);
            lf.factor = f.keyword == "blackout"
                            ? 0.0
                            : f.get("factor", line);
            plan.link_faults.push_back(lf);
        } else if (f.keyword == "truncate") {
            TransferFaultRule r;
            r.link = static_cast<std::size_t>(f.get("link", line));
            r.at_s = f.get("at", line);
            r.truncate_bytes = f.get("bytes", line);
            plan.transfer_faults.push_back(r);
        } else if (f.keyword == "timeout") {
            TransferFaultRule r;
            r.link = static_cast<std::size_t>(f.get("link", line));
            r.at_s = f.get("at", line);
            r.force_timeout_s = f.get("after", line);
            plan.transfer_faults.push_back(r);
        } else if (f.keyword == "crash") {
            ChurnEvent e;
            e.worker = static_cast<std::size_t>(f.get("worker", line));
            e.at_s = f.get("at", line);
            e.rejoin_s = f.getOr("rejoin", kNever, line);
            e.detect_s = f.getOr("detect", kNever, line);
            plan.churn.push_back(e);
        } else if (f.keyword == "leave") {
            ChurnEvent e;
            e.worker = static_cast<std::size_t>(f.get("worker", line));
            e.at_s = f.get("at", line);
            e.graceful = true;
            plan.churn.push_back(e);
        } else {
            ROG_FATAL("unknown fault spec keyword '", f.keyword,
                  "' in line: ", line);
        }
    }
    plan.validate();
    return plan;
}

std::string
FaultPlan::toSpec() const
{
    std::ostringstream os;
    for (const auto &f : link_faults) {
        if (f.factor == 0.0) {
            os << "blackout link=" << f.link << " start="
               << num(f.start_s) << " dur=" << num(f.duration_s)
               << '\n';
        } else {
            os << "degrade link=" << f.link << " start="
               << num(f.start_s) << " dur=" << num(f.duration_s)
               << " factor=" << num(f.factor) << '\n';
        }
    }
    for (const auto &r : transfer_faults) {
        if (std::isfinite(r.truncate_bytes)) {
            os << "truncate link=" << r.link << " at=" << num(r.at_s)
               << " bytes=" << num(r.truncate_bytes) << '\n';
        }
        if (std::isfinite(r.force_timeout_s)) {
            os << "timeout link=" << r.link << " at=" << num(r.at_s)
               << " after=" << num(r.force_timeout_s) << '\n';
        }
    }
    for (const auto &e : churn) {
        if (e.graceful) {
            os << "leave worker=" << e.worker << " at=" << num(e.at_s)
               << '\n';
        } else {
            os << "crash worker=" << e.worker << " at=" << num(e.at_s);
            if (std::isfinite(e.rejoin_s))
                os << " rejoin=" << num(e.rejoin_s);
            if (std::isfinite(e.detect_s))
                os << " detect=" << num(e.detect_s);
            os << '\n';
        }
    }
    return os.str();
}

bool
FaultPlan::empty() const
{
    return link_faults.empty() && transfer_faults.empty() &&
           churn.empty();
}

void
FaultPlan::validate() const
{
    for (const auto &f : link_faults) {
        ROG_ASSERT(f.start_s >= 0.0 && f.duration_s >= 0.0,
                   "link fault times must be non-negative");
        ROG_ASSERT(f.factor >= 0.0 && f.factor <= 1.0,
                   "link fault factor must be in [0, 1], got ",
                   f.factor);
    }
    for (const auto &r : transfer_faults) {
        ROG_ASSERT(r.at_s >= 0.0, "transfer fault time negative");
        ROG_ASSERT(r.truncate_bytes >= 0.0,
                   "truncation bytes negative");
        ROG_ASSERT(r.force_timeout_s > 0.0,
                   "forced timeout must be positive");
    }
    for (const auto &e : churn) {
        ROG_ASSERT(e.at_s >= 0.0, "churn time negative");
        if (e.graceful)
            continue;
        ROG_ASSERT(std::isfinite(e.rejoin_s) ||
                       std::isfinite(e.detect_s),
                   "silent crash of worker ", e.worker,
                   " needs a finite rejoin or detect time, or peers "
                   "could stall forever on the ghost");
        if (std::isfinite(e.rejoin_s))
            ROG_ASSERT(e.rejoin_s >= e.at_s,
                       "rejoin must not precede the crash");
        if (std::isfinite(e.detect_s))
            ROG_ASSERT(e.detect_s >= 0.0,
                       "detection delay negative");
    }
}

double
FaultPlan::maxLinkFaultEnd() const
{
    double end = 0.0;
    for (const auto &f : link_faults)
        end = std::max(end, f.endS());
    return end;
}

net::BandwidthTrace
applyLinkFaults(const net::BandwidthTrace &base,
                std::span<const LinkFault> faults, std::size_t link,
                double horizon_s)
{
    const double step = base.stepSeconds();
    double span = std::max(horizon_s, base.durationSeconds());
    for (const auto &f : faults)
        if (f.link == link)
            span = std::max(span, f.endS());
    const auto samples =
        static_cast<std::size_t>(std::ceil(span / step - 1e-9));
    std::vector<double> out(std::max<std::size_t>(samples, 1));
    for (std::size_t i = 0; i < out.size(); ++i) {
        const double t_mid = (static_cast<double>(i) + 0.5) * step;
        double v = base.bytesPerSecAt(t_mid);
        for (const auto &f : faults) {
            if (f.link == link && t_mid >= f.start_s &&
                t_mid < f.endS()) {
                v *= f.factor;
            }
        }
        out[i] = v;
    }
    return net::BandwidthTrace(std::move(out), step);
}

} // namespace fault
} // namespace rog
