#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace rog {
namespace fault {

namespace {

/** Render a double so the spec round-trips exactly. */
std::string
num(double v)
{
    if (std::isinf(v))
        return "inf";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

/** key=value fields of one spec line, after the event keyword. */
struct Fields
{
    std::string keyword;
    std::size_t line_no = 0;
    std::string line;
    std::vector<std::pair<std::string, std::string>> kv;
    std::string error; //!< sticky: first problem wins.

    void
    fail(const std::string &what)
    {
        if (error.empty()) {
            error = detail::concat("fault spec line ", line_no, ": ",
                                   what, " in: ", line);
        }
    }

    double
    number(const std::string &text)
    {
        if (text == "inf")
            return std::numeric_limits<double>::infinity();
        std::size_t pos = 0;
        double v = 0.0;
        try {
            v = std::stod(text, &pos);
        } catch (...) {
            pos = 0;
        }
        if (pos != text.size() || text.empty() || std::isnan(v)) {
            fail(detail::concat("bad number '", text, "'"));
            return 0.0;
        }
        return v;
    }

    double
    get(const std::string &key)
    {
        for (const auto &[k, v] : kv)
            if (k == key)
                return number(v);
        fail(detail::concat("missing '", key, "='"));
        return 0.0;
    }

    double
    getOr(const std::string &key, double fallback)
    {
        for (const auto &[k, v] : kv)
            if (k == key)
                return number(v);
        return fallback;
    }

    /** Reject typoed/stray keys so nothing is silently ignored. */
    void
    allowOnly(std::initializer_list<const char *> keys)
    {
        std::set<std::string> seen;
        for (const auto &[k, v] : kv) {
            (void)v;
            if (std::find_if(keys.begin(), keys.end(),
                             [&](const char *a) { return k == a; }) ==
                keys.end()) {
                fail(detail::concat("unknown key '", k, "'"));
            }
            if (!seen.insert(k).second)
                fail(detail::concat("duplicate key '", k, "'"));
        }
    }
};

Fields
splitLine(const std::string &line, std::size_t line_no)
{
    Fields f;
    f.line = line;
    f.line_no = line_no;
    std::istringstream is(line);
    is >> f.keyword;
    std::string tok;
    while (is >> tok) {
        const auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == tok.size()) {
            f.fail(detail::concat("expected key=value, got '", tok,
                                  "'"));
            continue;
        }
        f.kv.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
    }
    return f;
}

/** Non-negative link/worker index (rejects negatives and fractions). */
std::size_t
index(Fields &f, const std::string &key)
{
    const double v = f.get(key);
    if (!f.error.empty())
        return 0;
    if (v < 0.0 || v != std::floor(v) || !std::isfinite(v)) {
        f.fail(detail::concat("'", key, "' must be a non-negative "
                              "integer, got ", num(v)));
        return 0;
    }
    return static_cast<std::size_t>(v);
}

} // namespace

FaultPlan
FaultPlan::random(std::uint64_t seed, const FaultPlanConfig &cfg)
{
    ROG_ASSERT(cfg.horizon_s > 0.0, "fault horizon must be positive");
    Rng rng(seed);
    FaultPlan plan;

    for (std::size_t l = 0; l < cfg.links; ++l) {
        const auto blackouts =
            rng.uniformInt(cfg.max_blackouts_per_link + 1);
        for (std::uint64_t i = 0; i < blackouts; ++i) {
            LinkFault f;
            f.link = l;
            f.start_s = rng.uniform(0.0, cfg.horizon_s);
            f.duration_s =
                rng.uniform(cfg.blackout_min_s, cfg.blackout_max_s);
            f.factor = 0.0;
            plan.link_faults.push_back(f);
        }
        const auto degrades =
            rng.uniformInt(cfg.max_degrades_per_link + 1);
        for (std::uint64_t i = 0; i < degrades; ++i) {
            LinkFault f;
            f.link = l;
            f.start_s = rng.uniform(0.0, cfg.horizon_s);
            f.duration_s =
                rng.uniform(cfg.degrade_min_s, cfg.degrade_max_s);
            f.factor = rng.uniform(cfg.degrade_min_factor,
                                   cfg.degrade_max_factor);
            plan.link_faults.push_back(f);
        }
        const auto truncations =
            rng.uniformInt(cfg.max_truncations_per_link + 1);
        for (std::uint64_t i = 0; i < truncations; ++i) {
            TransferFaultRule r;
            r.link = l;
            r.at_s = rng.uniform(0.0, cfg.horizon_s);
            r.truncate_bytes = rng.uniform(cfg.truncate_min_bytes,
                                           cfg.truncate_max_bytes);
            plan.transfer_faults.push_back(r);
        }
        const auto timeouts =
            rng.uniformInt(cfg.max_timeouts_per_link + 1);
        for (std::uint64_t i = 0; i < timeouts; ++i) {
            TransferFaultRule r;
            r.link = l;
            r.at_s = rng.uniform(0.0, cfg.horizon_s);
            r.force_timeout_s =
                rng.uniform(cfg.timeout_min_s, cfg.timeout_max_s);
            plan.transfer_faults.push_back(r);
        }
        // Corruption-class rules are guarded so a zero knob draws no
        // RNG values: plans from pre-transport seeds stay identical.
        if (cfg.max_corruptions_per_link > 0) {
            const auto n =
                rng.uniformInt(cfg.max_corruptions_per_link + 1);
            for (std::uint64_t i = 0; i < n; ++i) {
                TransferFaultRule r;
                r.link = l;
                r.at_s = rng.uniform(0.0, cfg.horizon_s);
                r.corrupt = true;
                plan.transfer_faults.push_back(r);
            }
        }
        if (cfg.max_duplicates_per_link > 0) {
            const auto n =
                rng.uniformInt(cfg.max_duplicates_per_link + 1);
            for (std::uint64_t i = 0; i < n; ++i) {
                TransferFaultRule r;
                r.link = l;
                r.at_s = rng.uniform(0.0, cfg.horizon_s);
                r.duplicate = true;
                plan.transfer_faults.push_back(r);
            }
        }
        if (cfg.max_reorders_per_link > 0) {
            const auto n =
                rng.uniformInt(cfg.max_reorders_per_link + 1);
            for (std::uint64_t i = 0; i < n; ++i) {
                TransferFaultRule r;
                r.link = l;
                r.at_s = rng.uniform(0.0, cfg.horizon_s);
                r.reorder = true;
                plan.transfer_faults.push_back(r);
            }
        }
    }

    for (std::size_t w = 0; w < cfg.workers; ++w) {
        if (rng.uniform() < cfg.crash_prob) {
            ChurnEvent e;
            e.worker = w;
            e.at_s = rng.uniform(0.0, cfg.horizon_s);
            e.detect_s = cfg.detect_s;
            if (rng.uniform() < cfg.rejoin_prob)
                e.rejoin_s =
                    e.at_s + rng.uniform(1.0, 0.5 * cfg.horizon_s);
            plan.churn.push_back(e);
        } else if (rng.uniform() < cfg.leave_prob) {
            ChurnEvent e;
            e.worker = w;
            e.at_s = rng.uniform(0.0, cfg.horizon_s);
            e.graceful = true;
            plan.churn.push_back(e);
        }
    }

    // Guarded like the corruption knobs: zero probability, zero draws.
    if (cfg.server_crash_prob > 0.0 && rng.uniform() <
                                           cfg.server_crash_prob) {
        ROG_ASSERT(cfg.server_crash_max_iter >= 1,
                   "server_crash_max_iter must be at least 1");
        ServerCrashEvent e;
        e.at_iter = 1 + static_cast<std::int64_t>(rng.uniformInt(
                            static_cast<std::uint64_t>(
                                cfg.server_crash_max_iter)));
        plan.server_crashes.push_back(e);
    }

    plan.validate();
    return plan;
}

FaultPlan::ParseResult
FaultPlan::tryParse(const std::string &spec)
{
    ParseResult out;
    std::istringstream is(spec);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        Fields f = splitLine(line, line_no);
        if (f.keyword == "blackout" || f.keyword == "degrade") {
            const bool degrade = f.keyword == "degrade";
            degrade ? f.allowOnly({"link", "start", "dur", "factor"})
                    : f.allowOnly({"link", "start", "dur"});
            LinkFault lf;
            lf.link = index(f, "link");
            lf.start_s = f.get("start");
            lf.duration_s = f.get("dur");
            lf.factor = degrade ? f.get("factor") : 0.0;
            out.plan.link_faults.push_back(lf);
        } else if (f.keyword == "truncate") {
            f.allowOnly({"link", "at", "bytes"});
            TransferFaultRule r;
            r.link = index(f, "link");
            r.at_s = f.get("at");
            r.truncate_bytes = f.get("bytes");
            out.plan.transfer_faults.push_back(r);
        } else if (f.keyword == "timeout") {
            f.allowOnly({"link", "at", "after"});
            TransferFaultRule r;
            r.link = index(f, "link");
            r.at_s = f.get("at");
            r.force_timeout_s = f.get("after");
            out.plan.transfer_faults.push_back(r);
        } else if (f.keyword == "corrupt" || f.keyword == "duplicate" ||
                   f.keyword == "reorder") {
            f.allowOnly({"link", "at"});
            TransferFaultRule r;
            r.link = index(f, "link");
            r.at_s = f.get("at");
            r.corrupt = f.keyword == "corrupt";
            r.duplicate = f.keyword == "duplicate";
            r.reorder = f.keyword == "reorder";
            out.plan.transfer_faults.push_back(r);
        } else if (f.keyword == "crash") {
            f.allowOnly({"worker", "at", "rejoin", "detect"});
            ChurnEvent e;
            e.worker = index(f, "worker");
            e.at_s = f.get("at");
            e.rejoin_s = f.getOr("rejoin", kNever);
            e.detect_s = f.getOr("detect", kNever);
            out.plan.churn.push_back(e);
        } else if (f.keyword == "leave") {
            f.allowOnly({"worker", "at"});
            ChurnEvent e;
            e.worker = index(f, "worker");
            e.at_s = f.get("at");
            e.graceful = true;
            out.plan.churn.push_back(e);
        } else if (f.keyword == "server_crash") {
            f.allowOnly({"iter"});
            ServerCrashEvent e;
            e.at_iter = static_cast<std::int64_t>(index(f, "iter"));
            out.plan.server_crashes.push_back(e);
        } else {
            f.fail(detail::concat("unknown keyword '", f.keyword, "'"));
        }
        if (!f.error.empty()) {
            out.error = f.error;
            out.plan = FaultPlan{};
            return out;
        }
    }
    std::string invalid = out.plan.validationError();
    if (!invalid.empty()) {
        out.error = std::move(invalid);
        out.plan = FaultPlan{};
    }
    return out;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    ParseResult res = tryParse(spec);
    if (!res.ok())
        ROG_FATAL(res.error);
    return std::move(res.plan);
}

std::string
FaultPlan::toSpec() const
{
    std::ostringstream os;
    for (const auto &f : link_faults) {
        if (f.factor == 0.0) {
            os << "blackout link=" << f.link << " start="
               << num(f.start_s) << " dur=" << num(f.duration_s)
               << '\n';
        } else {
            os << "degrade link=" << f.link << " start="
               << num(f.start_s) << " dur=" << num(f.duration_s)
               << " factor=" << num(f.factor) << '\n';
        }
    }
    for (const auto &r : transfer_faults) {
        if (std::isfinite(r.truncate_bytes)) {
            os << "truncate link=" << r.link << " at=" << num(r.at_s)
               << " bytes=" << num(r.truncate_bytes) << '\n';
        }
        if (std::isfinite(r.force_timeout_s)) {
            os << "timeout link=" << r.link << " at=" << num(r.at_s)
               << " after=" << num(r.force_timeout_s) << '\n';
        }
        if (r.corrupt) {
            os << "corrupt link=" << r.link << " at=" << num(r.at_s)
               << '\n';
        }
        if (r.duplicate) {
            os << "duplicate link=" << r.link << " at=" << num(r.at_s)
               << '\n';
        }
        if (r.reorder) {
            os << "reorder link=" << r.link << " at=" << num(r.at_s)
               << '\n';
        }
    }
    for (const auto &e : churn) {
        if (e.graceful) {
            os << "leave worker=" << e.worker << " at=" << num(e.at_s)
               << '\n';
        } else {
            os << "crash worker=" << e.worker << " at=" << num(e.at_s);
            if (std::isfinite(e.rejoin_s))
                os << " rejoin=" << num(e.rejoin_s);
            if (std::isfinite(e.detect_s))
                os << " detect=" << num(e.detect_s);
            os << '\n';
        }
    }
    for (const auto &e : server_crashes)
        os << "server_crash iter=" << e.at_iter << '\n';
    return os.str();
}

bool
FaultPlan::empty() const
{
    return link_faults.empty() && transfer_faults.empty() &&
           churn.empty() && server_crashes.empty();
}

std::string
FaultPlan::validationError() const
{
    for (const auto &f : link_faults) {
        if (!(f.start_s >= 0.0))
            return detail::concat("link fault start must be "
                                  "non-negative, got ", num(f.start_s));
        if (!(f.duration_s >= 0.0))
            return detail::concat("link fault duration must be "
                                  "non-negative, got ",
                                  num(f.duration_s));
        if (!(f.factor >= 0.0 && f.factor <= 1.0))
            return detail::concat("link fault factor must be in "
                                  "[0, 1], got ", num(f.factor));
    }
    for (const auto &r : transfer_faults) {
        if (!(r.at_s >= 0.0))
            return detail::concat("transfer fault time must be "
                                  "non-negative, got ", num(r.at_s));
        if (!(r.truncate_bytes >= 0.0))
            return detail::concat("truncation bytes must be "
                                  "non-negative, got ",
                                  num(r.truncate_bytes));
        if (!(r.force_timeout_s > 0.0))
            return detail::concat("forced timeout must be positive, "
                                  "got ", num(r.force_timeout_s));
    }
    for (const auto &e : churn) {
        if (!(e.at_s >= 0.0))
            return detail::concat("churn time must be non-negative, "
                                  "got ", num(e.at_s));
        if (e.graceful)
            continue;
        if (!std::isfinite(e.rejoin_s) && !std::isfinite(e.detect_s))
            return detail::concat(
                "silent crash of worker ", e.worker,
                " needs a finite rejoin or detect time, or peers "
                "could stall forever on the ghost");
        if (std::isfinite(e.rejoin_s) && !(e.rejoin_s >= e.at_s))
            return detail::concat("rejoin (", num(e.rejoin_s),
                                  ") must not precede the crash (",
                                  num(e.at_s), ")");
        if (std::isfinite(e.detect_s) && !(e.detect_s >= 0.0))
            return detail::concat("detection delay must be "
                                  "non-negative, got ",
                                  num(e.detect_s));
    }
    for (const auto &e : server_crashes) {
        if (e.at_iter < 1)
            return detail::concat("server crash iteration must be at "
                                  "least 1, got ", e.at_iter);
    }
    return {};
}

void
FaultPlan::validate() const
{
    const std::string err = validationError();
    ROG_ASSERT(err.empty(), "invalid fault plan: ", err);
}

double
FaultPlan::maxLinkFaultEnd() const
{
    double end = 0.0;
    for (const auto &f : link_faults)
        end = std::max(end, f.endS());
    return end;
}

net::BandwidthTrace
applyLinkFaults(const net::BandwidthTrace &base,
                std::span<const LinkFault> faults, std::size_t link,
                double horizon_s)
{
    const double step = base.stepSeconds();
    double span = std::max(horizon_s, base.durationSeconds());
    for (const auto &f : faults)
        if (f.link == link)
            span = std::max(span, f.endS());
    const auto samples =
        static_cast<std::size_t>(std::ceil(span / step - 1e-9));
    std::vector<double> out(std::max<std::size_t>(samples, 1));
    for (std::size_t i = 0; i < out.size(); ++i) {
        const double t_mid = (static_cast<double>(i) + 0.5) * step;
        double v = base.bytesPerSecAt(t_mid);
        for (const auto &f : faults) {
            if (f.link == link && t_mid >= f.start_s &&
                t_mid < f.endS()) {
                v *= f.factor;
            }
        }
        out[i] = v;
    }
    return net::BandwidthTrace(std::move(out), step);
}

} // namespace fault
} // namespace rog
