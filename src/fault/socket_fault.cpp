#include "fault/socket_fault.hpp"

#include <cstdlib>
#include <sstream>
#include <vector>

namespace rog {
namespace fault {

namespace {

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size();
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s[0] == '-' || s[0] == '+')
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end == s.c_str() + s.size();
}

} // namespace

SocketFaultParseResult
SocketFaultPlan::tryParse(const std::string &spec)
{
    SocketFaultParseResult res;
    std::istringstream is(spec);
    std::string tok;
    const auto fail = [&](const std::string &what) {
        res.error = what;
        res.plan = SocketFaultPlan{};
        return res;
    };
    const auto prob = [&](const std::string &val, const char *name,
                          double &out) {
        if (!parseDouble(val, out) || out < 0.0 || out > 1.0) {
            res.error = std::string(name) +
                        " needs a probability in [0, 1], got '" + val +
                        "'";
            res.plan = SocketFaultPlan{}; // no partial state on reject.
            return false;
        }
        return true;
    };

    while (is >> tok) {
        const auto eq = tok.find('=');
        if (eq == std::string::npos)
            return fail("token '" + tok + "' is not key=value");
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        if (key == "seed") {
            if (!parseU64(val, res.plan.seed))
                return fail("seed needs an unsigned integer, got '" +
                            val + "'");
        } else if (key == "drop") {
            if (!prob(val, "drop", res.plan.drop_p))
                return res;
        } else if (key == "dup") {
            if (!prob(val, "dup", res.plan.dup_p))
                return res;
        } else if (key == "trunc") {
            if (!prob(val, "trunc", res.plan.trunc_p))
                return res;
        } else if (key == "corrupt") {
            if (!prob(val, "corrupt", res.plan.corrupt_p))
                return res;
        } else if (key == "delay") {
            // delay=<prob>[:<seconds>]
            const auto colon = val.find(':');
            const std::string p = val.substr(0, colon);
            if (!prob(p, "delay", res.plan.delay_p))
                return res;
            if (colon != std::string::npos) {
                const std::string secs = val.substr(colon + 1);
                if (!parseDouble(secs, res.plan.delay_s) ||
                    res.plan.delay_s < 0.0)
                    return fail("delay seconds must be non-negative, "
                                "got '" +
                                secs + "'");
            }
        } else if (key == "partition") {
            // partition=<begin>:<duration> (seconds, sender clock).
            const auto colon = val.find(':');
            if (colon == std::string::npos)
                return fail("partition needs begin:duration, got '" +
                            val + "'");
            double begin = 0.0;
            double dur = 0.0;
            if (!parseDouble(val.substr(0, colon), begin) ||
                begin < 0.0 ||
                !parseDouble(val.substr(colon + 1), dur) || dur <= 0.0)
                return fail("partition needs non-negative begin and "
                            "positive duration, got '" +
                            val + "'");
            res.plan.part_begin_s = begin;
            res.plan.part_end_s = begin + dur;
        } else {
            return fail("unknown fault key '" + key + "'");
        }
    }
    return res;
}

SocketFaultInjector::SocketFaultInjector(const SocketFaultPlan &plan)
    : plan_(plan), rng_(plan.seed)
{
}

DatagramFate
SocketFaultInjector::next()
{
    ++decided_;
    DatagramFate fate;
    // Fixed draw order keeps the stream reproducible regardless of
    // which faults are enabled: every decision consumes its draws.
    const double u_drop = rng_.uniform();
    const double u_dup = rng_.uniform();
    const double u_trunc = rng_.uniform();
    const double u_trunc_frac = rng_.uniform();
    const double u_corrupt = rng_.uniform();
    const double u_delay = rng_.uniform();

    fate.drop = u_drop < plan_.drop_p;
    fate.duplicate = u_dup < plan_.dup_p;
    if (u_trunc < plan_.trunc_p)
        fate.keep_frac = u_trunc_frac; // keep a uniform prefix.
    fate.corrupt = u_corrupt < plan_.corrupt_p;
    if (u_delay < plan_.delay_p)
        fate.delay_s = plan_.delay_s;
    return fate;
}

DatagramFate
SocketFaultInjector::next(double now_s)
{
    // Layered after the draws so the stream past the window matches
    // a never-partitioned run with the same seed.
    DatagramFate fate = next();
    if (plan_.partitioned(now_s))
        fate.drop = true;
    return fate;
}

} // namespace fault
} // namespace rog
