/**
 * @file
 * Deterministic fault injection for the real-socket transport.
 *
 * The DES fault layer perturbs simulated transfers; this is its
 * wire-level twin: a seeded per-datagram decision stream applied on
 * the sender's emit path, so a UDP loopback run exercises the same
 * protocol reactions (retry, resume-from-offset, CRC discard,
 * duplicate dedup) the simulator proves out — with real packets.
 *
 * Decisions draw from one Rng in a fixed per-datagram order
 * (drop, dup, truncate, corrupt, delay), so the same seed and send
 * sequence yields the same perturbations. Only DATA frames are
 * touched; acknowledgements travel clean, which keeps the sender's
 * decision sequence reproducible enough for loopback assertions.
 */
#ifndef ROG_FAULT_SOCKET_FAULT_HPP
#define ROG_FAULT_SOCKET_FAULT_HPP

#include <cstdint>
#include <string>

#include "common/rng.hpp"

namespace rog {
namespace fault {

struct SocketFaultPlan;

/** Result of SocketFaultPlan::tryParse. */
struct SocketFaultParseResult;

/** Probabilities and knobs for wire-level datagram faults. */
struct SocketFaultPlan
{
    std::uint64_t seed = 1;
    double drop_p = 0.0;    //!< lose the datagram entirely.
    double dup_p = 0.0;     //!< deliver it twice.
    double trunc_p = 0.0;   //!< cut the payload mid-fragment.
    double corrupt_p = 0.0; //!< flip a payload byte (CRC must catch it).
    double delay_p = 0.0;   //!< hold the datagram back briefly.
    double delay_s = 0.01;  //!< how long a delayed datagram waits.

    /**
     * Network partition: every datagram emitted while
     * `part_begin_s <= now < part_end_s` (sender clock, seconds since
     * process start) is dropped, regardless of probabilities. Models
     * a windowed link outage; end <= begin disables it.
     */
    double part_begin_s = 0.0;
    double part_end_s = 0.0;

    bool
    partitioned(double now_s) const
    {
        return part_end_s > part_begin_s && now_s >= part_begin_s &&
               now_s < part_end_s;
    }

    /** A plan that touches nothing. */
    bool
    clean() const
    {
        return drop_p <= 0.0 && dup_p <= 0.0 && trunc_p <= 0.0 &&
               corrupt_p <= 0.0 && delay_p <= 0.0 &&
               part_end_s <= part_begin_s;
    }

    /**
     * Parse a spec like "seed=7 drop=0.1 dup=0.05 trunc=0.2
     * corrupt=0.05 delay=0.1:0.02 partition=2.0:1.5" (delay is
     * prob:seconds; partition is begin:duration, in sender-clock
     * seconds). Unknown keys and out-of-range probabilities are
     * rejected with a message, never skipped.
     */
    static SocketFaultParseResult tryParse(const std::string &spec);
};

struct SocketFaultParseResult
{
    SocketFaultPlan plan;
    std::string error; //!< empty on success.

    bool ok() const { return error.empty(); }
};

/** What to do with one outgoing datagram. */
struct DatagramFate
{
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    /** Keep only this fraction of the fragment (1 = whole). */
    double keep_frac = 1.0;
    double delay_s = 0.0; //!< 0 = send now.
};

/** Draws a deterministic fate stream for outgoing datagrams. */
class SocketFaultInjector
{
  public:
    explicit SocketFaultInjector(const SocketFaultPlan &plan);

    /** Decide the fate of the next datagram (advances the stream). */
    DatagramFate next();

    /**
     * As next(), but time-aware: inside the plan's partition window
     * the datagram is dropped outright. The probabilistic draws are
     * still consumed, so the stream beyond the window is identical
     * to a run that never partitioned.
     */
    DatagramFate next(double now_s);

    std::size_t decided() const { return decided_; }
    const SocketFaultPlan &plan() const { return plan_; }

  private:
    SocketFaultPlan plan_;
    Rng rng_;
    std::size_t decided_ = 0;
};

} // namespace fault
} // namespace rog

#endif // ROG_FAULT_SOCKET_FAULT_HPP
