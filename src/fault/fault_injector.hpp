/**
 * @file
 * Replays a FaultPlan onto a running simulation.
 *
 * The injector is the glue between the declarative plan and the live
 * system: it implements net::TransferFaultPolicy so the channel asks
 * it about every starting transfer, and it schedules the plan's churn
 * events on the event queue so the engine's hooks fire at exactly the
 * planned virtual times. All decisions are pure functions of the plan
 * and the query time — replaying the same plan gives the same run.
 */
#ifndef ROG_FAULT_FAULT_INJECTOR_HPP
#define ROG_FAULT_FAULT_INJECTOR_HPP

#include <functional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "net/channel.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace fault {

/** Engine-side callbacks for worker churn (any may be empty). */
struct ChurnHooks
{
    /** A silent crash at the event's time (in-flight rows are lost). */
    std::function<void(const ChurnEvent &)> on_crash;

    /**
     * The server detects the crash (at_s + detect_s): the staleness
     * gate should re-evaluate membership. Fires even if the worker
     * rejoined in the meantime; the receiver must check.
     */
    std::function<void(const ChurnEvent &)> on_detect;

    /** The crashed worker comes back at rejoin_s. */
    std::function<void(const ChurnEvent &)> on_rejoin;

    /** An announced, graceful departure. */
    std::function<void(const ChurnEvent &)> on_leave;
};

/** Binds a FaultPlan to a simulation and (optionally) a channel. */
class FaultInjector final : public net::TransferFaultPolicy
{
  public:
    /** @param sim / @param plan must outlive the injector. */
    FaultInjector(sim::Simulation &sim, const FaultPlan &plan);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Install this injector as @p channel's fault policy. */
    void attach(net::Channel &channel);

    /**
     * Schedule every churn event of the plan; the hooks fire from the
     * event loop at the planned times. Call at most once, before
     * sim.run().
     */
    void scheduleChurn(ChurnHooks hooks);

    /**
     * Perturb one worker's base trace with the plan's link faults (see
     * applyLinkFaults); @p horizon_s should cover the run.
     */
    net::BandwidthTrace perturbTrace(const net::BandwidthTrace &base,
                                     std::size_t link,
                                     double horizon_s) const;

    // net::TransferFaultPolicy
    net::FaultDecision onTransferStart(net::LinkId link, double bytes,
                                       double now) override;

    /** How many transfer-fault rules have fired so far. */
    std::size_t rulesFired() const { return rules_fired_; }

    const FaultPlan &plan() const { return plan_; }

  private:
    sim::Simulation &sim_;
    const FaultPlan &plan_;
    std::vector<bool> rule_used_;
    std::size_t rules_fired_ = 0;
    ChurnHooks hooks_;
    bool churn_scheduled_ = false;
};

} // namespace fault
} // namespace rog

#endif // ROG_FAULT_FAULT_INJECTOR_HPP
