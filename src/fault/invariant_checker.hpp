/**
 * @file
 * Conservation-invariant checking for fault-injected training runs.
 *
 * The fault layer can cut transfers, crash workers, and rewrite
 * membership mid-run; this checker is the oracle that says the engine
 * survived all of it without corrupting the protocol state. The engine
 * calls the on*() hooks from its worker/pull loops; violations are
 * collected (not thrown) so a test can run an entire faulty scenario
 * and then assert clean() — or print report() to see everything that
 * went wrong at once.
 *
 * Checked properties:
 *  - virtual time is monotone across engine observations;
 *  - a (worker, unit) gradient row is never pushed twice for the same
 *    iteration, and stored versions match the pushes (server version
 *    storage consistent);
 *  - a pulled gradient is only applied when the server actually had it
 *    pending (no row applied twice: applying clears the pending copy);
 *  - the RSP staleness bound is never exceeded at a gate pass;
 *  - membership transitions are sane (no retired worker pushes, a
 *    rejoin lands at or beyond the worker's last pushed iteration).
 */
#ifndef ROG_FAULT_INVARIANT_CHECKER_HPP
#define ROG_FAULT_INVARIANT_CHECKER_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace rog {
namespace fault {

/** Collects violations of the engine's conservation invariants. */
class InvariantChecker
{
  public:
    InvariantChecker() = default;

    /** Engine observed virtual time @p now (monotonicity). */
    void onTimeAdvance(double now);

    /**
     * @p worker pushed @p unit at iteration @p iter; @p stored is the
     * version the server recorded afterwards.
     */
    void onPush(std::size_t worker, std::size_t unit, std::int64_t iter,
                std::int64_t stored);

    /**
     * @p worker applied a pulled gradient of @p unit; @p had_pending is
     * whether the server held a pending copy at that moment.
     */
    void onApply(std::size_t worker, std::size_t unit, bool had_pending);

    /**
     * @p worker cleared the staleness gate at iteration @p iter with
     * the slowest active peer at @p min_iter under @p threshold.
     * @p retired: the gate waved the worker through as non-member.
     */
    void onGatePass(std::size_t worker, std::int64_t iter,
                    std::int64_t min_iter, std::int64_t threshold,
                    bool retired);

    /** @p worker left the staleness gate's membership. */
    void onRetire(std::size_t worker);

    /** @p worker rejoined, resynced to model iteration @p iter. */
    void onRejoin(std::size_t worker, std::int64_t iter);

    /** True if no invariant was violated. */
    bool clean() const { return violation_count_ == 0; }

    std::size_t violationCount() const { return violation_count_; }

    /** Total hook invocations (a zero means nothing was checked). */
    std::size_t checksRun() const { return checks_; }

    /** First few violations, one per line (empty when clean). */
    std::string report() const;

  private:
    void fail(std::string msg);
    std::int64_t &pushSlot(std::size_t worker, std::size_t unit);

    // Shadow state, grown on demand.
    std::vector<std::vector<std::int64_t>> last_push_;
    std::vector<std::uint8_t> retired_;
    double last_time_ = 0.0;

    std::vector<std::string> violations_; //!< capped sample.
    std::size_t violation_count_ = 0;
    std::size_t checks_ = 0;

    static constexpr std::size_t kMaxStoredViolations = 32;
};

} // namespace fault
} // namespace rog

#endif // ROG_FAULT_INVARIANT_CHECKER_HPP
