/**
 * @file
 * Conservation-invariant checking for fault-injected training runs.
 *
 * The fault layer can cut transfers, crash workers, and rewrite
 * membership mid-run; this checker is the oracle that says the engine
 * survived all of it without corrupting the protocol state. The engine
 * calls the on*() hooks from its worker/pull loops; violations are
 * collected (not thrown) so a test can run an entire faulty scenario
 * and then assert clean() — or print report() to see everything that
 * went wrong at once.
 *
 * Checked properties:
 *  - virtual time is monotone across engine observations;
 *  - a (worker, unit) gradient row is never pushed twice for the same
 *    iteration, and stored versions match the pushes (server version
 *    storage consistent);
 *  - a pulled gradient is only applied when the server actually had it
 *    pending (no row applied twice: applying clears the pending copy);
 *  - the RSP staleness bound is never exceeded at a gate pass;
 *  - membership transitions are sane (no retired worker pushes, a
 *    rejoin lands at or beyond the worker's last pushed iteration);
 *  - the failure detector never evicts a worker that was actually
 *    healthy, and server recovery only ever rolls state backwards
 *    (write-ahead ordering);
 *  - the reliable transport (net/transport) applies every chunk at
 *    most once even when the link duplicates deliveries, never accepts
 *    a chunk whose CRC check failed, never delivers one message twice,
 *    and never resumes a retry beyond the bytes actually requested.
 */
#ifndef ROG_FAULT_INVARIANT_CHECKER_HPP
#define ROG_FAULT_INVARIANT_CHECKER_HPP

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "net/transport/observer.hpp"

namespace rog {
namespace fault {

/** Collects violations of the engine's conservation invariants. */
class InvariantChecker final : public net::transport::TransportObserver
{
  public:
    InvariantChecker() = default;

    /** Engine observed virtual time @p now (monotonicity). */
    void onTimeAdvance(double now);

    /**
     * @p worker pushed @p unit at iteration @p iter; @p stored is the
     * version the server recorded afterwards.
     */
    void onPush(std::size_t worker, std::size_t unit, std::int64_t iter,
                std::int64_t stored);

    /**
     * @p worker applied a pulled gradient of @p unit; @p had_pending is
     * whether the server held a pending copy at that moment.
     */
    void onApply(std::size_t worker, std::size_t unit, bool had_pending);

    /**
     * @p worker cleared the staleness gate at iteration @p iter with
     * the slowest active peer at @p min_iter under @p threshold.
     * @p retired: the gate waved the worker through as non-member.
     */
    void onGatePass(std::size_t worker, std::int64_t iter,
                    std::int64_t min_iter, std::int64_t threshold,
                    bool retired);

    /** @p worker left the staleness gate's membership. */
    void onRetire(std::size_t worker);

    /** @p worker rejoined, resynced to model iteration @p iter. */
    void onRejoin(std::size_t worker, std::int64_t iter);

    /**
     * The failure detector declared @p worker dead and evicted it;
     * @p actually_down is the simulation's ground truth at that
     * moment. Evicting a worker that was healthy and heartbeating is
     * the false positive the phi thresholds must prevent; it is
     * recorded as a violation.
     */
    void onEvict(std::size_t worker, bool actually_down);

    /**
     * The server recovered from its checkpoint of @p checkpoint_iter
     * after crashing at @p crash_iter. Recovering "forwards" (a
     * checkpoint newer than the crash point) means the write-ahead
     * ordering was broken.
     */
    void onServerRecovery(std::int64_t checkpoint_iter,
                          std::int64_t crash_iter);

    /**
     * The transport receiver handled one chunk of the message keyed
     * (worker, version, row, pull-direction). @p crc_ok is the
     * receiver-side checksum verdict; @p accepted_fresh is whether the
     * receiver treated the chunk as new payload (as opposed to a
     * dedup'd duplicate or a discard). Accepting a corrupted chunk, or
     * accepting the same @p chunk_seq fresh twice, is a violation.
     */
    void onTransportChunk(std::size_t worker, std::int64_t version,
                          std::size_t row, std::uint32_t chunk_seq,
                          bool crc_ok, bool accepted_fresh,
                          bool pull) override;

    /**
     * The transport delivered the complete message (worker, version,
     * row, pull-direction) to the application. A second delivery of
     * the same message is a violation (exactly-once apply).
     */
    void onTransportDeliver(std::size_t worker, std::int64_t version,
                            std::size_t row, bool pull) override;

    /**
     * A retry of (worker, version, row) resumed from a byte offset:
     * @p resumed_bytes were skipped as already delivered out of
     * @p requested_bytes for the chunk. Resuming past the request is a
     * violation (the transport would be inventing delivered bytes).
     */
    void onTransportResume(std::size_t worker, std::int64_t version,
                           std::size_t row, double resumed_bytes,
                           double requested_bytes, bool pull) override;

    /** True if no invariant was violated. */
    bool clean() const { return violation_count_ == 0; }

    std::size_t violationCount() const { return violation_count_; }

    /** Total hook invocations (a zero means nothing was checked). */
    std::size_t checksRun() const { return checks_; }

    /** First few violations, one per line (empty when clean). */
    std::string report() const;

  private:
    void fail(std::string msg);
    std::int64_t &pushSlot(std::size_t worker, std::size_t unit);

    // Shadow state, grown on demand.
    std::vector<std::vector<std::int64_t>> last_push_;
    std::vector<std::uint8_t> retired_;
    double last_time_ = 0.0;

    // Transport shadow state: which chunks were accepted fresh and
    // which messages were delivered, keyed by
    // (worker, version, row, chunk_seq, pull). kAnyChunk marks a
    // whole-message (delivery) entry.
    using TransportKey =
        std::tuple<std::size_t, std::int64_t, std::size_t,
                   std::uint32_t, bool>;
    static constexpr std::uint32_t kAnyChunk = ~0u;
    std::set<TransportKey> accepted_chunks_;
    std::set<TransportKey> delivered_;

    std::vector<std::string> violations_; //!< capped sample.
    std::size_t violation_count_ = 0;
    std::size_t checks_ = 0;

    static constexpr std::size_t kMaxStoredViolations = 32;
};

} // namespace fault
} // namespace rog

#endif // ROG_FAULT_INVARIANT_CHECKER_HPP
