#include "fault/invariant_checker.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace rog {
namespace fault {

void
InvariantChecker::fail(std::string msg)
{
    ++violation_count_;
    if (violations_.size() < kMaxStoredViolations)
        violations_.push_back(std::move(msg));
}

std::int64_t &
InvariantChecker::pushSlot(std::size_t worker, std::size_t unit)
{
    if (worker >= last_push_.size()) {
        last_push_.resize(worker + 1);
        retired_.resize(worker + 1, 0);
    }
    auto &row = last_push_[worker];
    if (unit >= row.size())
        row.resize(unit + 1, 0);
    return row[unit];
}

void
InvariantChecker::onTimeAdvance(double now)
{
    ++checks_;
    if (now < last_time_) {
        fail(detail::concat("virtual time went backwards: ", now,
                            " < ", last_time_));
    }
    last_time_ = now;
}

void
InvariantChecker::onPush(std::size_t worker, std::size_t unit,
                         std::int64_t iter, std::int64_t stored)
{
    ++checks_;
    std::int64_t &slot = pushSlot(worker, unit);
    if (iter <= slot) {
        fail(detail::concat("worker ", worker, " pushed unit ", unit,
                            " twice: iteration ", iter,
                            " after having pushed iteration ", slot));
    }
    if (stored != iter) {
        fail(detail::concat("version storage inconsistent: worker ",
                            worker, " unit ", unit, " stored ", stored,
                            " after push of iteration ", iter));
    }
    if (retired_[worker]) {
        fail(detail::concat("retired worker ", worker,
                            " pushed unit ", unit, " at iteration ",
                            iter));
    }
    slot = iter;
}

void
InvariantChecker::onApply(std::size_t worker, std::size_t unit,
                          bool had_pending)
{
    ++checks_;
    if (!had_pending) {
        fail(detail::concat("worker ", worker,
                            " applied unit ", unit,
                            " with no pending server copy (a gradient "
                            "row would be applied twice or invented)"));
    }
}

void
InvariantChecker::onGatePass(std::size_t worker, std::int64_t iter,
                             std::int64_t min_iter,
                             std::int64_t threshold, bool retired)
{
    ++checks_;
    if (!retired && iter - min_iter >= threshold) {
        fail(detail::concat("staleness bound exceeded at gate: worker ",
                            worker, " iteration ", iter,
                            " vs slowest active ", min_iter,
                            " under threshold ", threshold));
    }
}

void
InvariantChecker::onRetire(std::size_t worker)
{
    ++checks_;
    pushSlot(worker, 0); // ensure sized.
    retired_[worker] = 1;
}

void
InvariantChecker::onRejoin(std::size_t worker, std::int64_t iter)
{
    ++checks_;
    std::int64_t &slot = pushSlot(worker, 0);
    (void)slot;
    retired_[worker] = 0;
    auto &row = last_push_[worker];
    for (std::size_t u = 0; u < row.size(); ++u) {
        if (iter < row[u]) {
            fail(detail::concat("worker ", worker, " rejoined at ",
                                "iteration ", iter,
                                " behind its own pushed unit ", u,
                                " (version ", row[u], ")"));
        }
        row[u] = iter;
    }
    if (row.empty())
        row.assign(1, iter);
}

void
InvariantChecker::onEvict(std::size_t worker, bool actually_down)
{
    ++checks_;
    if (!actually_down) {
        fail(detail::concat("failure detector evicted healthy worker ",
                            worker, " (false positive)"));
    }
}

void
InvariantChecker::onServerRecovery(std::int64_t checkpoint_iter,
                                   std::int64_t crash_iter)
{
    ++checks_;
    if (checkpoint_iter > crash_iter) {
        fail(detail::concat("server recovered from checkpoint of "
                            "iteration ", checkpoint_iter,
                            " after crashing at iteration ", crash_iter,
                            " (write-ahead ordering broken)"));
    }
}

void
InvariantChecker::onTransportChunk(std::size_t worker,
                                   std::int64_t version,
                                   std::size_t row,
                                   std::uint32_t chunk_seq, bool crc_ok,
                                   bool accepted_fresh, bool pull)
{
    ++checks_;
    if (!accepted_fresh)
        return;
    const char *dir = pull ? "pull" : "push";
    if (!crc_ok) {
        fail(detail::concat("transport accepted a corrupted chunk: ",
                            dir, " worker ", worker, " version ",
                            version, " row ", row, " chunk ",
                            chunk_seq));
    }
    const TransportKey key{worker, version, row, chunk_seq, pull};
    if (!accepted_chunks_.insert(key).second) {
        fail(detail::concat("transport accepted a chunk twice "
                            "(duplicate delivery applied): ", dir,
                            " worker ", worker, " version ", version,
                            " row ", row, " chunk ", chunk_seq));
    }
}

void
InvariantChecker::onTransportDeliver(std::size_t worker,
                                     std::int64_t version,
                                     std::size_t row, bool pull)
{
    ++checks_;
    const TransportKey key{worker, version, row, kAnyChunk, pull};
    if (!delivered_.insert(key).second) {
        fail(detail::concat("transport delivered a message twice: ",
                            pull ? "pull" : "push", " worker ", worker,
                            " version ", version, " row ", row));
    }
}

void
InvariantChecker::onTransportResume(std::size_t worker,
                                    std::int64_t version,
                                    std::size_t row,
                                    double resumed_bytes,
                                    double requested_bytes, bool pull)
{
    ++checks_;
    if (resumed_bytes > requested_bytes + 1e-6 || resumed_bytes < 0.0) {
        fail(detail::concat("transport resumed ", resumed_bytes,
                            " bytes of a ", requested_bytes,
                            "-byte chunk: ", pull ? "pull" : "push",
                            " worker ", worker, " version ", version,
                            " row ", row));
    }
}

std::string
InvariantChecker::report() const
{
    if (clean())
        return {};
    std::ostringstream os;
    os << violation_count_ << " invariant violation(s); first "
       << violations_.size() << ":\n";
    for (const auto &v : violations_)
        os << "  - " << v << '\n';
    return os.str();
}

} // namespace fault
} // namespace rog
