/**
 * @file
 * Deterministic fault plans for the wireless channel and the training
 * engine.
 *
 * The paper's defining workload is *instability*: links black out,
 * bandwidth collapses, robots crash mid-iteration, rejoin, or leave for
 * good (Sec. II, Sec. VI-D). A FaultPlan is a typed, fully explicit
 * schedule of such events — built either from a seeded RNG (property /
 * fuzz testing) or parsed from a small line-based text spec (curated
 * scenarios) — that the FaultInjector replays onto a sim::Simulation.
 * Because the plan is data, the same seed always produces the same
 * faults and therefore the same run, byte for byte.
 *
 * Spec format (one event per line, '#' comments, blank lines ignored):
 *
 *     blackout link=1 start=10 dur=2.5
 *     degrade  link=0 start=5 dur=10 factor=0.2
 *     truncate link=2 at=12 bytes=1000
 *     timeout  link=0 at=30 after=0.5
 *     crash    worker=3 at=600 rejoin=700 detect=30
 *     leave    worker=2 at=400
 */
#ifndef ROG_FAULT_FAULT_PLAN_HPP
#define ROG_FAULT_FAULT_PLAN_HPP

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "net/bandwidth_trace.hpp"

namespace rog {
namespace fault {

inline constexpr double kNever = std::numeric_limits<double>::infinity();

/**
 * Multiply one link's capacity by @p factor over
 * [start_s, start_s + duration_s). factor = 0 is a blackout; a factor
 * in (0, 1) is a bandwidth collapse.
 */
struct LinkFault
{
    std::size_t link = 0;
    double start_s = 0.0;
    double duration_s = 0.0;
    double factor = 0.0;

    double endS() const { return start_s + duration_s; }
};

/**
 * Sabotage the first transfer that starts at or after @p at_s on
 * @p link: deliver at most @p truncate_bytes (the link dies mid-flow
 * and the tail is lost), and/or cut the transfer @p force_timeout_s
 * seconds after it starts regardless of the caller's own timeout. Each
 * rule fires at most once.
 */
struct TransferFaultRule
{
    std::size_t link = 0;
    double at_s = 0.0;
    double truncate_bytes = std::numeric_limits<double>::infinity();
    double force_timeout_s = std::numeric_limits<double>::infinity();
};

/**
 * One worker-churn event.
 *
 * A graceful leave is announced: the worker finishes its current
 * iteration and retires from the staleness gate (a robot heading home
 * on low battery). A crash is silent: the worker stops mid-iteration,
 * its in-flight rows are discarded, and the server only learns of the
 * failure @p detect_s seconds later, when the gate re-evaluates
 * membership. A finite @p rejoin_s brings the worker back, resuming
 * from the current model version.
 *
 * @invariant a non-graceful event has a finite rejoin_s or a finite
 *            detect_s — otherwise peers could stall forever on a ghost.
 */
struct ChurnEvent
{
    std::size_t worker = 0;
    double at_s = 0.0;
    double rejoin_s = kNever;
    double detect_s = kNever;
    bool graceful = false;
};

/** Knobs for FaultPlan::random (all counts are per-link maxima). */
struct FaultPlanConfig
{
    std::size_t links = 0;
    std::size_t workers = 0;
    double horizon_s = 120.0;          //!< faults land in [0, horizon).

    std::size_t max_blackouts_per_link = 2;
    double blackout_min_s = 0.2;
    double blackout_max_s = 3.0;

    std::size_t max_degrades_per_link = 2;
    double degrade_min_factor = 0.05;
    double degrade_max_factor = 0.5;
    double degrade_min_s = 1.0;
    double degrade_max_s = 10.0;

    std::size_t max_truncations_per_link = 2;
    double truncate_min_bytes = 100.0;
    double truncate_max_bytes = 50e3;

    std::size_t max_timeouts_per_link = 2;
    double timeout_min_s = 0.05;
    double timeout_max_s = 2.0;

    double crash_prob = 0.0;           //!< per worker.
    double rejoin_prob = 0.5;          //!< given a crash.
    double leave_prob = 0.0;           //!< per worker (graceful).
    double detect_s = 5.0;             //!< failure-detection delay.
};

/** A deterministic schedule of typed fault events. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Seed-driven plan: same (seed, config) ⇒ identical plan. */
    static FaultPlan random(std::uint64_t seed,
                            const FaultPlanConfig &config);

    /** Parse the line-based spec format (see file header). */
    static FaultPlan parse(const std::string &spec);

    /** Render as a spec that parse() reads back identically. */
    std::string toSpec() const;

    bool empty() const;

    /** Validate cross-field invariants; dies on violation. */
    void validate() const;

    std::vector<LinkFault> link_faults;
    std::vector<TransferFaultRule> transfer_faults;
    std::vector<ChurnEvent> churn;

    /** Latest end time of any link fault (0 if none). */
    double maxLinkFaultEnd() const;
};

/**
 * Bake the plan's faults for @p link into a trace: capacity is the base
 * trace's (looped) value times the product of every covering fault's
 * factor. The result spans at least @p horizon_s so that — as long as
 * the simulation stays within the horizon — each fault happens exactly
 * once instead of recurring with the base trace's loop.
 */
net::BandwidthTrace applyLinkFaults(const net::BandwidthTrace &base,
                                    std::span<const LinkFault> faults,
                                    std::size_t link, double horizon_s);

} // namespace fault
} // namespace rog

#endif // ROG_FAULT_FAULT_PLAN_HPP
