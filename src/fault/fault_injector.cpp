#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace rog {
namespace fault {

FaultInjector::FaultInjector(sim::Simulation &sim, const FaultPlan &plan)
    : sim_(sim), plan_(plan),
      rule_used_(plan.transfer_faults.size(), false)
{
    plan_.validate();
}

void
FaultInjector::attach(net::Channel &channel)
{
    channel.setFaultPolicy(this);
}

void
FaultInjector::scheduleChurn(ChurnHooks hooks)
{
    ROG_ASSERT(!churn_scheduled_, "churn already scheduled");
    churn_scheduled_ = true;
    hooks_ = std::move(hooks);
    for (const ChurnEvent &e : plan_.churn) {
        // Events in the plan's past (the sim usually starts at 0, but
        // an injector can be created mid-run) fire immediately.
        const double now = sim_.now();
        if (e.graceful) {
            if (hooks_.on_leave)
                sim_.at(std::max(e.at_s, now),
                        [this, &e] { hooks_.on_leave(e); });
            continue;
        }
        if (hooks_.on_crash)
            sim_.at(std::max(e.at_s, now),
                    [this, &e] { hooks_.on_crash(e); });
        if (hooks_.on_detect && std::isfinite(e.detect_s))
            sim_.at(std::max(e.at_s + e.detect_s, now),
                    [this, &e] { hooks_.on_detect(e); });
        if (hooks_.on_rejoin && std::isfinite(e.rejoin_s))
            sim_.at(std::max(e.rejoin_s, now),
                    [this, &e] { hooks_.on_rejoin(e); });
    }
}

net::BandwidthTrace
FaultInjector::perturbTrace(const net::BandwidthTrace &base,
                            std::size_t link, double horizon_s) const
{
    return applyLinkFaults(base, plan_.link_faults, link, horizon_s);
}

net::FaultDecision
FaultInjector::onTransferStart(net::LinkId link, double bytes,
                               double now)
{
    (void)bytes;
    net::FaultDecision d;
    for (std::size_t i = 0; i < plan_.transfer_faults.size(); ++i) {
        const TransferFaultRule &r = plan_.transfer_faults[i];
        if (rule_used_[i] || r.link != link || now < r.at_s)
            continue;
        rule_used_[i] = true;
        ++rules_fired_;
        d.deliverable_bytes =
            std::min(d.deliverable_bytes, r.truncate_bytes);
        d.forced_timeout = std::min(d.forced_timeout, r.force_timeout_s);
        d.corrupt = r.corrupt;
        d.duplicate = r.duplicate;
        d.reorder = r.reorder;
        // One rule per transfer: remaining matches wait for the next.
        break;
    }
    return d;
}

} // namespace fault
} // namespace rog
