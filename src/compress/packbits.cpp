#include "compress/packbits.hpp"

#include "common/logging.hpp"

namespace rog {
namespace compress {

std::size_t
packedBytes(std::size_t n)
{
    return (n + 7) / 8;
}

void
packSigns(std::span<const float> values, std::span<std::uint8_t> out)
{
    ROG_ASSERT(out.size() == packedBytes(values.size()),
               "packSigns output size mismatch");
    for (auto &b : out)
        b = 0;
    for (std::size_t i = 0; i < values.size(); ++i)
        if (values[i] >= 0.0f)
            out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
}

void
unpackSigns(std::span<const std::uint8_t> packed, std::size_t n,
            std::span<float> out)
{
    ROG_ASSERT(packed.size() == packedBytes(n) && out.size() == n,
               "unpackSigns size mismatch");
    for (std::size_t i = 0; i < n; ++i) {
        const bool pos = packed[i / 8] & (1u << (i % 8));
        out[i] = pos ? 1.0f : -1.0f;
    }
}

} // namespace compress
} // namespace rog
