#include "compress/packbits.hpp"

#include <cstring>

#include "common/logging.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define ROG_PACKBITS_SSE 1
#include <emmintrin.h> // SSE2, part of the x86-64 baseline ABI.
#endif

namespace rog {
namespace compress {

namespace {

/**
 * byte -> eight ±1.0f floats, LSB first. 8 KiB, L1-resident, built
 * deterministically at first use — the unpack hot path is then one
 * table row copy per input byte instead of eight branchy selects.
 */
struct UnpackTable
{
    float rows[256][8];

    UnpackTable()
    {
        for (int b = 0; b < 256; ++b)
            for (int j = 0; j < 8; ++j)
                rows[b][j] = ((b >> j) & 1) != 0 ? 1.0f : -1.0f;
    }
};

const UnpackTable &
unpackTable()
{
    static const UnpackTable t;
    return t;
}

} // namespace

std::size_t
packedBytes(std::size_t n)
{
    return (n + 7) / 8;
}

void
packSigns(std::span<const float> values, std::span<std::uint8_t> out)
{
    ROG_ASSERT(out.size() == packedBytes(values.size()),
               "packSigns output size mismatch");
    const std::size_t n = values.size();
    const float *v = values.data();
    std::size_t i = 0;

#ifdef ROG_PACKBITS_SSE
    // cmpge(v, 0) has exactly the scalar predicate's semantics
    // (-0.0 >= 0 true, NaN false); MOVMSKPS collects one sign bit per
    // lane of the all-ones/all-zeros compare result, LSB = lane 0 —
    // the same LSB-first layout as the reference.
    const __m128 zero = _mm_setzero_ps();
    for (; i + 16 <= n; i += 16) {
        const int m0 =
            _mm_movemask_ps(_mm_cmpge_ps(_mm_loadu_ps(v + i), zero));
        const int m1 = _mm_movemask_ps(
            _mm_cmpge_ps(_mm_loadu_ps(v + i + 4), zero));
        const int m2 = _mm_movemask_ps(
            _mm_cmpge_ps(_mm_loadu_ps(v + i + 8), zero));
        const int m3 = _mm_movemask_ps(
            _mm_cmpge_ps(_mm_loadu_ps(v + i + 12), zero));
        const unsigned bits = static_cast<unsigned>(m0) |
                              (static_cast<unsigned>(m1) << 4) |
                              (static_cast<unsigned>(m2) << 8) |
                              (static_cast<unsigned>(m3) << 12);
        out[i / 8] = static_cast<std::uint8_t>(bits);
        out[i / 8 + 1] = static_cast<std::uint8_t>(bits >> 8);
    }
#else
    // Word-wide body: build 64 sign bits in a register, store as 8
    // bytes. The bit build is branch-free; byte extraction by shift
    // keeps the layout identical on any endian.
    for (; i + 64 <= n; i += 64) {
        std::uint64_t bits = 0;
        for (std::size_t j = 0; j < 64; ++j)
            bits |= static_cast<std::uint64_t>(v[i + j] >= 0.0f) << j;
        std::uint8_t *o = out.data() + i / 8;
        for (std::size_t b = 0; b < 8; ++b)
            o[b] = static_cast<std::uint8_t>(bits >> (8 * b));
    }
#endif

    // Ragged tail: whole bytes first, then the final partial byte.
    for (; i < n; i += 8) {
        std::uint8_t byte = 0;
        const std::size_t m = n - i < 8 ? n - i : 8;
        for (std::size_t j = 0; j < m; ++j)
            byte |= static_cast<std::uint8_t>(
                static_cast<unsigned>(v[i + j] >= 0.0f) << j);
        out[i / 8] = byte;
    }
}

void
unpackSigns(std::span<const std::uint8_t> packed, std::size_t n,
            std::span<float> out)
{
    ROG_ASSERT(packed.size() == packedBytes(n) && out.size() == n,
               "unpackSigns size mismatch");
    const std::uint8_t *p = packed.data();
    float *o = out.data();
    const UnpackTable &lut = unpackTable();
    std::size_t i = 0;

    for (; i + 8 <= n; i += 8)
        std::memcpy(o + i, lut.rows[p[i / 8]], 8 * sizeof(float));

    for (; i < n; ++i)
        o[i] = (p[i / 8] & (1u << (i % 8))) != 0 ? 1.0f : -1.0f;
}

void
packSignsRef(std::span<const float> values, std::span<std::uint8_t> out)
{
    ROG_ASSERT(out.size() == packedBytes(values.size()),
               "packSigns output size mismatch");
    for (auto &b : out)
        b = 0;
    for (std::size_t i = 0; i < values.size(); ++i)
        if (values[i] >= 0.0f)
            out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
}

void
unpackSignsRef(std::span<const std::uint8_t> packed, std::size_t n,
               std::span<float> out)
{
    ROG_ASSERT(packed.size() == packedBytes(n) && out.size() == n,
               "unpackSigns size mismatch");
    for (std::size_t i = 0; i < n; ++i) {
        const bool pos = packed[i / 8] & (1u << (i % 8));
        out[i] = pos ? 1.0f : -1.0f;
    }
}

} // namespace compress
} // namespace rog
