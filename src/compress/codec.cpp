#include "compress/codec.hpp"

#include <algorithm>
#include <cmath>

#include "common/buffer_pool.hpp"
#include "common/logging.hpp"
#include "compress/packbits.hpp"

namespace rog {
namespace compress {

OneBitChunkStats
onebitTranscodeFused(std::span<float> residual,
                     std::span<const float> grad, std::span<float> out,
                     std::span<std::uint8_t> packed)
{
    const std::size_t n = grad.size();
    ROG_ASSERT(residual.size() == n && out.size() == n,
               "onebit kernel span size mismatch");
    ROG_ASSERT(packed.size() == packedBytes(n),
               "onebit kernel packed scratch size mismatch");

    float *res = residual.data();
    const float *g = grad.data();

    // Sweep 1 (the fusion): e = res + grad, scale and importance
    // accumulators, and the wire sign bits — one pass over the row
    // instead of the reference's accumulate + pack + unpack chain.
    // The float accumulation order is the reference's (sequential in
    // i), which keeps the scale bitwise identical; the sign predicate
    // e >= 0 is packSigns'.
    float scale = 0.0f;
    float sum_abs_grad = 0.0f;
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        std::uint64_t bits = 0;
        for (std::size_t j = 0; j < 64; ++j) {
            const float e = res[i + j] + g[i + j];
            res[i + j] = e;
            scale += std::fabs(e);
            sum_abs_grad += std::fabs(g[i + j]);
            bits |= static_cast<std::uint64_t>(e >= 0.0f) << j;
        }
        std::uint8_t *o = packed.data() + i / 8;
        for (std::size_t b = 0; b < 8; ++b)
            o[b] = static_cast<std::uint8_t>(bits >> (8 * b));
    }
    for (; i < n; i += 8) {
        std::uint8_t byte = 0;
        const std::size_t m = n - i < 8 ? n - i : 8;
        for (std::size_t j = 0; j < m; ++j) {
            const float e = res[i + j] + g[i + j];
            res[i + j] = e;
            scale += std::fabs(e);
            sum_abs_grad += std::fabs(g[i + j]);
            byte |= static_cast<std::uint8_t>(
                static_cast<unsigned>(e >= 0.0f) << j);
        }
        packed[i / 8] = byte;
    }
    scale /= static_cast<float>(n);

    // Sweep 2: quantize and fold the error back. Reading the residual
    // sign directly is exact: unpack maps bit -> ±1.0f and
    // scale * ±1.0f == ±scale in IEEE arithmetic, so skipping the
    // unpack round-trip changes nothing, bit for bit.
    for (std::size_t k = 0; k < n; ++k) {
        const float q = res[k] >= 0.0f ? scale : -scale;
        out[k] = q;
        res[k] -= q;
    }

    OneBitChunkStats stats;
    stats.scale = scale;
    stats.sum_abs_grad = sum_abs_grad;
    return stats;
}

OneBitChunkStats
onebitTranscodeRef(std::span<float> residual, std::span<const float> grad,
                   std::span<float> out, std::span<std::uint8_t> packed)
{
    const std::size_t n = grad.size();
    ROG_ASSERT(residual.size() == n && out.size() == n,
               "onebit kernel span size mismatch");
    ROG_ASSERT(packed.size() == packedBytes(n),
               "onebit kernel packed scratch size mismatch");

    float *res = residual.data();

    // The seed pipeline, pass for pass: e = grad + residual and
    // scale = mean(|e|) over the chunk ...
    float scale = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        res[i] += grad[i];
        scale += std::fabs(res[i]);
    }
    scale /= static_cast<float>(n);

    // ... then the real wire path: pack sign bits, then unpack, so the
    // decoded value is exactly what a receiver would reconstruct ...
    packSignsRef(residual, packed);
    std::vector<float> signs(n);
    unpackSignsRef(packed, n, signs);

    // ... then quantize with error compensation for the next round.
    for (std::size_t i = 0; i < n; ++i) {
        const float q = scale * signs[i];
        out[i] = q;
        res[i] -= q;
    }

    // The importance magnitude the fused kernel folds into its sweep
    // is a separate pass here — that is the point of the comparison.
    float sum_abs_grad = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        sum_abs_grad += std::fabs(grad[i]);

    OneBitChunkStats stats;
    stats.scale = scale;
    stats.sum_abs_grad = sum_abs_grad;
    return stats;
}

void
IdentityCodec::transcode(std::size_t, std::size_t block_width,
                         std::size_t offset, std::span<const float> grad,
                         std::span<float> out)
{
    ROG_ASSERT(grad.size() == out.size(), "codec chunk size mismatch");
    ROG_ASSERT(offset + grad.size() <= block_width,
               "codec chunk exceeds block");
    for (std::size_t i = 0; i < grad.size(); ++i)
        out[i] = grad[i];
}

double
IdentityCodec::payloadBytes(std::size_t width) const
{
    return 4.0 * static_cast<double>(width);
}

void
Codec::prepare(std::size_t, std::size_t)
{
    // Stateless by default.
}

void
OneBitCodec::prepare(std::size_t block, std::size_t block_width)
{
    blockFor(block, block_width);
}

OneBitCodec::BlockState &
OneBitCodec::blockFor(std::size_t block, std::size_t block_width)
{
    // find-first: after prepare() the lookup is read-only, so
    // concurrent transcodes of distinct prepared blocks never touch
    // the map structure.
    auto it = blocks_.find(block);
    if (it == blocks_.end()) {
        it = blocks_.emplace(block, BlockState{}).first;
        it->second.residual.assign(block_width, 0.0f);
    }
    ROG_ASSERT(it->second.residual.size() == block_width,
               "block width changed between calls");
    return it->second;
}

void
TopKCodec::prepare(std::size_t block, std::size_t block_width)
{
    residualFor(block, block_width);
}

std::vector<float> &
TopKCodec::residualFor(std::size_t block, std::size_t block_width)
{
    // find-first: after prepare() the lookup is read-only, so
    // concurrent transcodes of distinct prepared blocks never touch
    // the map structure.
    auto it = residual_.find(block);
    if (it == residual_.end()) {
        it = residual_
                 .emplace(block, std::vector<float>(block_width, 0.0f))
                 .first;
    }
    ROG_ASSERT(it->second.size() == block_width,
               "block width changed between calls");
    return it->second;
}

void
OneBitCodec::transcode(std::size_t block, std::size_t block_width,
                       std::size_t offset, std::span<const float> grad,
                       std::span<float> out)
{
    ROG_ASSERT(grad.size() == out.size(), "codec chunk size mismatch");
    const std::size_t n = grad.size();
    ROG_ASSERT(offset + n <= block_width, "codec chunk exceeds block");

    BlockState &state = blockFor(block, block_width);

    // Wire-bit scratch leased per call: bounded by the pool's caps,
    // recycled across calls and threads (the former thread_local
    // vectors grew to the largest row ever seen and never shrank).
    auto packed = BufferPool::global().leaseBytes(packedBytes(n));

    const auto stats = onebitTranscodeFused(
        {state.residual.data() + offset, n}, grad, out, packed.span());
    state.last_sum_abs_grad = static_cast<double>(stats.sum_abs_grad);
}

double
OneBitCodec::payloadBytes(std::size_t width) const
{
    // Packed sign bits + one float32 scale.
    return static_cast<double>(packedBytes(width)) + 4.0;
}

double
OneBitCodec::lastTranscodeMagnitude(std::size_t block) const
{
    auto it = blocks_.find(block);
    return it == blocks_.end() ? 0.0 : it->second.last_sum_abs_grad;
}

double
OneBitCodec::residualMeanAbs(std::size_t block) const
{
    auto it = blocks_.find(block);
    if (it == blocks_.end() || it->second.residual.empty())
        return 0.0;
    double s = 0.0;
    for (float v : it->second.residual)
        s += std::fabs(v);
    return s / static_cast<double>(it->second.residual.size());
}

TopKCodec::TopKCodec(double keep_fraction)
    : keep_fraction_(keep_fraction)
{
    ROG_ASSERT(keep_fraction > 0.0 && keep_fraction <= 1.0,
               "top-k keep fraction must be in (0, 1]");
}

void
TopKCodec::transcode(std::size_t block, std::size_t block_width,
                     std::size_t offset, std::span<const float> grad,
                     std::span<float> out)
{
    ROG_ASSERT(grad.size() == out.size(), "codec chunk size mismatch");
    const std::size_t n = grad.size();
    ROG_ASSERT(offset + n <= block_width, "codec chunk exceeds block");

    auto &res = residualFor(block, block_width);

    for (std::size_t i = 0; i < n; ++i)
        res[offset + i] += grad[i];

    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(keep_fraction_ * static_cast<double>(n))));

    // Select the `keep` largest-magnitude positions of this chunk.
    // Selection scratch is leased per call so distinct blocks can
    // transcode concurrently without per-thread high-water memory.
    auto order = BufferPool::global().leaseIndices(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    std::partial_sort(order.data(),
                      order.data() + static_cast<std::ptrdiff_t>(keep),
                      order.data() + n,
                      [&](std::size_t a, std::size_t b) {
                          return std::fabs(res[offset + a]) >
                                 std::fabs(res[offset + b]);
                      });

    for (std::size_t i = 0; i < n; ++i)
        out[i] = 0.0f;
    for (std::size_t k = 0; k < keep; ++k) {
        const std::size_t i = order[k];
        out[i] = res[offset + i];
        res[offset + i] = 0.0f; // exact transmission: no residual left.
    }
}

double
TopKCodec::payloadBytes(std::size_t width) const
{
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(keep_fraction_ * static_cast<double>(width))));
    // Per surviving element: 4-byte index + 4-byte float32 value.
    return 8.0 * static_cast<double>(keep);
}

std::unique_ptr<Codec>
makeCodec(const std::string &name)
{
    if (name == "identity")
        return std::make_unique<IdentityCodec>();
    if (name == "onebit")
        return std::make_unique<OneBitCodec>();
    if (name == "topk")
        return std::make_unique<TopKCodec>();
    ROG_FATAL("unknown codec: ", name);
}

} // namespace compress
} // namespace rog
