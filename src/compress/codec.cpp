#include "compress/codec.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "compress/packbits.hpp"

namespace rog {
namespace compress {

void
IdentityCodec::transcode(std::size_t, std::size_t block_width,
                         std::size_t offset, std::span<const float> grad,
                         std::span<float> out)
{
    ROG_ASSERT(grad.size() == out.size(), "codec chunk size mismatch");
    ROG_ASSERT(offset + grad.size() <= block_width,
               "codec chunk exceeds block");
    for (std::size_t i = 0; i < grad.size(); ++i)
        out[i] = grad[i];
}

double
IdentityCodec::payloadBytes(std::size_t width) const
{
    return 4.0 * static_cast<double>(width);
}

void
OneBitCodec::transcode(std::size_t block, std::size_t block_width,
                       std::size_t offset, std::span<const float> grad,
                       std::span<float> out)
{
    ROG_ASSERT(grad.size() == out.size(), "codec chunk size mismatch");
    const std::size_t n = grad.size();
    ROG_ASSERT(offset + n <= block_width, "codec chunk exceeds block");

    auto &res = residual_[block];
    if (res.empty())
        res.assign(block_width, 0.0f);
    ROG_ASSERT(res.size() == block_width,
               "block width changed between calls");

    // e = grad + residual; scale = mean(|e|) over the chunk.
    float scale = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        res[offset + i] += grad[i];
        scale += std::fabs(res[offset + i]);
    }
    scale /= static_cast<float>(n);

    // Run the real wire path: pack sign bits, then unpack, so the
    // decoded value is exactly what a receiver would reconstruct.
    packed_scratch_.resize(packedBytes(n));
    sign_scratch_.resize(n);
    packSigns({res.data() + offset, n}, packed_scratch_);
    unpackSigns(packed_scratch_, n, sign_scratch_);

    for (std::size_t i = 0; i < n; ++i) {
        const float q = scale * sign_scratch_[i];
        out[i] = q;
        res[offset + i] -= q; // error compensation for the next round.
    }
}

double
OneBitCodec::payloadBytes(std::size_t width) const
{
    // Packed sign bits + one float32 scale.
    return static_cast<double>(packedBytes(width)) + 4.0;
}

double
OneBitCodec::residualMeanAbs(std::size_t block) const
{
    auto it = residual_.find(block);
    if (it == residual_.end() || it->second.empty())
        return 0.0;
    double s = 0.0;
    for (float v : it->second)
        s += std::fabs(v);
    return s / static_cast<double>(it->second.size());
}

TopKCodec::TopKCodec(double keep_fraction)
    : keep_fraction_(keep_fraction)
{
    ROG_ASSERT(keep_fraction > 0.0 && keep_fraction <= 1.0,
               "top-k keep fraction must be in (0, 1]");
}

void
TopKCodec::transcode(std::size_t block, std::size_t block_width,
                     std::size_t offset, std::span<const float> grad,
                     std::span<float> out)
{
    ROG_ASSERT(grad.size() == out.size(), "codec chunk size mismatch");
    const std::size_t n = grad.size();
    ROG_ASSERT(offset + n <= block_width, "codec chunk exceeds block");

    auto &res = residual_[block];
    if (res.empty())
        res.assign(block_width, 0.0f);
    ROG_ASSERT(res.size() == block_width,
               "block width changed between calls");

    for (std::size_t i = 0; i < n; ++i)
        res[offset + i] += grad[i];

    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(keep_fraction_ * static_cast<double>(n))));

    // Select the `keep` largest-magnitude positions of this chunk.
    order_scratch_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        order_scratch_[i] = i;
    std::partial_sort(order_scratch_.begin(),
                      order_scratch_.begin() +
                          static_cast<std::ptrdiff_t>(keep),
                      order_scratch_.end(),
                      [&](std::size_t a, std::size_t b) {
                          return std::fabs(res[offset + a]) >
                                 std::fabs(res[offset + b]);
                      });

    for (std::size_t i = 0; i < n; ++i)
        out[i] = 0.0f;
    for (std::size_t k = 0; k < keep; ++k) {
        const std::size_t i = order_scratch_[k];
        out[i] = res[offset + i];
        res[offset + i] = 0.0f; // exact transmission: no residual left.
    }
}

double
TopKCodec::payloadBytes(std::size_t width) const
{
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(keep_fraction_ * static_cast<double>(width))));
    // Per surviving element: 4-byte index + 4-byte float32 value.
    return 8.0 * static_cast<double>(keep);
}

std::unique_ptr<Codec>
makeCodec(const std::string &name)
{
    if (name == "identity")
        return std::make_unique<IdentityCodec>();
    if (name == "onebit")
        return std::make_unique<OneBitCodec>();
    if (name == "topk")
        return std::make_unique<TopKCodec>();
    ROG_FATAL("unknown codec: ", name);
}

} // namespace compress
} // namespace rog
