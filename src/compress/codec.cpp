#include "compress/codec.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "compress/packbits.hpp"

namespace rog {
namespace compress {

void
IdentityCodec::transcode(std::size_t, std::size_t block_width,
                         std::size_t offset, std::span<const float> grad,
                         std::span<float> out)
{
    ROG_ASSERT(grad.size() == out.size(), "codec chunk size mismatch");
    ROG_ASSERT(offset + grad.size() <= block_width,
               "codec chunk exceeds block");
    for (std::size_t i = 0; i < grad.size(); ++i)
        out[i] = grad[i];
}

double
IdentityCodec::payloadBytes(std::size_t width) const
{
    return 4.0 * static_cast<double>(width);
}

void
Codec::prepare(std::size_t, std::size_t)
{
    // Stateless by default.
}

void
OneBitCodec::prepare(std::size_t block, std::size_t block_width)
{
    residualFor(block, block_width);
}

std::vector<float> &
OneBitCodec::residualFor(std::size_t block, std::size_t block_width)
{
    // find-first: after prepare() the lookup is read-only, so
    // concurrent transcodes of distinct prepared blocks never touch
    // the map structure.
    auto it = residual_.find(block);
    if (it == residual_.end()) {
        it = residual_
                 .emplace(block, std::vector<float>(block_width, 0.0f))
                 .first;
    }
    ROG_ASSERT(it->second.size() == block_width,
               "block width changed between calls");
    return it->second;
}

void
TopKCodec::prepare(std::size_t block, std::size_t block_width)
{
    residualFor(block, block_width);
}

std::vector<float> &
TopKCodec::residualFor(std::size_t block, std::size_t block_width)
{
    // find-first: after prepare() the lookup is read-only, so
    // concurrent transcodes of distinct prepared blocks never touch
    // the map structure.
    auto it = residual_.find(block);
    if (it == residual_.end()) {
        it = residual_
                 .emplace(block, std::vector<float>(block_width, 0.0f))
                 .first;
    }
    ROG_ASSERT(it->second.size() == block_width,
               "block width changed between calls");
    return it->second;
}

void
OneBitCodec::transcode(std::size_t block, std::size_t block_width,
                       std::size_t offset, std::span<const float> grad,
                       std::span<float> out)
{
    ROG_ASSERT(grad.size() == out.size(), "codec chunk size mismatch");
    const std::size_t n = grad.size();
    ROG_ASSERT(offset + n <= block_width, "codec chunk exceeds block");

    auto &res = residualFor(block, block_width);

    // e = grad + residual; scale = mean(|e|) over the chunk.
    float scale = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        res[offset + i] += grad[i];
        scale += std::fabs(res[offset + i]);
    }
    scale /= static_cast<float>(n);

    // Run the real wire path: pack sign bits, then unpack, so the
    // decoded value is exactly what a receiver would reconstruct.
    // Scratch is thread-local so distinct blocks can transcode
    // concurrently (see the threading note in the header).
    thread_local std::vector<std::uint8_t> packed;
    thread_local std::vector<float> signs;
    packed.resize(packedBytes(n));
    signs.resize(n);
    packSigns({res.data() + offset, n}, packed);
    unpackSigns(packed, n, signs);

    for (std::size_t i = 0; i < n; ++i) {
        const float q = scale * signs[i];
        out[i] = q;
        res[offset + i] -= q; // error compensation for the next round.
    }
}

double
OneBitCodec::payloadBytes(std::size_t width) const
{
    // Packed sign bits + one float32 scale.
    return static_cast<double>(packedBytes(width)) + 4.0;
}

double
OneBitCodec::residualMeanAbs(std::size_t block) const
{
    auto it = residual_.find(block);
    if (it == residual_.end() || it->second.empty())
        return 0.0;
    double s = 0.0;
    for (float v : it->second)
        s += std::fabs(v);
    return s / static_cast<double>(it->second.size());
}

TopKCodec::TopKCodec(double keep_fraction)
    : keep_fraction_(keep_fraction)
{
    ROG_ASSERT(keep_fraction > 0.0 && keep_fraction <= 1.0,
               "top-k keep fraction must be in (0, 1]");
}

void
TopKCodec::transcode(std::size_t block, std::size_t block_width,
                     std::size_t offset, std::span<const float> grad,
                     std::span<float> out)
{
    ROG_ASSERT(grad.size() == out.size(), "codec chunk size mismatch");
    const std::size_t n = grad.size();
    ROG_ASSERT(offset + n <= block_width, "codec chunk exceeds block");

    auto &res = residualFor(block, block_width);

    for (std::size_t i = 0; i < n; ++i)
        res[offset + i] += grad[i];

    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(keep_fraction_ * static_cast<double>(n))));

    // Select the `keep` largest-magnitude positions of this chunk.
    // Thread-local so distinct blocks can transcode concurrently.
    thread_local std::vector<std::size_t> order;
    order.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(keep),
                      order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return std::fabs(res[offset + a]) >
                                 std::fabs(res[offset + b]);
                      });

    for (std::size_t i = 0; i < n; ++i)
        out[i] = 0.0f;
    for (std::size_t k = 0; k < keep; ++k) {
        const std::size_t i = order[k];
        out[i] = res[offset + i];
        res[offset + i] = 0.0f; // exact transmission: no residual left.
    }
}

double
TopKCodec::payloadBytes(std::size_t width) const
{
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(keep_fraction_ * static_cast<double>(width))));
    // Per surviving element: 4-byte index + 4-byte float32 value.
    return 8.0 * static_cast<double>(keep);
}

std::unique_ptr<Codec>
makeCodec(const std::string &name)
{
    if (name == "identity")
        return std::make_unique<IdentityCodec>();
    if (name == "onebit")
        return std::make_unique<OneBitCodec>();
    if (name == "topk")
        return std::make_unique<TopKCodec>();
    ROG_FATAL("unknown codec: ", name);
}

} // namespace compress
} // namespace rog
