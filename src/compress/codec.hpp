/**
 * @file
 * Gradient row codecs.
 *
 * The paper compresses gradients with the lossless one-bit scheme of
 * [22]: values quantize to sign * mean(|.|) per block, the lost
 * information is carried forward in an error-compensation residual,
 * and the sign bits are packed (packbits) for the wire. A codec here
 * performs encode+decode in one step — in simulation the sender and
 * receiver share an address space — and reports the wire size the
 * channel must carry.
 *
 * Codecs are stateful per (direction, peer): the error residual of the
 * worker->server push must not mix with the server->worker pull, so
 * each endpoint owns its own instance.
 *
 * Threading: distinct *blocks* of one codec may be transcoded
 * concurrently once prepare() has created their state (scratch
 * buffers are thread-local); the same block must never be transcoded
 * by two threads at once — its residual is a sequential stream.
 */
#ifndef ROG_COMPRESS_CODEC_HPP
#define ROG_COMPRESS_CODEC_HPP

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace rog {
namespace compress {

/** Stateful gradient-block encoder/decoder. */
class Codec
{
  public:
    virtual ~Codec() = default;

    /**
     * Encode the sub-range [offset, offset + grad.size()) of gradient
     * block @p block and immediately decode into @p out (what the
     * receiver reconstructs). The block is a compression unit — in
     * this library always one parameter-matrix row of @p block_width
     * elements, independent of the *transmission* granularity. Any
     * quantization error is retained internally per block element
     * (error compensation) and folded into the next call covering it.
     *
     * @pre offset + grad.size() <= block_width
     * @pre grad.size() == out.size()
     * @pre block_width is stable across calls for the same block.
     */
    virtual void transcode(std::size_t block, std::size_t block_width,
                           std::size_t offset,
                           std::span<const float> grad,
                           std::span<float> out) = 0;

    /**
     * Pre-create any per-block state (e.g. the error residual) for
     * @p block. Calling transcode without prepare still works on a
     * single thread; *concurrent* transcodes of distinct blocks are
     * only safe after every involved block has been prepared, because
     * lazy creation would mutate the shared block map mid-flight.
     * Default: no per-block state, no-op.
     */
    virtual void prepare(std::size_t block, std::size_t block_width);

    /**
     * Convenience: transcode a whole block at once.
     * @pre grad.size() == out.size()
     */
    void
    transcodeRow(std::size_t block, std::span<const float> grad,
                 std::span<float> out)
    {
        transcode(block, grad.size(), 0, grad, out);
    }

    /** Wire payload bytes for a transmitted chunk of @p width
     *  elements (each chunk carries its own scale where needed). */
    virtual double payloadBytes(std::size_t width) const = 0;

    /** Codec name for logs and reports. */
    virtual std::string name() const = 0;
};

/** No compression: float32 on the wire, zero residual. */
class IdentityCodec : public Codec
{
  public:
    void transcode(std::size_t block, std::size_t block_width,
                   std::size_t offset, std::span<const float> grad,
                   std::span<float> out) override;
    double payloadBytes(std::size_t width) const override;
    std::string name() const override { return "identity"; }
};

/**
 * One-bit compression with error compensation [22]: per transmitted
 * chunk of a block, q = mean(|e|) * sign(e) where e = grad + residual,
 * and residual' = e - q. The wire carries one sign bit per element
 * (packed) plus a 4-byte float scale per chunk.
 */
class OneBitCodec : public Codec
{
  public:
    void transcode(std::size_t block, std::size_t block_width,
                   std::size_t offset, std::span<const float> grad,
                   std::span<float> out) override;
    void prepare(std::size_t block, std::size_t block_width) override;
    double payloadBytes(std::size_t width) const override;
    std::string name() const override { return "onebit"; }

    /** Residual magnitude for a block (diagnostics/tests). */
    double residualMeanAbs(std::size_t block) const;

  private:
    std::vector<float> &residualFor(std::size_t block,
                                    std::size_t block_width);

    std::unordered_map<std::size_t, std::vector<float>> residual_;
};

/**
 * Top-k sparsification with error compensation (the "deep gradient
 * compression" family [38] the paper contrasts with one-bit): only the
 * k largest-magnitude elements of each chunk go on the wire (index +
 * float32 value each), the rest accumulate in the residual. More
 * aggressive than one-bit for very sparse gradients, but the wire cost
 * per surviving element is 8 bytes, so the break-even depends on k.
 */
class TopKCodec : public Codec
{
  public:
    /** @param keep_fraction fraction of each chunk kept, in (0, 1]. */
    explicit TopKCodec(double keep_fraction = 0.1);

    void transcode(std::size_t block, std::size_t block_width,
                   std::size_t offset, std::span<const float> grad,
                   std::span<float> out) override;
    void prepare(std::size_t block, std::size_t block_width) override;
    double payloadBytes(std::size_t width) const override;
    std::string name() const override { return "topk"; }

    double keepFraction() const { return keep_fraction_; }

  private:
    std::vector<float> &residualFor(std::size_t block,
                                    std::size_t block_width);

    double keep_fraction_;
    std::unordered_map<std::size_t, std::vector<float>> residual_;
};

/** Factory by name ("identity" | "onebit" | "topk"). */
std::unique_ptr<Codec> makeCodec(const std::string &name);

} // namespace compress
} // namespace rog

#endif // ROG_COMPRESS_CODEC_HPP
