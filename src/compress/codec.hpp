/**
 * @file
 * Gradient row codecs.
 *
 * The paper compresses gradients with the lossless one-bit scheme of
 * [22]: values quantize to sign * mean(|.|) per block, the lost
 * information is carried forward in an error-compensation residual,
 * and the sign bits are packed (packbits) for the wire. A codec here
 * performs encode+decode in one step — in simulation the sender and
 * receiver share an address space — and reports the wire size the
 * channel must carry.
 *
 * Codecs are stateful per (direction, peer): the error residual of the
 * worker->server push must not mix with the server->worker pull, so
 * each endpoint owns its own instance.
 *
 * Threading: distinct *blocks* of one codec may be transcoded
 * concurrently once prepare() has created their state (scratch
 * buffers are leased per call from the shared BufferPool); the same
 * block must never be transcoded by two threads at once — its residual
 * is a sequential stream.
 *
 * Kernels: the one-bit hot path is the *fused* kernel
 * (onebitTranscodeFused) — residual update, scale accumulation, sign
 * extraction into packed wire bits, and the importance magnitude of
 * the raw gradient all happen in one sweep, with the quantize/
 * error-feedback sweep reading the residual signs directly instead of
 * round-tripping through unpack. The seed's four-pass pipeline is kept
 * verbatim as onebitTranscodeRef: the equivalence oracle and the bench
 * baseline. Both produce bitwise-identical out / residual / packed
 * bits (same sequential float accumulation order, same `>= 0`
 * predicate, and scale * ±1.0f is exact in IEEE arithmetic).
 */
#ifndef ROG_COMPRESS_CODEC_HPP
#define ROG_COMPRESS_CODEC_HPP

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace rog {
namespace compress {

/** By-products of a one-bit transcode over one chunk. */
struct OneBitChunkStats
{
    /** mean(|residual + grad|) — the scale the chunk ships. */
    float scale = 0.0f;

    /**
     * sum(|grad|) of the raw chunk input: the numerator of the
     * importance-metric magnitude term (core/importance), measured in
     * the same sweep instead of a separate meanAbs pass.
     */
    float sum_abs_grad = 0.0f;
};

/**
 * Fused single-pass one-bit kernel. Updates @p residual in place
 * (res += grad, then res -= q), writes the reconstruction into @p out
 * and the wire sign bits into @p packed.
 *
 * @pre residual.size() == grad.size() == out.size()
 * @pre packed.size() == packedBytes(grad.size())
 */
OneBitChunkStats onebitTranscodeFused(std::span<float> residual,
                                      std::span<const float> grad,
                                      std::span<float> out,
                                      std::span<std::uint8_t> packed);

/**
 * Reference one-bit kernel: the seed's separate passes (accumulate +
 * scale, packSignsRef, unpackSignsRef, quantize) with fresh scratch
 * allocations — the fuzz oracle and the bench baseline. Identical
 * outputs to the fused kernel, bit for bit.
 */
OneBitChunkStats onebitTranscodeRef(std::span<float> residual,
                                    std::span<const float> grad,
                                    std::span<float> out,
                                    std::span<std::uint8_t> packed);

/** Stateful gradient-block encoder/decoder. */
class Codec
{
  public:
    virtual ~Codec() = default;

    /**
     * Encode the sub-range [offset, offset + grad.size()) of gradient
     * block @p block and immediately decode into @p out (what the
     * receiver reconstructs). The block is a compression unit — in
     * this library always one parameter-matrix row of @p block_width
     * elements, independent of the *transmission* granularity. Any
     * quantization error is retained internally per block element
     * (error compensation) and folded into the next call covering it.
     *
     * @pre offset + grad.size() <= block_width
     * @pre grad.size() == out.size()
     * @pre block_width is stable across calls for the same block.
     */
    virtual void transcode(std::size_t block, std::size_t block_width,
                           std::size_t offset,
                           std::span<const float> grad,
                           std::span<float> out) = 0;

    /**
     * Pre-create any per-block state (e.g. the error residual) for
     * @p block. Calling transcode without prepare still works on a
     * single thread; *concurrent* transcodes of distinct blocks are
     * only safe after every involved block has been prepared, because
     * lazy creation would mutate the shared block map mid-flight.
     * Default: no per-block state, no-op.
     */
    virtual void prepare(std::size_t block, std::size_t block_width);

    /**
     * Convenience: transcode a whole block at once.
     * @pre grad.size() == out.size()
     */
    void
    transcodeRow(std::size_t block, std::span<const float> grad,
                 std::span<float> out)
    {
        transcode(block, grad.size(), 0, grad, out);
    }

    /**
     * sum(|grad|) observed by the most recent transcode covering
     * @p block, when the codec measures it as a transcode by-product
     * (one-bit does, in its fused sweep); 0.0 otherwise. Safe to read
     * after the parallel transcode region that produced it.
     */
    virtual double
    lastTranscodeMagnitude(std::size_t block) const
    {
        (void)block;
        return 0.0;
    }

    /** Wire payload bytes for a transmitted chunk of @p width
     *  elements (each chunk carries its own scale where needed). */
    virtual double payloadBytes(std::size_t width) const = 0;

    /** Codec name for logs and reports. */
    virtual std::string name() const = 0;
};

/** No compression: float32 on the wire, zero residual. */
class IdentityCodec : public Codec
{
  public:
    void transcode(std::size_t block, std::size_t block_width,
                   std::size_t offset, std::span<const float> grad,
                   std::span<float> out) override;
    double payloadBytes(std::size_t width) const override;
    std::string name() const override { return "identity"; }
};

/**
 * One-bit compression with error compensation [22]: per transmitted
 * chunk of a block, q = mean(|e|) * sign(e) where e = grad + residual,
 * and residual' = e - q. The wire carries one sign bit per element
 * (packed) plus a 4-byte float scale per chunk.
 */
class OneBitCodec : public Codec
{
  public:
    void transcode(std::size_t block, std::size_t block_width,
                   std::size_t offset, std::span<const float> grad,
                   std::span<float> out) override;
    void prepare(std::size_t block, std::size_t block_width) override;
    double payloadBytes(std::size_t width) const override;
    std::string name() const override { return "onebit"; }

    double lastTranscodeMagnitude(std::size_t block) const override;

    /** Residual magnitude for a block (diagnostics/tests). */
    double residualMeanAbs(std::size_t block) const;

  private:
    struct BlockState
    {
        std::vector<float> residual;
        double last_sum_abs_grad = 0.0;
    };

    BlockState &blockFor(std::size_t block, std::size_t block_width);

    std::unordered_map<std::size_t, BlockState> blocks_;
};

/**
 * Top-k sparsification with error compensation (the "deep gradient
 * compression" family [38] the paper contrasts with one-bit): only the
 * k largest-magnitude elements of each chunk go on the wire (index +
 * float32 value each), the rest accumulate in the residual. More
 * aggressive than one-bit for very sparse gradients, but the wire cost
 * per surviving element is 8 bytes, so the break-even depends on k.
 */
class TopKCodec : public Codec
{
  public:
    /** @param keep_fraction fraction of each chunk kept, in (0, 1]. */
    explicit TopKCodec(double keep_fraction = 0.1);

    void transcode(std::size_t block, std::size_t block_width,
                   std::size_t offset, std::span<const float> grad,
                   std::span<float> out) override;
    void prepare(std::size_t block, std::size_t block_width) override;
    double payloadBytes(std::size_t width) const override;
    std::string name() const override { return "topk"; }

    double keepFraction() const { return keep_fraction_; }

  private:
    std::vector<float> &residualFor(std::size_t block,
                                    std::size_t block_width);

    double keep_fraction_;
    std::unordered_map<std::size_t, std::vector<float>> residual_;
};

/** Factory by name ("identity" | "onebit" | "topk"). */
std::unique_ptr<Codec> makeCodec(const std::string &name);

} // namespace compress
} // namespace rog

#endif // ROG_COMPRESS_CODEC_HPP
