/**
 * @file
 * Sign-bit packing (the cupy/numpy `packbits` step of the paper's
 * compression pipeline): one bit per element, eight elements per byte.
 */
#ifndef ROG_COMPRESS_PACKBITS_HPP
#define ROG_COMPRESS_PACKBITS_HPP

#include <cstdint>
#include <span>
#include <vector>

namespace rog {
namespace compress {

/** Bytes needed to hold @p n sign bits. */
std::size_t packedBytes(std::size_t n);

/**
 * Pack the signs of @p values (bit = 1 for >= 0) into @p out.
 * @pre out.size() == packedBytes(values.size())
 */
void packSigns(std::span<const float> values, std::span<std::uint8_t> out);

/**
 * Unpack @p n sign bits into +1 / -1 floats.
 * @pre packed.size() == packedBytes(n), out.size() == n
 */
void unpackSigns(std::span<const std::uint8_t> packed, std::size_t n,
                 std::span<float> out);

} // namespace compress
} // namespace rog

#endif // ROG_COMPRESS_PACKBITS_HPP
