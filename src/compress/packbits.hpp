/**
 * @file
 * Sign-bit packing (the cupy/numpy `packbits` step of the paper's
 * compression pipeline): one bit per element, eight elements per byte.
 *
 * Two implementations of each direction compute the identical bytes:
 * the seed's bit-at-a-time loops (packSignsRef / unpackSignsRef, kept
 * as the fuzz oracle and bench baseline) and vectorized kernels
 * (packSigns / unpackSigns, the hot path). On x86-64 the pack is SSE2
 * movemask — `cmpge(v, 0)` then one MOVMSKPS per four lanes, sixteen
 * sign bits per iteration — with a word-wide 64-bits-per-iteration
 * scalar body everywhere else; the unpack expands eight bits at a time
 * through a 256-entry ±1.0f lookup table built once at first use. The
 * sign predicate is `value >= 0.0f` in every path — so -0.0f packs
 * positive and NaN packs negative either way (cmpge has exactly those
 * semantics) and the fast paths are bitwise interchangeable with the
 * reference.
 */
#ifndef ROG_COMPRESS_PACKBITS_HPP
#define ROG_COMPRESS_PACKBITS_HPP

#include <cstdint>
#include <span>
#include <vector>

namespace rog {
namespace compress {

/** Bytes needed to hold @p n sign bits. */
std::size_t packedBytes(std::size_t n);

/**
 * Pack the signs of @p values (bit = 1 for >= 0) into @p out —
 * SSE2 movemask on x86-64, word-wide scalar elsewhere.
 * @pre out.size() == packedBytes(values.size())
 */
void packSigns(std::span<const float> values, std::span<std::uint8_t> out);

/**
 * Unpack @p n sign bits into +1 / -1 floats, eight bits per lookup.
 * @pre packed.size() == packedBytes(n), out.size() == n
 */
void unpackSigns(std::span<const std::uint8_t> packed, std::size_t n,
                 std::span<float> out);

/** Reference tier of packSigns: the seed's bit-at-a-time loop. */
void packSignsRef(std::span<const float> values,
                  std::span<std::uint8_t> out);

/** Reference tier of unpackSigns: the seed's bit-at-a-time loop. */
void unpackSignsRef(std::span<const std::uint8_t> packed, std::size_t n,
                    std::span<float> out);

} // namespace compress
} // namespace rog

#endif // ROG_COMPRESS_PACKBITS_HPP
