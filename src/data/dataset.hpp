/**
 * @file
 * Dataset containers and minibatch sampling.
 */
#ifndef ROG_DATA_DATASET_HPP
#define ROG_DATA_DATASET_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace rog {
namespace data {

using tensor::Tensor;

/**
 * An in-memory dataset. Classification tasks fill `labels`,
 * regression tasks fill `targets`; exactly one is non-empty.
 */
struct Dataset
{
    Tensor features;                      //!< (n x d) inputs.
    std::vector<std::uint32_t> labels;    //!< classification targets.
    Tensor targets;                       //!< (n x k) regression targets.

    std::size_t size() const { return features.rows(); }
    bool isClassification() const { return !labels.empty(); }
};

/** A minibatch materialized from a dataset. */
struct Batch
{
    Tensor features;
    std::vector<std::uint32_t> labels;
    Tensor targets;
};

/**
 * Samples minibatches from a fixed subset (shard) of a dataset.
 * Sampling is with replacement, matching an online stream of collected
 * data rather than epoch-based sweeps.
 */
class BatchSampler
{
  public:
    /**
     * @param dataset backing data (must outlive the sampler).
     * @param shard indices this worker may draw from. @pre non-empty
     * @param rng sampling stream (forked per worker for determinism).
     */
    BatchSampler(const Dataset &dataset, std::vector<std::size_t> shard,
                 Rng rng);

    /** Draw a minibatch of the given size. @pre batch_size > 0 */
    Batch sample(std::size_t batch_size);

    std::size_t shardSize() const { return shard_.size(); }

  private:
    const Dataset &dataset_;
    std::vector<std::size_t> shard_;
    Rng rng_;
};

} // namespace data
} // namespace rog

#endif // ROG_DATA_DATASET_HPP
