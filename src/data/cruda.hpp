/**
 * @file
 * CRUDA stand-in: coordinated robotic unsupervised domain adaptation.
 *
 * The paper adapts a pretrained ConvMLP on noised Fed-CIFAR100 (fog /
 * brightness shifts generated per DeepTest). Our synthetic equivalent:
 * a multi-class Gaussian-mixture "image feature" task whose *shifted*
 * domain applies a global attenuation + additive structured noise (a
 * linear fog model) to every sample. A model pretrained on the clean
 * domain loses accuracy on the shifted domain and recovers it by online
 * training on shifted samples — the same accuracy-recovery dynamic the
 * paper measures (52.88% degraded, recovering toward ~70%).
 */
#ifndef ROG_DATA_CRUDA_HPP
#define ROG_DATA_CRUDA_HPP

#include <cstdint>

#include "data/dataset.hpp"

namespace rog {

class Rng;

namespace data {

/** Parameters of the synthetic domain-adaptation task. */
struct CrudaConfig
{
    std::size_t input_dim = 32;       //!< feature dimensionality.
    std::size_t classes = 20;         //!< number of object classes.
    std::size_t train_samples = 8000; //!< shifted-domain training pool.
    std::size_t test_samples = 2000;  //!< shifted-domain held-out set.
    float cluster_spread = 0.6f;     //!< within-class noise stddev.
    float fog_attenuation = 0.85f;    //!< multiplicative contrast loss.
    float fog_strength = 0.62f;        //!< additive fog component scale.
    float fog_noise = 0.28f;          //!< extra per-sample noise stddev.
    std::uint64_t seed = 42;
};

/** The clean and shifted domains of one CRUDA task instance. */
struct CrudaTask
{
    Dataset clean_train;   //!< clean-domain data for pretraining.
    Dataset shifted_train; //!< online-collected noised data.
    Dataset shifted_test;  //!< held-out noised data for accuracy.
};

/**
 * Generate a CRUDA task. Class prototypes, fog direction, and all
 * sample noise derive from cfg.seed, so the same config always yields
 * the same task.
 */
CrudaTask makeCrudaTask(const CrudaConfig &cfg);

} // namespace data
} // namespace rog

#endif // ROG_DATA_CRUDA_HPP
