/**
 * @file
 * Non-IID dataset partitioning across workers.
 *
 * The paper partitions Fed-CIFAR100 into unbalanced shards via the
 * Pachinko Allocation Method. We reproduce the unbalanced-label-mix
 * property with the standard Dirichlet partitioner used in the
 * federated-learning literature: per class, a Dirichlet(alpha) draw
 * decides each worker's share of that class's samples. Small alpha →
 * highly skewed (non-IID); large alpha → near-uniform.
 */
#ifndef ROG_DATA_PARTITION_HPP
#define ROG_DATA_PARTITION_HPP

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace rog {

class Rng;

namespace data {

/**
 * Dirichlet non-IID partition of a classification dataset.
 *
 * @param dataset must be a classification dataset.
 * @param workers number of shards. @pre workers > 0
 * @param alpha Dirichlet concentration. @pre alpha > 0
 * @param rng randomness for the class-share draws.
 * @return one index vector per worker; every sample appears exactly
 *         once; no shard is empty (repaired by stealing if needed).
 */
std::vector<std::vector<std::size_t>>
dirichletPartition(const Dataset &dataset, std::size_t workers,
                   double alpha, Rng &rng);

/** Equal-size IID partition (random permutation split). */
std::vector<std::vector<std::size_t>>
iidPartition(std::size_t samples, std::size_t workers, Rng &rng);

/**
 * Label distribution skew of a partition: mean over workers of the
 * total-variation distance between the shard's label histogram and the
 * global histogram. 0 = perfectly IID.
 */
double
partitionSkew(const Dataset &dataset,
              const std::vector<std::vector<std::size_t>> &shards);

} // namespace data
} // namespace rog

#endif // ROG_DATA_PARTITION_HPP
