#include "data/cruda.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace rog {
namespace data {

namespace {

/** Draw class prototypes on a scaled hypersphere so classes are
 *  separable but overlapping under the configured spread. */
tensor::Tensor
makePrototypes(const CrudaConfig &cfg, Rng &rng)
{
    tensor::Tensor protos(cfg.classes, cfg.input_dim);
    for (std::size_t c = 0; c < cfg.classes; ++c) {
        auto row = protos.row(c);
        double norm = 0.0;
        for (auto &v : row) {
            v = static_cast<float>(rng.gaussian());
            norm += static_cast<double>(v) * v;
        }
        const float scale =
            2.0f / static_cast<float>(std::sqrt(norm) + 1e-9);
        for (auto &v : row)
            v *= scale;
    }
    return protos;
}

/** Sample one domain: prototype + spread noise, optionally fogged. */
Dataset
sampleDomain(const CrudaConfig &cfg, const tensor::Tensor &protos,
             const std::vector<float> &fog_dir, bool shifted,
             std::size_t n, Rng &rng)
{
    Dataset d;
    d.features = tensor::Tensor(n, cfg.input_dim);
    d.labels.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c =
            static_cast<std::uint32_t>(rng.uniformInt(cfg.classes));
        d.labels[i] = c;
        auto proto = protos.row(c);
        auto x = d.features.row(i);
        for (std::size_t j = 0; j < cfg.input_dim; ++j) {
            float v = proto[j] +
                static_cast<float>(rng.gaussian(0.0,
                                                cfg.cluster_spread));
            if (shifted) {
                // Fog model: attenuate contrast, add a shared fog
                // component plus extra sensor noise (DeepTest-style
                // fog + brightness shift).
                v = cfg.fog_attenuation * v +
                    cfg.fog_strength * fog_dir[j] +
                    static_cast<float>(rng.gaussian(0.0, cfg.fog_noise));
            }
            x[j] = v;
        }
    }
    return d;
}

} // namespace

CrudaTask
makeCrudaTask(const CrudaConfig &cfg)
{
    ROG_ASSERT(cfg.classes > 1 && cfg.input_dim > 0,
               "invalid CRUDA config");
    Rng rng(cfg.seed);
    const tensor::Tensor protos = makePrototypes(cfg, rng);

    std::vector<float> fog_dir(cfg.input_dim);
    for (auto &v : fog_dir)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));

    CrudaTask task;
    Rng clean_rng = rng.fork();
    Rng shift_train_rng = rng.fork();
    Rng shift_test_rng = rng.fork();
    task.clean_train = sampleDomain(cfg, protos, fog_dir, false,
                                    cfg.train_samples, clean_rng);
    task.shifted_train = sampleDomain(cfg, protos, fog_dir, true,
                                      cfg.train_samples, shift_train_rng);
    task.shifted_test = sampleDomain(cfg, protos, fog_dir, true,
                                     cfg.test_samples, shift_test_rng);
    return task;
}

} // namespace data
} // namespace rog
