/**
 * @file
 * CRIMP stand-in: coordinated robotic implicit mapping and positioning.
 *
 * The paper trains nice-slam on a ScanNet apartment sequence; the
 * metric is trajectory error. Our synthetic equivalent: an analytic
 * 3-D scene (signed-distance field of spheres inside a room box) is
 * sampled along a smooth camera trajectory; each robot receives a
 * contiguous trajectory segment (the paper splits the image sequence
 * the same way) and the team cooperatively regresses the scene SDF.
 * The reported "trajectory error" is the RMSE of the implicit map
 * evaluated at probe points along the trajectory — a pose-conditioned
 * reconstruction error with the same decreasing-over-training shape.
 */
#ifndef ROG_DATA_CRIMP_HPP
#define ROG_DATA_CRIMP_HPP

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace rog {

class Rng;

namespace data {

/** Parameters of the synthetic implicit-mapping task. */
struct CrimpConfig
{
    std::size_t spheres = 6;           //!< scene objects.
    float room_half_extent = 1.0f;     //!< room is [-e, e]^3.
    std::size_t trajectory_poses = 500; //!< camera poses (paper: 500).
    std::size_t samples_per_pose = 24; //!< query points per pose.
    float sample_radius = 0.45f;       //!< sampling ball around a pose.
    std::size_t eval_probes = 2000;    //!< probes for trajectory error.
    std::uint64_t seed = 7;
};

/** Analytic scene: union-of-spheres SDF clipped by the room box. */
class Scene
{
  public:
    /** Generate a random scene from the config. */
    Scene(const CrimpConfig &cfg, Rng &rng);

    /** Signed distance at a point (negative inside an object). */
    float sdf(float x, float y, float z) const;

  private:
    struct Sphere { float cx, cy, cz, r; };
    std::vector<Sphere> spheres_;
    float room_;
};

/** One CRIMP task instance. */
struct CrimpTask
{
    Dataset train;                     //!< (point -> sdf) samples.
    Dataset eval_probes;               //!< trajectory probe points.
    std::vector<std::size_t> pose_of_sample; //!< pose index per sample.
    std::size_t poses = 0;
};

/**
 * Generate a CRIMP task: trajectory, per-pose samples, and evaluation
 * probes, all derived from cfg.seed.
 */
CrimpTask makeCrimpTask(const CrimpConfig &cfg);

/**
 * Split a CRIMP task into per-worker shards of *contiguous* trajectory
 * segments (the paper separates the image sequence into continuous
 * sub-sequences, one per robot, sharing the first frame).
 */
std::vector<std::vector<std::size_t>>
splitTrajectory(const CrimpTask &task, std::size_t workers);

} // namespace data
} // namespace rog

#endif // ROG_DATA_CRIMP_HPP
