#include "data/crimp.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace rog {
namespace data {

Scene::Scene(const CrimpConfig &cfg, Rng &rng) : room_(cfg.room_half_extent)
{
    ROG_ASSERT(cfg.spheres > 0, "scene needs at least one sphere");
    spheres_.reserve(cfg.spheres);
    for (std::size_t i = 0; i < cfg.spheres; ++i) {
        Sphere s;
        s.cx = static_cast<float>(rng.uniform(-0.7 * room_, 0.7 * room_));
        s.cy = static_cast<float>(rng.uniform(-0.7 * room_, 0.7 * room_));
        s.cz = static_cast<float>(rng.uniform(-0.7 * room_, 0.7 * room_));
        s.r = static_cast<float>(rng.uniform(0.12 * room_, 0.3 * room_));
        spheres_.push_back(s);
    }
}

float
Scene::sdf(float x, float y, float z) const
{
    // Union of spheres: min over sphere SDFs.
    float d = 1e9f;
    for (const auto &s : spheres_) {
        const float dx = x - s.cx, dy = y - s.cy, dz = z - s.cz;
        const float dist =
            std::sqrt(dx * dx + dy * dy + dz * dz) - s.r;
        d = std::min(d, dist);
    }
    // Intersect with the room interior (walls are surfaces too).
    const float wall = room_ - std::max({std::fabs(x), std::fabs(y),
                                         std::fabs(z)});
    return std::min(d, wall);
}

namespace {

/** Smooth closed trajectory (Lissajous curve inside the room). */
void
poseAt(double t, float room, float &x, float &y, float &z)
{
    x = 0.65f * room * static_cast<float>(std::sin(2.0 * M_PI * t));
    y = 0.65f * room * static_cast<float>(
        std::sin(4.0 * M_PI * t + 0.7));
    z = 0.3f * room * static_cast<float>(
        std::cos(2.0 * M_PI * t + 0.3));
}

} // namespace

CrimpTask
makeCrimpTask(const CrimpConfig &cfg)
{
    Rng rng(cfg.seed);
    Scene scene(cfg, rng);

    CrimpTask task;
    task.poses = cfg.trajectory_poses;
    const std::size_t n = cfg.trajectory_poses * cfg.samples_per_pose;
    task.train.features = Tensor(n, 3);
    task.train.targets = Tensor(n, 1);
    task.pose_of_sample.resize(n);

    std::size_t k = 0;
    for (std::size_t p = 0; p < cfg.trajectory_poses; ++p) {
        const double t =
            static_cast<double>(p) /
            static_cast<double>(cfg.trajectory_poses);
        float px, py, pz;
        poseAt(t, cfg.room_half_extent, px, py, pz);
        for (std::size_t s = 0; s < cfg.samples_per_pose; ++s, ++k) {
            // Query points in a ball around the pose: what the camera
            // observes locally.
            const float qx = px + static_cast<float>(
                rng.gaussian(0.0, cfg.sample_radius));
            const float qy = py + static_cast<float>(
                rng.gaussian(0.0, cfg.sample_radius));
            const float qz = pz + static_cast<float>(
                rng.gaussian(0.0, cfg.sample_radius));
            auto f = task.train.features.row(k);
            f[0] = qx;
            f[1] = qy;
            f[2] = qz;
            task.train.targets.at(k, 0) = scene.sdf(qx, qy, qz);
            task.pose_of_sample[k] = p;
        }
    }

    // Evaluation probes spread along the whole trajectory.
    task.eval_probes.features = Tensor(cfg.eval_probes, 3);
    task.eval_probes.targets = Tensor(cfg.eval_probes, 1);
    Rng probe_rng = rng.fork();
    for (std::size_t i = 0; i < cfg.eval_probes; ++i) {
        const double t = probe_rng.uniform();
        float px, py, pz;
        poseAt(t, cfg.room_half_extent, px, py, pz);
        const float qx = px + static_cast<float>(
            probe_rng.gaussian(0.0, cfg.sample_radius));
        const float qy = py + static_cast<float>(
            probe_rng.gaussian(0.0, cfg.sample_radius));
        const float qz = pz + static_cast<float>(
            probe_rng.gaussian(0.0, cfg.sample_radius));
        auto f = task.eval_probes.features.row(i);
        f[0] = qx;
        f[1] = qy;
        f[2] = qz;
        task.eval_probes.targets.at(i, 0) = scene.sdf(qx, qy, qz);
    }
    return task;
}

std::vector<std::vector<std::size_t>>
splitTrajectory(const CrimpTask &task, std::size_t workers)
{
    ROG_ASSERT(workers > 0, "need at least one worker");
    std::vector<std::vector<std::size_t>> shards(workers);
    const std::size_t poses_per_worker =
        (task.poses + workers - 1) / workers;
    for (std::size_t i = 0; i < task.pose_of_sample.size(); ++i) {
        std::size_t w = task.pose_of_sample[i] / poses_per_worker;
        w = std::min(w, workers - 1);
        shards[w].push_back(i);
        // The first pose is the shared starting point of mapping and
        // positioning (paper Sec. VI: one image fixed and shared).
        if (task.pose_of_sample[i] == 0) {
            for (std::size_t o = 0; o < workers; ++o)
                if (o != w)
                    shards[o].push_back(i);
        }
    }
    for (auto &s : shards)
        ROG_ASSERT(!s.empty(), "trajectory split produced empty shard");
    return shards;
}

} // namespace data
} // namespace rog
