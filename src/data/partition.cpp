#include "data/partition.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace rog {
namespace data {

std::vector<std::vector<std::size_t>>
dirichletPartition(const Dataset &dataset, std::size_t workers,
                   double alpha, Rng &rng)
{
    ROG_ASSERT(dataset.isClassification(),
               "dirichletPartition needs labels");
    ROG_ASSERT(workers > 0 && alpha > 0.0, "invalid partition params");

    std::uint32_t classes = 0;
    for (auto y : dataset.labels)
        classes = std::max(classes, y + 1);

    // Group sample indices per class, shuffled.
    std::vector<std::vector<std::size_t>> by_class(classes);
    for (std::size_t i = 0; i < dataset.labels.size(); ++i)
        by_class[dataset.labels[i]].push_back(i);
    for (auto &v : by_class)
        rng.shuffle(v);

    std::vector<std::vector<std::size_t>> shards(workers);
    for (std::uint32_t c = 0; c < classes; ++c) {
        const auto share = rng.dirichlet(workers, alpha);
        const std::size_t n = by_class[c].size();
        std::size_t given = 0;
        double acc = 0.0;
        for (std::size_t w = 0; w < workers; ++w) {
            acc += share[w];
            const std::size_t upto = (w + 1 == workers)
                ? n
                : std::min(n, static_cast<std::size_t>(
                      std::floor(acc * static_cast<double>(n))));
            for (; given < upto; ++given)
                shards[w].push_back(by_class[c][given]);
        }
    }

    // Repair empty shards by stealing from the largest one.
    for (auto &shard : shards) {
        if (!shard.empty())
            continue;
        auto largest = std::max_element(
            shards.begin(), shards.end(),
            [](const auto &a, const auto &b) {
                return a.size() < b.size();
            });
        ROG_ASSERT(largest->size() > 1, "not enough samples to repair");
        shard.push_back(largest->back());
        largest->pop_back();
    }
    return shards;
}

std::vector<std::vector<std::size_t>>
iidPartition(std::size_t samples, std::size_t workers, Rng &rng)
{
    ROG_ASSERT(workers > 0 && samples >= workers,
               "invalid iid partition params");
    std::vector<std::size_t> perm(samples);
    for (std::size_t i = 0; i < samples; ++i)
        perm[i] = i;
    rng.shuffle(perm);
    std::vector<std::vector<std::size_t>> shards(workers);
    for (std::size_t i = 0; i < samples; ++i)
        shards[i % workers].push_back(perm[i]);
    return shards;
}

double
partitionSkew(const Dataset &dataset,
              const std::vector<std::vector<std::size_t>> &shards)
{
    ROG_ASSERT(dataset.isClassification(), "partitionSkew needs labels");
    std::uint32_t classes = 0;
    for (auto y : dataset.labels)
        classes = std::max(classes, y + 1);

    std::vector<double> global(classes, 0.0);
    for (auto y : dataset.labels)
        global[y] += 1.0;
    for (auto &v : global)
        v /= static_cast<double>(dataset.labels.size());

    double total = 0.0;
    for (const auto &shard : shards) {
        std::vector<double> hist(classes, 0.0);
        for (auto idx : shard)
            hist[dataset.labels[idx]] += 1.0;
        double tv = 0.0;
        for (std::uint32_t c = 0; c < classes; ++c) {
            const double p = shard.empty()
                ? 0.0
                : hist[c] / static_cast<double>(shard.size());
            tv += std::fabs(p - global[c]);
        }
        total += 0.5 * tv;
    }
    return total / static_cast<double>(shards.size());
}

} // namespace data
} // namespace rog
