#include "data/dataset.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace rog {
namespace data {

BatchSampler::BatchSampler(const Dataset &dataset,
                           std::vector<std::size_t> shard, Rng rng)
    : dataset_(dataset), shard_(std::move(shard)), rng_(rng)
{
    ROG_ASSERT(!shard_.empty(), "sampler shard must be non-empty");
    for (std::size_t idx : shard_)
        ROG_ASSERT(idx < dataset_.size(), "shard index out of range");
}

Batch
BatchSampler::sample(std::size_t batch_size)
{
    ROG_ASSERT(batch_size > 0, "batch size must be positive");
    Batch b;
    const std::size_t d = dataset_.features.cols();
    b.features = Tensor(batch_size, d);
    if (dataset_.isClassification()) {
        b.labels.resize(batch_size);
    } else {
        b.targets = Tensor(batch_size, dataset_.targets.cols());
    }
    for (std::size_t i = 0; i < batch_size; ++i) {
        const std::size_t idx =
            shard_[rng_.uniformInt(shard_.size())];
        auto src = dataset_.features.row(idx);
        auto dst = b.features.row(i);
        for (std::size_t j = 0; j < d; ++j)
            dst[j] = src[j];
        if (dataset_.isClassification()) {
            b.labels[i] = dataset_.labels[idx];
        } else {
            auto tsrc = dataset_.targets.row(idx);
            auto tdst = b.targets.row(i);
            for (std::size_t j = 0; j < tsrc.size(); ++j)
                tdst[j] = tsrc[j];
        }
    }
    return b;
}

} // namespace data
} // namespace rog
