#include "parallel/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.hpp"

namespace rog {
namespace parallel {

namespace {

std::atomic<std::size_t> g_thread_override{0};
std::atomic<bool> g_global_created{false};

// Set while a thread is executing tasks of a pool region. A nested
// run() on such a thread executes inline: chunk boundaries are
// unchanged (they depend only on range and grain), so results stay
// bitwise identical — the inner region just runs on one thread.
thread_local bool t_in_region = false;

} // namespace

ThreadPool::ThreadPool(std::size_t threads) : threads_(threads)
{
    ROG_ASSERT(threads >= 1, "thread pool needs at least the caller");
    workers_.reserve(threads - 1);
    for (std::size_t i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::run(std::size_t tasks, const std::function<void(std::size_t)> &fn)
{
    if (tasks == 0)
        return;
    if (workers_.empty() || tasks == 1 || t_in_region) {
        // Inline fast path: no pool traffic, byte-for-byte the
        // single-threaded library. Also taken for nested regions.
        for (std::size_t i = 0; i < tasks; ++i)
            fn(i);
        return;
    }

    std::unique_lock<std::mutex> lock(mu_);
    ROG_ASSERT(fn_ == nullptr, "thread pool regions must not nest");
    fn_ = &fn;
    task_count_ = tasks;
    next_ = 0;
    pending_ = tasks;
    ++generation_;
    work_cv_.notify_all();

    // The caller claims tasks like any worker.
    t_in_region = true;
    while (next_ < task_count_) {
        const std::size_t idx = next_++;
        lock.unlock();
        fn(idx);
        lock.lock();
        --pending_;
    }
    t_in_region = false;
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    fn_ = nullptr;
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    std::uint64_t seen = 0;
    for (;;) {
        work_cv_.wait(lock, [&] {
            return stop_ || (generation_ != seen && next_ < task_count_);
        });
        if (stop_)
            return;
        seen = generation_;
        t_in_region = true;
        while (fn_ != nullptr && next_ < task_count_) {
            const std::size_t idx = next_++;
            const auto *fn = fn_;
            lock.unlock();
            (*fn)(idx);
            lock.lock();
            if (--pending_ == 0)
                done_cv_.notify_all();
        }
        t_in_region = false;
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(resolveThreads());
    g_global_created.store(true, std::memory_order_relaxed);
    return pool;
}

std::size_t
ThreadPool::resolveThreads()
{
    const std::size_t forced = g_thread_override.load();
    if (forced > 0)
        return forced;
    const char *env = std::getenv("ROG_THREADS");
    if (!env || !*env)
        return 1;
    char *end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 1)
        return 1;
    return static_cast<std::size_t>(v);
}

void
ThreadPool::setThreads(std::size_t threads)
{
    if (g_global_created.load(std::memory_order_relaxed))
        return; // the live pool is never resized.
    g_thread_override.store(threads == 0 ? 1 : threads);
}

} // namespace parallel
} // namespace rog
