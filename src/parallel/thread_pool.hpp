/**
 * @file
 * Fixed-size thread pool for in-process data parallelism.
 *
 * ROG's reproduction is a deterministic discrete-event simulation; the
 * wall-clock hot path (forward/backward kernels, gradient transcodes,
 * per-seed bench replicates) is embarrassingly parallel but must never
 * perturb a replayed timeline. The pool therefore exposes only
 * fork-join regions over *index ranges*: the caller hands out disjoint
 * task indices, every task writes disjoint state, and the region
 * barrier makes the result independent of which OS thread ran which
 * task. Higher-level determinism (fixed chunk boundaries, ordered
 * reductions) lives in parallel_for.hpp.
 *
 * Concurrency is set once per process by the `ROG_THREADS` environment
 * variable (or programmatically before first use); `ROG_THREADS=1`
 * executes every region inline on the caller with no threads spawned,
 * reproducing the single-threaded library exactly.
 */
#ifndef ROG_PARALLEL_THREAD_POOL_HPP
#define ROG_PARALLEL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rog {
namespace parallel {

/**
 * A fixed team of worker threads executing fork-join index regions.
 *
 * `threads` counts the caller: a pool of 4 spawns 3 workers and the
 * calling thread takes part in every region. Regions are blocking —
 * run() returns only after every task index has executed — and
 * non-reentrant (a task must not start another region on the same
 * pool).
 */
class ThreadPool
{
  public:
    /** @param threads total concurrency incl. caller. @pre threads>=1 */
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (worker threads + the caller). */
    std::size_t threads() const { return threads_; }

    /**
     * Execute fn(0), fn(1), ..., fn(tasks - 1), in unspecified order
     * across the team, and return when all have finished. Tasks must
     * touch disjoint state; exceptions escaping @p fn terminate.
     */
    void run(std::size_t tasks, const std::function<void(std::size_t)> &fn);

    /**
     * The process-wide pool, sized by resolveThreads() on first use.
     * Lives until process exit; safe to use from any thread that is
     * not itself a pool worker.
     */
    static ThreadPool &global();

    /**
     * Concurrency the global pool will use: the last setThreads()
     * value, else the ROG_THREADS environment variable, else 1.
     * Invalid/zero values fall back to 1.
     */
    static std::size_t resolveThreads();

    /**
     * Override the global concurrency (benches/tests). Takes effect
     * only before the first global() call; later calls are ignored so
     * a live pool is never resized mid-run.
     */
    static void setThreads(std::size_t threads);

  private:
    void workerLoop();

    const std::size_t threads_;
    std::vector<std::thread> workers_;

    // One region at a time: tasks claim indices via next_ under mu_;
    // generation_ wakes workers for a new region, done_ wakes the
    // caller when the last task of the region retires.
    std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    const std::function<void(std::size_t)> *fn_ = nullptr;
    std::size_t task_count_ = 0;
    std::size_t next_ = 0;
    std::size_t pending_ = 0;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

} // namespace parallel
} // namespace rog

#endif // ROG_PARALLEL_THREAD_POOL_HPP
