/**
 * @file
 * Deterministic data-parallel loops over the global thread pool.
 *
 * The determinism contract (DESIGN.md Sec. 9): the *result* of every
 * parallel region is a pure function of the inputs and the chunking
 * grain — never of ROG_THREADS, scheduling order, or core count.
 *
 *  - Chunk boundaries are fixed by (range, grain) alone. A range of n
 *    elements always splits into ceil(n / grain) chunks at the same
 *    offsets, whether 1 or 64 threads execute them.
 *  - parallelFor chunks write disjoint output; any interleaving of
 *    disjoint writes yields the same memory image.
 *  - parallelReduce computes one partial per fixed chunk and combines
 *    the partials in a fixed left-to-right binary tree over the chunk
 *    index — the float rounding sequence is identical for every thread
 *    count, so reductions are *bitwise* reproducible.
 *
 * With one thread the same chunked code path runs inline on the
 * caller, so ROG_THREADS=1 and ROG_THREADS=64 are byte-identical.
 */
#ifndef ROG_PARALLEL_PARALLEL_FOR_HPP
#define ROG_PARALLEL_PARALLEL_FOR_HPP

#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace rog {
namespace parallel {

/** Default elements-per-chunk for elementwise loops: small enough to
 *  load-balance a big tensor, large enough to amortize dispatch. */
inline constexpr std::size_t kDefaultGrain = 8192;

/** Number of fixed chunks for a range of @p n with grain @p grain. */
inline std::size_t
chunkCount(std::size_t n, std::size_t grain)
{
    if (n == 0)
        return 0;
    const std::size_t g = grain == 0 ? 1 : grain;
    return (n + g - 1) / g;
}

/**
 * Run body(chunk_begin, chunk_end) over [begin, end) split into fixed
 * chunks of @p grain elements (last chunk ragged). Chunks execute
 * concurrently on @p pool (default: the global ROG_THREADS pool); the
 * body must write disjoint state per chunk.
 */
template <typename Body>
void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
            const Body &body, ThreadPool &pool = ThreadPool::global())
{
    if (end <= begin)
        return;
    const std::size_t n = end - begin;
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t chunks = chunkCount(n, g);
    if (chunks == 1) {
        body(begin, end);
        return;
    }
    const std::function<void(std::size_t)> task = [&](std::size_t c) {
        const std::size_t lo = begin + c * g;
        const std::size_t hi = lo + g < end ? lo + g : end;
        body(lo, hi);
    };
    pool.run(chunks, task);
}

/**
 * Reduce [begin, end) deterministically: partial = mapChunk(lo, hi)
 * per fixed chunk, then fold the partials with combine(a, b) in a
 * left-to-right binary tree over chunk order. Returns identity for an
 * empty range. Bitwise independent of thread count.
 */
template <typename T, typename MapChunk, typename Combine>
T
parallelReduce(std::size_t begin, std::size_t end, std::size_t grain,
               T identity, const MapChunk &mapChunk,
               const Combine &combine,
               ThreadPool &pool = ThreadPool::global())
{
    if (end <= begin)
        return identity;
    const std::size_t n = end - begin;
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t chunks = chunkCount(n, g);
    if (chunks == 1)
        return mapChunk(begin, end);

    std::vector<T> partials(chunks, identity);
    const std::function<void(std::size_t)> task = [&](std::size_t c) {
        const std::size_t lo = begin + c * g;
        const std::size_t hi = lo + g < end ? lo + g : end;
        partials[c] = mapChunk(lo, hi);
    };
    pool.run(chunks, task);

    // Ordered pairwise tree: (p0+p1), (p2+p3), ... then recurse. The
    // association depends only on `chunks`, so the float rounding
    // sequence is fixed for a given input size and grain.
    std::size_t width = chunks;
    while (width > 1) {
        const std::size_t half = (width + 1) / 2;
        for (std::size_t i = 0; i + half < width; ++i)
            partials[i] = combine(partials[i], partials[i + half]);
        width = half;
    }
    return partials[0];
}

} // namespace parallel
} // namespace rog

#endif // ROG_PARALLEL_PARALLEL_FOR_HPP
