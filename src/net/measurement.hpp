/**
 * @file
 * Bandwidth measurement: active (iperf-style) and passive (iw-style).
 *
 * The paper measures capacity two ways. Sec. II-B saturates the link
 * with iperf and records achieved throughput every 0.1 s — an *active*
 * probe that consumes the channel. Sec. VI-B instead reads the
 * physical-layer bitrate from `iw` and normalizes it by its average,
 * because active probing "would affect the application traffic and
 * bandwidth" — a *passive* estimate that deviates from the usable
 * application bandwidth. Both are reproduced here against the
 * simulated channel; FLOWN-style schedulers and the Fig. 8 analysis
 * consume the passive estimator.
 */
#ifndef ROG_NET_MEASUREMENT_HPP
#define ROG_NET_MEASUREMENT_HPP

#include <functional>
#include <vector>

#include "common/math_util.hpp"
#include "net/channel.hpp"
#include "sim/process.hpp"

namespace rog {
namespace net {

/** One sample of an active (iperf-style) measurement. */
struct ThroughputSample
{
    double time_s = 0.0;
    double bytes_per_sec = 0.0;
};

/**
 * Saturate a link for a duration and record achieved throughput per
 * interval — iperf over the simulated channel. The probe traffic is
 * real: it contends with any concurrent flows, exactly like running
 * iperf next to the training job.
 *
 * The measurement completes inside the simulation; results are written
 * into @p out as the simulation runs.
 *
 * @param interval_s sampling period (paper: 0.1 s). @pre > 0
 */
sim::Process
measureActiveThroughput(sim::Simulation &sim, Channel &channel,
                        LinkId link, double duration_s,
                        double interval_s,
                        std::vector<ThroughputSample> &out);

/**
 * Passive (iw-style) link estimator: samples the physical capacity of
 * a link without injecting traffic, and reports values normalized by
 * the running average (the paper normalizes iw's bitrate by its
 * average because it "deviates from the actual bandwidth the
 * application could exploit").
 */
class PassiveLinkEstimator
{
  public:
    /**
     * @param channel observed medium (must outlive the estimator).
     * @param ewma_alpha weight for the running average.
     */
    PassiveLinkEstimator(const Channel &channel, LinkId link,
                         double ewma_alpha = 0.05);

    /** Sample the link at time @p t; updates the running average. */
    double sampleAt(double t);

    /** Last raw sample in bytes/sec. */
    double lastRaw() const { return last_raw_; }

    /** Last sample normalized by the running average (1.0 = typical). */
    double lastNormalized() const;

    /** Running average in bytes/sec (0 before the first sample). */
    double runningAverage() const
    {
        return avg_.seeded() ? avg_.value() : 0.0;
    }

  private:
    const Channel &channel_;
    LinkId link_;
    Ewma avg_;
    double last_raw_ = 0.0;
};

} // namespace net
} // namespace rog

#endif // ROG_NET_MEASUREMENT_HPP
