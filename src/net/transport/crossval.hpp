/**
 * @file
 * Cross-validation of the real-socket transport against the DES twin.
 *
 * A real-socket run records a TransportTrace (what the harness sent,
 * what each wire attempt resolved to, what each frame looked like on
 * arrival) plus the structured event log both endpoints emitted. This
 * harness replays the trace through the *same protocol core* under
 * virtual time — the sender half through ReliableLink over a
 * ReplayBackend, the receiver half through FrameAssembler +
 * ChunkReceiver fed re-synthesized payload bytes — and asserts the
 * replayed decision log matches the recorded one frame for frame
 * (timestamps normalized away: wall clock and virtual time cannot
 * agree, every decision must).
 *
 * A mismatch means the socket backend and the simulator disagree about
 * the protocol — exactly the divergence the ROG methodology exists to
 * rule out.
 */
#ifndef ROG_NET_TRANSPORT_CROSSVAL_HPP
#define ROG_NET_TRANSPORT_CROSSVAL_HPP

#include <string>
#include <vector>

#include "net/transport/event_log.hpp"

namespace rog {
namespace net {
namespace transport {

/** One side's replayed decision log. */
struct ReplayResult
{
    std::vector<TransportEvent> log;

    /**
     * First inconsistency between what the protocol core did during
     * replay and what the trace recorded (empty = clean replay).
     */
    std::string divergence;

    /** Sends that ran to completion (delivered or failed). */
    std::size_t sends_completed = 0;
};

/**
 * Re-run the sender protocol over the recorded wire verdicts: every
 * attempt resolves from the trace's next AttemptRecord, in virtual
 * time. Returns the sender-side event log the core re-derived.
 */
ReplayResult replaySenderTrace(const TransportTrace &trace);

/**
 * Re-run the receiver protocol over the recorded arrivals: every
 * RxRecord becomes a frame with re-synthesized payload bytes (a
 * recorded CRC failure garbles one byte so the verdict is computed,
 * never assumed). Returns the receiver-side event log.
 */
ReplayResult replayReceiverTrace(const TransportTrace &trace);

/** Outcome of a full cross-validation. */
struct CrossvalReport
{
    bool ok = false;

    /** Human-readable account of the first divergence (empty if ok). */
    std::string detail;

    std::size_t sender_events = 0;
    std::size_t receiver_events = 0;
};

/**
 * Replay both sides of @p trace and compare against @p recorded (the
 * merged event log of the real run; sides are separated internally
 * with filterSide, so sender and receiver logs may simply be
 * concatenated).
 */
CrossvalReport crossValidate(const TransportTrace &trace,
                             const std::vector<TransportEvent> &recorded);

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_CROSSVAL_HPP
