#include "net/transport/reliable_link.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "net/transport/crc32c.hpp"
#include "net/transport/des_backend.hpp"
#include "net/transport/payload.hpp"

namespace rog {
namespace net {
namespace transport {

namespace {

constexpr double kEps = 1e-9;

/** Integer byte length of a (possibly fractional) simulated length. */
std::size_t
byteLen(double len)
{
    if (len <= 0.0)
        return 0; // a zero-length message frames a header-only chunk.
    return static_cast<std::size_t>(
        std::max(1.0, std::ceil(len - kEps)));
}

} // namespace

/** State of one in-flight message send. */
struct ReliableLink::SendOp
{
    std::uint64_t id = 0;     //!< protocol-core op id.
    std::uint64_t stream = 0; //!< backend send-stream handle.
    LinkId link = 0;
    MessageKey key;
    double payload_bytes = 0.0;
    double deadline = kNoDeadline;
    bool payload_mode = false; //!< carrying caller bytes (else synthesized).
    std::span<const std::uint8_t> payload; //!< views payload_copy.
    Callback done;
    std::function<void()> drop;
    Rng jitter;
    double start_time = 0.0;

    std::uint32_t chunk_count = 1;
    std::uint32_t seq = 0;        //!< chunk currently being sent.
    double chunk_len = 0.0;       //!< payload bytes of that chunk.
    std::uint32_t chunk_crc = 0;  //!< CRC of that chunk (cached).
    double resume_off = 0.0;      //!< intact delivered prefix.
    double high_water = 0.0;      //!< most ever delivered (retransmit acct).
    std::size_t chunk_attempts = 0;
    std::size_t backoff_exp = 0;

    // Pool-leased working memory: recycled when the op retires, so a
    // steady stream of sends allocates nothing after warm-up.
    BufferPool::Lease<std::uint8_t> payload_copy; //!< retransmit copy.
    BufferPool::Lease<std::uint8_t> chunk_scratch; //!< chunk regen.
#ifdef ROG_SANITIZE_BUILD
    std::uint32_t payload_guard_crc = 0; //!< lifetime canary.
#endif

    TimerId backoff_timer = 0;
    SendResult res;
};

ReliableLink::ReliableLink(Backend &backend, const TransportConfig &config,
                           TransportObserver *observer)
    : backend_(backend), config_(config), observer_(observer)
{
    ROG_ASSERT(config_.chunk_bytes > 0.0,
               "transport chunk size must be positive");
    ROG_ASSERT(config_.backoff_base_s > 0.0,
               "transport backoff base must be positive");
    ROG_ASSERT(config_.jitter_frac >= 0.0 && config_.jitter_frac < 1.0,
               "transport jitter fraction must be in [0, 1)");
    backend_.setReceiverEventSink(
        [this](const TransportEvent &ev) { log_.push_back(ev); });
}

ReliableLink::ReliableLink(sim::Simulation &sim, Channel &channel,
                           const TransportConfig &config,
                           TransportObserver *observer)
    : owned_backend_(
          std::make_unique<DesBackend>(sim, channel, config, observer)),
      backend_(*owned_backend_), config_(config), observer_(observer)
{
    ROG_ASSERT(config_.chunk_bytes > 0.0,
               "transport chunk size must be positive");
    ROG_ASSERT(config_.backoff_base_s > 0.0,
               "transport backoff base must be positive");
    ROG_ASSERT(config_.jitter_frac >= 0.0 && config_.jitter_frac < 1.0,
               "transport jitter fraction must be in [0, 1)");
    backend_.setReceiverEventSink(
        [this](const TransportEvent &ev) { log_.push_back(ev); });
}

ReliableLink::~ReliableLink()
{
    *alive_ = false;
    for (auto &[id, op] : ops_) {
        backend_.cancelTimer(op->backoff_timer);
        backend_.abortSend(op->stream);
        if (op->drop)
            op->drop();
    }
}

void
ReliableLink::reset()
{
    // Move the map out first: a done callback may start a new send
    // on this link, which must not land in the set being torn down.
    auto ops = std::move(ops_);
    ops_.clear();
    for (auto &[id, op] : ops) {
        backend_.cancelTimer(op->backoff_timer);
        backend_.abortSend(op->stream);
        op->res.delivered = false;
        op->res.elapsed_s = backend_.now() - op->start_time;
        Callback done = std::move(op->done);
        std::function<void()> drop = std::move(op->drop);
        if (done)
            done(op->res);
        else if (drop)
            drop();
    }
    delivered_payloads_.clear();
}

double
ReliableLink::chunkLen(const SendOp &op, std::uint32_t seq) const
{
    if (seq + 1 < op.chunk_count)
        return config_.chunk_bytes;
    return op.payload_bytes -
           config_.chunk_bytes * static_cast<double>(op.chunk_count - 1);
}

std::span<const std::uint8_t>
ReliableLink::chunkPayloadInto(SendOp &op, std::uint32_t seq) const
{
    if (op.payload_mode) {
        // Payload mode: a zero-copy view into the leased copy.
        const auto ci = byteLen(config_.chunk_bytes);
        const std::size_t off = static_cast<std::size_t>(seq) * ci;
        const std::size_t len = std::min(ci, op.payload.size() - off);
        return op.payload.subspan(off, len);
    }
    // Synthesized mode: regenerate into the op's pooled scratch.
    const std::size_t len = byteLen(chunkLen(op, seq));
    ROG_ASSERT(len <= op.chunk_scratch.size(),
               "chunk scratch undersized for synthesized chunk");
    std::uint8_t *out = op.chunk_scratch.data();
    synthesizeChunk(op.key, seq, {out, len});
    return {out, len};
}

void
ReliableLink::refreshChunkCrc(SendOp &op)
{
    op.chunk_crc = crc32c(chunkPayloadInto(op, op.seq));
}

void
ReliableLink::startSend(LinkId link, const MessageKey &key,
                        double payload_bytes, double deadline_s,
                        Callback done, std::function<void()> drop)
{
    ROG_ASSERT(payload_bytes >= 0.0,
               "send needs non-negative payload bytes");
    startSendImpl(link, key, payload_bytes, {}, false, deadline_s,
                  std::move(done), std::move(drop));
}

void
ReliableLink::startSendPayload(LinkId link, const MessageKey &key,
                               std::span<const std::uint8_t> payload,
                               double deadline_s, Callback done,
                               std::function<void()> drop)
{
    startSendImpl(link, key, static_cast<double>(payload.size()),
                  payload, true, deadline_s, std::move(done),
                  std::move(drop));
}

void
ReliableLink::startSendImpl(LinkId link, const MessageKey &key,
                            double payload_bytes,
                            std::span<const std::uint8_t> payload,
                            bool payload_mode, double deadline_s,
                            Callback done, std::function<void()> drop)
{
    auto op = std::make_unique<SendOp>();
    op->id = next_op_id_++;
    op->link = link;
    op->key = key;
    op->payload_bytes = payload_bytes;
    op->deadline = deadline_s;
    op->payload_mode = payload_mode;
    op->payload = payload;
    op->done = std::move(done);
    op->drop = std::move(drop);
    op->jitter = Rng(messageSeed(config_.jitter_seed, key, 0));
    op->start_time = backend_.now();
    op->chunk_count = static_cast<std::uint32_t>(std::max(
        1.0, std::ceil(payload_bytes / config_.chunk_bytes - kEps)));
    op->chunk_len = chunkLen(*op, 0);
    if (payload_mode && !payload.empty()) {
        // Lease the retransmission copy before returning: the caller's
        // span only has to survive this call (see startSendPayload).
        op->payload_copy = BufferPool::global().leaseBytes(payload.size());
        std::copy(payload.begin(), payload.end(),
                  op->payload_copy.data());
        op->payload = {op->payload_copy.data(), op->payload_copy.size()};
#ifdef ROG_SANITIZE_BUILD
        op->payload_guard_crc = crc32c(op->payload);
#endif
    }
    op->res.payload_bytes = payload_bytes;
    op->res.chunks = op->chunk_count;
    op->chunk_scratch = BufferPool::global().leaseBytes(
        std::max<std::size_t>(1, byteLen(op->chunk_count > 1
                                             ? config_.chunk_bytes
                                             : op->chunk_len)));
    refreshChunkCrc(*op);
    ++totals_.sends;
    op->stream = backend_.openSend(link, key, payload_mode);

    SendOp &ref = *op;
    ops_.emplace(ref.id, std::move(op));
    attempt(ref);
}

void
ReliableLink::attempt(SendOp &op)
{
    const double now = backend_.now();
    if (now >= op.deadline) {
        finish(op, false, true);
        return;
    }

    const double frag_len = op.chunk_len - op.resume_off;

#ifdef ROG_SANITIZE_BUILD
    // Payload-lifetime canary: the leased copy taken at
    // startSendPayload must still checksum to the value captured
    // there; a mismatch means someone clobbered the pooled buffer
    // mid-send (e.g. a premature release re-leased it elsewhere).
    if (op.payload_mode && !op.payload.empty())
        ROG_ASSERT(crc32c(op.payload) == op.payload_guard_crc,
                   "leased payload copy mutated mid-send");
#endif

    FrameHeader hdr;
    hdr.flags = op.key.pull ? kFlagPull : 0;
    hdr.worker = op.key.worker;
    hdr.version = op.key.version;
    hdr.row = op.key.row;
    hdr.chunk_seq = op.seq;
    hdr.chunk_count = op.chunk_count;
    hdr.payload_off =
        static_cast<std::uint64_t>(std::llround(op.resume_off));
    hdr.payload_len = static_cast<std::uint32_t>(byteLen(frag_len));
    // Per chunk, not per attempt: refreshChunkCrc cached this when the
    // chunk became current, so retries skip the checksum (and, in
    // synthesized mode, the payload regeneration) entirely.
    hdr.payload_crc = op.chunk_crc;

    const double timeout = std::isfinite(op.deadline)
                               ? std::max(kEps, op.deadline - now)
                               : kNoDeadline;

    ++op.res.attempts;
    ++op.chunk_attempts;
    logEvent(TransportEvent::Kind::Attempt, op, op.seq,
             FrameHeader::kWireSize + frag_len, op.resume_off);

    const auto chunk = chunkPayloadInto(op, op.seq);
    const auto frag = chunk.subspan(
        std::min<std::size_t>(chunk.size(),
                              static_cast<std::size_t>(hdr.payload_off)));
    const std::uint64_t id = op.id;
    backend_.sendFrame(
        op.stream, hdr, frag, chunk, frag_len, op.chunk_len, timeout,
        [this, alive = alive_, id](const FrameVerdict &v) {
            if (*alive)
                onFrameVerdict(id, v);
        },
        [this, alive = alive_, id] {
            if (*alive)
                dropOp(id);
        });
}

void
ReliableLink::dropOp(std::uint64_t op_id)
{
    auto it = ops_.find(op_id);
    if (it == ops_.end())
        return;
    backend_.cancelTimer(it->second->backoff_timer);
    backend_.abortSend(it->second->stream);
    std::function<void()> drop = std::move(it->second->drop);
    ops_.erase(it);
    if (drop)
        drop();
}

void
ReliableLink::onFrameVerdict(std::uint64_t op_id, const FrameVerdict &v)
{
    auto it = ops_.find(op_id);
    if (it == ops_.end())
        return;
    SendOp &op = *it->second;

    const double delivered = v.bytes_sent;
    const double hdr_delivered =
        std::min(delivered, double(FrameHeader::kWireSize));
    const double payload_delivered =
        std::max(0.0, delivered - FrameHeader::kWireSize);
    op.res.bytes_sent += delivered;

    // Anything delivered on a retry that had already been delivered
    // before is retransmission: the header every time, plus the
    // overlap of this fragment with the chunk's high-water mark.
    if (op.chunk_attempts > 1) {
        const double overlap =
            std::max(0.0, std::min(op.resume_off + payload_delivered,
                                   op.high_water) -
                              op.resume_off);
        op.res.retransmitted_bytes += hdr_delivered + overlap;
    }
    op.high_water =
        std::max(op.high_water, op.resume_off + payload_delivered);

    if (v.completed) {
        resolveChunk(op, v);
        return;
    }

    // Cut mid-flow (truncation, forced timeout, or deadline): keep the
    // intact prefix and resume, or restart from scratch in baseline
    // mode. New bytes arriving counts as progress and resets the
    // backoff exponent.
    const bool progress = payload_delivered > kEps;
    if (config_.resume_from_offset) {
        op.resume_off =
            std::min(op.chunk_len, op.resume_off + payload_delivered);
        if (observer_)
            observer_->onTransportResume(op.key.worker, op.key.version,
                                         op.key.row, op.resume_off,
                                         op.chunk_len, op.key.pull);
        logEvent(TransportEvent::Kind::Resume, op, op.seq,
                 op.resume_off, op.chunk_len);
    } else {
        op.resume_off = 0.0;
    }
    if (progress)
        op.backoff_exp = 0;

    if (config_.max_attempts_per_chunk > 0 &&
        op.chunk_attempts >= config_.max_attempts_per_chunk) {
        finish(op, false, false);
        return;
    }
    scheduleRetry(op);
}

void
ReliableLink::resolveChunk(SendOp &op, const FrameVerdict &v)
{
    // Receiver-side events (Accept / Duplicate / CorruptDrop /
    // ReorderHold / Deliver) are emitted by the ChunkReceiver through
    // the backend's event sink when the receiver runs in-process; the
    // sender only accounts and advances here.
    if (!v.crc_ok) {
        ++op.res.corrupt_chunks;
        // Discard: the prefix is untrustworthy, restart the chunk.
        op.resume_off = 0.0;
        if (config_.max_attempts_per_chunk > 0 &&
            op.chunk_attempts >= config_.max_attempts_per_chunk) {
            finish(op, false, false);
            return;
        }
        scheduleRetry(op);
        return;
    }

    if (v.held)
        ++op.res.reordered_chunks;
    op.res.duplicate_chunks += v.duplicates;

    // Chunk resolved (accepted, dedup'd, or held for its successor):
    // advance to the next chunk with fresh retry state.
    ++op.seq;
    op.resume_off = 0.0;
    op.high_water = 0.0;
    op.chunk_attempts = 0;
    op.backoff_exp = 0;
    if (op.seq < op.chunk_count) {
        op.chunk_len = chunkLen(op, op.seq);
        refreshChunkCrc(op);
        attempt(op);
        return;
    }
    ROG_ASSERT(v.message_complete,
               "message finished sending with chunks unaccepted");
    if (op.payload_mode && v.assembled)
        delivered_payloads_[op.key] = *v.assembled;
    finish(op, true, false);
}

void
ReliableLink::scheduleRetry(SendOp &op)
{
    double delay = std::min(
        config_.backoff_max_s,
        config_.backoff_base_s *
            std::pow(2.0, static_cast<double>(op.backoff_exp)));
    // Seeded deterministic jitter in [1 - f, 1 + f).
    const double u = op.jitter.uniform();
    delay *= 1.0 - config_.jitter_frac +
             2.0 * config_.jitter_frac * u;
    const double now = backend_.now();
    if (std::isfinite(op.deadline) && now + delay >= op.deadline) {
        // Deadline-aware: backing off past the deadline is pointless.
        finish(op, false, true);
        return;
    }
    ++op.res.retries;
    logEvent(TransportEvent::Kind::Backoff, op, op.seq, delay,
             static_cast<double>(op.backoff_exp));
    // Saturate rather than double forever: a partition that outlives
    // ~32 retries keeps the delay pinned at the cap instead of pushing
    // the exponent into meaningless territory.
    if (op.backoff_exp < kMaxBackoffExponent)
        ++op.backoff_exp;
    op.res.backoff_s += delay;
    const std::uint64_t id = op.id;
    op.backoff_timer =
        backend_.after(delay, [this, alive = alive_, id] {
            if (!*alive)
                return;
            auto it = ops_.find(id);
            if (it == ops_.end())
                return;
            it->second->backoff_timer = 0;
            attempt(*it->second);
        });
}

void
ReliableLink::finish(SendOp &op, bool delivered, bool expired)
{
    backend_.cancelTimer(op.backoff_timer);
    op.backoff_timer = 0;
    // Closing an undelivered stream flushes a reorder-held chunk
    // receiver-side (whatever arrived, arrived) — its Accept events
    // land in the log ahead of the Fail below, as they always did.
    backend_.finishSend(op.stream, delivered);
    op.res.delivered = delivered;
    op.res.deadline_expired = expired;
    op.res.elapsed_s = backend_.now() - op.start_time;
    if (!delivered)
        logEvent(TransportEvent::Kind::Fail, op, op.seq,
                 expired ? 1.0 : 0.0);

    totals_.delivered += delivered ? 1 : 0;
    totals_.failed += delivered ? 0 : 1;
    totals_.attempts += op.res.attempts;
    totals_.retries += op.res.retries;
    totals_.backoff_s += op.res.backoff_s;
    totals_.bytes_sent += op.res.bytes_sent;
    totals_.retransmitted_bytes += op.res.retransmitted_bytes;
    totals_.corrupt_chunks += op.res.corrupt_chunks;
    totals_.duplicate_chunks += op.res.duplicate_chunks;
    totals_.reordered_chunks += op.res.reordered_chunks;

    const SendResult res = op.res;
    Callback done = std::move(op.done);
    ops_.erase(op.id);
    if (done)
        done(res);
}

void
ReliableLink::logEvent(TransportEvent::Kind kind, const SendOp &op,
                       std::uint32_t seq, double a, double b)
{
    TransportEvent ev;
    ev.t = backend_.now();
    ev.kind = kind;
    ev.link = op.link;
    ev.key = op.key;
    ev.chunk_seq = seq;
    ev.a = a;
    ev.b = b;
    log_.push_back(ev);
}

const std::vector<std::uint8_t> &
ReliableLink::deliveredPayload(const MessageKey &key) const
{
    static const std::vector<std::uint8_t> kEmpty;
    auto it = delivered_payloads_.find(key);
    return it == delivered_payloads_.end() ? kEmpty : it->second;
}

std::string
ReliableLink::logDump() const
{
    std::ostringstream os;
    for (const auto &ev : log_)
        os << toString(ev) << '\n';
    return os.str();
}

} // namespace transport
} // namespace net
} // namespace rog
