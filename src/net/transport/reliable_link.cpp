#include "net/transport/reliable_link.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "net/transport/crc32c.hpp"

namespace rog {
namespace net {
namespace transport {

namespace {

constexpr double kEps = 1e-9;

/** splitmix64 step, for seeding and synthesized payload bytes. */
std::uint64_t
mix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
keySeed(std::uint64_t base, const MessageKey &key, std::uint64_t extra)
{
    std::uint64_t s = base;
    s ^= mix64(s) + static_cast<std::uint64_t>(key.worker);
    s ^= mix64(s) + static_cast<std::uint64_t>(key.version);
    s ^= mix64(s) + static_cast<std::uint64_t>(key.row);
    s ^= mix64(s) + (key.pull ? 0x70756c6cull : 0x70757368ull);
    s ^= mix64(s) + extra;
    return s;
}

/** Integer byte length of a (possibly fractional) simulated length. */
std::size_t
byteLen(double len)
{
    return static_cast<std::size_t>(
        std::max(1.0, std::ceil(len - kEps)));
}

const char *
kindName(TransportEvent::Kind k)
{
    switch (k) {
    case TransportEvent::Kind::Attempt: return "attempt";
    case TransportEvent::Kind::Resume: return "resume";
    case TransportEvent::Kind::Backoff: return "backoff";
    case TransportEvent::Kind::Accept: return "accept";
    case TransportEvent::Kind::Duplicate: return "duplicate";
    case TransportEvent::Kind::CorruptDrop: return "corrupt-drop";
    case TransportEvent::Kind::ReorderHold: return "reorder-hold";
    case TransportEvent::Kind::Deliver: return "deliver";
    case TransportEvent::Kind::Fail: return "fail";
    }
    return "?";
}

} // namespace

std::string
toString(const TransportEvent &ev)
{
    std::ostringstream os;
    os.precision(17);
    os << "t=" << ev.t << ' ' << kindName(ev.kind) << " link="
       << ev.link << " w=" << ev.key.worker << " v=" << ev.key.version
       << " row=" << ev.key.row << " dir="
       << (ev.key.pull ? "pull" : "push") << " seq=" << ev.chunk_seq
       << " a=" << ev.a << " b=" << ev.b;
    return os.str();
}

/** State of one in-flight message send. */
struct ReliableLink::SendOp
{
    std::uint64_t id = 0;
    LinkId link = 0;
    MessageKey key;
    double payload_bytes = 0.0;
    double deadline = kNoDeadline;
    std::span<const std::uint8_t> payload; //!< empty => synthesized;
                                           //!< else views payload_copy.
    Callback done;
    std::function<void()> drop;
    Rng jitter;
    double start_time = 0.0;

    std::uint32_t chunk_count = 1;
    std::uint32_t seq = 0;        //!< chunk currently being sent.
    double chunk_len = 0.0;       //!< payload bytes of that chunk.
    std::uint32_t chunk_crc = 0;  //!< CRC of that chunk (cached).
    double resume_off = 0.0;      //!< intact delivered prefix.
    double high_water = 0.0;      //!< most ever delivered (retransmit acct).
    bool garbled = false;         //!< a corrupted fragment contributed.
    std::size_t chunk_attempts = 0;
    std::size_t backoff_exp = 0;

    std::set<std::uint32_t> accepted;
    bool hold_pending = false;
    FrameHeader hold_hdr;
    bool hold_duplicated = false;

    // Pool-leased working memory: recycled when the op retires, so a
    // steady stream of sends allocates nothing after warm-up.
    BufferPool::Lease<std::uint8_t> payload_copy; //!< retransmit copy.
    BufferPool::Lease<std::uint8_t> assembled;    //!< reassembly.
    BufferPool::Lease<std::uint8_t> wire;         //!< header bytes.
    BufferPool::Lease<std::uint8_t> chunk_scratch; //!< chunk regen.
#ifdef ROG_SANITIZE_BUILD
    std::uint32_t payload_guard_crc = 0; //!< lifetime canary.
#endif

    sim::EventId backoff_event;
    SendResult res;
};

ReliableLink::ReliableLink(sim::Simulation &sim, Channel &channel,
                           const TransportConfig &config,
                           TransportObserver *observer)
    : sim_(sim), channel_(channel), config_(config), observer_(observer)
{
    ROG_ASSERT(config_.chunk_bytes > 0.0,
               "transport chunk size must be positive");
    ROG_ASSERT(config_.backoff_base_s > 0.0,
               "transport backoff base must be positive");
    ROG_ASSERT(config_.jitter_frac >= 0.0 && config_.jitter_frac < 1.0,
               "transport jitter fraction must be in [0, 1)");
}

ReliableLink::~ReliableLink()
{
    *alive_ = false;
    for (auto &[id, op] : ops_) {
        sim_.cancel(op->backoff_event);
        if (op->drop)
            op->drop();
    }
}

double
ReliableLink::chunkLen(const SendOp &op, std::uint32_t seq) const
{
    if (seq + 1 < op.chunk_count)
        return config_.chunk_bytes;
    return op.payload_bytes -
           config_.chunk_bytes * static_cast<double>(op.chunk_count - 1);
}

std::span<const std::uint8_t>
ReliableLink::chunkPayloadInto(SendOp &op, std::uint32_t seq) const
{
    if (!op.payload.empty()) {
        // Payload mode: a zero-copy view into the leased copy.
        const auto ci = byteLen(config_.chunk_bytes);
        const std::size_t off = static_cast<std::size_t>(seq) * ci;
        const std::size_t len = std::min(ci, op.payload.size() - off);
        return op.payload.subspan(off, len);
    }
    // Synthesized mode: regenerate into the op's pooled scratch.
    const std::size_t len = byteLen(chunkLen(op, seq));
    ROG_ASSERT(len <= op.chunk_scratch.size(),
               "chunk scratch undersized for synthesized chunk");
    std::uint8_t *out = op.chunk_scratch.data();
    std::uint64_t state = keySeed(0xc0ffee123ull, op.key, seq);
    for (std::size_t i = 0; i < len; i += 8) {
        const std::uint64_t v = mix64(state);
        for (std::size_t b = 0; b < 8 && i + b < len; ++b)
            out[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
    return {out, len};
}

void
ReliableLink::refreshChunkCrc(SendOp &op)
{
    op.chunk_crc = crc32c(chunkPayloadInto(op, op.seq));
}

void
ReliableLink::startSend(LinkId link, const MessageKey &key,
                        double payload_bytes, double deadline_s,
                        Callback done, std::function<void()> drop)
{
    ROG_ASSERT(payload_bytes > 0.0, "send needs positive payload bytes");
    startSendImpl(link, key, payload_bytes, {}, deadline_s,
                  std::move(done), std::move(drop));
}

void
ReliableLink::startSendPayload(LinkId link, const MessageKey &key,
                               std::span<const std::uint8_t> payload,
                               double deadline_s, Callback done,
                               std::function<void()> drop)
{
    ROG_ASSERT(!payload.empty(), "payload send needs bytes");
    startSendImpl(link, key, static_cast<double>(payload.size()),
                  payload, deadline_s, std::move(done), std::move(drop));
}

void
ReliableLink::startSendImpl(LinkId link, const MessageKey &key,
                            double payload_bytes,
                            std::span<const std::uint8_t> payload,
                            double deadline_s, Callback done,
                            std::function<void()> drop)
{
    auto op = std::make_unique<SendOp>();
    op->id = next_op_id_++;
    op->link = link;
    op->key = key;
    op->payload_bytes = payload_bytes;
    op->deadline = deadline_s;
    op->payload = payload;
    op->done = std::move(done);
    op->drop = std::move(drop);
    op->jitter = Rng(keySeed(config_.jitter_seed, key, 0));
    op->start_time = sim_.now();
    op->chunk_count = static_cast<std::uint32_t>(std::max(
        1.0, std::ceil(payload_bytes / config_.chunk_bytes - kEps)));
    op->chunk_len = chunkLen(*op, 0);
    if (!payload.empty()) {
        // Lease the retransmission copy before returning: the caller's
        // span only has to survive this call (see startSendPayload).
        op->payload_copy = BufferPool::global().leaseBytes(payload.size());
        std::copy(payload.begin(), payload.end(),
                  op->payload_copy.data());
        op->payload = {op->payload_copy.data(), op->payload_copy.size()};
        op->assembled = BufferPool::global().leaseBytes(payload.size());
        std::fill(op->assembled.data(),
                  op->assembled.data() + op->assembled.size(),
                  std::uint8_t{0});
#ifdef ROG_SANITIZE_BUILD
        op->payload_guard_crc = crc32c(op->payload);
#endif
    }
    op->res.payload_bytes = payload_bytes;
    op->res.chunks = op->chunk_count;
    op->wire = BufferPool::global().leaseBytes(FrameHeader::kWireSize);
    op->chunk_scratch = BufferPool::global().leaseBytes(byteLen(
        op->chunk_count > 1 ? config_.chunk_bytes : op->chunk_len));
    refreshChunkCrc(*op);
    ++totals_.sends;

    SendOp &ref = *op;
    ops_.emplace(ref.id, std::move(op));
    attempt(ref);
}

void
ReliableLink::attempt(SendOp &op)
{
    const double now = sim_.now();
    if (now >= op.deadline) {
        finish(op, false, true);
        return;
    }

    const double frag_len = op.chunk_len - op.resume_off;

#ifdef ROG_SANITIZE_BUILD
    // Payload-lifetime canary: the leased copy taken at
    // startSendPayload must still checksum to the value captured
    // there; a mismatch means someone clobbered the pooled buffer
    // mid-send (e.g. a premature release re-leased it elsewhere).
    if (!op.payload.empty())
        ROG_ASSERT(crc32c(op.payload) == op.payload_guard_crc,
                   "leased payload copy mutated mid-send");
#endif

    FrameHeader hdr;
    hdr.flags = op.key.pull ? kFlagPull : 0;
    hdr.worker = op.key.worker;
    hdr.version = op.key.version;
    hdr.row = op.key.row;
    hdr.chunk_seq = op.seq;
    hdr.chunk_count = op.chunk_count;
    hdr.payload_off =
        static_cast<std::uint64_t>(std::llround(op.resume_off));
    hdr.payload_len = static_cast<std::uint32_t>(byteLen(frag_len));
    // Per chunk, not per attempt: refreshChunkCrc cached this when the
    // chunk became current, so retries skip the checksum (and, in
    // synthesized mode, the payload regeneration) entirely.
    hdr.payload_crc = op.chunk_crc;
    hdr.serialize({op.wire.data(), op.wire.size()});

    const double wire_bytes = FrameHeader::kWireSize + frag_len;
    const double timeout = std::isfinite(op.deadline)
                               ? std::max(kEps, op.deadline - now)
                               : Channel::kNoTimeout;

    ++op.res.attempts;
    ++op.chunk_attempts;
    logEvent(TransportEvent::Kind::Attempt, op, op.seq, wire_bytes,
             op.resume_off);

    const std::uint64_t id = op.id;
    channel_.startTransfer(
        op.link, wire_bytes, timeout,
        [this, alive = alive_, id](TransferResult r) {
            if (*alive)
                onTransferDone(id, r);
        },
        [this, alive = alive_, id] {
            if (*alive)
                dropOp(id);
        });
}

void
ReliableLink::dropOp(std::uint64_t op_id)
{
    auto it = ops_.find(op_id);
    if (it == ops_.end())
        return;
    sim_.cancel(it->second->backoff_event);
    std::function<void()> drop = std::move(it->second->drop);
    ops_.erase(it);
    if (drop)
        drop();
}

void
ReliableLink::onTransferDone(std::uint64_t op_id, const TransferResult &r)
{
    auto it = ops_.find(op_id);
    if (it == ops_.end())
        return;
    SendOp &op = *it->second;

    const double delivered = r.bytes_sent;
    const double hdr_delivered =
        std::min(delivered, double(FrameHeader::kWireSize));
    const double payload_delivered =
        std::max(0.0, delivered - FrameHeader::kWireSize);
    op.res.bytes_sent += delivered;

    // Anything delivered on a retry that had already been delivered
    // before is retransmission: the header every time, plus the
    // overlap of this fragment with the chunk's high-water mark.
    if (op.chunk_attempts > 1) {
        const double overlap =
            std::max(0.0, std::min(op.resume_off + payload_delivered,
                                   op.high_water) -
                              op.resume_off);
        op.res.retransmitted_bytes += hdr_delivered + overlap;
    }
    op.high_water =
        std::max(op.high_water, op.resume_off + payload_delivered);
    if (r.corrupted)
        op.garbled = true;

    if (r.completed) {
        receiveChunk(op, r.duplicated, r.reordered);
        return;
    }

    // Cut mid-flow (truncation, forced timeout, or deadline): keep the
    // intact prefix and resume, or restart from scratch in baseline
    // mode. New bytes arriving counts as progress and resets the
    // backoff exponent.
    const bool progress = payload_delivered > kEps;
    if (config_.resume_from_offset) {
        op.resume_off =
            std::min(op.chunk_len, op.resume_off + payload_delivered);
        if (observer_)
            observer_->onTransportResume(op.key.worker, op.key.version,
                                         op.key.row, op.resume_off,
                                         op.chunk_len, op.key.pull);
        logEvent(TransportEvent::Kind::Resume, op, op.seq,
                 op.resume_off, op.chunk_len);
    } else {
        op.resume_off = 0.0;
        op.garbled = false;
    }
    if (progress)
        op.backoff_exp = 0;

    if (config_.max_attempts_per_chunk > 0 &&
        op.chunk_attempts >= config_.max_attempts_per_chunk) {
        finish(op, false, false);
        return;
    }
    scheduleRetry(op);
}

void
ReliableLink::receiveChunk(SendOp &op, bool duplicated, bool reordered)
{
    // The receiver re-parses the header exactly as it was framed.
    const auto hdr = FrameHeader::parse({op.wire.data(), op.wire.size()});
    ROG_ASSERT(hdr.has_value(), "transport framed an unparsable header");

    // Checksum verdict over the reassembled chunk. A corrupted
    // fragment garbled the buffer; flip a deterministic byte so the
    // CRC genuinely fails. The flip happens in the op's scratch — in
    // payload mode the clean bytes are copied there first so the
    // leased retransmission copy is never mutated.
    auto received = chunkPayloadInto(op, op.seq);
    if (op.garbled) {
        std::uint8_t *mut = op.chunk_scratch.data();
        if (!op.payload.empty()) {
            ROG_ASSERT(received.size() <= op.chunk_scratch.size(),
                       "chunk scratch undersized for garble copy");
            std::copy(received.begin(), received.end(), mut);
        }
        mut[op.seq % received.size()] ^= 0x40;
        received = {mut, received.size()};
    }
    const bool crc_ok = crc32c(received) == hdr->payload_crc;

    if (!crc_ok) {
        ++op.res.corrupt_chunks;
        if (observer_)
            observer_->onTransportChunk(op.key.worker, op.key.version,
                                        op.key.row, op.seq, false,
                                        false, op.key.pull);
        logEvent(TransportEvent::Kind::CorruptDrop, op, op.seq,
                 op.chunk_len);
        // Discard: the prefix is untrustworthy, restart the chunk.
        op.resume_off = 0.0;
        op.garbled = false;
        if (config_.max_attempts_per_chunk > 0 &&
            op.chunk_attempts >= config_.max_attempts_per_chunk) {
            finish(op, false, false);
            return;
        }
        scheduleRetry(op);
        return;
    }

    if (reordered && !op.hold_pending && op.seq + 1 < op.chunk_count) {
        // Delivery overtaken by the next send: hold the (intact)
        // chunk and apply it after its successor.
        op.hold_pending = true;
        op.hold_hdr = *hdr;
        op.hold_duplicated = duplicated;
        ++op.res.reordered_chunks;
        logEvent(TransportEvent::Kind::ReorderHold, op, op.seq);
        advanceChunk(op);
        return;
    }

    acceptOnce(op, *hdr);
    if (duplicated)
        acceptOnce(op, *hdr); // the link delivered the frame twice.
    if (op.hold_pending)
        flushHold(op);
    advanceChunk(op);
}

void
ReliableLink::acceptOnce(SendOp &op, const FrameHeader &hdr)
{
    const bool fresh = op.accepted.insert(hdr.chunk_seq).second;
    if (observer_)
        observer_->onTransportChunk(op.key.worker, op.key.version,
                                    op.key.row, hdr.chunk_seq, true,
                                    fresh, op.key.pull);
    if (!fresh) {
        ++op.res.duplicate_chunks;
        logEvent(TransportEvent::Kind::Duplicate, op, hdr.chunk_seq);
        return;
    }
    logEvent(TransportEvent::Kind::Accept, op, hdr.chunk_seq,
             chunkLen(op, hdr.chunk_seq));
    if (!op.payload.empty()) {
        const auto chunk = chunkPayloadInto(op, hdr.chunk_seq);
        const std::size_t off = static_cast<std::size_t>(hdr.chunk_seq) *
                                byteLen(config_.chunk_bytes);
        std::copy(chunk.begin(), chunk.end(), op.assembled.data() + off);
    }
}

void
ReliableLink::flushHold(SendOp &op)
{
    op.hold_pending = false;
    acceptOnce(op, op.hold_hdr);
    if (op.hold_duplicated)
        acceptOnce(op, op.hold_hdr);
}

void
ReliableLink::advanceChunk(SendOp &op)
{
    ++op.seq;
    op.resume_off = 0.0;
    op.high_water = 0.0;
    op.garbled = false;
    op.chunk_attempts = 0;
    op.backoff_exp = 0;
    if (op.seq < op.chunk_count) {
        op.chunk_len = chunkLen(op, op.seq);
        refreshChunkCrc(op);
        attempt(op);
        return;
    }
    if (op.hold_pending)
        flushHold(op);
    ROG_ASSERT(op.accepted.size() == op.chunk_count,
               "message finished sending with chunks unaccepted");
    if (!op.payload.empty())
        delivered_payloads_[op.key].assign(
            op.assembled.data(),
            op.assembled.data() + op.assembled.size());
    if (observer_)
        observer_->onTransportDeliver(op.key.worker, op.key.version,
                                      op.key.row, op.key.pull);
    finish(op, true, false);
}

void
ReliableLink::scheduleRetry(SendOp &op)
{
    double delay = std::min(
        config_.backoff_max_s,
        config_.backoff_base_s *
            std::pow(2.0, static_cast<double>(op.backoff_exp)));
    // Seeded deterministic jitter in [1 - f, 1 + f).
    const double u = op.jitter.uniform();
    delay *= 1.0 - config_.jitter_frac +
             2.0 * config_.jitter_frac * u;
    const double now = sim_.now();
    if (std::isfinite(op.deadline) && now + delay >= op.deadline) {
        // Deadline-aware: backing off past the deadline is pointless.
        finish(op, false, true);
        return;
    }
    ++op.res.retries;
    logEvent(TransportEvent::Kind::Backoff, op, op.seq, delay,
             static_cast<double>(op.backoff_exp));
    ++op.backoff_exp;
    op.res.backoff_s += delay;
    const std::uint64_t id = op.id;
    op.backoff_event =
        sim_.after(delay, [this, alive = alive_, id] {
            if (!*alive)
                return;
            auto it = ops_.find(id);
            if (it == ops_.end())
                return;
            it->second->backoff_event = sim::EventId{};
            attempt(*it->second);
        });
}

void
ReliableLink::finish(SendOp &op, bool delivered, bool expired)
{
    sim_.cancel(op.backoff_event);
    if (op.hold_pending)
        flushHold(op); // whatever arrived, arrived.
    op.res.delivered = delivered;
    op.res.deadline_expired = expired;
    op.res.elapsed_s = sim_.now() - op.start_time;
    logEvent(delivered ? TransportEvent::Kind::Deliver
                       : TransportEvent::Kind::Fail,
             op, op.seq, expired ? 1.0 : 0.0);

    totals_.delivered += delivered ? 1 : 0;
    totals_.failed += delivered ? 0 : 1;
    totals_.attempts += op.res.attempts;
    totals_.retries += op.res.retries;
    totals_.backoff_s += op.res.backoff_s;
    totals_.bytes_sent += op.res.bytes_sent;
    totals_.retransmitted_bytes += op.res.retransmitted_bytes;
    totals_.corrupt_chunks += op.res.corrupt_chunks;
    totals_.duplicate_chunks += op.res.duplicate_chunks;
    totals_.reordered_chunks += op.res.reordered_chunks;

    const SendResult res = op.res;
    Callback done = std::move(op.done);
    ops_.erase(op.id);
    if (done)
        done(res);
}

void
ReliableLink::logEvent(TransportEvent::Kind kind, const SendOp &op,
                       std::uint32_t seq, double a, double b)
{
    TransportEvent ev;
    ev.t = sim_.now();
    ev.kind = kind;
    ev.link = op.link;
    ev.key = op.key;
    ev.chunk_seq = seq;
    ev.a = a;
    ev.b = b;
    log_.push_back(ev);
}

const std::vector<std::uint8_t> &
ReliableLink::deliveredPayload(const MessageKey &key) const
{
    static const std::vector<std::uint8_t> kEmpty;
    auto it = delivered_payloads_.find(key);
    return it == delivered_payloads_.end() ? kEmpty : it->second;
}

std::string
ReliableLink::logDump() const
{
    std::ostringstream os;
    for (const auto &ev : log_)
        os << toString(ev) << '\n';
    return os.str();
}

} // namespace transport
} // namespace net
} // namespace rog
