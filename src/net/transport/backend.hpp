/**
 * @file
 * Transport backend abstraction: the seam between ReliableLink's
 * protocol logic and everything that differs between a simulated and
 * a real wire.
 *
 * The protocol core (framing, CRC'd chunks, resume-from-offset,
 * exactly-once receive, deadline-aware backoff) is a pure state
 * machine over three primitives a backend provides:
 *
 *   - a clock (virtual seconds in the DES twin, monotonic wall-clock
 *     seconds over real sockets),
 *   - one-shot timers (the backoff schedule),
 *   - a frame exchange: ship one framed fragment and resolve it to a
 *     FrameVerdict — did the frame arrive whole, and what did the
 *     receiver decide about it.
 *
 * Three backends implement the interface with zero forks in the
 * protocol core:
 *
 *   - DesBackend (des_backend.hpp): the deterministic twin. Frames
 *     travel the fluid-simulated Channel; receiver decisions come from
 *     a local ChunkReceiver fed exactly what the channel (and its
 *     fault layer) says arrived.
 *   - UdpBackend / TcpBackend (socket_backend.hpp): real nonblocking
 *     sockets in wall-clock time; receiver decisions come back as
 *     acknowledgement frames from the peer's ChunkReceiver.
 *   - ReplayBackend (des_backend.hpp): re-resolves each attempt from
 *     a recorded wire trace inside the simulator — the cross-
 *     validation twin for real-socket runs.
 */
#ifndef ROG_NET_TRANSPORT_BACKEND_HPP
#define ROG_NET_TRANSPORT_BACKEND_HPP

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "net/transport/event_log.hpp"
#include "net/transport/frame.hpp"

namespace rog {
namespace net {
namespace transport {

/** Knobs for the reliability sublayer. */
struct TransportConfig
{
    /** Payload bytes per chunk (a chunk is the CRC/retry unit). */
    double chunk_bytes = 16.0 * 1024.0;

    /** Attempts per chunk before the send fails (0 = unbounded). */
    std::size_t max_attempts_per_chunk = 8;

    double backoff_base_s = 0.05; //!< first retry delay.
    double backoff_max_s = 2.0;   //!< exponential growth cap.

    /** Jitter: delay is scaled by 1 +/- jitter_frac, deterministically. */
    double jitter_frac = 0.25;
    std::uint64_t jitter_seed = 0x7261676Eull;

    /**
     * Resume retries from the delivered byte offset. Off = the
     * from-scratch baseline: every retry resends the whole chunk
     * (used to measure what resumption saves).
     */
    bool resume_from_offset = true;
};

/** No deadline: retry until delivered or out of attempts. */
inline constexpr double kNoDeadline =
    std::numeric_limits<double>::infinity();

/**
 * Ceiling on the retry backoff exponent. With unbounded retries (a
 * partition lasting hours against max_attempts_per_chunk = 0) the
 * doubling exponent would grow without limit; past ~2^32 the pow()
 * result dwarfs any backoff_max_s and the exponent itself stops being
 * meaningful in event logs. Delays saturate at
 * min(backoff_max_s, base * 2^kMaxBackoffExponent) instead.
 */
inline constexpr std::size_t kMaxBackoffExponent = 32;

/** Opaque one-shot timer handle (0 = invalid / never scheduled). */
using TimerId = std::uint64_t;

/**
 * How one frame attempt resolved: transit outcome plus the receiver's
 * decision about the chunk the frame completed (if it completed one).
 */
struct FrameVerdict
{
    /** The whole frame reached the receiver. */
    bool completed = false;

    /** Wire bytes that arrived (header + intact payload prefix). */
    double bytes_sent = 0.0;

    // --- receiver decision, meaningful only when completed ---

    /** Checksum verdict over the reassembled chunk. */
    bool crc_ok = false;

    /** Chunks applied as new payload by this delivery. */
    std::size_t fresh_accepts = 0;

    /** Deliveries dedup'd against already-accepted chunks. */
    std::size_t duplicates = 0;

    /** The chunk was reorder-held to apply after its successor. */
    bool held = false;

    /** Every chunk of the message is now accepted. */
    bool message_complete = false;

    /**
     * Reassembled payload bytes, set with message_complete on
     * payload-mode sends when the receiver is reachable in-process
     * (DES / replay / loopback). Valid only during the verdict
     * callback. Real remote receivers leave it null — the bytes live
     * in the peer process.
     */
    const std::vector<std::uint8_t> *assembled = nullptr;
};

/** I/O + clocking provider for the transport protocol core. */
class Backend
{
  public:
    using VerdictCallback = std::function<void(const FrameVerdict &)>;

    virtual ~Backend() = default;

    /** Current time in seconds (virtual or monotonic wall). */
    virtual double now() const = 0;

    /** Schedule @p fire once after @p delay_s seconds. */
    virtual TimerId after(double delay_s, std::function<void()> fire) = 0;

    /** Cancel a pending timer; no-op if fired or invalid. */
    virtual void cancelTimer(TimerId id) = 0;

    /**
     * Open a per-message send stream. Receiver-side state (dedup,
     * reorder hold, reassembly) is scoped to the returned handle, so
     * two sequential sends with the same key are distinct messages —
     * matching the simulator's per-send semantics.
     *
     * @param payload_mode true when the message carries caller bytes
     *        the receiver should retain and reassemble.
     */
    virtual std::uint64_t openSend(LinkId link, const MessageKey &key,
                                   bool payload_mode) = 0;

    /**
     * Ship one framed fragment and resolve it.
     *
     * @param hdr the frame header exactly as the protocol core built
     *        it (the backend serializes it onto its wire).
     * @param frag the fragment's payload bytes.
     * @param chunk the full current chunk's payload bytes (the DES
     *        twin needs them to model reassembled delivery; socket
     *        backends only ship @p frag). Both spans must stay valid
     *        until @p done or @p drop fires; the protocol core keeps
     *        the backing buffers stable per chunk.
     * @param frag_len / @p chunk_len exact (possibly fractional,
     *        simulated) byte lengths; real backends require them to
     *        match the span sizes.
     * @param timeout_s seconds until the exchange is cut
     *        (infinity = none).
     * @param done invoked exactly once with the verdict, unless the
     *        send is aborted or the backend torn down first.
     * @param drop invoked instead of @p done if the backend's wire is
     *        destroyed with the exchange pending (may be empty).
     *
     * At most one frame per send stream may be outstanding — the
     * protocol is stop-and-wait within a message.
     */
    virtual void sendFrame(std::uint64_t send_id, const FrameHeader &hdr,
                           std::span<const std::uint8_t> frag,
                           std::span<const std::uint8_t> chunk,
                           double frag_len, double chunk_len,
                           double timeout_s, VerdictCallback done,
                           std::function<void()> drop) = 0;

    /**
     * Close a send stream after its final verdict: @p delivered false
     * means the sender gave up, and a reorder-held chunk (if any) is
     * flushed receiver-side — whatever arrived, arrived.
     */
    virtual void finishSend(std::uint64_t send_id, bool delivered) = 0;

    /**
     * Tear down a send stream mid-flight without firing callbacks
     * (ReliableLink destruction). No receiver flush, no events.
     */
    virtual void abortSend(std::uint64_t send_id) = 0;

    /**
     * Sink for receiver-side events decided in-process (DES, replay,
     * and the receiving end of loopback backends). ReliableLink binds
     * its own log here so the combined sender+receiver log reads as
     * one timeline, as the simulator always produced. Backends whose
     * receiver lives in another process never call it.
     */
    virtual void setReceiverEventSink(EventSink sink) = 0;
};

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_BACKEND_HPP
