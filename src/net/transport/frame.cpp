#include "net/transport/frame.hpp"

#include "common/logging.hpp"
#include "net/transport/crc32c.hpp"

namespace rog {
namespace net {
namespace transport {

namespace {

template <typename T>
void
put(std::span<std::uint8_t> out, std::size_t &pos, T value)
{
    using U = std::make_unsigned_t<T>;
    const U u = static_cast<U>(value);
    for (std::size_t i = 0; i < sizeof(T); ++i)
        out[pos++] = static_cast<std::uint8_t>(u >> (8 * i));
}

template <typename T>
T
take(std::span<const std::uint8_t> in, std::size_t &pos)
{
    using U = std::make_unsigned_t<T>;
    U u = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        u |= static_cast<U>(in[pos++]) << (8 * i);
    return static_cast<T>(u);
}

} // namespace

void
FrameHeader::serialize(std::span<std::uint8_t> out) const
{
    ROG_ASSERT(out.size() >= kWireSize, "frame buffer too small");
    std::size_t pos = 0;
    put<std::uint32_t>(out, pos, kMagic);
    put<std::uint16_t>(out, pos, flags);
    put<std::uint16_t>(out, pos, worker);
    put<std::int64_t>(out, pos, version);
    put<std::uint32_t>(out, pos, row);
    put<std::uint32_t>(out, pos, chunk_seq);
    put<std::uint32_t>(out, pos, chunk_count);
    put<std::uint64_t>(out, pos, payload_off);
    put<std::uint32_t>(out, pos, payload_len);
    put<std::uint32_t>(out, pos, payload_crc);
    const std::uint32_t hcrc = crc32c(out.first(pos));
    put<std::uint32_t>(out, pos, hcrc);
    ROG_ASSERT(pos == kWireSize, "frame layout drifted from kWireSize");
}

std::optional<FrameHeader>
FrameHeader::parse(std::span<const std::uint8_t> in)
{
    if (in.size() < kWireSize)
        return std::nullopt;
    std::size_t pos = 0;
    if (take<std::uint32_t>(in, pos) != kMagic)
        return std::nullopt;
    FrameHeader h;
    h.flags = take<std::uint16_t>(in, pos);
    h.worker = take<std::uint16_t>(in, pos);
    h.version = take<std::int64_t>(in, pos);
    h.row = take<std::uint32_t>(in, pos);
    h.chunk_seq = take<std::uint32_t>(in, pos);
    h.chunk_count = take<std::uint32_t>(in, pos);
    h.payload_off = take<std::uint64_t>(in, pos);
    h.payload_len = take<std::uint32_t>(in, pos);
    h.payload_crc = take<std::uint32_t>(in, pos);
    const std::uint32_t expect = crc32c(in.first(pos));
    if (take<std::uint32_t>(in, pos) != expect)
        return std::nullopt;
    return h;
}

} // namespace transport
} // namespace net
} // namespace rog
