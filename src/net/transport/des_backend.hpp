/**
 * @file
 * Simulator-side transport backends.
 *
 * DesBackend is the deterministic twin: frames travel the
 * fluid-simulated Channel under virtual time, and receiver decisions
 * come from a local ChunkReceiver fed exactly what the channel (and
 * its fault layer) says arrived — corrupted deliveries garble a real
 * byte so the CRC verdict is computed, never assumed. Byte-for-byte,
 * this reproduces the pre-split ReliableLink timeline.
 *
 * ReplayBackend is the cross-validation twin: each attempt resolves
 * from the next record of a wire trace captured on a real-socket run,
 * so the protocol core re-makes every decision the deployment made —
 * under virtual time, in-process, with no sockets. A divergence
 * (the core attempting something the trace never saw) is recorded,
 * not fatal, so the harness can print both logs.
 */
#ifndef ROG_NET_TRANSPORT_DES_BACKEND_HPP
#define ROG_NET_TRANSPORT_DES_BACKEND_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "net/channel.hpp"
#include "net/transport/backend.hpp"
#include "net/transport/buffer_pool.hpp"
#include "net/transport/receiver.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace net {
namespace transport {

/** One-shot TimerId facade over the simulator's event queue. */
class SimTimers
{
  public:
    explicit SimTimers(sim::Simulation &sim) : sim_(sim) {}
    ~SimTimers();

    TimerId after(double delay_s, std::function<void()> fire);
    void cancel(TimerId id);

  private:
    sim::Simulation &sim_;
    std::map<TimerId, sim::EventId> pending_;
    TimerId next_ = 1;
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/** The deterministic twin: frames over the simulated Channel. */
class DesBackend : public Backend
{
  public:
    /** @p sim and @p channel must outlive the backend. */
    DesBackend(sim::Simulation &sim, Channel &channel,
               const TransportConfig &config,
               TransportObserver *observer = nullptr);
    ~DesBackend() override;

    double now() const override;
    TimerId after(double delay_s, std::function<void()> fire) override;
    void cancelTimer(TimerId id) override;
    std::uint64_t openSend(LinkId link, const MessageKey &key,
                           bool payload_mode) override;
    void sendFrame(std::uint64_t send_id, const FrameHeader &hdr,
                   std::span<const std::uint8_t> frag,
                   std::span<const std::uint8_t> chunk, double frag_len,
                   double chunk_len, double timeout_s,
                   VerdictCallback done,
                   std::function<void()> drop) override;
    void finishSend(std::uint64_t send_id, bool delivered) override;
    void abortSend(std::uint64_t send_id) override;
    void setReceiverEventSink(EventSink sink) override;

    /** The local receiver half (e.g. for delivered-message counts). */
    ChunkReceiver &receiver() { return receiver_; }

  private:
    /** Per-send wire state; receiver state is scoped to the same id. */
    struct Stream
    {
        LinkId link = 0;
        MessageKey key;
        bool payload_mode = false;

        /** A corrupted fragment contributed to the current chunk. */
        bool garbled = false;

        bool pending = false; //!< a frame is in flight.
        std::span<const std::uint8_t> chunk;
        double chunk_len = 0.0;
        VerdictCallback done;
        std::function<void()> drop;

        BufferPool::Lease<std::uint8_t> wire; //!< serialized header.
        BufferPool::Lease<std::uint8_t> garble_scratch;
    };

    void onTransferDone(std::uint64_t send_id, const TransferResult &r);
    void onTransferDrop(std::uint64_t send_id);

    sim::Simulation &sim_;
    Channel &channel_;
    TransportConfig config_;
    SimTimers timers_;
    ChunkReceiver receiver_;
    std::map<std::uint64_t, Stream> streams_;
    std::uint64_t next_send_ = 1;
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/** Resolves each attempt from a recorded wire trace, in virtual time. */
class ReplayBackend : public Backend
{
  public:
    /** @p trace must outlive the backend. */
    ReplayBackend(sim::Simulation &sim, const TransportTrace &trace);

    double now() const override;
    TimerId after(double delay_s, std::function<void()> fire) override;
    void cancelTimer(TimerId id) override;
    std::uint64_t openSend(LinkId link, const MessageKey &key,
                           bool payload_mode) override;
    void sendFrame(std::uint64_t send_id, const FrameHeader &hdr,
                   std::span<const std::uint8_t> frag,
                   std::span<const std::uint8_t> chunk, double frag_len,
                   double chunk_len, double timeout_s,
                   VerdictCallback done,
                   std::function<void()> drop) override;
    void finishSend(std::uint64_t send_id, bool delivered) override;
    void abortSend(std::uint64_t send_id) override;
    void setReceiverEventSink(EventSink sink) override;

    /** Trace records consumed so far. */
    std::size_t attemptsConsumed() const { return next_attempt_; }

    /**
     * First divergence between what the protocol core attempted and
     * what the trace recorded (empty = replay matched the wire).
     */
    const std::string &divergence() const { return divergence_; }

  private:
    struct Stream
    {
        LinkId link = 0;
        MessageKey key;
    };

    sim::Simulation &sim_;
    const TransportTrace &trace_;
    SimTimers timers_;
    std::map<std::uint64_t, Stream> streams_;
    std::uint64_t next_send_ = 1;
    std::size_t next_attempt_ = 0;
    std::string divergence_;
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_DES_BACKEND_HPP
