/**
 * @file
 * BufferPool for transport frames — the implementation lives in
 * common/buffer_pool.hpp so that the codec's scratch and the
 * transport's frame/chunk buffers recycle through one arena; this
 * header keeps the transport-namespace spelling working (the same
 * arrangement as transport/crc32c.hpp).
 */
#ifndef ROG_NET_TRANSPORT_BUFFER_POOL_HPP
#define ROG_NET_TRANSPORT_BUFFER_POOL_HPP

#include "common/buffer_pool.hpp"

namespace rog {
namespace net {
namespace transport {

using rog::BufferPool;

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_BUFFER_POOL_HPP
