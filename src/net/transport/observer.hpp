/**
 * @file
 * Observation interface for reliable-transport receiver decisions.
 *
 * The transport lives in the net layer and must not depend on the
 * fault layer (which depends on net); invariant checking plugs in
 * through this interface instead. Every hook describes one receiver
 * decision for the message keyed (worker, version, row, direction).
 */
#ifndef ROG_NET_TRANSPORT_OBSERVER_HPP
#define ROG_NET_TRANSPORT_OBSERVER_HPP

#include <cstdint>

namespace rog {
namespace net {
namespace transport {

/** Receives one callback per transport receiver decision. */
class TransportObserver
{
  public:
    virtual ~TransportObserver() = default;

    /**
     * One chunk was handled: @p crc_ok is the receiver-side checksum
     * verdict, @p accepted_fresh whether the chunk was applied as new
     * payload (as opposed to dedup'd or discarded).
     */
    virtual void onTransportChunk(std::size_t worker,
                                  std::int64_t version, std::size_t row,
                                  std::uint32_t chunk_seq, bool crc_ok,
                                  bool accepted_fresh, bool pull) = 0;

    /** The complete message was delivered to the application. */
    virtual void onTransportDeliver(std::size_t worker,
                                    std::int64_t version,
                                    std::size_t row, bool pull) = 0;

    /**
     * A retry resumed from a byte offset: @p resumed_bytes skipped as
     * already delivered out of @p requested_bytes for the chunk.
     */
    virtual void onTransportResume(std::size_t worker,
                                   std::int64_t version, std::size_t row,
                                   double resumed_bytes,
                                   double requested_bytes, bool pull) = 0;
};

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_OBSERVER_HPP
