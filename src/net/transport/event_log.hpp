/**
 * @file
 * Structured transport event log: the record of every sender and
 * receiver decision the reliable transport makes, in a stable text
 * form that round-trips through a strict parser.
 *
 * The log is the transport's observability *and* its equivalence
 * oracle: two runs of the protocol core are "the same" exactly when
 * their normalized logs match line for line. A real-socket run records
 * its log (plus a wire trace of per-attempt outcomes, see
 * TransportTrace); the cross-validation harness replays the trace
 * through the deterministic DES twin and asserts the logs agree
 * frame-for-frame. Normalization strips wall-clock timestamps — the
 * only field a real backend cannot reproduce in virtual time.
 *
 * Wire-trace line format (one record per line, `#` comments allowed):
 *
 *     trace v1 backend=udp chunk=<f> attempts=<n> base=<f> max=<f>
 *         jitter=<f> jseed=<n> resume=<0|1>
 *     send link=<n> w=<n> v=<n> row=<n> dir=push|pull bytes=<f>
 *         deadline=<f|inf>
 *     att link=<n> w=<n> v=<n> row=<n> dir=push|pull seq=<n> off=<n>
 *         out=accept|dup|corrupt|held|partial|timeout bytes=<f>
 *         elapsed=<f> complete=<0|1>
 *     rx link=<n> w=<n> v=<n> row=<n> dir=push|pull seq=<n> off=<n>
 *         len=<n> got=<n> crc=ok|bad
 *
 * Event lines are what toString() renders:
 *
 *     t=<f> <kind> link=<n> w=<n> v=<n> row=<n> dir=push|pull
 *         seq=<n> a=<f> b=<f>
 *
 * Both parsers reject malformed input with a line-numbered diagnostic
 * (the same contract as fault::FaultPlan::tryParse) — never a silent
 * skip.
 */
#ifndef ROG_NET_TRANSPORT_EVENT_LOG_HPP
#define ROG_NET_TRANSPORT_EVENT_LOG_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <vector>

namespace rog {
namespace net {

/** Index of a device link (same alias as net/channel.hpp). */
using LinkId = std::size_t;

namespace transport {

/** Identity of one transport message (one gradient row push/pull). */
struct MessageKey
{
    std::uint16_t worker = 0;
    std::int64_t version = 0;
    std::uint32_t row = 0;
    bool pull = false;

    auto
    tie() const
    {
        return std::tie(worker, version, row, pull);
    }

    bool operator<(const MessageKey &o) const { return tie() < o.tie(); }
    bool operator==(const MessageKey &o) const { return tie() == o.tie(); }
};

/** One entry of the structured replay log. */
struct TransportEvent
{
    enum class Kind {
        Attempt,     //!< a=wire bytes, b=resume offset.
        Resume,      //!< a=resumed bytes, b=chunk payload bytes.
        Backoff,     //!< a=delay seconds, b=backoff exponent.
        Accept,      //!< chunk passed CRC and was applied fresh.
        Duplicate,   //!< chunk arrived again and was dedup'd.
        CorruptDrop, //!< chunk failed CRC and was discarded.
        ReorderHold, //!< chunk held to apply after its successor.
        Deliver,     //!< message complete.
        Fail,        //!< a=1 if the deadline expired, 0 otherwise.
    };

    double t = 0.0;
    Kind kind = Kind::Attempt;
    LinkId link = 0;
    MessageKey key;
    std::uint32_t chunk_seq = 0;
    double a = 0.0;
    double b = 0.0;

    bool operator==(const TransportEvent &o) const;
};

/** Which end of the link a decision belongs to. */
enum class EventSide {
    Sender,   //!< Attempt / Resume / Backoff / Fail.
    Receiver, //!< Accept / Duplicate / CorruptDrop / ReorderHold / Deliver.
};

/** The side that emits events of @p kind. */
EventSide eventSide(TransportEvent::Kind kind);

/** Receives events as they are decided (stamped by the producer). */
using EventSink = std::function<void(const TransportEvent &)>;

/** Render one event as a stable text line (for replay comparison). */
std::string toString(const TransportEvent &ev);

/** Outcome of parsing one event line. */
struct EventParseResult
{
    TransportEvent event;
    std::string error; //!< empty on success.

    bool ok() const { return error.empty(); }
};

/** Strictly parse one toString() line (no surrounding whitespace). */
EventParseResult tryParseEvent(const std::string &line);

/** Outcome of parsing a whole event log. */
struct LogParseResult
{
    std::vector<TransportEvent> events;
    std::string error; //!< empty on success; line-numbered otherwise.

    bool ok() const { return error.empty(); }
};

/** Parse a multi-line log dump (blank lines and `#` comments ok). */
LogParseResult tryParseLog(const std::string &text);

/** Keep only the events one side emitted. */
std::vector<TransportEvent> filterSide(const std::vector<TransportEvent> &log,
                                       EventSide side);

/**
 * Render a log with timestamps normalized away (t=0 on every line):
 * the canonical form compared across backends, where virtual and
 * wall-clock time cannot agree but every decision must.
 */
std::string renderNormalized(const std::vector<TransportEvent> &log);

/** What one wire attempt resolved to, as the sender saw it. */
enum class AttemptOutcome {
    Accept,  //!< receiver accepted the chunk fresh.
    Dup,     //!< receiver had the chunk already.
    Corrupt, //!< receiver dropped the chunk on CRC failure.
    Held,    //!< receiver reorder-held the chunk.
    Partial, //!< a prefix arrived; off+bytes tell how much.
    Timeout, //!< nothing (or no acknowledgement) came back.
};

const char *toString(AttemptOutcome o);

/** One message the harness asked the transport to send. */
struct SendRecord
{
    LinkId link = 0;
    MessageKey key;
    double payload_bytes = 0.0;
    double deadline_s = 0.0; //!< inf = none.
};

/** One wire attempt and its outcome (sender side). */
struct AttemptRecord
{
    LinkId link = 0;
    MessageKey key;
    std::uint32_t chunk_seq = 0;
    std::uint64_t payload_off = 0;
    AttemptOutcome outcome = AttemptOutcome::Timeout;
    double bytes_sent = 0.0; //!< wire bytes that arrived (hdr + prefix).
    double elapsed_s = 0.0;  //!< wall seconds from attempt to verdict.
    bool message_complete = false;
};

/** One frame as the receiver saw it (receiver side). */
struct RxRecord
{
    LinkId link = 0;
    MessageKey key;
    std::uint32_t chunk_seq = 0;
    std::uint64_t payload_off = 0;
    std::uint32_t frag_len = 0; //!< header's fragment length.
    std::uint32_t got = 0;      //!< payload bytes actually present.
    bool crc_ok = true;         //!< verdict over the assembled chunk.
};

/** Transport configuration echoed into the trace header. */
struct TraceConfig
{
    std::string backend = "des";
    double chunk_bytes = 16.0 * 1024.0;
    std::size_t max_attempts = 8;
    double backoff_base_s = 0.05;
    double backoff_max_s = 2.0;
    double jitter_frac = 0.25;
    std::uint64_t jitter_seed = 0x7261676Eull;
    bool resume_from_offset = true;
};

struct TraceParseResult;

/**
 * A recorded transport run: enough to re-issue the same sends and
 * replay every wire decision through the deterministic twin.
 */
struct TransportTrace
{
    TraceConfig config;
    std::vector<SendRecord> sends;
    std::vector<AttemptRecord> attempts;
    std::vector<RxRecord> rx;

    std::string toText() const;

    /** Strict line-based parse; rejections name line and field. */
    static TraceParseResult tryParse(const std::string &text);
};

/** Outcome of TransportTrace::tryParse. */
struct TraceParseResult
{
    TransportTrace trace;
    std::string error; //!< empty on success; line-numbered.

    bool ok() const { return error.empty(); }
};

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_EVENT_LOG_HPP
