/**
 * @file
 * Wire frames for the reliable gradient transport.
 *
 * A gradient push is one *message* — (worker, version, row) plus a
 * payload — split into fixed-size *chunks*, each of which travels as
 * one frame: a self-describing header followed by a payload fragment.
 * The header names the fragment's position (chunk sequence number and
 * byte offset within the chunk), so a retransmission after a cut link
 * can resume from the exact delivered byte offset instead of
 * re-sending the row from scratch, and the receiver can deduplicate
 * replays on (worker, version, row, chunk_seq).
 *
 * Layout (little-endian, kWireSize bytes):
 *
 *     magic       u32   'RGFR'
 *     flags       u16   bit 0: pull direction (server -> worker)
 *     worker      u16
 *     version     i64   training iteration of the row
 *     row         u32   synchronization-unit index
 *     chunk_seq   u32   chunk index within the message
 *     chunk_count u32   total chunks of the message
 *     payload_off u64   byte offset of this fragment within the chunk
 *     payload_len u32   fragment length in bytes
 *     payload_crc u32   CRC32C of the *complete* chunk payload
 *     header_crc  u32   CRC32C of all preceding header bytes
 *
 * The payload CRC covers the whole chunk (not the fragment): the
 * receiver reassembles fragments and verifies once the chunk is
 * complete — corruption cannot be localized below CRC granularity, so
 * a mismatch discards and re-requests the entire chunk.
 */
#ifndef ROG_NET_TRANSPORT_FRAME_HPP
#define ROG_NET_TRANSPORT_FRAME_HPP

#include <cstdint>
#include <optional>
#include <span>

namespace rog {
namespace net {
namespace transport {

/** Frame header flag bits. */
enum FrameFlags : std::uint16_t {
    kFlagPull = 1u << 0, //!< server -> worker (pull) direction.

    // Acknowledgement frames (real-socket backends only; the DES twin
    // resolves verdicts in-process). An ACK is a header-only frame
    // echoing the data frame's key and chunk_seq; the bits below carry
    // the receiver's decision, and for a partial (truncated) delivery
    // payload_off holds the contiguous chunk prefix received so far —
    // which is exactly what resume-from-offset needs.
    kFlagAck = 1u << 1,         //!< this frame is an acknowledgement.
    kFlagAckCrcFail = 1u << 2,  //!< chunk discarded on CRC failure.
    kFlagAckDup = 1u << 3,      //!< chunk dedup'd (already accepted).
    kFlagAckHeld = 1u << 4,     //!< chunk reorder-held.
    kFlagAckComplete = 1u << 5, //!< whole message now delivered.
    kFlagAckPartial = 1u << 6,  //!< fragment incomplete; off = prefix.
};

/** Parsed (or to-be-serialized) frame header. */
struct FrameHeader
{
    static constexpr std::uint32_t kMagic = 0x52474652u; // 'RGFR'
    static constexpr std::size_t kWireSize = 48;

    std::uint16_t flags = 0;
    std::uint16_t worker = 0;
    std::int64_t version = 0;
    std::uint32_t row = 0;
    std::uint32_t chunk_seq = 0;
    std::uint32_t chunk_count = 1;
    std::uint64_t payload_off = 0;
    std::uint32_t payload_len = 0;
    std::uint32_t payload_crc = 0;

    bool pull() const { return (flags & kFlagPull) != 0; }

    /** Write the header (with magic and header CRC) into @p out. */
    void serialize(std::span<std::uint8_t> out) const;

    /**
     * Parse @p in; returns nullopt when the buffer is short, the magic
     * is wrong, or the header CRC does not match (a corrupted header
     * is indistinguishable from line noise and the frame is dropped).
     */
    static std::optional<FrameHeader> parse(std::span<const std::uint8_t> in);
};

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_FRAME_HPP
