#include "net/transport/socket_backend.hpp"

#include <arpa/inet.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/logging.hpp"

namespace rog {
namespace net {
namespace transport {

namespace {

constexpr std::size_t kMaxDatagram = 65536;

MessageKey
keyOf(const FrameHeader &hdr)
{
    MessageKey key;
    key.worker = hdr.worker;
    key.version = hdr.version;
    key.row = hdr.row;
    key.pull = hdr.pull();
    return key;
}

bool
resolveAddr(const std::string &host, std::uint16_t port,
            sockaddr_in &out)
{
    std::memset(&out, 0, sizeof(out));
    out.sin_family = AF_INET;
    out.sin_port = htons(port);
    return ::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

/**
 * bind(2) with an EADDRINUSE retry window. A server restarted onto
 * its crashed predecessor's port can race the kernel reclaiming the
 * dead process's socket; every other errno fails immediately.
 */
bool
bindWithRetry(int fd, const sockaddr_in &addr, double window_s)
{
    constexpr useconds_t kRetryDelayUs = 50'000; // 50 ms between tries.
    double waited_s = 0.0;
    for (;;) {
        if (::bind(fd,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) == 0)
            return true;
        if (errno != EADDRINUSE || waited_s >= window_s)
            return false;
        ::usleep(kRetryDelayUs);
        waited_s += kRetryDelayUs / 1e6;
    }
}

} // namespace

FrameHeader
makeAck(const FrameHeader &data, const FrameAssembler::Result &r)
{
    FrameHeader ack;
    ack.flags = kFlagAck | (data.flags & kFlagPull);
    ack.worker = data.worker;
    ack.version = data.version;
    ack.row = data.row;
    ack.chunk_seq = data.chunk_seq;
    ack.chunk_count = data.chunk_count;
    ack.payload_len = 0;
    ack.payload_crc = 0;
    if (!r.chunk_complete) {
        ack.flags |= kFlagAckPartial;
        ack.payload_off = r.prefix; // resume-from-offset, for real.
        return ack;
    }
    ack.payload_off = data.payload_off;
    if (!r.decision.crc_ok) {
        ack.flags |= kFlagAckCrcFail;
        return ack;
    }
    if (r.decision.held)
        ack.flags |= kFlagAckHeld;
    else if (r.decision.duplicates > 0 && r.decision.fresh_accepts == 0)
        ack.flags |= kFlagAckDup;
    if (r.decision.message_complete)
        ack.flags |= kFlagAckComplete;
    return ack;
}

// ----------------------------------------------------- SocketSenderBase

SocketSenderBase::SocketSenderBase(PollLoop &loop,
                                   const SocketOptions &opts,
                                   TransportTrace *trace)
    : loop_(loop), opts_(opts), trace_(trace)
{
}

SocketSenderBase::~SocketSenderBase()
{
    for (auto &[id, p] : pending_)
        loop_.cancel(p.timer);
}

double
SocketSenderBase::now() const
{
    return loop_.now();
}

TimerId
SocketSenderBase::after(double delay_s, std::function<void()> fire)
{
    return loop_.after(delay_s, std::move(fire));
}

void
SocketSenderBase::cancelTimer(TimerId id)
{
    loop_.cancel(id);
}

std::uint64_t
SocketSenderBase::openSend(LinkId link, const MessageKey &key,
                           bool payload_mode)
{
    (void)payload_mode; // the receiver's peer decides what to retain.
    const std::uint64_t id = next_send_++;
    streams_[id] = Stream{link, key};
    return id;
}

void
SocketSenderBase::fail(const std::string &what)
{
    if (last_error_.empty())
        last_error_ = what + " (" + std::strerror(errno) + ")";
}

void
SocketSenderBase::sendFrame(std::uint64_t send_id, const FrameHeader &hdr,
                            std::span<const std::uint8_t> frag,
                            std::span<const std::uint8_t> chunk,
                            double frag_len, double chunk_len,
                            double timeout_s, VerdictCallback done,
                            std::function<void()> drop)
{
    (void)chunk;
    (void)chunk_len;
    (void)drop; // the socket cannot be torn down under the link.
    ROG_ASSERT(streams_.count(send_id) != 0,
               "sendFrame on unopened stream");
    ROG_ASSERT(pending_.count(send_id) == 0,
               "transport stream is stop-and-wait");
    ROG_ASSERT(static_cast<double>(frag.size()) == frag_len,
               "socket backends need integral byte lengths");

    std::vector<std::uint8_t> bytes(FrameHeader::kWireSize + frag.size());
    hdr.serialize({bytes.data(), FrameHeader::kWireSize});
    std::copy(frag.begin(), frag.end(),
              bytes.begin() + FrameHeader::kWireSize);

    Pending p;
    p.send_id = send_id;
    p.hdr = hdr;
    p.frag_len = frag_len;
    p.done = std::move(done);
    p.started = loop_.now();
    const double wait = std::isfinite(timeout_s)
                            ? std::min(opts_.ack_timeout_s, timeout_s)
                            : opts_.ack_timeout_s;
    p.timer = loop_.after(
        wait, [this, send_id] { resolveTimeout(send_id); });
    pending_.emplace(send_id, std::move(p));

    emitFrame(bytes);
}

void
SocketSenderBase::handleAck(const FrameHeader &ack)
{
    const MessageKey key = keyOf(ack);
    auto it = pending_.end();
    for (auto cand = pending_.begin(); cand != pending_.end(); ++cand) {
        if (keyOf(cand->second.hdr) == key &&
            cand->second.hdr.chunk_seq == ack.chunk_seq) {
            it = cand;
            break;
        }
    }
    if (it == pending_.end())
        return; // late or duplicated ACK: the attempt already resolved.

    Pending p = std::move(it->second);
    pending_.erase(it);
    loop_.cancel(p.timer);

    FrameVerdict v;
    if (ack.flags & kFlagAckPartial) {
        // The receiver holds a contiguous prefix; what this attempt
        // delivered is whatever extends past its own start offset.
        const double progress = std::clamp(
            static_cast<double>(ack.payload_off) -
                static_cast<double>(p.hdr.payload_off),
            0.0, p.frag_len);
        v.bytes_sent = FrameHeader::kWireSize + progress;
        recordAttempt(p, AttemptOutcome::Partial, v.bytes_sent, false);
        p.done(v);
        return;
    }

    v.completed = true;
    v.bytes_sent = FrameHeader::kWireSize + p.frag_len;
    v.message_complete = (ack.flags & kFlagAckComplete) != 0;
    if (ack.flags & kFlagAckCrcFail) {
        recordAttempt(p, AttemptOutcome::Corrupt, v.bytes_sent, false);
        p.done(v); // crc_ok stays false.
        return;
    }
    v.crc_ok = true;
    AttemptOutcome out = AttemptOutcome::Accept;
    if (ack.flags & kFlagAckHeld) {
        v.held = true;
        out = AttemptOutcome::Held;
    } else if (ack.flags & kFlagAckDup) {
        v.duplicates = 1;
        out = AttemptOutcome::Dup;
    } else {
        v.fresh_accepts = 1;
    }
    recordAttempt(p, out, v.bytes_sent, v.message_complete);
    p.done(v);
}

void
SocketSenderBase::resolveTimeout(std::uint64_t send_id)
{
    auto it = pending_.find(send_id);
    if (it == pending_.end())
        return;
    Pending p = std::move(it->second);
    pending_.erase(it);
    recordAttempt(p, AttemptOutcome::Timeout, 0.0, false);
    FrameVerdict v; // nothing came back: no progress to report.
    p.done(v);
}

void
SocketSenderBase::recordAttempt(const Pending &p, AttemptOutcome out,
                                double bytes_sent, bool complete)
{
    if (!trace_)
        return;
    AttemptRecord rec;
    auto sit = streams_.find(p.send_id);
    rec.link = sit != streams_.end() ? sit->second.link : 0;
    rec.key = keyOf(p.hdr);
    rec.chunk_seq = p.hdr.chunk_seq;
    rec.payload_off = p.hdr.payload_off;
    rec.outcome = out;
    rec.bytes_sent = bytes_sent;
    rec.elapsed_s = loop_.now() - p.started;
    rec.message_complete = complete;
    trace_->attempts.push_back(rec);
}

void
SocketSenderBase::finishSend(std::uint64_t send_id, bool delivered)
{
    (void)delivered; // receiver-side flush happens in the peer.
    auto it = pending_.find(send_id);
    if (it != pending_.end()) {
        loop_.cancel(it->second.timer);
        pending_.erase(it);
    }
    streams_.erase(send_id);
}

void
SocketSenderBase::abortSend(std::uint64_t send_id)
{
    finishSend(send_id, false);
}

void
SocketSenderBase::setReceiverEventSink(EventSink sink)
{
    (void)sink; // receiver decisions happen in the peer process.
}

// ---------------------------------------------------------- UdpBackend

UdpBackend::UdpBackend(PollLoop &loop, const std::string &host,
                       std::uint16_t port, const SocketOptions &opts,
                       fault::SocketFaultInjector *faults,
                       TransportTrace *trace)
    : SocketSenderBase(loop, opts, trace), faults_(faults)
{
    sockaddr_in addr{};
    if (!resolveAddr(host, port, addr)) {
        fail("bad address " + host);
        return;
    }
    fd_.reset(::socket(AF_INET, SOCK_DGRAM, 0));
    if (!fd_) {
        fail("udp socket");
        return;
    }
    if (::connect(fd_.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        fail("udp connect");
        return;
    }
    if (!setNonBlocking(fd_.get())) {
        fail("udp nonblock");
        return;
    }
    loop_.watch(fd_.get(), POLLIN, [this](short) { onReadable(); });
}

UdpBackend::~UdpBackend()
{
    if (fd_)
        loop_.unwatch(fd_.get());
}

void
UdpBackend::emitFrame(const std::vector<std::uint8_t> &bytes)
{
    fault::DatagramFate fate;
    if (faults_)
        fate = faults_->next(loop_.now());
    if (fate.drop)
        return;

    std::vector<std::uint8_t> wire = bytes;
    const std::size_t payload = wire.size() - FrameHeader::kWireSize;
    if (fate.keep_frac < 1.0 && payload > 0) {
        // Cut the payload mid-fragment: the receiver ACKs the intact
        // prefix and the protocol resumes from that offset.
        const auto keep = static_cast<std::size_t>(
            std::floor(static_cast<double>(payload) * fate.keep_frac));
        wire.resize(FrameHeader::kWireSize + keep);
    }
    if (fate.corrupt && wire.size() > FrameHeader::kWireSize)
        wire[FrameHeader::kWireSize] ^= 0x40; // CRC must catch this.

    const int copies = fate.duplicate ? 2 : 1;
    const auto ship = [this](const std::vector<std::uint8_t> &w,
                             int times) {
        for (int i = 0; i < times; ++i)
            if (::send(fd_.get(), w.data(), w.size(), 0) < 0 &&
                errno != EAGAIN && errno != EWOULDBLOCK)
                fail("udp send");
    };
    if (fate.delay_s > 0.0) {
        loop_.after(fate.delay_s,
                    [ship, wire, copies] { ship(wire, copies); });
        return;
    }
    ship(wire, copies);
}

void
UdpBackend::onReadable()
{
    std::uint8_t buf[kMaxDatagram];
    for (;;) {
        const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno != EAGAIN && errno != EWOULDBLOCK &&
                errno != ECONNREFUSED)
                fail("udp recv");
            return;
        }
        const auto hdr = FrameHeader::parse(
            {buf, static_cast<std::size_t>(n)});
        if (!hdr || (hdr->flags & kFlagAck) == 0)
            continue; // not an intact ACK: ignore.
        handleAck(*hdr);
    }
}

// ---------------------------------------------------------- TcpBackend

TcpBackend::TcpBackend(PollLoop &loop, const std::string &host,
                       std::uint16_t port, const SocketOptions &opts,
                       TransportTrace *trace)
    : SocketSenderBase(loop, opts, trace)
{
    sockaddr_in addr{};
    if (!resolveAddr(host, port, addr)) {
        fail("bad address " + host);
        return;
    }
    fd_.reset(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd_) {
        fail("tcp socket");
        return;
    }
    if (!setNonBlocking(fd_.get())) {
        fail("tcp nonblock");
        return;
    }
    if (::connect(fd_.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0 &&
        errno != EINPROGRESS) {
        fail("tcp connect");
        return;
    }
    loop_.watch(fd_.get(), POLLIN | POLLOUT,
                [this](short revents) { onEvents(revents); });
}

TcpBackend::~TcpBackend()
{
    if (fd_)
        loop_.unwatch(fd_.get());
}

void
TcpBackend::emitFrame(const std::vector<std::uint8_t> &bytes)
{
    out_.insert(out_.end(), bytes.begin(), bytes.end());
    if (connected_)
        flushOut();
}

void
TcpBackend::flushOut()
{
    while (!out_.empty()) {
        const ssize_t n =
            ::send(fd_.get(), out_.data(), out_.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            fail("tcp send");
            return;
        }
        out_.erase(out_.begin(), out_.begin() + n);
    }
    loop_.watch(fd_.get(), POLLIN | (out_.empty() ? 0 : POLLOUT),
                [this](short revents) { onEvents(revents); });
}

void
TcpBackend::onEvents(short revents)
{
    if (!connected_ && (revents & (POLLOUT | POLLERR | POLLHUP))) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
            errno = err;
            fail("tcp connect");
            loop_.unwatch(fd_.get());
            return;
        }
        connected_ = true;
        flushOut();
    }
    if (revents & POLLOUT && connected_)
        flushOut();
    if (revents & POLLIN) {
        std::uint8_t buf[16384];
        for (;;) {
            const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
            if (n < 0) {
                if (errno != EAGAIN && errno != EWOULDBLOCK)
                    fail("tcp recv");
                break;
            }
            if (n == 0) {
                // Peer closed. Stop watching so a dead stream cannot
                // spin the loop; pending attempts time out and the
                // session layer reconnects with a fresh backend.
                loop_.unwatch(fd_.get());
                connected_ = false;
                if (last_error_.empty())
                    last_error_ = "tcp peer closed";
                break;
            }
            in_.insert(in_.end(), buf, buf + n);
        }
        while (in_.size() >= FrameHeader::kWireSize) {
            const auto hdr = FrameHeader::parse(
                {in_.data(), FrameHeader::kWireSize});
            ROG_ASSERT(hdr.has_value(),
                       "tcp ack stream desynchronized");
            ROG_ASSERT((hdr->flags & kFlagAck) != 0,
                       "data frame on the sender's ack stream");
            in_.erase(in_.begin(),
                      in_.begin() + FrameHeader::kWireSize);
            handleAck(*hdr);
        }
    }
}

// ------------------------------------------------- ReceiverEndpointBase

ReceiverEndpointBase::ReceiverEndpointBase(PollLoop &loop,
                                           TransportObserver *observer,
                                           bool store_payload)
    : loop_(loop),
      receiver_([&loop] { return loop.now(); }, observer,
                [this](const TransportEvent &ev) {
                    events_.push_back(ev);
                }),
      assembler_(receiver_, store_payload), store_payload_(store_payload)
{
}

void
ReceiverEndpointBase::setDeliverySink(DeliverySink sink)
{
    ROG_ASSERT(store_payload_,
               "delivery sink needs store_payload at construction");
    delivery_ = std::move(sink);
}

void
ReceiverEndpointBase::fail(const std::string &what)
{
    if (last_error_.empty())
        last_error_ = what + " (" + std::strerror(errno) + ")";
}

FrameHeader
ReceiverEndpointBase::onDataFrame(const FrameHeader &hdr,
                                  std::span<const std::uint8_t> present)
{
    const auto r = assembler_.onFrame(0, hdr, present);

    RxRecord rec;
    rec.link = 0;
    rec.key = keyOf(hdr);
    rec.chunk_seq = hdr.chunk_seq;
    rec.payload_off = hdr.payload_off;
    rec.frag_len = hdr.payload_len;
    rec.got = static_cast<std::uint32_t>(present.size());
    rec.crc_ok = r.chunk_complete ? r.decision.crc_ok : true;
    rx_records_.push_back(rec);

    if (r.chunk_complete && r.decision.message_complete &&
        r.decision.assembled && delivery_)
        delivery_(keyOf(hdr),
                  std::vector<std::uint8_t>(*r.decision.assembled));

    return makeAck(hdr, r);
}

// -------------------------------------------------- UdpReceiverEndpoint

UdpReceiverEndpoint::UdpReceiverEndpoint(PollLoop &loop,
                                         std::uint16_t port,
                                         TransportObserver *observer,
                                         bool store_payload,
                                         double bind_retry_window_s)
    : ReceiverEndpointBase(loop, observer, store_payload)
{
    fd_.reset(::socket(AF_INET, SOCK_DGRAM, 0));
    if (!fd_) {
        fail("udp socket");
        return;
    }
    int one = 1;
    ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    resolveAddr("127.0.0.1", port, addr);
    if (!bindWithRetry(fd_.get(), addr, bind_retry_window_s)) {
        fail("udp bind");
        return;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd_.get(), reinterpret_cast<sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    if (!setNonBlocking(fd_.get())) {
        fail("udp nonblock");
        return;
    }
    loop_.watch(fd_.get(), POLLIN, [this](short) { onReadable(); });
}

UdpReceiverEndpoint::~UdpReceiverEndpoint()
{
    if (fd_)
        loop_.unwatch(fd_.get());
}

void
UdpReceiverEndpoint::onReadable()
{
    std::uint8_t buf[kMaxDatagram];
    for (;;) {
        sockaddr_in src{};
        socklen_t slen = sizeof(src);
        const ssize_t n =
            ::recvfrom(fd_.get(), buf, sizeof(buf), 0,
                       reinterpret_cast<sockaddr *>(&src), &slen);
        if (n < 0) {
            if (errno != EAGAIN && errno != EWOULDBLOCK)
                fail("udp recv");
            return;
        }
        if (n < static_cast<ssize_t>(FrameHeader::kWireSize))
            continue; // not even a whole header: line noise.
        const auto hdr =
            FrameHeader::parse({buf, FrameHeader::kWireSize});
        if (!hdr || (hdr->flags & kFlagAck) != 0)
            continue; // corrupt header or a stray ACK: drop.
        const std::size_t got = std::min(
            static_cast<std::size_t>(n) - FrameHeader::kWireSize,
            static_cast<std::size_t>(hdr->payload_len));
        const FrameHeader ack =
            onDataFrame(*hdr, {buf + FrameHeader::kWireSize, got});
        std::uint8_t wire[FrameHeader::kWireSize];
        ack.serialize(wire);
        if (::sendto(fd_.get(), wire, sizeof(wire), 0,
                     reinterpret_cast<sockaddr *>(&src), slen) < 0 &&
            errno != EAGAIN && errno != EWOULDBLOCK)
            fail("udp ack send");
    }
}

// -------------------------------------------------- TcpReceiverEndpoint

TcpReceiverEndpoint::TcpReceiverEndpoint(PollLoop &loop,
                                         std::uint16_t port,
                                         TransportObserver *observer,
                                         bool store_payload,
                                         double bind_retry_window_s)
    : ReceiverEndpointBase(loop, observer, store_payload)
{
    listen_fd_.reset(::socket(AF_INET, SOCK_STREAM, 0));
    if (!listen_fd_) {
        fail("tcp socket");
        return;
    }
    int one = 1;
    ::setsockopt(listen_fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    resolveAddr("127.0.0.1", port, addr);
    if (!bindWithRetry(listen_fd_.get(), addr, bind_retry_window_s)) {
        fail("tcp bind");
        return;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_.get(), reinterpret_cast<sockaddr *>(&addr),
                  &len);
    port_ = ntohs(addr.sin_port);
    if (::listen(listen_fd_.get(), 16) != 0) {
        fail("tcp listen");
        return;
    }
    if (!setNonBlocking(listen_fd_.get())) {
        fail("tcp nonblock");
        return;
    }
    loop_.watch(listen_fd_.get(), POLLIN,
                [this](short) { onListenReadable(); });
}

TcpReceiverEndpoint::~TcpReceiverEndpoint()
{
    for (const auto &[fd, c] : conns_)
        loop_.unwatch(fd);
    if (listen_fd_)
        loop_.unwatch(listen_fd_.get());
}

void
TcpReceiverEndpoint::onListenReadable()
{
    for (;;) {
        const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
        if (fd < 0)
            return;
        setNonBlocking(fd);
        Conn c;
        c.fd.reset(fd);
        conns_.emplace(fd, std::move(c));
        loop_.watch(fd, POLLIN,
                    [this, fd](short revents) { onConnEvents(fd, revents); });
    }
}

void
TcpReceiverEndpoint::dropConn(int fd)
{
    loop_.unwatch(fd);
    conns_.erase(fd);
}

void
TcpReceiverEndpoint::flushConn(Conn &c)
{
    while (!c.out.empty()) {
        const ssize_t n = ::send(c.fd.get(), c.out.data(), c.out.size(),
                                 MSG_NOSIGNAL);
        if (n < 0)
            break; // EAGAIN or a dying peer: POLLOUT (or drop) decides.
        c.out.erase(c.out.begin(), c.out.begin() + n);
    }
    const int fd = c.fd.get();
    loop_.watch(fd, POLLIN | (c.out.empty() ? 0 : POLLOUT),
                [this, fd](short revents) { onConnEvents(fd, revents); });
}

void
TcpReceiverEndpoint::onConnEvents(int fd, short revents)
{
    auto it = conns_.find(fd);
    if (it == conns_.end())
        return;
    Conn &c = it->second;

    bool closed = false;
    if (revents & (POLLIN | POLLERR | POLLHUP)) {
        std::uint8_t buf[16384];
        for (;;) {
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    break;
                closed = true; // reset: this peer only, endpoint lives.
                break;
            }
            if (n == 0) {
                closed = true;
                break;
            }
            c.in.insert(c.in.end(), buf, buf + n);
        }
    }

    // Whatever arrived before the close still counts: decide and (if
    // the conn survives) ACK. A trailing partial frame is discarded
    // with the connection — the peer retries it after reconnecting.
    for (;;) {
        if (c.in.size() < FrameHeader::kWireSize)
            break;
        const auto hdr =
            FrameHeader::parse({c.in.data(), FrameHeader::kWireSize});
        ROG_ASSERT(hdr.has_value(), "tcp data stream desynchronized");
        ROG_ASSERT((hdr->flags & kFlagAck) == 0,
                   "ack frame on the receiver's data stream");
        const std::size_t need = FrameHeader::kWireSize + hdr->payload_len;
        if (c.in.size() < need)
            break;
        const FrameHeader ack = onDataFrame(
            *hdr, {c.in.data() + FrameHeader::kWireSize,
                   static_cast<std::size_t>(hdr->payload_len)});
        c.in.erase(c.in.begin(), c.in.begin() + need);

        std::uint8_t wire[FrameHeader::kWireSize];
        ack.serialize(wire);
        c.out.insert(c.out.end(), wire, wire + sizeof(wire));
    }

    if (closed) {
        dropConn(fd);
        return;
    }
    flushConn(c);
}

} // namespace transport
} // namespace net
} // namespace rog
