/**
 * @file
 * Real-socket transport backends: UDP datagrams and loopback TCP.
 *
 * Both run the *identical* protocol core (ReliableLink +
 * ChunkReceiver) the simulator proves out — the only new code is I/O:
 * nonblocking sockets on a single-threaded PollLoop, wall-clock
 * timers, and an acknowledgement frame per data frame (the DES twin
 * resolves verdicts in-process; a real peer has to say what it
 * decided). An ACK is a header-only FrameHeader echoing the data
 * frame's key/chunk, with flag bits for the receiver's decision; a
 * partial (truncated) delivery acks kFlagAckPartial with payload_off
 * = the contiguous chunk prefix received — which feeds straight into
 * resume-from-offset, so a cut datagram's tail is all that gets
 * resent.
 *
 * The sender side optionally records an AttemptRecord per frame into
 * a TransportTrace, and the receiver endpoints record an RxRecord per
 * frame — together exactly what the cross-validation harness
 * (crossval.hpp) needs to replay the run through the DES twin and
 * compare event logs frame-for-frame.
 *
 * Backend selection is by construction (the harness reads
 * ROG_TRANSPORT_BACKEND=des|udp|tcp); nothing in the protocol core
 * branches on it.
 */
#ifndef ROG_NET_TRANSPORT_SOCKET_BACKEND_HPP
#define ROG_NET_TRANSPORT_SOCKET_BACKEND_HPP

#include <netinet/in.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/fd.hpp"
#include "common/poll_loop.hpp"
#include "fault/socket_fault.hpp"
#include "net/transport/backend.hpp"
#include "net/transport/receiver.hpp"

namespace rog {
namespace net {
namespace transport {

/** Knobs specific to the real-socket backends. */
struct SocketOptions
{
    /** Resend (verdict: timeout) if no ACK arrives by then. */
    double ack_timeout_s = 0.25;

    /**
     * Receiver endpoints: keep retrying a bind that fails with
     * EADDRINUSE for this long before giving up. A server restarted
     * onto its old port can race the kernel's cleanup of the dead
     * process's socket; 0 = fail on the first attempt.
     */
    double bind_retry_window_s = 0.0;
};

/** Build the ACK for a data frame given the assembler's result. */
FrameHeader makeAck(const FrameHeader &data,
                    const FrameAssembler::Result &r);

/**
 * Sender-side machinery shared by the UDP and TCP backends: pending
 * stop-and-wait attempts, ACK resolution, timeout resolution, and
 * wire-trace recording. Subclasses only move bytes.
 */
class SocketSenderBase : public Backend
{
  public:
    SocketSenderBase(PollLoop &loop, const SocketOptions &opts,
                     TransportTrace *trace);
    ~SocketSenderBase() override;

    double now() const override;
    TimerId after(double delay_s, std::function<void()> fire) override;
    void cancelTimer(TimerId id) override;
    std::uint64_t openSend(LinkId link, const MessageKey &key,
                           bool payload_mode) override;
    void sendFrame(std::uint64_t send_id, const FrameHeader &hdr,
                   std::span<const std::uint8_t> frag,
                   std::span<const std::uint8_t> chunk, double frag_len,
                   double chunk_len, double timeout_s,
                   VerdictCallback done,
                   std::function<void()> drop) override;
    void finishSend(std::uint64_t send_id, bool delivered) override;
    void abortSend(std::uint64_t send_id) override;
    void setReceiverEventSink(EventSink sink) override;

    /** The socket was created and connected successfully. */
    bool ok() const { return last_error_.empty(); }
    const std::string &error() const { return last_error_; }

  protected:
    struct Stream
    {
        LinkId link = 0;
        MessageKey key;
    };

    struct Pending
    {
        std::uint64_t send_id = 0;
        FrameHeader hdr;
        double frag_len = 0.0;
        VerdictCallback done;
        double started = 0.0;
        PollLoop::TimerHandle timer = 0;
    };

    /** Ship one serialized data frame (header + fragment). */
    virtual void emitFrame(const std::vector<std::uint8_t> &bytes) = 0;

    /** An ACK frame arrived; resolve the matching pending attempt. */
    void handleAck(const FrameHeader &ack);

    void resolveTimeout(std::uint64_t send_id);
    void recordAttempt(const Pending &p, AttemptOutcome out,
                       double bytes_sent, bool complete);
    void fail(const std::string &what);

    PollLoop &loop_;
    SocketOptions opts_;
    TransportTrace *trace_ = nullptr;
    std::string last_error_;
    std::map<std::uint64_t, Stream> streams_;
    std::map<std::uint64_t, Pending> pending_; //!< by send stream id.
    std::uint64_t next_send_ = 1;
};

/** Datagram backend: one connected UDP socket to the receiver. */
class UdpBackend : public SocketSenderBase
{
  public:
    /**
     * @param faults optional deterministic perturbation of outgoing
     *        data frames (drop/dup/truncate/corrupt/delay); ACKs are
     *        never touched. @p faults and @p trace must outlive the
     *        backend.
     */
    UdpBackend(PollLoop &loop, const std::string &host,
               std::uint16_t port, const SocketOptions &opts = {},
               fault::SocketFaultInjector *faults = nullptr,
               TransportTrace *trace = nullptr);
    ~UdpBackend() override;

  protected:
    void emitFrame(const std::vector<std::uint8_t> &bytes) override;

  private:
    void onReadable();

    UniqueFd fd_;
    fault::SocketFaultInjector *faults_ = nullptr;
};

/** Stream backend: one loopback TCP connection to the receiver. */
class TcpBackend : public SocketSenderBase
{
  public:
    TcpBackend(PollLoop &loop, const std::string &host,
               std::uint16_t port, const SocketOptions &opts = {},
               TransportTrace *trace = nullptr);
    ~TcpBackend() override;

  protected:
    void emitFrame(const std::vector<std::uint8_t> &bytes) override;

  private:
    void onEvents(short revents);
    void flushOut();

    UniqueFd fd_;
    bool connected_ = false;
    std::vector<std::uint8_t> out_; //!< unflushed outgoing bytes.
    std::vector<std::uint8_t> in_;  //!< buffered incoming ACK bytes.
};

/**
 * Receiver-side endpoint shared state: the protocol half
 * (ChunkReceiver + FrameAssembler), the structured event log, and the
 * per-frame RxRecord trace the cross-validation harness replays.
 */
class ReceiverEndpointBase
{
  public:
    /**
     * Hand-off of a fully delivered message's reassembled payload
     * bytes (the session layer's receive path). Fired exactly once
     * per message, at the frame that completes it.
     */
    using DeliverySink =
        std::function<void(const MessageKey &, std::vector<std::uint8_t> &&)>;

    /**
     * @param store_payload retain reassembled payloads so a
     *        DeliverySink can hand them up; transport-only endpoints
     *        leave it off and keep only the decision state.
     */
    ReceiverEndpointBase(PollLoop &loop,
                         TransportObserver *observer = nullptr,
                         bool store_payload = false);
    virtual ~ReceiverEndpointBase() = default;

    /** Requires construction with store_payload = true. */
    void setDeliverySink(DeliverySink sink);

    const std::vector<TransportEvent> &log() const { return events_; }
    const std::vector<RxRecord> &rxRecords() const { return rx_records_; }
    std::size_t deliveredMessages() const
    {
        return receiver_.deliveredMessages();
    }
    bool ok() const { return last_error_.empty(); }
    const std::string &error() const { return last_error_; }

  protected:
    /** Process one complete data frame; returns the ACK to send. */
    FrameHeader onDataFrame(const FrameHeader &hdr,
                            std::span<const std::uint8_t> present);
    void fail(const std::string &what);

    PollLoop &loop_;
    ChunkReceiver receiver_;
    FrameAssembler assembler_;
    bool store_payload_ = false;
    DeliverySink delivery_;
    std::vector<TransportEvent> events_;
    std::vector<RxRecord> rx_records_;
    std::string last_error_;
};

/** UDP receiver endpoint: bind, reassemble, decide, ACK. Datagram
 *  sources are distinguished per frame, so any number of senders can
 *  push at one endpoint — ACKs return to each frame's source. */
class UdpReceiverEndpoint : public ReceiverEndpointBase
{
  public:
    /** @param port 0 binds an ephemeral port (see port()).
     *  @param bind_retry_window_s see SocketOptions. */
    UdpReceiverEndpoint(PollLoop &loop, std::uint16_t port,
                        TransportObserver *observer = nullptr,
                        bool store_payload = false,
                        double bind_retry_window_s = 0.0);
    ~UdpReceiverEndpoint() override;

    std::uint16_t port() const { return port_; }

  private:
    void onReadable();

    UniqueFd fd_;
    std::uint16_t port_ = 0;
};

/**
 * TCP receiver endpoint: listen, accept any number of senders, decide,
 * ACK on the connection the data came in on. A peer that dies (reset,
 * half-open close) costs only its own connection — the endpoint keeps
 * serving the rest, and the exactly-once state survives for when the
 * peer reconnects.
 */
class TcpReceiverEndpoint : public ReceiverEndpointBase
{
  public:
    TcpReceiverEndpoint(PollLoop &loop, std::uint16_t port,
                        TransportObserver *observer = nullptr,
                        bool store_payload = false,
                        double bind_retry_window_s = 0.0);
    ~TcpReceiverEndpoint() override;

    std::uint16_t port() const { return port_; }

    /** Currently accepted sender connections. */
    std::size_t connections() const { return conns_.size(); }

  private:
    struct Conn
    {
        UniqueFd fd;
        std::vector<std::uint8_t> in;
        std::vector<std::uint8_t> out;
    };

    void onListenReadable();
    void onConnEvents(int fd, short revents);
    /** Flush pending ACK bytes; rearm POLLOUT while any remain. */
    void flushConn(Conn &c);
    void dropConn(int fd);

    UniqueFd listen_fd_;
    std::map<int, Conn> conns_;
    std::uint16_t port_ = 0;
};

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_SOCKET_BACKEND_HPP
