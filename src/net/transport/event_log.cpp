#include "net/transport/event_log.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace rog {
namespace net {
namespace transport {

namespace {

const char *
kindName(TransportEvent::Kind k)
{
    switch (k) {
    case TransportEvent::Kind::Attempt: return "attempt";
    case TransportEvent::Kind::Resume: return "resume";
    case TransportEvent::Kind::Backoff: return "backoff";
    case TransportEvent::Kind::Accept: return "accept";
    case TransportEvent::Kind::Duplicate: return "duplicate";
    case TransportEvent::Kind::CorruptDrop: return "corrupt-drop";
    case TransportEvent::Kind::ReorderHold: return "reorder-hold";
    case TransportEvent::Kind::Deliver: return "deliver";
    case TransportEvent::Kind::Fail: return "fail";
    }
    return "?";
}

bool
kindFromName(const std::string &s, TransportEvent::Kind &out)
{
    using K = TransportEvent::Kind;
    static const std::pair<const char *, K> kNames[] = {
        {"attempt", K::Attempt},       {"resume", K::Resume},
        {"backoff", K::Backoff},       {"accept", K::Accept},
        {"duplicate", K::Duplicate},   {"corrupt-drop", K::CorruptDrop},
        {"reorder-hold", K::ReorderHold}, {"deliver", K::Deliver},
        {"fail", K::Fail},
    };
    for (const auto &[name, k] : kNames)
        if (s == name) {
            out = k;
            return true;
        }
    return false;
}

/** Split on single spaces; empty tokens are a format error (nullopt
 *  is signalled by an empty result for a non-empty line). */
std::vector<std::string>
tokens(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok)
        out.push_back(std::move(tok));
    return out;
}

/** Strict full-consumption double parse ("inf" allowed). */
bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    if (s == "inf") {
        out = std::numeric_limits<double>::infinity();
        return true;
    }
    if (s == "-inf") {
        out = -std::numeric_limits<double>::infinity();
        return true;
    }
    char *end = nullptr;
    errno = 0;
    out = std::strtod(s.c_str(), &end);
    return errno == 0 && end == s.c_str() + s.size();
}

/** Strict full-consumption unsigned parse. */
bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s[0] == '-' || s[0] == '+')
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(s.c_str(), &end, 10);
    return errno == 0 && end == s.c_str() + s.size();
}

bool
parseI64(const std::string &s, std::int64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtoll(s.c_str(), &end, 10);
    return errno == 0 && end == s.c_str() + s.size();
}

/**
 * Consume "key=value" from token @p tok; on mismatch fill @p err with
 * a description mentioning @p key and return false.
 */
bool
keyed(const std::string &tok, const char *key, std::string &value,
      std::string &err)
{
    const std::string prefix = std::string(key) + "=";
    if (tok.rfind(prefix, 0) != 0) {
        err = "expected '" + prefix + "...', got '" + tok + "'";
        return false;
    }
    value = tok.substr(prefix.size());
    if (value.empty()) {
        err = "empty value for '" + std::string(key) + "'";
        return false;
    }
    return true;
}

bool
keyedDouble(const std::string &tok, const char *key, double &out,
            std::string &err)
{
    std::string v;
    if (!keyed(tok, key, v, err))
        return false;
    if (!parseDouble(v, out)) {
        err = "bad number for '" + std::string(key) + "': '" + v + "'";
        return false;
    }
    return true;
}

bool
keyedU64(const std::string &tok, const char *key, std::uint64_t &out,
         std::string &err)
{
    std::string v;
    if (!keyed(tok, key, v, err))
        return false;
    if (!parseU64(v, out)) {
        err = "bad integer for '" + std::string(key) + "': '" + v + "'";
        return false;
    }
    return true;
}

bool
keyedI64(const std::string &tok, const char *key, std::int64_t &out,
         std::string &err)
{
    std::string v;
    if (!keyed(tok, key, v, err))
        return false;
    if (!parseI64(v, out)) {
        err = "bad integer for '" + std::string(key) + "': '" + v + "'";
        return false;
    }
    return true;
}

bool
keyedDir(const std::string &tok, bool &pull, std::string &err)
{
    std::string v;
    if (!keyed(tok, "dir", v, err))
        return false;
    if (v == "push")
        pull = false;
    else if (v == "pull")
        pull = true;
    else {
        err = "bad direction '" + v + "' (want push|pull)";
        return false;
    }
    return true;
}

/** Parse the shared "link= w= v= row= dir=" token run at @p i. */
bool
parseKeyTokens(const std::vector<std::string> &toks, std::size_t &i,
               LinkId &link, MessageKey &key, std::string &err)
{
    if (toks.size() < i + 5) {
        err = "truncated record: missing link/key fields";
        return false;
    }
    std::uint64_t u = 0;
    std::int64_t v = 0;
    if (!keyedU64(toks[i], "link", u, err))
        return false;
    link = static_cast<LinkId>(u);
    if (!keyedU64(toks[i + 1], "w", u, err))
        return false;
    if (u > std::numeric_limits<std::uint16_t>::max()) {
        err = "worker out of range: " + toks[i + 1];
        return false;
    }
    key.worker = static_cast<std::uint16_t>(u);
    if (!keyedI64(toks[i + 2], "v", v, err))
        return false;
    key.version = v;
    if (!keyedU64(toks[i + 3], "row", u, err))
        return false;
    if (u > std::numeric_limits<std::uint32_t>::max()) {
        err = "row out of range: " + toks[i + 3];
        return false;
    }
    key.row = static_cast<std::uint32_t>(u);
    if (!keyedDir(toks[i + 4], key.pull, err))
        return false;
    i += 5;
    return true;
}

std::ostream &
writeKey(std::ostream &os, LinkId link, const MessageKey &key)
{
    os << "link=" << link << " w=" << key.worker << " v=" << key.version
       << " row=" << key.row << " dir=" << (key.pull ? "pull" : "push");
    return os;
}

bool
parseSeqOff(const std::vector<std::string> &toks, std::size_t &i,
            std::uint32_t &seq, std::uint64_t &off, std::string &err)
{
    if (toks.size() < i + 2) {
        err = "truncated record: missing seq/off";
        return false;
    }
    std::uint64_t u = 0;
    if (!keyedU64(toks[i], "seq", u, err))
        return false;
    if (u > std::numeric_limits<std::uint32_t>::max()) {
        err = "seq out of range: " + toks[i];
        return false;
    }
    seq = static_cast<std::uint32_t>(u);
    if (!keyedU64(toks[i + 1], "off", off, err))
        return false;
    i += 2;
    return true;
}

} // namespace

bool
TransportEvent::operator==(const TransportEvent &o) const
{
    return t == o.t && kind == o.kind && link == o.link && key == o.key &&
           chunk_seq == o.chunk_seq && a == o.a && b == o.b;
}

EventSide
eventSide(TransportEvent::Kind kind)
{
    switch (kind) {
    case TransportEvent::Kind::Attempt:
    case TransportEvent::Kind::Resume:
    case TransportEvent::Kind::Backoff:
    case TransportEvent::Kind::Fail:
        return EventSide::Sender;
    case TransportEvent::Kind::Accept:
    case TransportEvent::Kind::Duplicate:
    case TransportEvent::Kind::CorruptDrop:
    case TransportEvent::Kind::ReorderHold:
    case TransportEvent::Kind::Deliver:
        return EventSide::Receiver;
    }
    return EventSide::Sender;
}

std::string
toString(const TransportEvent &ev)
{
    std::ostringstream os;
    os.precision(17);
    os << "t=" << ev.t << ' ' << kindName(ev.kind) << " link="
       << ev.link << " w=" << ev.key.worker << " v=" << ev.key.version
       << " row=" << ev.key.row << " dir="
       << (ev.key.pull ? "pull" : "push") << " seq=" << ev.chunk_seq
       << " a=" << ev.a << " b=" << ev.b;
    return os.str();
}

EventParseResult
tryParseEvent(const std::string &line)
{
    EventParseResult res;
    const auto toks = tokens(line);
    if (toks.size() != 10) {
        res.error = "event line needs 10 fields, got " +
                    std::to_string(toks.size());
        return res;
    }
    std::string err;
    if (!keyedDouble(toks[0], "t", res.event.t, err)) {
        res.error = err;
        return res;
    }
    if (!kindFromName(toks[1], res.event.kind)) {
        res.error = "unknown event kind '" + toks[1] + "'";
        return res;
    }
    std::size_t i = 2;
    if (!parseKeyTokens(toks, i, res.event.link, res.event.key, err)) {
        res.error = err;
        return res;
    }
    std::uint64_t seq = 0;
    if (!keyedU64(toks[7], "seq", seq, err)) {
        res.error = err;
        return res;
    }
    if (seq > std::numeric_limits<std::uint32_t>::max()) {
        res.error = "seq out of range: " + toks[7];
        return res;
    }
    res.event.chunk_seq = static_cast<std::uint32_t>(seq);
    if (!keyedDouble(toks[8], "a", res.event.a, err) ||
        !keyedDouble(toks[9], "b", res.event.b, err)) {
        res.error = err;
        return res;
    }
    return res;
}

LogParseResult
tryParseLog(const std::string &text)
{
    LogParseResult res;
    std::istringstream is(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        auto one = tryParseEvent(line);
        if (!one.ok()) {
            res.error =
                "line " + std::to_string(lineno) + ": " + one.error;
            res.events.clear();
            return res;
        }
        res.events.push_back(one.event);
    }
    return res;
}

std::vector<TransportEvent>
filterSide(const std::vector<TransportEvent> &log, EventSide side)
{
    std::vector<TransportEvent> out;
    for (const auto &ev : log)
        if (eventSide(ev.kind) == side)
            out.push_back(ev);
    return out;
}

std::string
renderNormalized(const std::vector<TransportEvent> &log)
{
    std::ostringstream os;
    for (TransportEvent ev : log) {
        ev.t = 0.0;
        os << toString(ev) << '\n';
    }
    return os.str();
}

const char *
toString(AttemptOutcome o)
{
    switch (o) {
    case AttemptOutcome::Accept: return "accept";
    case AttemptOutcome::Dup: return "dup";
    case AttemptOutcome::Corrupt: return "corrupt";
    case AttemptOutcome::Held: return "held";
    case AttemptOutcome::Partial: return "partial";
    case AttemptOutcome::Timeout: return "timeout";
    }
    return "?";
}

namespace {

bool
outcomeFromName(const std::string &s, AttemptOutcome &out)
{
    static const std::pair<const char *, AttemptOutcome> kNames[] = {
        {"accept", AttemptOutcome::Accept},
        {"dup", AttemptOutcome::Dup},
        {"corrupt", AttemptOutcome::Corrupt},
        {"held", AttemptOutcome::Held},
        {"partial", AttemptOutcome::Partial},
        {"timeout", AttemptOutcome::Timeout},
    };
    for (const auto &[name, o] : kNames)
        if (s == name) {
            out = o;
            return true;
        }
    return false;
}

} // namespace

std::string
TransportTrace::toText() const
{
    std::ostringstream os;
    os.precision(17);
    os << "trace v1 backend=" << config.backend
       << " chunk=" << config.chunk_bytes
       << " attempts=" << config.max_attempts
       << " base=" << config.backoff_base_s
       << " max=" << config.backoff_max_s
       << " jitter=" << config.jitter_frac
       << " jseed=" << config.jitter_seed
       << " resume=" << (config.resume_from_offset ? 1 : 0) << '\n';
    for (const auto &s : sends) {
        os << "send ";
        writeKey(os, s.link, s.key) << " bytes=" << s.payload_bytes
                                    << " deadline=";
        if (std::isinf(s.deadline_s))
            os << "inf";
        else
            os << s.deadline_s;
        os << '\n';
    }
    for (const auto &a : attempts) {
        os << "att ";
        writeKey(os, a.link, a.key)
            << " seq=" << a.chunk_seq << " off=" << a.payload_off
            << " out=" << toString(a.outcome) << " bytes=" << a.bytes_sent
            << " elapsed=" << a.elapsed_s
            << " complete=" << (a.message_complete ? 1 : 0) << '\n';
    }
    for (const auto &r : rx) {
        os << "rx ";
        writeKey(os, r.link, r.key)
            << " seq=" << r.chunk_seq << " off=" << r.payload_off
            << " len=" << r.frag_len << " got=" << r.got
            << " crc=" << (r.crc_ok ? "ok" : "bad") << '\n';
    }
    return os.str();
}

TraceParseResult
TransportTrace::tryParse(const std::string &text)
{
    TraceParseResult res;
    std::istringstream is(text);
    std::string line;
    std::size_t lineno = 0;
    bool saw_header = false;

    const auto fail = [&](const std::string &what) {
        res.error = "line " + std::to_string(lineno) + ": " + what;
        res.trace = TransportTrace{};
        return res;
    };

    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        const auto toks = tokens(line);
        std::string err;
        if (toks[0] == "trace") {
            if (saw_header)
                return fail("duplicate trace header");
            if (toks.size() != 10)
                return fail("trace header needs 10 fields, got " +
                            std::to_string(toks.size()));
            if (toks[1] != "v1")
                return fail("unsupported trace version '" + toks[1] +
                            "'");
            auto &c = res.trace.config;
            std::uint64_t u = 0;
            if (!keyed(toks[2], "backend", c.backend, err) ||
                !keyedDouble(toks[3], "chunk", c.chunk_bytes, err) ||
                !keyedU64(toks[4], "attempts", u, err))
                return fail(err);
            c.max_attempts = static_cast<std::size_t>(u);
            if (!keyedDouble(toks[5], "base", c.backoff_base_s, err) ||
                !keyedDouble(toks[6], "max", c.backoff_max_s, err) ||
                !keyedDouble(toks[7], "jitter", c.jitter_frac, err) ||
                !keyedU64(toks[8], "jseed", c.jitter_seed, err))
                return fail(err);
            std::uint64_t resume = 0;
            if (!keyedU64(toks[9], "resume", resume, err))
                return fail(err);
            if (resume > 1)
                return fail("resume must be 0 or 1");
            c.resume_from_offset = resume == 1;
            if (c.chunk_bytes <= 0.0)
                return fail("chunk must be positive");
            if (c.jitter_frac < 0.0 || c.jitter_frac >= 1.0)
                return fail("jitter must be in [0, 1)");
            saw_header = true;
        } else if (toks[0] == "send") {
            if (!saw_header)
                return fail("send before trace header");
            if (toks.size() != 8)
                return fail("send record needs 8 fields, got " +
                            std::to_string(toks.size()));
            SendRecord s;
            std::size_t i = 1;
            if (!parseKeyTokens(toks, i, s.link, s.key, err))
                return fail(err);
            if (!keyedDouble(toks[6], "bytes", s.payload_bytes, err) ||
                !keyedDouble(toks[7], "deadline", s.deadline_s, err))
                return fail(err);
            if (s.payload_bytes < 0.0)
                return fail("send bytes must be non-negative");
            res.trace.sends.push_back(s);
        } else if (toks[0] == "att") {
            if (!saw_header)
                return fail("att before trace header");
            if (toks.size() != 12)
                return fail("att record needs 12 fields, got " +
                            std::to_string(toks.size()));
            AttemptRecord a;
            std::size_t i = 1;
            if (!parseKeyTokens(toks, i, a.link, a.key, err))
                return fail(err);
            if (!parseSeqOff(toks, i, a.chunk_seq, a.payload_off, err))
                return fail(err);
            std::string v;
            if (!keyed(toks[8], "out", v, err))
                return fail(err);
            if (!outcomeFromName(v, a.outcome))
                return fail("unknown attempt outcome '" + v + "'");
            if (!keyedDouble(toks[9], "bytes", a.bytes_sent, err) ||
                !keyedDouble(toks[10], "elapsed", a.elapsed_s, err))
                return fail(err);
            std::uint64_t c = 0;
            if (!keyedU64(toks[11], "complete", c, err))
                return fail(err);
            if (c > 1)
                return fail("complete must be 0 or 1");
            a.message_complete = c == 1;
            if (a.bytes_sent < 0.0 || a.elapsed_s < 0.0)
                return fail("att bytes/elapsed must be non-negative");
            res.trace.attempts.push_back(a);
        } else if (toks[0] == "rx") {
            if (!saw_header)
                return fail("rx before trace header");
            if (toks.size() != 11)
                return fail("rx record needs 11 fields, got " +
                            std::to_string(toks.size()));
            RxRecord r;
            std::size_t i = 1;
            if (!parseKeyTokens(toks, i, r.link, r.key, err))
                return fail(err);
            if (!parseSeqOff(toks, i, r.chunk_seq, r.payload_off, err))
                return fail(err);
            std::uint64_t u = 0;
            if (!keyedU64(toks[8], "len", u, err))
                return fail(err);
            if (u > std::numeric_limits<std::uint32_t>::max())
                return fail("len out of range");
            r.frag_len = static_cast<std::uint32_t>(u);
            if (!keyedU64(toks[9], "got", u, err))
                return fail(err);
            if (u > std::numeric_limits<std::uint32_t>::max())
                return fail("got out of range");
            r.got = static_cast<std::uint32_t>(u);
            std::string v;
            if (!keyed(toks[10], "crc", v, err))
                return fail(err);
            if (v == "ok")
                r.crc_ok = true;
            else if (v == "bad")
                r.crc_ok = false;
            else
                return fail("crc must be ok|bad, got '" + v + "'");
            if (r.got > r.frag_len)
                return fail("rx got exceeds fragment length");
            res.trace.rx.push_back(r);
        } else {
            return fail("unknown record type '" + toks[0] + "'");
        }
    }
    if (!saw_header)
        return fail("missing trace header");
    return res;
}

} // namespace transport
} // namespace net
} // namespace rog
