#include "net/transport/des_backend.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"

namespace rog {
namespace net {
namespace transport {

// ---------------------------------------------------------------- timers

SimTimers::~SimTimers()
{
    *alive_ = false;
    for (auto &[id, ev] : pending_)
        sim_.cancel(ev);
}

TimerId
SimTimers::after(double delay_s, std::function<void()> fire)
{
    const TimerId id = next_++;
    pending_[id] =
        sim_.after(delay_s, [this, alive = alive_, id,
                             fire = std::move(fire)] {
            if (!*alive)
                return;
            pending_.erase(id);
            fire();
        });
    return id;
}

void
SimTimers::cancel(TimerId id)
{
    auto it = pending_.find(id);
    if (it == pending_.end())
        return;
    sim_.cancel(it->second);
    pending_.erase(it);
}

// ----------------------------------------------------------- DesBackend

DesBackend::DesBackend(sim::Simulation &sim, Channel &channel,
                       const TransportConfig &config,
                       TransportObserver *observer)
    : sim_(sim), channel_(channel), config_(config), timers_(sim),
      receiver_([&sim] { return sim.now(); }, observer)
{
}

DesBackend::~DesBackend() { *alive_ = false; }

double
DesBackend::now() const
{
    return sim_.now();
}

TimerId
DesBackend::after(double delay_s, std::function<void()> fire)
{
    return timers_.after(delay_s, std::move(fire));
}

void
DesBackend::cancelTimer(TimerId id)
{
    timers_.cancel(id);
}

std::uint64_t
DesBackend::openSend(LinkId link, const MessageKey &key, bool payload_mode)
{
    const std::uint64_t id = next_send_++;
    Stream &s = streams_[id];
    s.link = link;
    s.key = key;
    s.payload_mode = payload_mode;
    s.wire = BufferPool::global().leaseBytes(FrameHeader::kWireSize);
    receiver_.open(id, payload_mode);
    return id;
}

void
DesBackend::sendFrame(std::uint64_t send_id, const FrameHeader &hdr,
                      std::span<const std::uint8_t> frag,
                      std::span<const std::uint8_t> chunk, double frag_len,
                      double chunk_len, double timeout_s,
                      VerdictCallback done, std::function<void()> drop)
{
    auto it = streams_.find(send_id);
    ROG_ASSERT(it != streams_.end(), "sendFrame on unopened stream");
    Stream &s = it->second;
    ROG_ASSERT(!s.pending, "transport stream is stop-and-wait");
    (void)frag;

    // Serialize onto the (simulated) wire; the receive side re-parses
    // it, so the header round-trips exactly as over real sockets.
    hdr.serialize({s.wire.data(), s.wire.size()});
    s.pending = true;
    s.chunk = chunk;
    s.chunk_len = chunk_len;
    s.done = std::move(done);
    s.drop = std::move(drop);

    const double wire_bytes = FrameHeader::kWireSize + frag_len;
    const double timeout =
        std::isfinite(timeout_s) ? timeout_s : Channel::kNoTimeout;
    channel_.startTransfer(
        s.link, wire_bytes, timeout,
        [this, alive = alive_, send_id](TransferResult r) {
            if (*alive)
                onTransferDone(send_id, r);
        },
        [this, alive = alive_, send_id] {
            if (*alive)
                onTransferDrop(send_id);
        });
}

void
DesBackend::onTransferDone(std::uint64_t send_id, const TransferResult &r)
{
    auto it = streams_.find(send_id);
    if (it == streams_.end())
        return;
    Stream &s = it->second;
    s.pending = false;
    VerdictCallback done = std::move(s.done);
    s.done = nullptr;
    s.drop = nullptr;

    if (r.corrupted)
        s.garbled = true;

    FrameVerdict v;
    v.bytes_sent = r.bytes_sent;
    if (!r.completed) {
        // Cut mid-flow. In baseline (from-scratch) mode the retry
        // restarts the chunk, so a garbled prefix is discarded with it.
        if (!config_.resume_from_offset)
            s.garbled = false;
        done(v);
        return;
    }

    // The receiver re-parses the header exactly as it was framed.
    const auto hdr = FrameHeader::parse({s.wire.data(), s.wire.size()});
    ROG_ASSERT(hdr.has_value(), "transport framed an unparsable header");

    // A corrupted fragment garbled the reassembled chunk; flip a
    // deterministic byte in a scratch copy so the CRC genuinely fails
    // (the sender's chunk bytes are never mutated).
    auto received = s.chunk;
    if (s.garbled && !received.empty()) {
        if (s.garble_scratch.size() < received.size())
            s.garble_scratch =
                BufferPool::global().leaseBytes(received.size());
        std::uint8_t *mut = s.garble_scratch.data();
        std::copy(received.begin(), received.end(), mut);
        mut[hdr->chunk_seq % received.size()] ^= 0x40;
        received = {mut, received.size()};
    }
    const ChunkReceiver::Decision d =
        receiver_.onChunk(send_id, s.link, s.key, *hdr, received,
                          s.chunk_len, r.duplicated, r.reordered);
    s.garbled = false; // chunk resolved (accepted or restarted).

    v.completed = true;
    v.crc_ok = d.crc_ok;
    v.fresh_accepts = d.fresh_accepts;
    v.duplicates = d.duplicates;
    v.held = d.held;
    v.message_complete = d.message_complete;
    v.assembled = d.assembled;
    done(v);
}

void
DesBackend::onTransferDrop(std::uint64_t send_id)
{
    auto it = streams_.find(send_id);
    if (it == streams_.end())
        return;
    std::function<void()> drop = std::move(it->second.drop);
    it->second.pending = false;
    it->second.done = nullptr;
    it->second.drop = nullptr;
    if (drop)
        drop();
}

void
DesBackend::finishSend(std::uint64_t send_id, bool delivered)
{
    if (!delivered)
        receiver_.abandon(send_id); // flush a reorder-held chunk.
    receiver_.release(send_id);
    streams_.erase(send_id);
}

void
DesBackend::abortSend(std::uint64_t send_id)
{
    receiver_.release(send_id);
    streams_.erase(send_id);
}

void
DesBackend::setReceiverEventSink(EventSink sink)
{
    receiver_.setEventSink(std::move(sink));
}

// -------------------------------------------------------- ReplayBackend

ReplayBackend::ReplayBackend(sim::Simulation &sim,
                             const TransportTrace &trace)
    : sim_(sim), trace_(trace), timers_(sim)
{
}

double
ReplayBackend::now() const
{
    return sim_.now();
}

TimerId
ReplayBackend::after(double delay_s, std::function<void()> fire)
{
    return timers_.after(delay_s, std::move(fire));
}

void
ReplayBackend::cancelTimer(TimerId id)
{
    timers_.cancel(id);
}

std::uint64_t
ReplayBackend::openSend(LinkId link, const MessageKey &key,
                        bool payload_mode)
{
    (void)payload_mode;
    const std::uint64_t id = next_send_++;
    streams_[id] = Stream{link, key};
    return id;
}

void
ReplayBackend::sendFrame(std::uint64_t send_id, const FrameHeader &hdr,
                         std::span<const std::uint8_t> frag,
                         std::span<const std::uint8_t> chunk,
                         double frag_len, double chunk_len,
                         double timeout_s, VerdictCallback done,
                         std::function<void()> drop)
{
    (void)frag;
    (void)chunk;
    (void)frag_len;
    (void)chunk_len;
    (void)timeout_s;
    (void)drop;
    auto it = streams_.find(send_id);
    ROG_ASSERT(it != streams_.end(), "sendFrame on unopened stream");
    const Stream &s = it->second;

    FrameVerdict v;
    double elapsed = 0.0;
    if (next_attempt_ >= trace_.attempts.size()) {
        if (divergence_.empty()) {
            std::ostringstream os;
            os << "replay attempted more frames than the trace "
                  "recorded (record "
               << next_attempt_ << ", link=" << s.link << " seq="
               << hdr.chunk_seq << " off=" << hdr.payload_off << ")";
            divergence_ = os.str();
        }
    } else {
        const AttemptRecord &rec = trace_.attempts[next_attempt_];
        if (divergence_.empty() &&
            (rec.link != s.link || !(rec.key == s.key) ||
             rec.chunk_seq != hdr.chunk_seq ||
             rec.payload_off != hdr.payload_off)) {
            std::ostringstream os;
            os << "replay diverged at attempt record " << next_attempt_
               << ": wire saw link=" << rec.link << " w=" << rec.key.worker
               << " seq=" << rec.chunk_seq << " off=" << rec.payload_off
               << ", replay framed link=" << s.link
               << " w=" << s.key.worker << " seq=" << hdr.chunk_seq
               << " off=" << hdr.payload_off;
            divergence_ = os.str();
        }
        ++next_attempt_;
        elapsed = rec.elapsed_s;
        v.bytes_sent = rec.bytes_sent;
        switch (rec.outcome) {
        case AttemptOutcome::Timeout:
        case AttemptOutcome::Partial:
            break; // completed stays false.
        case AttemptOutcome::Corrupt:
            v.completed = true;
            break; // crc_ok stays false.
        case AttemptOutcome::Held:
            v.completed = true;
            v.crc_ok = true;
            v.held = true;
            break;
        case AttemptOutcome::Dup:
            v.completed = true;
            v.crc_ok = true;
            v.duplicates = 1;
            v.message_complete = rec.message_complete;
            break;
        case AttemptOutcome::Accept:
            v.completed = true;
            v.crc_ok = true;
            v.fresh_accepts = 1;
            v.message_complete = rec.message_complete;
            break;
        }
    }

    timers_.after(elapsed,
                  [done = std::move(done), v] { done(v); });
}

void
ReplayBackend::finishSend(std::uint64_t send_id, bool delivered)
{
    (void)delivered;
    streams_.erase(send_id);
}

void
ReplayBackend::abortSend(std::uint64_t send_id)
{
    streams_.erase(send_id);
}

void
ReplayBackend::setReceiverEventSink(EventSink sink)
{
    (void)sink; // a replayed sender has no in-process receiver.
}

} // namespace transport
} // namespace net
} // namespace rog
