/**
 * @file
 * Deterministic synthesized payload bytes for transport messages.
 *
 * A startSend() message carries no caller bytes; the wire still needs
 * real content so checksums are meaningful. Both ends (and the replay
 * harness) regenerate the same bytes from the message key alone, so a
 * receiver in another process — or a simulator replaying a recorded
 * socket trace — verifies exactly the payload the sender framed.
 */
#ifndef ROG_NET_TRANSPORT_PAYLOAD_HPP
#define ROG_NET_TRANSPORT_PAYLOAD_HPP

#include <cstdint>
#include <span>

namespace rog {
namespace net {
namespace transport {

struct MessageKey;

/** splitmix64 step, for seeding and synthesized payload bytes. */
inline std::uint64_t
mix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Mix a message key (and an extra word) into a 64-bit seed. */
std::uint64_t messageSeed(std::uint64_t base, const MessageKey &key,
                          std::uint64_t extra);

/**
 * Fill @p out with the synthesized payload of chunk @p seq of the
 * message keyed @p key. Pure function of (key, seq, out.size()).
 */
void synthesizeChunk(const MessageKey &key, std::uint32_t seq,
                     std::span<std::uint8_t> out);

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_PAYLOAD_HPP
