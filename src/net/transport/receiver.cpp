#include "net/transport/receiver.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "net/transport/crc32c.hpp"

namespace rog {
namespace net {
namespace transport {

ChunkReceiver::ChunkReceiver(std::function<double()> clock,
                             TransportObserver *observer, EventSink sink)
    : clock_(std::move(clock)), observer_(observer), sink_(std::move(sink))
{
    ROG_ASSERT(clock_, "chunk receiver needs a clock");
}

void
ChunkReceiver::open(std::uint64_t instance, bool store_payload)
{
    MessageState &m = messages_[instance];
    m.store_payload = store_payload;
}

ChunkReceiver::MessageState &
ChunkReceiver::state(std::uint64_t instance)
{
    return messages_[instance];
}

void
ChunkReceiver::emit(TransportEvent::Kind kind, const MessageState &m,
                    std::uint32_t seq, double a, double b)
{
    if (!sink_)
        return;
    TransportEvent ev;
    ev.t = clock_();
    ev.kind = kind;
    ev.link = m.link;
    ev.key = m.key;
    ev.chunk_seq = seq;
    ev.a = a;
    ev.b = b;
    sink_(ev);
}

void
ChunkReceiver::acceptOnce(MessageState &m, const FrameHeader &hdr,
                          std::span<const std::uint8_t> chunk,
                          double chunk_len, Decision &d)
{
    const bool fresh = m.accepted.insert(hdr.chunk_seq).second;
    if (observer_)
        observer_->onTransportChunk(m.key.worker, m.key.version,
                                    m.key.row, hdr.chunk_seq, true,
                                    fresh, m.key.pull);
    if (!fresh) {
        ++d.duplicates;
        emit(TransportEvent::Kind::Duplicate, m, hdr.chunk_seq);
        return;
    }
    ++d.fresh_accepts;
    emit(TransportEvent::Kind::Accept, m, hdr.chunk_seq, chunk_len);
    if (m.store_payload)
        m.chunks[hdr.chunk_seq].assign(chunk.begin(), chunk.end());
}

void
ChunkReceiver::flushHold(MessageState &m, Decision &d)
{
    m.hold_pending = false;
    acceptOnce(m, m.hold_hdr,
               {m.hold_bytes.data(), m.hold_bytes.size()},
               m.hold_chunk_len, d);
    if (m.hold_duplicated)
        acceptOnce(m, m.hold_hdr,
                   {m.hold_bytes.data(), m.hold_bytes.size()},
                   m.hold_chunk_len, d);
    m.hold_bytes.clear();
}

ChunkReceiver::Decision
ChunkReceiver::onChunk(std::uint64_t instance, LinkId link,
                       const MessageKey &key, const FrameHeader &hdr,
                       std::span<const std::uint8_t> chunk,
                       double chunk_len, bool duplicated_hint,
                       bool reordered_hint)
{
    MessageState &m = state(instance);
    m.link = link;
    m.key = key;
    m.chunk_count = hdr.chunk_count;

    Decision d;
    d.crc_ok = crc32c(chunk) == hdr.payload_crc;
    if (!d.crc_ok) {
        if (observer_)
            observer_->onTransportChunk(key.worker, key.version, key.row,
                                        hdr.chunk_seq, false, false,
                                        key.pull);
        emit(TransportEvent::Kind::CorruptDrop, m, hdr.chunk_seq,
             chunk_len);
        return d;
    }

    if (reordered_hint && !m.hold_pending &&
        hdr.chunk_seq + 1 < hdr.chunk_count) {
        // Delivery overtaken by the next send: hold the (intact)
        // chunk and apply it after its successor.
        m.hold_pending = true;
        m.hold_hdr = hdr;
        m.hold_duplicated = duplicated_hint;
        m.hold_chunk_len = chunk_len;
        m.hold_bytes.assign(chunk.begin(), chunk.end());
        d.held = true;
        emit(TransportEvent::Kind::ReorderHold, m, hdr.chunk_seq);
        return d;
    }

    acceptOnce(m, hdr, chunk, chunk_len, d);
    if (duplicated_hint)
        acceptOnce(m, hdr, chunk, chunk_len, d); // delivered twice.
    if (m.hold_pending)
        flushHold(m, d);

    if (!m.complete && m.accepted.size() == m.chunk_count) {
        m.complete = true;
        ++delivered_;
        if (m.store_payload) {
            m.assembled.clear();
            for (const auto &[seq, bytes] : m.chunks)
                m.assembled.insert(m.assembled.end(), bytes.begin(),
                                   bytes.end());
            m.chunks.clear();
        }
        if (observer_)
            observer_->onTransportDeliver(key.worker, key.version,
                                          key.row, key.pull);
        emit(TransportEvent::Kind::Deliver, m, m.chunk_count);
    }
    d.message_complete = m.complete;
    if (m.complete && m.store_payload)
        d.assembled = &m.assembled;
    return d;
}

void
ChunkReceiver::abandon(std::uint64_t instance)
{
    auto it = messages_.find(instance);
    if (it == messages_.end() || !it->second.hold_pending)
        return;
    Decision d;
    flushHold(it->second, d); // whatever arrived, arrived.
}

void
ChunkReceiver::release(std::uint64_t instance)
{
    messages_.erase(instance);
}

const std::vector<std::uint8_t> &
ChunkReceiver::payload(std::uint64_t instance) const
{
    static const std::vector<std::uint8_t> kEmpty;
    auto it = messages_.find(instance);
    return it == messages_.end() ? kEmpty : it->second.assembled;
}

FrameAssembler::FrameAssembler(ChunkReceiver &rx, bool store_payload)
    : rx_(rx), store_payload_(store_payload)
{
}

FrameAssembler::Result
FrameAssembler::onFrame(LinkId link, const FrameHeader &hdr,
                        std::span<const std::uint8_t> present)
{
    MessageKey key;
    key.worker = hdr.worker;
    key.version = hdr.version;
    key.row = hdr.row;
    key.pull = hdr.pull();

    auto [ins_it, fresh] = instances_.try_emplace(key, next_instance_);
    if (fresh) {
        ++next_instance_;
        rx_.open(ins_it->second, store_payload_);
    }
    const std::uint64_t instance = ins_it->second;

    ChunkBuf &buf = bufs_[{instance, hdr.chunk_seq}];
    const std::uint64_t off = hdr.payload_off;
    const std::uint64_t end = off + present.size();
    if (buf.bytes.size() < end)
        buf.bytes.resize(static_cast<std::size_t>(end), 0);
    std::copy(present.begin(), present.end(),
              buf.bytes.begin() + static_cast<std::size_t>(off));
    // Only a gap-free prefix is trustworthy; the stop-and-wait sender
    // never leaves one, but a stray datagram cannot corrupt state.
    if (off <= buf.prefix)
        buf.prefix = std::max(buf.prefix, end);

    Result r;
    r.prefix = buf.prefix;

    // The sender always frames to the end of the chunk, so this frame
    // completes the chunk exactly when it arrived whole and the bytes
    // before it are contiguous.
    const std::uint64_t chunk_total = off + hdr.payload_len;
    const bool whole = present.size() == hdr.payload_len;
    if (!whole || buf.prefix < chunk_total) {
        r.chunk_complete = false;
        return r;
    }

    r.chunk_complete = true;
    r.decision = rx_.onChunk(
        instance, link, key, hdr,
        {buf.bytes.data(), static_cast<std::size_t>(chunk_total)},
        static_cast<double>(chunk_total), false, false);
    // Accepted or discarded, this chunk's buffer is spent: a CRC
    // failure restarts the chunk from offset zero (the prefix was
    // untrustworthy), and an accept has no more use for it.
    bufs_.erase({instance, hdr.chunk_seq});
    return r;
}

} // namespace transport
} // namespace net
} // namespace rog
