#include "net/transport/crossval.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hpp"
#include "net/transport/crc32c.hpp"
#include "net/transport/des_backend.hpp"
#include "net/transport/payload.hpp"
#include "net/transport/receiver.hpp"
#include "net/transport/reliable_link.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace net {
namespace transport {

namespace {

constexpr double kEps = 1e-9;

std::size_t
byteLen(double len)
{
    if (len <= 0.0)
        return 0;
    return static_cast<std::size_t>(
        std::max(1.0, std::ceil(len - kEps)));
}

TransportConfig
configOf(const TraceConfig &tc)
{
    TransportConfig c;
    c.chunk_bytes = tc.chunk_bytes;
    c.max_attempts_per_chunk = tc.max_attempts;
    c.backoff_base_s = tc.backoff_base_s;
    c.backoff_max_s = tc.backoff_max_s;
    c.jitter_frac = tc.jitter_frac;
    c.jitter_seed = tc.jitter_seed;
    c.resume_from_offset = tc.resume_from_offset;
    return c;
}

/** First line where two normalized renderings differ, with context. */
std::string
firstDiff(const std::string &recorded, const std::string &replayed,
          const char *side)
{
    std::istringstream a(recorded), b(replayed);
    std::string la, lb;
    std::size_t line = 0;
    for (;;) {
        const bool ga = static_cast<bool>(std::getline(a, la));
        const bool gb = static_cast<bool>(std::getline(b, lb));
        ++line;
        if (!ga && !gb)
            return "";
        if (ga != gb || la != lb) {
            std::ostringstream os;
            os << side << " log diverges at line " << line
               << "\n  recorded: " << (ga ? la : "<end of log>")
               << "\n  replayed: " << (gb ? lb : "<end of log>");
            return os.str();
        }
    }
}

} // namespace

ReplayResult
replaySenderTrace(const TransportTrace &trace)
{
    ReplayResult res;
    sim::Simulation sim;
    ReplayBackend backend(sim, trace);
    ReliableLink link(backend, configOf(trace.config));

    // The recording harness issues sends strictly one after another
    // (stop-and-wait end to end), so the replay chains them the same
    // way; each deadline is relative to its own send's start.
    std::size_t completed = 0;
    std::function<void(std::size_t)> issue = [&](std::size_t i) {
        if (i >= trace.sends.size())
            return;
        const SendRecord &rec = trace.sends[i];
        const double deadline =
            std::isfinite(rec.deadline_s)
                ? backend.now() + rec.deadline_s
                : kNoDeadline;
        link.startSend(rec.link, rec.key, rec.payload_bytes, deadline,
                       [&, i](const SendResult &) {
                           ++completed;
                           issue(i + 1);
                       });
    };
    issue(0);
    sim.run();

    res.log = link.log();
    res.divergence = backend.divergence();
    res.sends_completed = completed;
    if (res.divergence.empty() &&
        backend.attemptsConsumed() != trace.attempts.size()) {
        std::ostringstream os;
        os << "replay consumed " << backend.attemptsConsumed() << " of "
           << trace.attempts.size() << " recorded attempts";
        res.divergence = os.str();
    }
    return res;
}

ReplayResult
replayReceiverTrace(const TransportTrace &trace)
{
    ReplayResult res;

    struct MsgInfo
    {
        std::uint32_t chunk_count = 1;
        double payload_bytes = 0.0;
    };
    std::map<MessageKey, MsgInfo> msgs;
    for (const SendRecord &s : trace.sends) {
        MsgInfo info;
        info.payload_bytes = s.payload_bytes;
        info.chunk_count = static_cast<std::uint32_t>(std::max(
            1.0,
            std::ceil(s.payload_bytes / trace.config.chunk_bytes -
                      kEps)));
        msgs[s.key] = info;
    }

    ChunkReceiver rx([] { return 0.0; }, nullptr,
                     [&res](const TransportEvent &ev) {
                         res.log.push_back(ev);
                     });
    FrameAssembler assembler(rx);

    std::vector<std::uint8_t> chunk, present;
    for (const RxRecord &rec : trace.rx) {
        auto mit = msgs.find(rec.key);
        if (mit == msgs.end()) {
            if (res.divergence.empty())
                res.divergence = "rx record for a message never sent";
            continue;
        }
        const MsgInfo &info = mit->second;
        if (rec.chunk_seq >= info.chunk_count) {
            if (res.divergence.empty())
                res.divergence = "rx record beyond the message's chunks";
            continue;
        }

        // Regenerate exactly the bytes the sender framed: the chunk's
        // synthesized payload, cut to this frame's recorded window.
        const double chunk_len =
            rec.chunk_seq + 1 < info.chunk_count
                ? trace.config.chunk_bytes
                : info.payload_bytes -
                      trace.config.chunk_bytes *
                          static_cast<double>(info.chunk_count - 1);
        const std::size_t chunk_bytes = byteLen(chunk_len);
        chunk.resize(chunk_bytes);
        synthesizeChunk(rec.key, rec.chunk_seq,
                        {chunk.data(), chunk.size()});

        FrameHeader hdr;
        hdr.flags = rec.key.pull ? kFlagPull : 0;
        hdr.worker = rec.key.worker;
        hdr.version = rec.key.version;
        hdr.row = rec.key.row;
        hdr.chunk_seq = rec.chunk_seq;
        hdr.chunk_count = info.chunk_count;
        hdr.payload_off = rec.payload_off;
        hdr.payload_len = rec.frag_len;
        hdr.payload_crc = crc32c({chunk.data(), chunk.size()});

        const std::size_t off =
            static_cast<std::size_t>(rec.payload_off);
        const std::size_t got =
            std::min<std::size_t>(rec.got,
                                  chunk_bytes > off ? chunk_bytes - off
                                                    : 0);
        present.assign(chunk.begin() + off, chunk.begin() + off + got);
        if (!rec.crc_ok && !present.empty()) {
            // The wire corrupted this delivery; garble one byte so the
            // replayed verdict is computed over bad bytes, not assumed.
            present[0] ^= 0x40;
        }
        assembler.onFrame(rec.link, hdr,
                          {present.data(), present.size()});
    }

    res.sends_completed = rx.deliveredMessages();
    return res;
}

CrossvalReport
crossValidate(const TransportTrace &trace,
              const std::vector<TransportEvent> &recorded)
{
    CrossvalReport report;

    const ReplayResult sender = replaySenderTrace(trace);
    const ReplayResult receiver = replayReceiverTrace(trace);
    report.sender_events = sender.log.size();
    report.receiver_events = receiver.log.size();

    if (!sender.divergence.empty()) {
        report.detail = "sender replay: " + sender.divergence;
        return report;
    }
    if (!receiver.divergence.empty()) {
        report.detail = "receiver replay: " + receiver.divergence;
        return report;
    }

    // The replayed sender log can contain no receiver-side events (the
    // replay has no in-process receiver) but filter anyway: the
    // comparison must be side-by-side whatever the backend logged.
    const std::string diff_s = firstDiff(
        renderNormalized(filterSide(recorded, EventSide::Sender)),
        renderNormalized(filterSide(sender.log, EventSide::Sender)),
        "sender");
    if (!diff_s.empty()) {
        report.detail = diff_s;
        return report;
    }
    const std::string diff_r = firstDiff(
        renderNormalized(filterSide(recorded, EventSide::Receiver)),
        renderNormalized(filterSide(receiver.log, EventSide::Receiver)),
        "receiver");
    if (!diff_r.empty()) {
        report.detail = diff_r;
        return report;
    }

    report.ok = true;
    return report;
}

} // namespace transport
} // namespace net
} // namespace rog
