/**
 * @file
 * Reliable, resumable message transport — the protocol core.
 *
 * ReliableLink frames each message (FrameHeader with worker, version,
 * row, chunk bookkeeping, and a CRC32C over the chunk payload), sends
 * it as a sequence of chunked stop-and-wait frames, and retries cut or
 * corrupted chunks with deadline-aware exponential backoff and seeded
 * deterministic jitter — resuming from the delivered byte offset
 * rather than from scratch, so a 90%-delivered chunk only resends its
 * tail. The receiver side (ChunkReceiver) dedups chunks on (worker,
 * version, row, chunk_seq), so a duplicated delivery is applied
 * exactly once, and a chunk flagged reordered is held and applied
 * after its successor.
 *
 * The protocol core is backend-agnostic: every I/O and clocking
 * decision goes through the transport::Backend seam (backend.hpp).
 * Over the DES twin everything is deterministic — backoff jitter comes
 * from an Rng seeded by (config seed, message key), and every decision
 * is a pure function of the channel's behaviour, so the same seed and
 * fault plan replay the same timeline byte for byte. Over real sockets
 * the identical state machine runs in wall-clock time, and the
 * recorded event log cross-validates against a DES replay of the same
 * wire trace (see des_backend.hpp / crossval.hpp).
 */
#ifndef ROG_NET_TRANSPORT_RELIABLE_LINK_HPP
#define ROG_NET_TRANSPORT_RELIABLE_LINK_HPP

#include <coroutine>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "net/transport/backend.hpp"
#include "net/transport/buffer_pool.hpp"
#include "net/transport/event_log.hpp"
#include "net/transport/frame.hpp"
#include "net/transport/observer.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace net {
namespace transport {

/** Outcome of one message send. */
struct SendResult
{
    bool delivered = false;        //!< all chunks accepted intact.
    bool deadline_expired = false; //!< gave up at the deadline.
    std::size_t chunks = 0;        //!< chunk count of the message.
    std::size_t attempts = 0;      //!< channel transfers started.
    std::size_t retries = 0;       //!< attempts beyond the first per chunk.
    double backoff_s = 0.0;        //!< total time spent backing off.
    double payload_bytes = 0.0;    //!< application bytes requested.
    double bytes_sent = 0.0;       //!< payload + header bytes delivered.
    double retransmitted_bytes = 0.0; //!< delivered more than once.
    std::size_t corrupt_chunks = 0;   //!< CRC rejections at the receiver.
    std::size_t duplicate_chunks = 0; //!< dedup'd duplicate deliveries.
    std::size_t reordered_chunks = 0; //!< held-and-flushed chunks.
    double elapsed_s = 0.0;
};

/** Aggregate counters across every send on a ReliableLink. */
struct TransportTotals
{
    std::size_t sends = 0;
    std::size_t delivered = 0;
    std::size_t failed = 0;
    std::size_t attempts = 0;
    std::size_t retries = 0;
    double backoff_s = 0.0;
    double bytes_sent = 0.0;
    double retransmitted_bytes = 0.0;
    std::size_t corrupt_chunks = 0;
    std::size_t duplicate_chunks = 0;
    std::size_t reordered_chunks = 0;
};

/** The reliability sublayer: one sender endpoint over one backend. */
class ReliableLink
{
  public:
    using Callback = std::function<void(SendResult)>;

    /**
     * Run the protocol core over @p backend (which must outlive the
     * link). The link binds the backend's receiver event sink to its
     * own log, so exactly one ReliableLink may drive a backend.
     */
    ReliableLink(Backend &backend, const TransportConfig &config,
                 TransportObserver *observer = nullptr);

    /**
     * Convenience (and the historical signature): run over the
     * simulated channel via an owned DesBackend. @p sim and
     * @p channel must outlive the link. The optional @p observer
     * (e.g. a fault::InvariantChecker) receives an onTransport*()
     * hook for every receiver decision.
     */
    ReliableLink(sim::Simulation &sim, Channel &channel,
                 const TransportConfig &config,
                 TransportObserver *observer = nullptr);
    ~ReliableLink();

    ReliableLink(const ReliableLink &) = delete;
    ReliableLink &operator=(const ReliableLink &) = delete;

    /**
     * Start sending a message of @p payload_bytes simulated bytes
     * (callback form). The payload content is synthesized
     * deterministically from @p key so checksums are real. A
     * zero-byte payload is valid and travels as one header-only
     * chunk (delivery still means the frame round-tripped intact).
     *
     * @param deadline_s absolute deadline on the backend's clock
     *        (kNoDeadline for none); the send gives up,
     *        deadline-aware, instead of backing off past it.
     * @param done invoked exactly once with the result (unless the
     *        link or channel is destroyed first).
     * @param drop invoked instead of @p done on destruction mid-send.
     */
    void startSend(LinkId link, const MessageKey &key,
                   double payload_bytes, double deadline_s,
                   Callback done, std::function<void()> drop = {});

    /**
     * As startSend, but carrying @p payload real bytes; the receiver
     * reassembles them (see deliveredPayload) and every checksum is
     * computed over the actual data. An empty span is a valid
     * zero-length message.
     *
     * Lifetime: the link leases a retransmission copy from the
     * BufferPool before returning, so @p payload only has to stay
     * alive *for the duration of this call* — retries and resumed
     * fragments read the leased copy, never the caller's memory.
     * (Historically the span had to outlive the whole send; that
     * contract is gone.) Under ROG_SANITIZE builds every attempt
     * re-checksums the leased copy against the CRC taken here and
     * panics on a mismatch, so a clobbered pool buffer is caught at
     * the attempt that would have shipped it.
     */
    void startSendPayload(LinkId link, const MessageKey &key,
                          std::span<const std::uint8_t> payload,
                          double deadline_s, Callback done,
                          std::function<void()> drop = {});

    /** Awaitable send for simulation processes. */
    class SendAwaiter
    {
      public:
        SendAwaiter(ReliableLink &rl, LinkId link, const MessageKey &key,
                    double bytes, double deadline)
            : rl_(rl), link_(link), key_(key), bytes_(bytes),
              deadline_(deadline)
        {
        }

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            rl_.startSend(
                link_, key_, bytes_, deadline_,
                [this, h](SendResult r) {
                    result_ = r;
                    h.resume();
                },
                [h] { h.destroy(); });
        }

        SendResult await_resume() const noexcept { return result_; }

      private:
        ReliableLink &rl_;
        LinkId link_;
        MessageKey key_;
        double bytes_;
        double deadline_;
        SendResult result_;
    };

    /** co_await a reliable send; resumes with the SendResult. */
    SendAwaiter
    send(LinkId link, const MessageKey &key, double payload_bytes,
         double deadline_s = kNoDeadline)
    {
        return SendAwaiter(*this, link, key, payload_bytes, deadline_s);
    }

    /** Reassembled bytes of a delivered payload send (empty if none). */
    const std::vector<std::uint8_t> &
    deliveredPayload(const MessageKey &key) const;

    /**
     * Abandon every in-flight send (each fires its @p done with
     * delivered=false, or its @p drop when no done was given) and
     * forget all per-key delivery bookkeeping. For peer restarts:
     * the remote came back with fresh receiver state, so this
     * sender's memory of delivered keys is stale — keeping it would
     * suppress re-sends the new remote has never seen.
     */
    void reset();

    const TransportTotals &totals() const { return totals_; }

    /**
     * Structured event log since construction: every sender decision,
     * plus every receiver decision when the backend's receiver lives
     * in-process (DES / loopback). See event_log.hpp.
     */
    const std::vector<TransportEvent> &log() const { return log_; }

    /** The whole log as text, one event per line. */
    std::string logDump() const;

    const TransportConfig &config() const { return config_; }

    /** The backend this link drives. */
    Backend &backend() { return backend_; }

  private:
    struct SendOp;

    void startSendImpl(LinkId link, const MessageKey &key,
                       double payload_bytes,
                       std::span<const std::uint8_t> payload,
                       bool payload_mode, double deadline_s,
                       Callback done, std::function<void()> drop);
    void attempt(SendOp &op);
    void onFrameVerdict(std::uint64_t op_id, const FrameVerdict &v);
    void dropOp(std::uint64_t op_id);
    void resolveChunk(SendOp &op, const FrameVerdict &v);
    void scheduleRetry(SendOp &op);
    void finish(SendOp &op, bool delivered, bool expired);
    void logEvent(TransportEvent::Kind kind, const SendOp &op,
                  std::uint32_t seq, double a = 0.0, double b = 0.0);

    /**
     * Payload bytes of chunk @p seq for @p op: a view into the leased
     * payload copy, or the synthesized bytes regenerated into the
     * op's pooled chunk scratch. Valid until the next call for the
     * same op; no allocation either way.
     */
    std::span<const std::uint8_t> chunkPayloadInto(SendOp &op,
                                                   std::uint32_t seq) const;
    /** Cache the current chunk's payload CRC (per chunk, not per
     *  attempt: retries reuse it). */
    void refreshChunkCrc(SendOp &op);
    double chunkLen(const SendOp &op, std::uint32_t seq) const;

    std::unique_ptr<Backend> owned_backend_; //!< legacy-ctor DES twin.
    Backend &backend_;
    TransportConfig config_;
    TransportObserver *observer_ = nullptr;

    std::map<std::uint64_t, std::unique_ptr<SendOp>> ops_;
    std::uint64_t next_op_id_ = 1;

    std::map<MessageKey, std::vector<std::uint8_t>> delivered_payloads_;
    TransportTotals totals_;
    std::vector<TransportEvent> log_;

    /** Cleared by the destructor so stale backend callbacks no-op. */
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_RELIABLE_LINK_HPP
