/**
 * @file
 * Reliable, resumable message transport over the fluid channel.
 *
 * The raw net::Channel is a faithful model of a flaky wireless medium:
 * transfers can be cut mid-flow, time out, or arrive corrupted,
 * duplicated, or out of order (fault layer). The engine, however,
 * wants gradient-row messages that either arrive intact exactly once
 * or verifiably fail by a deadline. ReliableLink is the sublayer in
 * between: it frames each message (FrameHeader with worker, version,
 * row, chunk bookkeeping, and a CRC32C over the chunk payload), sends
 * it as a sequence of chunked sub-transfers, and retries cut or
 * corrupted chunks with deadline-aware exponential backoff and seeded
 * deterministic jitter — resuming from the delivered byte offset
 * rather than from scratch, so a 90%-delivered chunk only resends its
 * tail. The receiver side dedups chunks on (worker, version, row,
 * chunk_seq), so a duplicated delivery is applied exactly once, and a
 * chunk flagged reordered is held and applied after its successor.
 *
 * Everything is deterministic: backoff jitter comes from an Rng seeded
 * by (config seed, message key), and every decision is a pure function
 * of the channel's behaviour, so the same seed and fault plan replay
 * the same timeline byte for byte. A structured event log records
 * every attempt / accept / resume / backoff for replay comparison.
 */
#ifndef ROG_NET_TRANSPORT_RELIABLE_LINK_HPP
#define ROG_NET_TRANSPORT_RELIABLE_LINK_HPP

#include <coroutine>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "net/channel.hpp"
#include "net/transport/buffer_pool.hpp"
#include "net/transport/frame.hpp"
#include "net/transport/observer.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace net {
namespace transport {

/** Knobs for the reliability sublayer. */
struct TransportConfig
{
    /** Payload bytes per chunk (a chunk is the CRC/retry unit). */
    double chunk_bytes = 16.0 * 1024.0;

    /** Attempts per chunk before the send fails (0 = unbounded). */
    std::size_t max_attempts_per_chunk = 8;

    double backoff_base_s = 0.05; //!< first retry delay.
    double backoff_max_s = 2.0;   //!< exponential growth cap.

    /** Jitter: delay is scaled by 1 +/- jitter_frac, deterministically. */
    double jitter_frac = 0.25;
    std::uint64_t jitter_seed = 0x7261676Eull;

    /**
     * Resume retries from the delivered byte offset. Off = the
     * from-scratch baseline: every retry resends the whole chunk
     * (used to measure what resumption saves).
     */
    bool resume_from_offset = true;
};

/** No deadline: retry until delivered or out of attempts. */
inline constexpr double kNoDeadline =
    std::numeric_limits<double>::infinity();

/** Identity of one transport message (one gradient row push/pull). */
struct MessageKey
{
    std::uint16_t worker = 0;
    std::int64_t version = 0;
    std::uint32_t row = 0;
    bool pull = false;

    auto
    tie() const
    {
        return std::tie(worker, version, row, pull);
    }

    bool operator<(const MessageKey &o) const { return tie() < o.tie(); }
    bool operator==(const MessageKey &o) const { return tie() == o.tie(); }
};

/** Outcome of one message send. */
struct SendResult
{
    bool delivered = false;        //!< all chunks accepted intact.
    bool deadline_expired = false; //!< gave up at the deadline.
    std::size_t chunks = 0;        //!< chunk count of the message.
    std::size_t attempts = 0;      //!< channel transfers started.
    std::size_t retries = 0;       //!< attempts beyond the first per chunk.
    double backoff_s = 0.0;        //!< total time spent backing off.
    double payload_bytes = 0.0;    //!< application bytes requested.
    double bytes_sent = 0.0;       //!< payload + header bytes delivered.
    double retransmitted_bytes = 0.0; //!< delivered more than once.
    std::size_t corrupt_chunks = 0;   //!< CRC rejections at the receiver.
    std::size_t duplicate_chunks = 0; //!< dedup'd duplicate deliveries.
    std::size_t reordered_chunks = 0; //!< held-and-flushed chunks.
    double elapsed_s = 0.0;
};

/** Aggregate counters across every send on a ReliableLink. */
struct TransportTotals
{
    std::size_t sends = 0;
    std::size_t delivered = 0;
    std::size_t failed = 0;
    std::size_t attempts = 0;
    std::size_t retries = 0;
    double backoff_s = 0.0;
    double bytes_sent = 0.0;
    double retransmitted_bytes = 0.0;
    std::size_t corrupt_chunks = 0;
    std::size_t duplicate_chunks = 0;
    std::size_t reordered_chunks = 0;
};

/** One entry of the structured replay log. */
struct TransportEvent
{
    enum class Kind {
        Attempt,     //!< a=wire bytes, b=resume offset.
        Resume,      //!< a=resumed bytes, b=chunk payload bytes.
        Backoff,     //!< a=delay seconds, b=backoff exponent.
        Accept,      //!< chunk passed CRC and was applied fresh.
        Duplicate,   //!< chunk arrived again and was dedup'd.
        CorruptDrop, //!< chunk failed CRC and was discarded.
        ReorderHold, //!< chunk held to apply after its successor.
        Deliver,     //!< message complete.
        Fail,        //!< a=1 if the deadline expired, 0 otherwise.
    };

    double t = 0.0;
    Kind kind = Kind::Attempt;
    LinkId link = 0;
    MessageKey key;
    std::uint32_t chunk_seq = 0;
    double a = 0.0;
    double b = 0.0;
};

/** Render one event as a stable text line (for replay comparison). */
std::string toString(const TransportEvent &ev);

/** The reliability sublayer wrapping one Channel. */
class ReliableLink
{
  public:
    using Callback = std::function<void(SendResult)>;

    /**
     * @param sim / @param channel must outlive the link. The optional
     * @p observer (e.g. a fault::InvariantChecker) receives an
     * onTransport*() hook for every receiver decision.
     */
    ReliableLink(sim::Simulation &sim, Channel &channel,
                 const TransportConfig &config,
                 TransportObserver *observer = nullptr);
    ~ReliableLink();

    ReliableLink(const ReliableLink &) = delete;
    ReliableLink &operator=(const ReliableLink &) = delete;

    /**
     * Start sending a message of @p payload_bytes simulated bytes
     * (callback form). The payload content is synthesized
     * deterministically from @p key so checksums are real.
     *
     * @param deadline_s absolute virtual-time deadline (kNoDeadline
     *        for none); the send gives up, deadline-aware, instead of
     *        backing off past it.
     * @param done invoked exactly once with the result (unless the
     *        link or channel is destroyed first).
     * @param drop invoked instead of @p done on destruction mid-send.
     */
    void startSend(LinkId link, const MessageKey &key,
                   double payload_bytes, double deadline_s,
                   Callback done, std::function<void()> drop = {});

    /**
     * As startSend, but carrying @p payload real bytes; the receiver
     * reassembles them (see deliveredPayload) and every checksum is
     * computed over the actual data.
     *
     * Lifetime: the link leases a retransmission copy from the
     * BufferPool before returning, so @p payload only has to stay
     * alive *for the duration of this call* — retries and resumed
     * fragments read the leased copy, never the caller's memory.
     * (Historically the span had to outlive the whole send; that
     * contract is gone.) Under ROG_SANITIZE builds every attempt
     * re-checksums the leased copy against the CRC taken here and
     * panics on a mismatch, so a clobbered pool buffer is caught at
     * the attempt that would have shipped it.
     */
    void startSendPayload(LinkId link, const MessageKey &key,
                          std::span<const std::uint8_t> payload,
                          double deadline_s, Callback done,
                          std::function<void()> drop = {});

    /** Awaitable send for simulation processes. */
    class SendAwaiter
    {
      public:
        SendAwaiter(ReliableLink &rl, LinkId link, const MessageKey &key,
                    double bytes, double deadline)
            : rl_(rl), link_(link), key_(key), bytes_(bytes),
              deadline_(deadline)
        {
        }

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            rl_.startSend(
                link_, key_, bytes_, deadline_,
                [this, h](SendResult r) {
                    result_ = r;
                    h.resume();
                },
                [h] { h.destroy(); });
        }

        SendResult await_resume() const noexcept { return result_; }

      private:
        ReliableLink &rl_;
        LinkId link_;
        MessageKey key_;
        double bytes_;
        double deadline_;
        SendResult result_;
    };

    /** co_await a reliable send; resumes with the SendResult. */
    SendAwaiter
    send(LinkId link, const MessageKey &key, double payload_bytes,
         double deadline_s = kNoDeadline)
    {
        return SendAwaiter(*this, link, key, payload_bytes, deadline_s);
    }

    /** Reassembled bytes of a delivered payload send (empty if none). */
    const std::vector<std::uint8_t> &
    deliveredPayload(const MessageKey &key) const;

    const TransportTotals &totals() const { return totals_; }

    /** Structured event log since construction. */
    const std::vector<TransportEvent> &log() const { return log_; }

    /** The whole log as text, one event per line. */
    std::string logDump() const;

    const TransportConfig &config() const { return config_; }

  private:
    struct SendOp;

    void startSendImpl(LinkId link, const MessageKey &key,
                       double payload_bytes,
                       std::span<const std::uint8_t> payload,
                       double deadline_s, Callback done,
                       std::function<void()> drop);
    void attempt(SendOp &op);
    void onTransferDone(std::uint64_t op_id, const TransferResult &r);
    void dropOp(std::uint64_t op_id);
    void receiveChunk(SendOp &op, bool duplicated, bool reordered);
    void acceptOnce(SendOp &op, const FrameHeader &hdr);
    void advanceChunk(SendOp &op);
    void flushHold(SendOp &op);
    void scheduleRetry(SendOp &op);
    void finish(SendOp &op, bool delivered, bool expired);
    void logEvent(TransportEvent::Kind kind, const SendOp &op,
                  std::uint32_t seq, double a = 0.0, double b = 0.0);

    /**
     * Payload bytes of chunk @p seq for @p op: a view into the leased
     * payload copy, or the synthesized bytes regenerated into the
     * op's pooled chunk scratch. Valid until the next call for the
     * same op; no allocation either way.
     */
    std::span<const std::uint8_t> chunkPayloadInto(SendOp &op,
                                                   std::uint32_t seq) const;
    /** Cache the current chunk's payload CRC (per chunk, not per
     *  attempt: retries reuse it). */
    void refreshChunkCrc(SendOp &op);
    double chunkLen(const SendOp &op, std::uint32_t seq) const;

    sim::Simulation &sim_;
    Channel &channel_;
    TransportConfig config_;
    TransportObserver *observer_ = nullptr;

    std::map<std::uint64_t, std::unique_ptr<SendOp>> ops_;
    std::uint64_t next_op_id_ = 1;

    std::map<MessageKey, std::vector<std::uint8_t>> delivered_payloads_;
    TransportTotals totals_;
    std::vector<TransportEvent> log_;

    /** Cleared by the destructor so stale channel callbacks no-op. */
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_RELIABLE_LINK_HPP
