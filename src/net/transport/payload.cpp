#include "net/transport/payload.hpp"

#include "net/transport/event_log.hpp"

namespace rog {
namespace net {
namespace transport {

std::uint64_t
messageSeed(std::uint64_t base, const MessageKey &key, std::uint64_t extra)
{
    std::uint64_t s = base;
    s ^= mix64(s) + static_cast<std::uint64_t>(key.worker);
    s ^= mix64(s) + static_cast<std::uint64_t>(key.version);
    s ^= mix64(s) + static_cast<std::uint64_t>(key.row);
    s ^= mix64(s) + (key.pull ? 0x70756c6cull : 0x70757368ull);
    s ^= mix64(s) + extra;
    return s;
}

void
synthesizeChunk(const MessageKey &key, std::uint32_t seq,
                std::span<std::uint8_t> out)
{
    std::uint64_t state = messageSeed(0xc0ffee123ull, key, seq);
    const std::size_t len = out.size();
    for (std::size_t i = 0; i < len; i += 8) {
        const std::uint64_t v = mix64(state);
        for (std::size_t b = 0; b < 8 && i + b < len; ++b)
            out[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
}

} // namespace transport
} // namespace net
} // namespace rog
