/**
 * @file
 * CRC32C (Castagnoli) checksums for transport frames.
 *
 * The reliability sublayer (reliable_link.hpp) verifies every chunk it
 * reassembles against the CRC carried in the frame header; a mismatch
 * means the payload was corrupted in flight and the chunk is discarded
 * and retransmitted. CRC32C is the polynomial used by iSCSI, ext4, and
 * RDMA NICs — the natural choice for a robot-to-server gradient wire.
 * This is the portable table-driven software implementation (no SSE4.2
 * requirement; determinism matters more than throughput here, the
 * simulated payloads are small).
 */
#ifndef ROG_NET_TRANSPORT_CRC32C_HPP
#define ROG_NET_TRANSPORT_CRC32C_HPP

#include <cstddef>
#include <cstdint>
#include <span>

namespace rog {
namespace net {
namespace transport {

/**
 * CRC32C of @p data continued from @p seed (pass the previous return
 * value to checksum a message in pieces). The empty-span CRC of seed 0
 * is 0; crc32c("123456789") == 0xE3069283 (the standard check value).
 */
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0);

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_CRC32C_HPP
