/**
 * @file
 * CRC32C for transport frames — the implementation lives in
 * common/crc32c.hpp so that model and server checkpoints share the
 * same checksum; this header keeps the historical transport-namespace
 * spelling working.
 */
#ifndef ROG_NET_TRANSPORT_CRC32C_HPP
#define ROG_NET_TRANSPORT_CRC32C_HPP

#include "common/crc32c.hpp"

namespace rog {
namespace net {
namespace transport {

using rog::crc32c;

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_CRC32C_HPP
