/**
 * @file
 * Receiver half of the reliable transport protocol core.
 *
 * ChunkReceiver owns every receiver-side decision: the checksum
 * verdict over a reassembled chunk, exactly-once acceptance keyed on
 * chunk sequence, the single-slot reorder hold, and end-of-message
 * delivery. Exactly one implementation serves every backend — the DES
 * twin feeds it what the simulated channel delivered, the socket
 * receiver endpoint feeds it what came off the wire, and the replay
 * harness feeds it a recorded trace — so a decision can never fork
 * between simulation and deployment.
 *
 * State is scoped per message *instance* (an opaque id the caller
 * picks): the simulator scopes instances per send so repeated keys
 * stay independent, while a real receiver endpoint maps each distinct
 * MessageKey to one instance for true cross-process exactly-once.
 */
#ifndef ROG_NET_TRANSPORT_RECEIVER_HPP
#define ROG_NET_TRANSPORT_RECEIVER_HPP

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "net/transport/backend.hpp"
#include "net/transport/event_log.hpp"
#include "net/transport/frame.hpp"
#include "net/transport/observer.hpp"

namespace rog {
namespace net {
namespace transport {

/** Receiver-side protocol decisions, shared by every backend. */
class ChunkReceiver
{
  public:
    /** What one completed chunk delivery resolved to. */
    struct Decision
    {
        bool crc_ok = false;
        std::size_t fresh_accepts = 0;
        std::size_t duplicates = 0;
        bool held = false;
        bool message_complete = false;
        const std::vector<std::uint8_t> *assembled = nullptr;
    };

    /**
     * @param clock stamps emitted events (virtual or wall seconds).
     * @param observer / @p sink receive every decision; either may be
     *        null/empty.
     */
    ChunkReceiver(std::function<double()> clock,
                  TransportObserver *observer = nullptr,
                  EventSink sink = {});

    void setEventSink(EventSink sink) { sink_ = std::move(sink); }
    void setObserver(TransportObserver *obs) { observer_ = obs; }

    /**
     * Begin (or re-scope) message @p instance. Optional — onChunk
     * creates state lazily with store_payload on — but lets the DES
     * twin skip retaining synthesized payload bytes.
     */
    void open(std::uint64_t instance, bool store_payload);

    /**
     * One complete chunk arrived (all fragments reassembled) for
     * message @p instance: verify, dedup, hold or accept, and deliver
     * when the message completes.
     *
     * @param chunk the chunk payload exactly as received (a corrupted
     *        delivery hands in the garbled bytes — the CRC verdict is
     *        recomputed here, never trusted from a flag).
     * @param chunk_len the chunk's exact (possibly fractional,
     *        simulated) payload length, echoed into events.
     * @param duplicated_hint the wire delivered this frame twice.
     * @param reordered_hint delivery was overtaken by a later send.
     */
    Decision onChunk(std::uint64_t instance, LinkId link,
                     const MessageKey &key, const FrameHeader &hdr,
                     std::span<const std::uint8_t> chunk,
                     double chunk_len, bool duplicated_hint,
                     bool reordered_hint);

    /**
     * The sender gave up on @p instance: flush a reorder-held chunk
     * (whatever arrived, arrived) without delivering the message.
     */
    void abandon(std::uint64_t instance);

    /** Drop all state for @p instance. */
    void release(std::uint64_t instance);

    /** Reassembled payload of a delivered instance (empty if none). */
    const std::vector<std::uint8_t> &payload(std::uint64_t instance) const;

    /** Messages fully delivered since construction. */
    std::size_t deliveredMessages() const { return delivered_; }

  private:
    struct MessageState
    {
        LinkId link = 0;
        MessageKey key;
        std::uint32_t chunk_count = 1;
        bool store_payload = true;
        bool complete = false;
        std::set<std::uint32_t> accepted;
        bool hold_pending = false;
        FrameHeader hold_hdr;
        bool hold_duplicated = false;
        double hold_chunk_len = 0.0;
        std::vector<std::uint8_t> hold_bytes;
        std::map<std::uint32_t, std::vector<std::uint8_t>> chunks;
        std::vector<std::uint8_t> assembled;
    };

    MessageState &state(std::uint64_t instance);
    void acceptOnce(MessageState &m, const FrameHeader &hdr,
                    std::span<const std::uint8_t> chunk, double chunk_len,
                    Decision &d);
    void flushHold(MessageState &m, Decision &d);
    void emit(TransportEvent::Kind kind, const MessageState &m,
              std::uint32_t seq, double a = 0.0, double b = 0.0);

    std::function<double()> clock_;
    TransportObserver *observer_ = nullptr;
    EventSink sink_;
    std::map<std::uint64_t, MessageState> messages_;
    std::size_t delivered_ = 0;
};

/**
 * Fragment-reassembly front end for receivers that see frames one
 * wire delivery at a time (the socket endpoints and the trace
 * replayer — the DES twin hands ChunkReceiver whole chunks directly).
 *
 * Tracks the contiguous byte prefix of each in-progress chunk; when a
 * frame completes its chunk, the assembled bytes go to ChunkReceiver
 * for the CRC verdict and acceptance decision. A chunk that fails its
 * CRC is wiped, so the retry rebuilds it from scratch — mirroring the
 * simulator's restart-the-chunk-on-corruption rule. Message instances
 * are scoped per distinct MessageKey: cross-process exactly-once.
 */
class FrameAssembler
{
  public:
    /** What one incoming frame resolved to. */
    struct Result
    {
        /** The frame completed its chunk (decision below is valid). */
        bool chunk_complete = false;

        /** Contiguous chunk bytes present after this frame. */
        std::uint64_t prefix = 0;

        ChunkReceiver::Decision decision;
    };

    /**
     * @param rx makes every protocol decision; must outlive this.
     * @param store_payload retain reassembled payload bytes per
     *        message (see ChunkReceiver::payload).
     */
    explicit FrameAssembler(ChunkReceiver &rx, bool store_payload = false);

    /**
     * One data frame arrived with @p present payload bytes (possibly
     * fewer than hdr.payload_len claims — a truncated delivery).
     */
    Result onFrame(LinkId link, const FrameHeader &hdr,
                   std::span<const std::uint8_t> present);

    ChunkReceiver &receiver() { return rx_; }

  private:
    struct ChunkBuf
    {
        std::vector<std::uint8_t> bytes;
        std::uint64_t prefix = 0;
    };

    ChunkReceiver &rx_;
    bool store_payload_ = false;
    std::map<MessageKey, std::uint64_t> instances_;
    std::uint64_t next_instance_ = 1;
    std::map<std::pair<std::uint64_t, std::uint32_t>, ChunkBuf> bufs_;
};

} // namespace transport
} // namespace net
} // namespace rog

#endif // ROG_NET_TRANSPORT_RECEIVER_HPP
