#include "net/bandwidth_trace.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace rog {
namespace net {

BandwidthTrace::BandwidthTrace(std::vector<double> samples,
                               double step_seconds)
    : samples_(std::move(samples)), step_(step_seconds)
{
    ROG_ASSERT(!samples_.empty(), "trace needs at least one sample");
    ROG_ASSERT(step_ > 0.0, "trace step must be positive");
    for (double s : samples_)
        ROG_ASSERT(s >= 0.0, "negative bandwidth sample");
}

double
BandwidthTrace::bytesPerSecAt(double t) const
{
    ROG_ASSERT(!samples_.empty(), "empty trace");
    const double dur = durationSeconds();
    double local = std::fmod(t, dur);
    if (local < 0.0)
        local += dur;
    auto idx = static_cast<std::size_t>(local / step_);
    if (idx >= samples_.size())
        idx = samples_.size() - 1;
    return samples_[idx];
}

double
BandwidthTrace::durationSeconds() const
{
    return step_ * static_cast<double>(samples_.size());
}

double
BandwidthTrace::nextBoundaryAfter(double t) const
{
    // Boundaries sit on the global step grid; nudge past ties so the
    // caller always advances.
    const double eps = step_ * 1e-9;
    const double k = std::floor((t + eps) / step_) + 1.0;
    return k * step_;
}

double
BandwidthTrace::meanBytesPerSec() const
{
    double s = 0.0;
    for (double v : samples_)
        s += v;
    return s / static_cast<double>(samples_.size());
}

BandwidthTrace
BandwidthTrace::constant(double bytes_per_sec, double duration_seconds,
                         double step_seconds)
{
    const auto n = static_cast<std::size_t>(
        std::ceil(duration_seconds / step_seconds));
    return BandwidthTrace(std::vector<double>(std::max<std::size_t>(n, 1),
                                              bytes_per_sec),
                          step_seconds);
}

} // namespace net
} // namespace rog
