#include "net/trace_stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace rog {
namespace net {

double
fluctuationIntervalSeconds(const BandwidthTrace &trace, double fraction)
{
    ROG_ASSERT(fraction > 0.0 && fraction < 1.0, "bad fraction");
    const auto &s = trace.samples();
    if (s.size() < 2)
        return trace.durationSeconds();
    double ref = s[0];
    std::size_t events = 0;
    for (std::size_t i = 1; i < s.size(); ++i) {
        const double base = std::max(ref, 1e-9);
        if (std::fabs(s[i] - ref) / base >= fraction) {
            ++events;
            ref = s[i];
        }
    }
    if (events == 0)
        return trace.durationSeconds();
    return trace.durationSeconds() / static_cast<double>(events);
}

TraceStats
computeTraceStats(const BandwidthTrace &trace)
{
    TraceStats st;
    const auto &s = trace.samples();
    std::vector<double> v(s.begin(), s.end());
    st.mean_bytes_per_sec = mean(v);
    st.stddev_bytes_per_sec = stddev(v);
    st.min_bytes_per_sec = *std::min_element(v.begin(), v.end());
    st.max_bytes_per_sec = *std::max_element(v.begin(), v.end());
    st.seconds_per_20pct_fluctuation =
        fluctuationIntervalSeconds(trace, 0.2);
    st.seconds_per_40pct_fluctuation =
        fluctuationIntervalSeconds(trace, 0.4);
    std::size_t deep = 0;
    for (double x : v)
        if (x < 0.1 * st.mean_bytes_per_sec)
            ++deep;
    st.deep_fade_fraction =
        static_cast<double>(deep) / static_cast<double>(v.size());
    return st;
}

} // namespace net
} // namespace rog
