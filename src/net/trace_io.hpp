/**
 * @file
 * Bandwidth trace persistence.
 *
 * The paper's artifact records real bandwidth traces and replays them
 * with `tc` so experiments are reproducible on stationary devices.
 * These helpers give this repo the same workflow: traces round-trip
 * through a simple CSV format (one `time_s,bytes_per_sec` row per
 * sample) so a measured or generated trace can be saved, shared, and
 * replayed across experiments.
 */
#ifndef ROG_NET_TRACE_IO_HPP
#define ROG_NET_TRACE_IO_HPP

#include <iosfwd>
#include <string>

#include "net/bandwidth_trace.hpp"

namespace rog {
namespace net {

/** Write a trace as CSV (`time_s,bytes_per_sec` with a header). */
void writeTraceCsv(std::ostream &os, const BandwidthTrace &trace);

/**
 * Parse a trace from CSV as written by writeTraceCsv.
 *
 * @throws std::runtime_error (via ROG_FATAL) on malformed input:
 *         missing header, non-numeric fields, non-uniform timestamps,
 *         or negative capacity.
 */
BandwidthTrace readTraceCsv(std::istream &is);

/** Convenience: save a trace to a file. @throws on I/O failure */
void saveTrace(const std::string &path, const BandwidthTrace &trace);

/** Convenience: load a trace from a file. @throws on I/O failure */
BandwidthTrace loadTrace(const std::string &path);

} // namespace net
} // namespace rog

#endif // ROG_NET_TRACE_IO_HPP
