#include "net/session/des_fabric.hpp"

#include "common/logging.hpp"
#include "net/bandwidth_trace.hpp"

namespace rog {
namespace net {
namespace session {

using transport::MessageKey;
using transport::ReliableLink;
using transport::SendResult;

double
DesFabric::now() const
{
    return net_.sim_.now();
}

FabricTimer
DesFabric::after(double delay_s, std::function<void()> fire)
{
    const FabricTimer id = next_timer_++;
    timers_[id] = net_.sim_.after(delay_s, [this, id, fn = std::move(fire)] {
        timers_.erase(id);
        fn();
    });
    return id;
}

void
DesFabric::cancelTimer(FabricTimer id)
{
    auto it = timers_.find(id);
    if (it == timers_.end())
        return;
    net_.sim_.cancel(it->second);
    timers_.erase(it);
}

bool
DesFabric::connectPeer(int peer, const std::string &, std::uint16_t)
{
    // Simulated links never die; (re)connecting just (re)creates the
    // pair so reconnect paths exercise the same code as sockets.
    net_.pair(node_, peer).healthy = true;
    return true;
}

bool
DesFabric::hasPeer(int peer) const
{
    return net_.pairs_.count({node_, peer}) != 0;
}

bool
DesFabric::peerHealthy(int peer) const
{
    auto it = net_.pairs_.find({node_, peer});
    return it != net_.pairs_.end() && it->second.healthy;
}

void
DesFabric::dropPeer(int peer)
{
    // Keep the pair (its exactly-once receiver state is the whole
    // point) but mark it unhealthy until the next connectPeer.
    auto it = net_.pairs_.find({node_, peer});
    if (it != net_.pairs_.end())
        it->second.healthy = false;
}

void
DesFabric::resetPeer(int peer)
{
    // The remote restarted: wipe this direction's per-key delivery
    // memory so re-sends under the new epoch are not suppressed.
    auto it = net_.pairs_.find({node_, peer});
    if (it != net_.pairs_.end() && it->second.link)
        it->second.link->reset();
}

void
DesFabric::sendTo(int peer, const MessageKey &key,
                  std::span<const std::uint8_t> payload, double deadline_s,
                  SendDone done)
{
    DesFabricNet::Pair &p = net_.pair(node_, peer);
    ReliableLink *link = p.link.get();
    link->startSendPayload(
        0, key, payload, deadline_s,
        [this, peer, key, link, done = std::move(done)](SendResult r) {
            if (r.delivered) {
                DesFabric &dst = net_.node(peer);
                if (dst.handler_) {
                    std::vector<std::uint8_t> bytes =
                        link->deliveredPayload(key);
                    dst.handler_(key, std::move(bytes));
                }
            }
            if (done)
                done(r.delivered);
        });
}

void
DesFabric::setMessageHandler(MessageHandler handler)
{
    handler_ = std::move(handler);
}

DesFabricNet::DesFabricNet(sim::Simulation &sim, double rate_bps,
                           const transport::TransportConfig &cfg)
    : sim_(sim), rate_bps_(rate_bps), cfg_(cfg)
{
}

DesFabricNet::~DesFabricNet() = default;

DesFabric &
DesFabricNet::node(int node)
{
    auto it = nodes_.find(node);
    if (it == nodes_.end())
        it = nodes_
                 .emplace(node, std::unique_ptr<DesFabric>(
                                    new DesFabric(*this, node)))
                 .first;
    return *it->second;
}

DesFabricNet::Pair &
DesFabricNet::pair(int src, int dst)
{
    auto it = pairs_.find({src, dst});
    if (it != pairs_.end())
        return it->second;
    Pair p;
    // Effectively infinite duration so long chaos twins never run off
    // the end of the trace.
    p.channel = std::make_unique<Channel>(
        sim_, std::vector<BandwidthTrace>{
                  BandwidthTrace::constant(rate_bps_, 1e6)});
    transport::TransportConfig cfg = cfg_;
    cfg.jitter_seed = next_jitter_seed_++;
    p.link = std::make_unique<ReliableLink>(sim_, *p.channel, cfg);
    return pairs_.emplace(std::make_pair(src, dst), std::move(p))
        .first->second;
}

const std::vector<transport::TransportEvent> *
DesFabricNet::linkLog(int src, int dst) const
{
    auto it = pairs_.find({src, dst});
    return it == pairs_.end() ? nullptr : &it->second.link->log();
}

} // namespace session
} // namespace net
} // namespace rog
