#include "net/session/session.hpp"

#include "common/logging.hpp"

namespace rog {
namespace net {
namespace session {

namespace {

/** splitmix64 finalizer: cheap, well-mixed, deterministic. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

SessionTable::SessionTable(std::size_t workers, std::uint64_t epoch,
                           std::uint64_t salt)
    : entries_(workers), epoch_(epoch), salt_(salt)
{
}

std::uint64_t
SessionTable::mintToken(const Hello &h) const
{
    std::uint64_t t = mix64(salt_ ^ mix64(h.worker));
    t = mix64(t ^ h.incarnation);
    t = mix64(t ^ admissions_);
    t = mix64(t ^ h.nonce);
    // 0 means "no token" on the wire; never mint it.
    return t == 0 ? 1 : t;
}

Admission
SessionTable::onHello(const Hello &h)
{
    ROG_ASSERT(h.worker < entries_.size(), "worker id out of range");
    Entry &e = entries_[h.worker];
    Admission a;

    if (h.epoch != epoch_) {
        a.reject = RejectReason::BadEpoch;
        return a;
    }
    if (h.resume_token != 0 && h.resume_token != e.token) {
        a.reject = RejectReason::StaleToken;
        return a;
    }

    a.admitted = true;
    if (!e.admitted_once) {
        a.mode = AdmitMode::Fresh;
        a.start_iter = 0;
    } else if (h.resume_token != 0 &&
               h.last_done_iter >= e.last_response_iter) {
        // The worker's durable state is at least as fresh as the last
        // outbox-clearing response we sent it: nothing it would need
        // was discarded, so it may pick up where it left off without
        // a model resync.
        a.mode = AdmitMode::Resume;
        a.start_iter = h.last_done_iter;
    } else {
        // Either no token (state lost) or the local checkpoint
        // predates a pull response whose cleared gradients can no
        // longer be replayed: full resync restores conservation.
        a.mode = AdmitMode::Rejoin;
        a.start_iter = e.last_done_iter;
    }

    ++admissions_;
    e.session = next_session_++;
    e.token = mintToken(h);
    e.incarnation = h.incarnation;
    e.admitted_once = true;
    if (a.mode == AdmitMode::Resume)
        e.last_done_iter = h.last_done_iter;
    a.session = e.session;
    a.resume_token = e.token;
    return a;
}

void
SessionTable::noteProgress(std::size_t worker, std::int64_t iter)
{
    ROG_ASSERT(worker < entries_.size(), "worker id out of range");
    Entry &e = entries_[worker];
    if (iter > e.last_done_iter)
        e.last_done_iter = iter;
}

void
SessionTable::noteResponse(std::size_t worker, std::int64_t iter)
{
    ROG_ASSERT(worker < entries_.size(), "worker id out of range");
    Entry &e = entries_[worker];
    if (iter > e.last_response_iter)
        e.last_response_iter = iter;
}

SessionSnapshot
SessionTable::snapshot() const
{
    SessionSnapshot s;
    s.entries.reserve(entries_.size());
    for (const Entry &e : entries_) {
        SessionEntrySnapshot es;
        es.token = e.token;
        es.incarnation = e.incarnation;
        es.last_done_iter = e.last_done_iter;
        es.last_response_iter = e.last_response_iter;
        es.admitted_once = e.admitted_once;
        s.entries.push_back(es);
    }
    s.next_session = next_session_;
    s.admissions = admissions_;
    return s;
}

void
SessionTable::restore(const SessionSnapshot &snap,
                      std::uint64_t new_epoch)
{
    ROG_ASSERT(snap.entries.size() == entries_.size(),
               "session snapshot fleet-size mismatch");
    for (std::size_t w = 0; w < entries_.size(); ++w) {
        const SessionEntrySnapshot &es = snap.entries[w];
        Entry &e = entries_[w];
        e.session = 0; // force re-admission under the new epoch.
        e.token = es.token;
        e.incarnation = es.incarnation;
        e.last_done_iter = es.last_done_iter;
        e.last_response_iter = es.last_response_iter;
        e.admitted_once = es.admitted_once;
    }
    next_session_ = snap.next_session;
    admissions_ = snap.admissions;
    epoch_ = new_epoch;
}

bool
SessionTable::isCurrent(std::size_t worker, std::uint32_t session) const
{
    return worker < entries_.size() && session != 0 &&
           entries_[worker].session == session;
}

std::uint32_t
SessionTable::sessionOf(std::size_t worker) const
{
    ROG_ASSERT(worker < entries_.size(), "worker id out of range");
    return entries_[worker].session;
}

} // namespace session
} // namespace net
} // namespace rog
