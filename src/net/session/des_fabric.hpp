/**
 * @file
 * DesFabricNet: every node's Fabric backed by one shared simulation.
 *
 * The in-process correctness twin of SocketFabric. All nodes share a
 * sim::Simulation; each directed (src, dst) pair lazily gets its own
 * simulated Channel and ReliableLink, so per-pair transport state
 * (exactly-once receiver tables, retry backoff) matches the socket
 * topology one-to-one. Delivery is the sender link's completion: when
 * a payload send finishes delivered, the reassembled bytes are handed
 * to the destination node's message handler at that simulation time.
 *
 * Determinism: everything runs on the simulation clock; a given seed
 * and plan produce bit-identical traffic, which is what the chaos
 * harness diffs real-socket runs against.
 */
#ifndef ROG_NET_SESSION_DES_FABRIC_HPP
#define ROG_NET_SESSION_DES_FABRIC_HPP

#include <map>
#include <memory>

#include "net/channel.hpp"
#include "net/session/fabric.hpp"
#include "net/transport/reliable_link.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace net {
namespace session {

class DesFabricNet;

/** One node's view of the shared simulated network. */
class DesFabric : public Fabric
{
  public:
    int nodeId() const override { return node_; }
    double now() const override;
    FabricTimer after(double delay_s, std::function<void()> fire) override;
    void cancelTimer(FabricTimer id) override;
    bool connectPeer(int peer, const std::string &host,
                     std::uint16_t port) override;
    bool hasPeer(int peer) const override;
    bool peerHealthy(int peer) const override;
    void dropPeer(int peer) override;
    void resetPeer(int peer) override;
    void sendTo(int peer, const transport::MessageKey &key,
                std::span<const std::uint8_t> payload, double deadline_s,
                SendDone done) override;
    void setMessageHandler(MessageHandler handler) override;

  private:
    friend class DesFabricNet;
    DesFabric(DesFabricNet &net, int node) : net_(net), node_(node) {}

    DesFabricNet &net_;
    int node_ = 0;
    MessageHandler handler_;
    std::map<FabricTimer, sim::EventId> timers_;
    FabricTimer next_timer_ = 1;
};

/** The shared network: owns the simulation references and all links. */
class DesFabricNet
{
  public:
    /**
     * @param sim        shared simulation (must outlive the net).
     * @param rate_bps   per-pair constant channel bandwidth.
     * @param cfg        transport config for every link.
     */
    DesFabricNet(sim::Simulation &sim, double rate_bps,
                 const transport::TransportConfig &cfg);
    ~DesFabricNet();

    /** Get (create on first use) node @p node's fabric. */
    DesFabric &node(int node);

    sim::Simulation &sim() { return sim_; }

    /** Sender-side transport event log of the (src, dst) link, or
     *  nullptr when the pair never talked. */
    const std::vector<transport::TransportEvent> *linkLog(int src,
                                                          int dst) const;

  private:
    friend class DesFabric;

    struct Pair
    {
        std::unique_ptr<Channel> channel;
        std::unique_ptr<transport::ReliableLink> link;
        bool healthy = true;
    };

    /** Get (create on first use) the directed src -> dst pair. */
    Pair &pair(int src, int dst);

    sim::Simulation &sim_;
    double rate_bps_ = 0.0;
    transport::TransportConfig cfg_;
    std::map<int, std::unique_ptr<DesFabric>> nodes_;
    std::map<std::pair<int, int>, Pair> pairs_;
    std::uint64_t next_jitter_seed_ = 1;
};

} // namespace session
} // namespace net
} // namespace rog

#endif // ROG_NET_SESSION_DES_FABRIC_HPP
