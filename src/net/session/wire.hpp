/**
 * @file
 * Session-layer wire messages.
 *
 * The session layer multiplexes everything a training node says onto
 * the transport's MessageKey space: gradient pushes and pull data use
 * real unit indices in the row field, while control traffic (handshake,
 * heartbeats, pull requests, goodbyes) lives in a reserved row band at
 * the top of the 32-bit row space that no model partition can reach.
 * The 64-bit version field carries a (scope, sequence) pair — scope is
 * the server-assigned session id after admission (the worker's
 * incarnation during the handshake), sequence is the training
 * iteration or a per-kind counter — so a message key can never repeat
 * across a crash/restart boundary and the transport's per-key
 * exactly-once state composes with process-level faults.
 *
 * Payload encoding is explicit little-endian with no padding; every
 * parse is total (returns false on truncation) because the bytes come
 * off a network.
 */
#ifndef ROG_NET_SESSION_WIRE_HPP
#define ROG_NET_SESSION_WIRE_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/transport/event_log.hpp"

namespace rog {
namespace net {
namespace session {

using transport::MessageKey;

/** Fabric node id of the parameter server. */
inline constexpr int kServerNode = 0;

/** Fabric node id of ROG worker @p w. */
inline int
workerNode(std::size_t w)
{
    return static_cast<int>(w) + 1;
}

/** Control-plane rows: the top band of the row space. A model would
 *  need ~4.29 billion synchronization units to collide. */
inline constexpr std::uint32_t kRowControlBase = 0xFFFF0000u;
inline constexpr std::uint32_t kRowHello = kRowControlBase + 1;
inline constexpr std::uint32_t kRowWelcome = kRowControlBase + 2;
inline constexpr std::uint32_t kRowReject = kRowControlBase + 3;
inline constexpr std::uint32_t kRowHeartbeat = kRowControlBase + 4;
inline constexpr std::uint32_t kRowPullReq = kRowControlBase + 5;
inline constexpr std::uint32_t kRowPullData = kRowControlBase + 6;
inline constexpr std::uint32_t kRowBye = kRowControlBase + 7;

/** True when @p row is in the control band. */
inline bool
isControlRow(std::uint32_t row)
{
    return row >= kRowControlBase;
}

/** (scope << 24) | seq — scope disambiguates sessions/incarnations. */
std::int64_t packVersion(std::uint32_t scope, std::int64_t seq);
std::uint32_t versionScope(std::int64_t version);
std::int64_t versionSeq(std::int64_t version);

/** Why a Hello was turned away. */
enum class RejectReason : std::uint8_t {
    BadEpoch = 1,   //!< wrong run epoch; the reject carries the right one.
    StaleToken = 2, //!< resume token from a superseded session.
};

/** How an admitted worker (re)enters the run. */
enum class AdmitMode : std::uint8_t {
    Fresh = 0,  //!< first admission; model included.
    Rejoin = 1, //!< re-admission with full model resync.
    Resume = 2, //!< re-admission from a valid local checkpoint; no model.
};

const char *rejectReasonName(RejectReason r);
const char *admitModeName(AdmitMode m);

/** Worker -> server: open (or reopen) a session. */
struct Hello
{
    std::uint16_t worker = 0;
    std::uint32_t incarnation = 0; //!< restarts of this worker process.
    std::uint64_t epoch = 0;       //!< run epoch the worker believes in.
    std::uint64_t resume_token = 0; //!< 0 = none (fresh or lost state).
    std::uint64_t nonce = 0;        //!< echoes back in the response.
    std::uint16_t rx_port = 0;      //!< worker's receiver endpoint.
    std::int64_t last_done_iter = 0; //!< durable local progress claim.
};

/** Server -> worker: admission. */
struct Welcome
{
    std::uint64_t nonce = 0; //!< Hello echo.
    std::uint32_t session = 0;
    std::uint64_t resume_token = 0; //!< present in the *next* Hello.
    AdmitMode mode = AdmitMode::Fresh;
    std::int64_t start_iter = 0; //!< first training iteration is +1.
    std::uint64_t epoch = 0;
    std::vector<std::uint8_t> model; //!< empty on Resume.
};

/** Server -> worker: admission refused. */
struct Reject
{
    std::uint64_t nonce = 0;
    RejectReason reason = RejectReason::BadEpoch;
    std::uint64_t server_epoch = 0;
};

/** Worker -> server: liveness + progress. */
struct Heartbeat
{
    std::uint16_t worker = 0;
    std::int64_t iter = 0;
};

/** Worker -> server: all pushes of @p iter are in; gate me. */
struct PullReq
{
    std::uint16_t worker = 0;
    std::int64_t iter = 0;
};

/** One unit's averaged pending gradient. */
struct UnitUpdate
{
    std::uint32_t unit = 0;
    std::vector<float> values;
};

/** Server -> worker: averaged gradients pending for the worker. */
struct PullData
{
    std::int64_t iter = 0;     //!< echoed PullReq iteration.
    std::int64_t min_done = 0; //!< gate floor at response time.
    std::vector<UnitUpdate> units;
};

/** Worker -> server: graceful leave after finishing. */
struct Bye
{
    std::uint16_t worker = 0;
    std::int64_t done_iter = 0;
};

std::vector<std::uint8_t> encode(const Hello &m);
std::vector<std::uint8_t> encode(const Welcome &m);
std::vector<std::uint8_t> encode(const Reject &m);
std::vector<std::uint8_t> encode(const Heartbeat &m);
std::vector<std::uint8_t> encode(const PullReq &m);
std::vector<std::uint8_t> encode(const PullData &m);
std::vector<std::uint8_t> encode(const Bye &m);

bool parse(std::span<const std::uint8_t> in, Hello &out);
bool parse(std::span<const std::uint8_t> in, Welcome &out);
bool parse(std::span<const std::uint8_t> in, Reject &out);
bool parse(std::span<const std::uint8_t> in, Heartbeat &out);
bool parse(std::span<const std::uint8_t> in, PullReq &out);
bool parse(std::span<const std::uint8_t> in, PullData &out);
bool parse(std::span<const std::uint8_t> in, Bye &out);

/** Raw f32 little-endian array (gradient push payloads). */
std::vector<std::uint8_t> encodeFloats(std::span<const float> values);
bool parseFloats(std::span<const std::uint8_t> in,
                 std::vector<float> &out);

} // namespace session
} // namespace net
} // namespace rog

#endif // ROG_NET_SESSION_WIRE_HPP
