#include "net/session/wire.hpp"

#include <cstring>

#include "common/logging.hpp"

namespace rog {
namespace net {
namespace session {

namespace {

/** Append-only little-endian serializer. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<std::uint8_t> &out) : out_(out) {}

    void
    u8(std::uint8_t v)
    {
        out_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        out_.push_back(static_cast<std::uint8_t>(v));
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    f32(float v)
    {
        std::uint32_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        u32(bits);
    }

    void
    bytes(std::span<const std::uint8_t> v)
    {
        out_.insert(out_.end(), v.begin(), v.end());
    }

  private:
    std::vector<std::uint8_t> &out_;
};

/** Cursor-based little-endian deserializer; every read is total. */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const std::uint8_t> in) : in_(in) {}

    bool
    u8(std::uint8_t &v)
    {
        if (pos_ + 1 > in_.size())
            return false;
        v = in_[pos_++];
        return true;
    }

    bool
    u16(std::uint16_t &v)
    {
        if (pos_ + 2 > in_.size())
            return false;
        v = static_cast<std::uint16_t>(in_[pos_]) |
            static_cast<std::uint16_t>(in_[pos_ + 1]) << 8;
        pos_ += 2;
        return true;
    }

    bool
    u32(std::uint32_t &v)
    {
        std::uint16_t lo = 0;
        std::uint16_t hi = 0;
        if (!u16(lo) || !u16(hi))
            return false;
        v = static_cast<std::uint32_t>(lo) |
            static_cast<std::uint32_t>(hi) << 16;
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        std::uint32_t lo = 0;
        std::uint32_t hi = 0;
        if (!u32(lo) || !u32(hi))
            return false;
        v = static_cast<std::uint64_t>(lo) |
            static_cast<std::uint64_t>(hi) << 32;
        return true;
    }

    bool
    i64(std::int64_t &v)
    {
        std::uint64_t bits = 0;
        if (!u64(bits))
            return false;
        v = static_cast<std::int64_t>(bits);
        return true;
    }

    bool
    f32(float &v)
    {
        std::uint32_t bits = 0;
        if (!u32(bits))
            return false;
        std::memcpy(&v, &bits, sizeof v);
        return true;
    }

    bool
    bytes(std::size_t n, std::vector<std::uint8_t> &out)
    {
        // n comes off the wire; pos_ + n could wrap size_t and slip
        // past a naive bound check.
        if (n > in_.size() - pos_)
            return false;
        out.assign(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
                   in_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
        pos_ += n;
        return true;
    }

    bool done() const { return pos_ == in_.size(); }

    std::size_t remaining() const { return in_.size() - pos_; }

  private:
    std::span<const std::uint8_t> in_;
    std::size_t pos_ = 0;
};

/** Per-message tag byte: catches crossed control rows early. */
enum : std::uint8_t {
    kTagHello = 0x11,
    kTagWelcome = 0x12,
    kTagReject = 0x13,
    kTagHeartbeat = 0x14,
    kTagPullReq = 0x15,
    kTagPullData = 0x16,
    kTagBye = 0x17,
};

} // namespace

std::int64_t
packVersion(std::uint32_t scope, std::int64_t seq)
{
    // seq lives in the low 24 bits of the key; silently truncating a
    // larger value would alias earlier keys and corrupt exactly-once
    // dedup, so refuse loudly instead.
    ROG_ASSERT(seq >= 0 && seq <= 0xFFFFFF,
               "packVersion seq out of 24-bit range");
    return static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(scope) << 24) |
        (static_cast<std::uint64_t>(seq) & 0xFFFFFFu));
}

std::uint32_t
versionScope(std::int64_t version)
{
    return static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(version) >> 24);
}

std::int64_t
versionSeq(std::int64_t version)
{
    return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(version) & 0xFFFFFFu);
}

const char *
rejectReasonName(RejectReason r)
{
    switch (r) {
    case RejectReason::BadEpoch:
        return "bad_epoch";
    case RejectReason::StaleToken:
        return "stale_token";
    }
    return "unknown";
}

const char *
admitModeName(AdmitMode m)
{
    switch (m) {
    case AdmitMode::Fresh:
        return "fresh";
    case AdmitMode::Rejoin:
        return "rejoin";
    case AdmitMode::Resume:
        return "resume";
    }
    return "unknown";
}

std::vector<std::uint8_t>
encode(const Hello &m)
{
    std::vector<std::uint8_t> out;
    ByteWriter w(out);
    w.u8(kTagHello);
    w.u16(m.worker);
    w.u32(m.incarnation);
    w.u64(m.epoch);
    w.u64(m.resume_token);
    w.u64(m.nonce);
    w.u16(m.rx_port);
    w.i64(m.last_done_iter);
    return out;
}

bool
parse(std::span<const std::uint8_t> in, Hello &out)
{
    ByteReader r(in);
    std::uint8_t tag = 0;
    return r.u8(tag) && tag == kTagHello && r.u16(out.worker) &&
           r.u32(out.incarnation) && r.u64(out.epoch) &&
           r.u64(out.resume_token) && r.u64(out.nonce) &&
           r.u16(out.rx_port) && r.i64(out.last_done_iter) && r.done();
}

std::vector<std::uint8_t>
encode(const Welcome &m)
{
    std::vector<std::uint8_t> out;
    ByteWriter w(out);
    w.u8(kTagWelcome);
    w.u64(m.nonce);
    w.u32(m.session);
    w.u64(m.resume_token);
    w.u8(static_cast<std::uint8_t>(m.mode));
    w.i64(m.start_iter);
    w.u64(m.epoch);
    w.u64(m.model.size());
    w.bytes(m.model);
    return out;
}

bool
parse(std::span<const std::uint8_t> in, Welcome &out)
{
    ByteReader r(in);
    std::uint8_t tag = 0;
    std::uint8_t mode = 0;
    std::uint64_t model_len = 0;
    if (!(r.u8(tag) && tag == kTagWelcome && r.u64(out.nonce) &&
          r.u32(out.session) && r.u64(out.resume_token) && r.u8(mode) &&
          r.i64(out.start_iter) && r.u64(out.epoch) && r.u64(model_len)))
        return false;
    if (mode > static_cast<std::uint8_t>(AdmitMode::Resume))
        return false;
    out.mode = static_cast<AdmitMode>(mode);
    return r.bytes(static_cast<std::size_t>(model_len), out.model) &&
           r.done();
}

std::vector<std::uint8_t>
encode(const Reject &m)
{
    std::vector<std::uint8_t> out;
    ByteWriter w(out);
    w.u8(kTagReject);
    w.u64(m.nonce);
    w.u8(static_cast<std::uint8_t>(m.reason));
    w.u64(m.server_epoch);
    return out;
}

bool
parse(std::span<const std::uint8_t> in, Reject &out)
{
    ByteReader r(in);
    std::uint8_t tag = 0;
    std::uint8_t reason = 0;
    if (!(r.u8(tag) && tag == kTagReject && r.u64(out.nonce) &&
          r.u8(reason) && r.u64(out.server_epoch) && r.done()))
        return false;
    if (reason < static_cast<std::uint8_t>(RejectReason::BadEpoch) ||
        reason > static_cast<std::uint8_t>(RejectReason::StaleToken))
        return false;
    out.reason = static_cast<RejectReason>(reason);
    return true;
}

std::vector<std::uint8_t>
encode(const Heartbeat &m)
{
    std::vector<std::uint8_t> out;
    ByteWriter w(out);
    w.u8(kTagHeartbeat);
    w.u16(m.worker);
    w.i64(m.iter);
    return out;
}

bool
parse(std::span<const std::uint8_t> in, Heartbeat &out)
{
    ByteReader r(in);
    std::uint8_t tag = 0;
    return r.u8(tag) && tag == kTagHeartbeat && r.u16(out.worker) &&
           r.i64(out.iter) && r.done();
}

std::vector<std::uint8_t>
encode(const PullReq &m)
{
    std::vector<std::uint8_t> out;
    ByteWriter w(out);
    w.u8(kTagPullReq);
    w.u16(m.worker);
    w.i64(m.iter);
    return out;
}

bool
parse(std::span<const std::uint8_t> in, PullReq &out)
{
    ByteReader r(in);
    std::uint8_t tag = 0;
    return r.u8(tag) && tag == kTagPullReq && r.u16(out.worker) &&
           r.i64(out.iter) && r.done();
}

std::vector<std::uint8_t>
encode(const PullData &m)
{
    std::vector<std::uint8_t> out;
    ByteWriter w(out);
    w.u8(kTagPullData);
    w.i64(m.iter);
    w.i64(m.min_done);
    w.u32(static_cast<std::uint32_t>(m.units.size()));
    for (const UnitUpdate &u : m.units) {
        w.u32(u.unit);
        w.u32(static_cast<std::uint32_t>(u.values.size()));
        for (float v : u.values)
            w.f32(v);
    }
    return out;
}

bool
parse(std::span<const std::uint8_t> in, PullData &out)
{
    ByteReader r(in);
    std::uint8_t tag = 0;
    std::uint32_t units = 0;
    if (!(r.u8(tag) && tag == kTagPullData && r.i64(out.iter) &&
          r.i64(out.min_done) && r.u32(units)))
        return false;
    // The counts are untrusted: a short message claiming ~2^32 units
    // or floats must fail the parse, not drive a multi-GB allocation.
    // Each unit occupies at least 8 header bytes, each value 4.
    if (units > r.remaining() / 8)
        return false;
    out.units.clear();
    out.units.reserve(units);
    for (std::uint32_t i = 0; i < units; ++i) {
        UnitUpdate u;
        std::uint32_t n = 0;
        if (!(r.u32(u.unit) && r.u32(n)))
            return false;
        if (n > r.remaining() / 4)
            return false;
        u.values.resize(n);
        for (std::uint32_t j = 0; j < n; ++j)
            if (!r.f32(u.values[j]))
                return false;
        out.units.push_back(std::move(u));
    }
    return r.done();
}

std::vector<std::uint8_t>
encode(const Bye &m)
{
    std::vector<std::uint8_t> out;
    ByteWriter w(out);
    w.u8(kTagBye);
    w.u16(m.worker);
    w.i64(m.done_iter);
    return out;
}

bool
parse(std::span<const std::uint8_t> in, Bye &out)
{
    ByteReader r(in);
    std::uint8_t tag = 0;
    return r.u8(tag) && tag == kTagBye && r.u16(out.worker) &&
           r.i64(out.done_iter) && r.done();
}

std::vector<std::uint8_t>
encodeFloats(std::span<const float> values)
{
    std::vector<std::uint8_t> out;
    out.reserve(values.size() * 4);
    ByteWriter w(out);
    for (float v : values)
        w.f32(v);
    return out;
}

bool
parseFloats(std::span<const std::uint8_t> in, std::vector<float> &out)
{
    if (in.size() % 4 != 0)
        return false;
    ByteReader r(in);
    out.resize(in.size() / 4);
    for (float &v : out)
        if (!r.f32(v))
            return false;
    return true;
}

} // namespace session
} // namespace net
} // namespace rog
