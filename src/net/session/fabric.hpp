/**
 * @file
 * Fabric: the session layer's view of "a network of nodes".
 *
 * A Fabric is what one node (a worker or the server) holds: its own
 * clock and timers, plus keyed reliable messaging to peers. There are
 * two implementations — DesFabricNet hands every node a port on one
 * shared discrete-event simulation, SocketFabric gives a node real
 * UDP/TCP sockets on its own PollLoop — and the node engine code on
 * top (node_engine.hpp) is written against this interface only, so
 * the exact same worker and server logic runs in-process under DES
 * and across processes over loopback sockets. That is the paper's
 * correctness argument in code: the DES run is the twin the chaos
 * harness compares real-socket runs against.
 *
 * Reliability contract: sendTo() hands the payload to a ReliableLink —
 * chunked, CRC-framed, retried with capped exponential backoff, and
 * delivered exactly once per MessageKey at the receiver. done(true)
 * means the peer's transport accepted the full message; done(false)
 * means the deadline expired or the link failed permanently. Messages
 * to one peer may complete out of order (distinct keys are independent
 * streams).
 */
#ifndef ROG_NET_SESSION_FABRIC_HPP
#define ROG_NET_SESSION_FABRIC_HPP

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "net/transport/event_log.hpp"

namespace rog {
namespace net {
namespace session {

/** Opaque timer handle (0 = invalid / already fired). */
using FabricTimer = std::uint64_t;

class Fabric
{
  public:
    /** A complete message arrived from some peer. */
    using MessageHandler = std::function<void(
        const transport::MessageKey &, std::vector<std::uint8_t> &&)>;
    /** Send completion: true = delivered into the peer's transport. */
    using SendDone = std::function<void(bool)>;

    virtual ~Fabric() = default;

    /** This node's id (kServerNode or workerNode(w)). */
    virtual int nodeId() const = 0;

    virtual double now() const = 0;
    virtual FabricTimer after(double delay_s,
                              std::function<void()> fire) = 0;
    virtual void cancelTimer(FabricTimer id) = 0;

    /**
     * Open (or replace) the outgoing link to @p peer. Replacing tears
     * down any prior link and its in-flight sends — the reconnect
     * path after a peer restart. DES fabrics ignore host/port.
     */
    virtual bool connectPeer(int peer, const std::string &host,
                             std::uint16_t port) = 0;

    virtual bool hasPeer(int peer) const = 0;

    /** False once the link reports a permanent socket error. */
    virtual bool peerHealthy(int peer) const = 0;

    /** Drop the link and abandon its in-flight sends. */
    virtual void dropPeer(int peer) = 0;

    /**
     * Forget all per-key delivery bookkeeping for @p peer, aborting
     * in-flight sends (their @p done callbacks fire with false). Call
     * on epoch change: a peer that restarted came back with fresh
     * receiver state, so the sender's memory of what that peer has
     * already seen is stale and must not suppress re-sends.
     */
    virtual void resetPeer(int peer) { (void)peer; }

    /**
     * Reliably send @p payload keyed by @p key. @p deadline_s is
     * absolute (kNoDeadline = retry forever). @p done may fire inline.
     */
    virtual void sendTo(int peer, const transport::MessageKey &key,
                        std::span<const std::uint8_t> payload,
                        double deadline_s, SendDone done) = 0;

    virtual void setMessageHandler(MessageHandler handler) = 0;

    /** Socket fabrics: the bound receiver port. DES fabrics: 0. */
    virtual std::uint16_t listenPort() const { return 0; }
};

} // namespace session
} // namespace net
} // namespace rog

#endif // ROG_NET_SESSION_FABRIC_HPP
