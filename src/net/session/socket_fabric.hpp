/**
 * @file
 * SocketFabric: one node's Fabric over real UDP or TCP sockets.
 *
 * The process-local half of the session layer: a receiver endpoint
 * (bound port, store_payload on, delivery sink wired to the message
 * handler) plus one {fault injector?, backend, ReliableLink} trio per
 * connected peer, all driven by the caller's PollLoop. connectPeer()
 * replaces any existing trio — that is the reconnect path after this
 * node notices a peer restart — while the receiver endpoint (and with
 * it the exactly-once decision state) lives for the fabric's whole
 * lifetime, so a reconnecting peer's retransmits are still deduped.
 *
 * Backend choice is by kind string ("udp" | "tcp"), read once at
 * construction; nothing above this class branches on it.
 */
#ifndef ROG_NET_SESSION_SOCKET_FABRIC_HPP
#define ROG_NET_SESSION_SOCKET_FABRIC_HPP

#include <map>
#include <memory>

#include "common/poll_loop.hpp"
#include "fault/socket_fault.hpp"
#include "net/session/fabric.hpp"
#include "net/transport/reliable_link.hpp"
#include "net/transport/socket_backend.hpp"

namespace rog {
namespace net {
namespace session {

/** Everything a SocketFabric needs beyond the poll loop. */
struct SocketFabricOptions
{
    std::string kind = "udp"; //!< "udp" or "tcp".
    transport::TransportConfig transport;
    transport::SocketOptions socket;
    /** Applied to every outgoing peer link (UDP only; TCP's stream
     *  semantics make datagram-style faults meaningless). */
    fault::SocketFaultPlan fault_plan;
    bool inject_faults = false;
    std::uint16_t listen_port = 0; //!< 0 = ephemeral.
};

class SocketFabric : public Fabric
{
  public:
    SocketFabric(PollLoop &loop, int node,
                 const SocketFabricOptions &opts);
    ~SocketFabric() override;

    int nodeId() const override { return node_; }
    double now() const override;
    FabricTimer after(double delay_s, std::function<void()> fire) override;
    void cancelTimer(FabricTimer id) override;
    bool connectPeer(int peer, const std::string &host,
                     std::uint16_t port) override;
    bool hasPeer(int peer) const override;
    bool peerHealthy(int peer) const override;
    void dropPeer(int peer) override;
    void resetPeer(int peer) override;
    void sendTo(int peer, const transport::MessageKey &key,
                std::span<const std::uint8_t> payload, double deadline_s,
                SendDone done) override;
    void setMessageHandler(MessageHandler handler) override;
    std::uint16_t listenPort() const override;

    /** The receiver endpoint's structured event log (for artifact
     *  dumps and the chaos invariant checker). */
    const std::vector<transport::TransportEvent> &receiverLog() const;

    bool ok() const;
    const std::string &error() const;

  private:
    struct Peer
    {
        std::unique_ptr<fault::SocketFaultInjector> faults;
        std::unique_ptr<transport::SocketSenderBase> backend;
        std::unique_ptr<transport::ReliableLink> link;
    };

    PollLoop &loop_;
    int node_ = 0;
    SocketFabricOptions opts_;
    std::unique_ptr<transport::ReceiverEndpointBase> rx_;
    std::uint16_t port_ = 0;
    std::map<int, Peer> peers_;
    std::string last_error_;
};

} // namespace session
} // namespace net
} // namespace rog

#endif // ROG_NET_SESSION_SOCKET_FABRIC_HPP
