#include "net/session/socket_fabric.hpp"

#include "common/logging.hpp"

namespace rog {
namespace net {
namespace session {

using transport::MessageKey;
using transport::SendResult;

SocketFabric::SocketFabric(PollLoop &loop, int node,
                           const SocketFabricOptions &opts)
    : loop_(loop), node_(node), opts_(opts)
{
    ROG_ASSERT(opts_.kind == "udp" || opts_.kind == "tcp",
               "unknown socket fabric kind");
    if (opts_.kind == "udp") {
        auto rx = std::make_unique<transport::UdpReceiverEndpoint>(
            loop_, opts_.listen_port, nullptr, /*store_payload=*/true,
            opts_.socket.bind_retry_window_s);
        port_ = rx->port();
        if (!rx->ok())
            last_error_ = rx->error();
        rx_ = std::move(rx);
    } else {
        auto rx = std::make_unique<transport::TcpReceiverEndpoint>(
            loop_, opts_.listen_port, nullptr, /*store_payload=*/true,
            opts_.socket.bind_retry_window_s);
        port_ = rx->port();
        if (!rx->ok())
            last_error_ = rx->error();
        rx_ = std::move(rx);
    }
}

SocketFabric::~SocketFabric() = default;

double
SocketFabric::now() const
{
    return loop_.now();
}

FabricTimer
SocketFabric::after(double delay_s, std::function<void()> fire)
{
    return loop_.after(delay_s, std::move(fire));
}

void
SocketFabric::cancelTimer(FabricTimer id)
{
    loop_.cancel(id);
}

bool
SocketFabric::connectPeer(int peer, const std::string &host,
                          std::uint16_t port)
{
    // Replace wholesale: a reconnect abandons the old socket and its
    // in-flight sends (their done callbacks already fired false or
    // will be dropped with the backend).
    peers_.erase(peer);
    Peer p;
    if (opts_.kind == "udp") {
        if (opts_.inject_faults) {
            fault::SocketFaultPlan plan = opts_.fault_plan;
            // Decorrelate per-peer fault streams deterministically.
            plan.seed = plan.seed * 1000003u + static_cast<std::uint64_t>(peer);
            p.faults =
                std::make_unique<fault::SocketFaultInjector>(plan);
        }
        p.backend = std::make_unique<transport::UdpBackend>(
            loop_, host, port, opts_.socket, p.faults.get());
    } else {
        p.backend = std::make_unique<transport::TcpBackend>(
            loop_, host, port, opts_.socket);
    }
    if (!p.backend->ok()) {
        last_error_ = p.backend->error();
        return false;
    }
    p.link = std::make_unique<transport::ReliableLink>(*p.backend,
                                                       opts_.transport);
    peers_.emplace(peer, std::move(p));
    return true;
}

bool
SocketFabric::hasPeer(int peer) const
{
    return peers_.count(peer) != 0;
}

bool
SocketFabric::peerHealthy(int peer) const
{
    auto it = peers_.find(peer);
    return it != peers_.end() && it->second.backend->ok();
}

void
SocketFabric::dropPeer(int peer)
{
    peers_.erase(peer);
}

void
SocketFabric::resetPeer(int peer)
{
    // The remote restarted with fresh receiver state. Abort in-flight
    // sends (their done callbacks fire false) and forget delivered
    // keys, then tear the socket down; the caller reconnects.
    auto it = peers_.find(peer);
    if (it == peers_.end())
        return;
    if (it->second.link)
        it->second.link->reset();
    peers_.erase(it);
}

void
SocketFabric::sendTo(int peer, const MessageKey &key,
                     std::span<const std::uint8_t> payload,
                     double deadline_s, SendDone done)
{
    auto it = peers_.find(peer);
    ROG_ASSERT(it != peers_.end(), "sendTo before connectPeer");
    it->second.link->startSendPayload(
        0, key, payload, deadline_s,
        [done = std::move(done)](SendResult r) {
            if (done)
                done(r.delivered);
        });
}

void
SocketFabric::setMessageHandler(MessageHandler handler)
{
    rx_->setDeliverySink(std::move(handler));
}

std::uint16_t
SocketFabric::listenPort() const
{
    return port_;
}

const std::vector<transport::TransportEvent> &
SocketFabric::receiverLog() const
{
    return rx_->log();
}

bool
SocketFabric::ok() const
{
    return last_error_.empty() && rx_ && rx_->ok();
}

const std::string &
SocketFabric::error() const
{
    return !last_error_.empty() ? last_error_ : rx_->error();
}

} // namespace session
} // namespace net
} // namespace rog
