/**
 * @file
 * SessionTable: the server's admission state machine.
 *
 * Pure logic, no I/O — the server node feeds it Hello messages and
 * progress notes; it decides admit/reject and in which mode
 * (fresh / rejoin-with-resync / resume-from-local-checkpoint), mints
 * session ids and resume tokens, and remembers enough per worker to
 * tell a returning process from an impostor or a time traveler:
 *
 *  - Epoch gate: a Hello carrying the wrong run epoch is rejected
 *    with the server's epoch so the worker can adopt it and retry.
 *    This fences off workers from a previous run of the same fleet.
 *  - Token gate: a non-zero resume token that is not the one minted
 *    for this worker's latest admission is rejected as stale — the
 *    worker clears it and re-enters fresh (full resync).
 *  - Resume downgrade: a valid token whose local checkpoint predates
 *    the server's last pull response to that worker cannot resume —
 *    the gradients cleared by that response would be lost — so the
 *    admission downgrades to a Rejoin with a full model resync,
 *    which restores gradient conservation by construction.
 *
 * Every admission gets a fresh session id (monotone) so stale
 * messages from a dead incarnation are identifiable by version scope
 * alone, and a fresh token derived deterministically from the table's
 * salt — runs are reproducible, yet tokens never repeat.
 */
#ifndef ROG_NET_SESSION_SESSION_HPP
#define ROG_NET_SESSION_SESSION_HPP

#include <cstdint>
#include <vector>

#include "net/session/wire.hpp"

namespace rog {
namespace net {
namespace session {

/**
 * Durable image of one worker's admission record. What a restarted
 * server needs to honor resume tokens minted before the crash:
 * tokens, incarnations, and progress lines survive; live session ids
 * deliberately do not (every worker re-enters through Hello).
 */
struct SessionEntrySnapshot
{
    std::uint64_t token = 0;
    std::uint32_t incarnation = 0;
    std::int64_t last_done_iter = 0;
    std::int64_t last_response_iter = 0;
    bool admitted_once = false;
};

/** Durable image of the whole table (see SessionTable::snapshot). */
struct SessionSnapshot
{
    std::vector<SessionEntrySnapshot> entries;
    /** Preserve id monotonicity across restarts: no scope aliasing. */
    std::uint32_t next_session = 1;
    std::uint64_t admissions = 0;
};

/** Outcome of SessionTable::onHello. */
struct Admission
{
    bool admitted = false;
    /** Valid when admitted. */
    AdmitMode mode = AdmitMode::Fresh;
    std::uint32_t session = 0;
    std::uint64_t resume_token = 0;
    std::int64_t start_iter = 0;
    /** Valid when rejected. */
    RejectReason reject = RejectReason::BadEpoch;
};

class SessionTable
{
  public:
    /**
     * @param workers fleet size; worker ids are [0, workers).
     * @param epoch   run epoch all Hellos must match.
     * @param salt    token-derivation seed (vary per run).
     */
    SessionTable(std::size_t workers, std::uint64_t epoch,
                 std::uint64_t salt);

    /** Decide admission for @p h. Mutates the table when admitted. */
    Admission onHello(const Hello &h);

    /** Worker finished (applied the pull of) iteration @p iter. */
    void noteProgress(std::size_t worker, std::int64_t iter);

    /**
     * The server answered worker @p worker's pull for @p iter —
     * pending outbox state was cleared, so any resume claim below
     * this line must be downgraded to a full resync.
     */
    void noteResponse(std::size_t worker, std::int64_t iter);

    /** True when @p session is worker @p worker's live session. */
    bool isCurrent(std::size_t worker, std::uint32_t session) const;

    /** Live session id for @p worker (0 = never admitted). */
    std::uint32_t sessionOf(std::size_t worker) const;

    std::uint64_t epoch() const { return epoch_; }

    /** Total admissions (all workers, all modes). */
    std::size_t admissions() const { return admissions_; }

    /** Durable image for the server checkpoint. */
    SessionSnapshot snapshot() const;

    /**
     * Rebuild the table from @p snap under @p new_epoch (the restarted
     * server bumps the epoch it crashed with). Tokens, incarnations
     * and progress lines come back so pre-crash resume tokens still
     * admit; live session ids are zeroed so every worker — even one
     * that never noticed the crash — must re-enter through Hello
     * before any of its traffic scopes as current again.
     */
    void restore(const SessionSnapshot &snap, std::uint64_t new_epoch);

  private:
    struct Entry
    {
        std::uint32_t session = 0; //!< 0 = never admitted.
        std::uint64_t token = 0;
        std::uint32_t incarnation = 0;
        std::int64_t last_done_iter = 0;
        std::int64_t last_response_iter = 0;
        bool admitted_once = false;
    };

    std::uint64_t mintToken(const Hello &h) const;

    std::vector<Entry> entries_;
    std::uint64_t epoch_ = 0;
    std::uint64_t salt_ = 0;
    std::uint32_t next_session_ = 1;
    std::size_t admissions_ = 0;
};

} // namespace session
} // namespace net
} // namespace rog

#endif // ROG_NET_SESSION_SESSION_HPP
