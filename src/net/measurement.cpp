#include "net/measurement.hpp"

#include "common/logging.hpp"

namespace rog {
namespace net {

sim::Process
measureActiveThroughput(sim::Simulation &sim, Channel &channel,
                        LinkId link, double duration_s,
                        double interval_s,
                        std::vector<ThroughputSample> &out)
{
    ROG_ASSERT(interval_s > 0.0 && duration_s > 0.0,
               "invalid measurement window");
    const double end = sim.now() + duration_s;

    // Saturation: keep a large transfer in flight, cut at each
    // sampling boundary to read out the probe's delivered volume.
    while (sim.now() < end) {
        const double interval_start = sim.now();
        const double window = std::min(interval_s, end - sim.now());
        // A payload far larger than the link can carry in the window
        // guarantees saturation; the timeout cuts it at the boundary.
        const double probe_bytes = 1e12;
        auto res = co_await channel.transfer(link, probe_bytes, window);
        ThroughputSample sample;
        sample.time_s = interval_start;
        sample.bytes_per_sec =
            res.bytes_sent / std::max(res.elapsed, 1e-12);
        out.push_back(sample);
    }
}

PassiveLinkEstimator::PassiveLinkEstimator(const Channel &channel,
                                           LinkId link, double ewma_alpha)
    : channel_(channel), link_(link), avg_(ewma_alpha)
{
}

double
PassiveLinkEstimator::sampleAt(double t)
{
    last_raw_ = channel_.linkCapacityAt(link_, t);
    avg_.observe(last_raw_);
    return last_raw_;
}

double
PassiveLinkEstimator::lastNormalized() const
{
    const double avg = runningAverage();
    if (avg <= 0.0)
        return 1.0;
    return last_raw_ / avg;
}

} // namespace net
} // namespace rog
