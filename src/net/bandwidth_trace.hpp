/**
 * @file
 * Piecewise-constant bandwidth traces.
 *
 * The paper measures link capacity every 0.1 s (Fig. 3) and its
 * artifact replays those records with `tc`. A BandwidthTrace is the
 * same object: a sequence of capacity samples at a fixed step, replayed
 * (looping) by the channel simulator.
 */
#ifndef ROG_NET_BANDWIDTH_TRACE_HPP
#define ROG_NET_BANDWIDTH_TRACE_HPP

#include <cstddef>
#include <vector>

namespace rog {
namespace net {

/** A looping, piecewise-constant link-capacity trace. */
class BandwidthTrace
{
  public:
    BandwidthTrace() = default;

    /**
     * @param samples capacity in bytes/second per step. @pre non-empty,
     *        all samples >= 0.
     * @param step_seconds sample period. @pre > 0
     */
    BandwidthTrace(std::vector<double> samples, double step_seconds);

    /** Capacity in bytes/second at absolute time @p t (loops). */
    double bytesPerSecAt(double t) const;

    /** Sample period in seconds. */
    double stepSeconds() const { return step_; }

    /** Duration of one loop in seconds. */
    double durationSeconds() const;

    /** Number of samples in one loop. */
    std::size_t sampleCount() const { return samples_.size(); }

    /** Raw samples (one loop). */
    const std::vector<double> &samples() const { return samples_; }

    /**
     * First piecewise boundary strictly after @p t: the next time the
     * capacity value may change.
     */
    double nextBoundaryAfter(double t) const;

    /** Mean capacity over one loop. */
    double meanBytesPerSec() const;

    /** A constant trace (useful for tests and the "ideal network"). */
    static BandwidthTrace constant(double bytes_per_sec,
                                   double duration_seconds = 60.0,
                                   double step_seconds = 0.1);

  private:
    std::vector<double> samples_;
    double step_ = 0.1;
};

} // namespace net
} // namespace rog

#endif // ROG_NET_BANDWIDTH_TRACE_HPP
