#include "net/channel.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace rog {
namespace net {

namespace {
// Flows with less than this many bytes left are complete (guards
// against floating-point residue in the fluid arithmetic).
constexpr double kByteEpsilon = 1e-6;
} // namespace

Channel::Channel(sim::Simulation &sim, std::vector<BandwidthTrace> links)
    : sim_(sim), links_(std::move(links)), last_update_(sim.now())
{
    ROG_ASSERT(!links_.empty(), "channel needs at least one link");
    const double step = links_.front().stepSeconds();
    for (const auto &l : links_)
        ROG_ASSERT(l.stepSeconds() == step,
                   "all link traces must share one step grid");
}

Channel::~Channel()
{
    sim_.cancel(wake_event_);
    for (auto &flow : flows_) {
        sim_.cancel(flow.timeout_event);
        if (flow.drop)
            flow.drop();
    }
}

double
Channel::linkCapacityAt(LinkId link, double t) const
{
    ROG_ASSERT(link < links_.size(), "link out of range");
    return links_[link].bytesPerSecAt(t);
}

double
Channel::flowRate(const Flow &flow, double t) const
{
    const auto n = static_cast<double>(flows_.size());
    ROG_ASSERT(n >= 1.0, "flowRate with no flows");
    return linkCapacityAt(flow.link, t) / n;
}

void
Channel::settle()
{
    const double now = sim_.now();
    const double dt = now - last_update_;
    ROG_ASSERT(dt >= -1e-12, "channel time went backwards");
    if (dt <= 0.0) {
        last_update_ = now;
        return;
    }
    // Rates are constant over (last_update_, now): reschedule() never
    // lets an interval span a trace boundary. Sample at the midpoint to
    // stay clear of boundary ties.
    const double t_mid = last_update_ + 0.5 * dt;
    for (auto &flow : flows_) {
        const double sent = flowRate(flow, t_mid) * dt;
        const double applied = std::min(sent, flow.remaining);
        flow.remaining -= applied;
        bytes_delivered_ += applied;
    }
    last_update_ = now;
}

void
Channel::finish(FlowIter it, double elapsed)
{
    sim_.cancel(it->timeout_event);
    TransferResult res;
    res.bytes_requested = it->requested;
    res.bytes_sent = it->deliverable - std::max(it->remaining, 0.0);
    // A truncated flow drains its deliverable cap but never completes:
    // the tail the fault swallowed counts as lost, like a timeout cut.
    if (it->remaining <= kByteEpsilon) {
        res.bytes_sent = it->deliverable;
        res.completed = it->deliverable >= it->requested - kByteEpsilon;
    }
    res.faulted = it->faulted;
    res.corrupted = it->corrupted;
    res.duplicated = it->duplicated;
    res.reordered = it->reordered;
    res.elapsed = elapsed;
    Callback done = std::move(it->done);
    flows_.erase(it);
    if (done)
        done(res);
}

void
Channel::reschedule()
{
    sim_.cancel(wake_event_);
    wake_event_ = sim::EventId{};
    if (flows_.empty())
        return;

    const double now = sim_.now();
    // All traces share the step grid; the next boundary is common.
    const double boundary = links_.front().nextBoundaryAfter(now);
    double wake = boundary;

    // Sample rates just after `now` (the segment the flows are in).
    const double t_probe = 0.5 * (now + boundary);
    for (const auto &flow : flows_) {
        // A flow whose deliverable cap is already drained (e.g. a
        // zero-byte truncation) must be delivered without waiting for
        // the next trace boundary.
        if (flow.remaining <= kByteEpsilon) {
            wake = now;
            break;
        }
        const double rate = flowRate(flow, t_probe);
        if (rate <= 0.0)
            continue;
        const double completion = now + flow.remaining / rate;
        wake = std::min(wake, completion);
    }
    wake = std::max(wake, now);
    wake_event_ = sim_.at(wake, [this] { onWake(); });
}

void
Channel::onWake()
{
    wake_event_ = sim::EventId{};
    settle();
    // Deliver every flow that finished in this interval. Completion
    // callbacks may start new transfers; those calls re-enter
    // startTransfer() which settles (dt = 0) and reschedules, so the
    // list must be consistent before each callback fires.
    for (auto it = flows_.begin(); it != flows_.end();) {
        auto cur = it++;
        if (cur->remaining <= kByteEpsilon)
            finish(cur, sim_.now() - cur->start_time);
    }
    reschedule();
}

void
Channel::onTimeout(std::uint64_t flow_id)
{
    settle();
    for (auto it = flows_.begin(); it != flows_.end(); ++it) {
        if (it->id != flow_id)
            continue;
        it->timeout_event = sim::EventId{};
        finish(it, sim_.now() - it->start_time);
        reschedule();
        return;
    }
    // Flow already completed in the same settle round: nothing to cut.
    reschedule();
}

void
Channel::startTransfer(LinkId link, double bytes, double timeout,
                       Callback done, std::function<void()> drop)
{
    ROG_ASSERT(link < links_.size(), "link out of range");
    ROG_ASSERT(bytes > 0.0, "transfer needs positive bytes");
    ROG_ASSERT(timeout > 0.0, "transfer timeout must be positive");

    settle();

    double deliverable = bytes;
    FaultDecision decision;
    if (fault_policy_) {
        decision =
            fault_policy_->onTransferStart(link, bytes, sim_.now());
        deliverable =
            std::min(bytes, std::max(decision.deliverable_bytes, 0.0));
        timeout = std::min(timeout, decision.forced_timeout);
        if (decision.faulty())
            ++faulted_transfers_;
    }

    Flow flow;
    flow.id = next_flow_id_++;
    flow.link = link;
    flow.requested = bytes;
    flow.deliverable = deliverable;
    flow.remaining = deliverable;
    flow.start_time = sim_.now();
    flow.faulted = decision.faulty();
    flow.corrupted = decision.corrupt;
    flow.duplicated = decision.duplicate;
    flow.reordered = decision.reorder;
    flow.done = std::move(done);
    flow.drop = std::move(drop);
    if (std::isfinite(timeout)) {
        const std::uint64_t id = flow.id;
        flow.timeout_event =
            sim_.after(timeout, [this, id] { onTimeout(id); });
    }
    flows_.push_back(std::move(flow));
    reschedule();
}

void
Channel::TransferAwaiter::await_suspend(std::coroutine_handle<> h)
{
    ch_.startTransfer(
        link_, bytes_, timeout_,
        [this, h](TransferResult r) {
            result_ = r;
            h.resume();
        },
        [h] { h.destroy(); });
}

} // namespace net
} // namespace rog
