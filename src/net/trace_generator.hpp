/**
 * @file
 * Synthetic robotic-IoT bandwidth trace generation.
 *
 * The generator reproduces the instability characteristics the paper
 * measures in Sec. II-B / Fig. 3: frequent, sharp, random fluctuation
 * (a ~20% swing roughly every 0.4 s and a ~40% swing roughly every
 * 1.2 s) plus occlusion events during which capacity collapses toward
 * zero — more frequent and deeper outdoors (no reflecting walls) than
 * indoors. The model is a mean-reverting Ornstein-Uhlenbeck process on
 * log-capacity (fast mobility-induced fading) overlaid with a Poisson
 * process of occlusion fades of random depth and duration.
 */
#ifndef ROG_NET_TRACE_GENERATOR_HPP
#define ROG_NET_TRACE_GENERATOR_HPP

#include <cstdint>

#include "net/bandwidth_trace.hpp"

namespace rog {

class Rng;

namespace net {

/** Parameters of the instability model. */
struct TraceModel
{
    double mean_bytes_per_sec = 50e3;  //!< long-run mean capacity.
    double step_seconds = 0.1;         //!< sample period (paper: 0.1 s).

    // Fast fading: OU process on log-capacity.
    double volatility = 0.33;    //!< log-stddev injected per sqrt(sec).
    double reversion_rate = 0.8; //!< pull toward the mean (1/sec).

    // Occlusion fades: Poisson arrivals, exponential duration,
    // multiplicative depth in [depth_min, depth_max].
    double occlusion_rate_hz = 0.05;   //!< fades per second.
    double occlusion_mean_duration = 1.5; //!< seconds.
    double occlusion_depth_min = 0.02; //!< residual capacity fraction.
    double occlusion_depth_max = 0.3;

    // Rare long outages: a robot stuck behind an obstacle or at the
    // edge of the hotspot's range for tens of seconds (the deep-fade
    // stretch of Fig. 8). Same overlay mechanics, separate process.
    double outage_rate_hz = 0.0;       //!< outages per second.
    double outage_mean_duration = 45.0; //!< seconds.
    double outage_depth_min = 0.005;
    double outage_depth_max = 0.03;

    /** Indoor preset: moderate instability (lab with reflections). */
    static TraceModel indoor(double mean_bytes_per_sec);

    /** Outdoor preset: severe instability (open area, deep fades). */
    static TraceModel outdoor(double mean_bytes_per_sec);

    /** Stable preset: near-constant capacity (datacenter-like). */
    static TraceModel stable(double mean_bytes_per_sec);
};

/**
 * Generate one trace of the given duration.
 *
 * @param seed all randomness derives from this seed.
 */
BandwidthTrace generateTrace(const TraceModel &model,
                             double duration_seconds,
                             std::uint64_t seed);

} // namespace net
} // namespace rog

#endif // ROG_NET_TRACE_GENERATOR_HPP
