/**
 * @file
 * Fluid-flow simulation of a shared wireless channel.
 *
 * All devices associate with one hotspot (paper Sec. VI), so gradient
 * flows share the medium: with n concurrently active flows each gets a
 * 1/n airtime share and transmits at its own link's time-varying
 * capacity during that share (airtime fairness). Link capacities come
 * from piecewise-constant BandwidthTraces, so flow rates are constant
 * between events and the fluid model is exact.
 *
 * Transfers support a timeout, which is the primitive ROG's speculative
 * transmission needs (SendWithTimeout in Algo 4): when the timeout
 * fires mid-flow the transfer completes partially and reports the bytes
 * that made it through; the caller discards the cut row.
 */
#ifndef ROG_NET_CHANNEL_HPP
#define ROG_NET_CHANNEL_HPP

#include <coroutine>
#include <functional>
#include <limits>
#include <list>
#include <vector>

#include "net/bandwidth_trace.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace net {

/** Index of a device link (worker i <-> parameter server). */
using LinkId = std::size_t;

/** Outcome of a (possibly timed-out) transfer. */
struct TransferResult
{
    double bytes_requested = 0.0;
    double bytes_sent = 0.0;
    bool completed = false;   //!< all requested bytes delivered.
    double elapsed = 0.0;     //!< seconds from start to end/timeout.
    bool faulted = false;     //!< a fault policy sabotaged this flow.
    bool corrupted = false;   //!< payload arrived bit-flipped (CRC will
                              //!< fail on whatever this flow carried).
    bool duplicated = false;  //!< the link delivered this payload twice.
    bool reordered = false;   //!< delivery overtaken by a later send.
};

/**
 * What a fault policy does to one starting transfer: cap the bytes
 * that will ever get through (the link dies mid-flow and the tail is
 * lost), cut the flow after a forced timeout (whichever the caller's
 * own timeout doesn't hit first), and/or mark the delivered payload as
 * corrupted / duplicated / reordered. The channel itself only moves
 * byte counts, so the last three are flags carried through to the
 * TransferResult for the reliability sublayer (net/transport) to act
 * on: a corrupted delivery fails its CRC check at the receiver, a
 * duplicated one is handed to the receiver twice, a reordered one is
 * delivered after its successor. Everything defaults to "no fault".
 */
struct FaultDecision
{
    double deliverable_bytes = std::numeric_limits<double>::infinity();
    double forced_timeout = std::numeric_limits<double>::infinity();
    bool corrupt = false;
    bool duplicate = false;
    bool reorder = false;

    bool
    faulty() const
    {
        return deliverable_bytes !=
                   std::numeric_limits<double>::infinity() ||
               forced_timeout !=
                   std::numeric_limits<double>::infinity() ||
               corrupt || duplicate || reorder;
    }
};

/**
 * Per-transfer fault injection hook (see src/fault). The channel
 * consults the policy once per startTransfer; the policy must be
 * deterministic for runs to replay byte-identically.
 */
class TransferFaultPolicy
{
  public:
    virtual ~TransferFaultPolicy() = default;

    /** Decide the fate of a transfer starting now on @p link. */
    virtual FaultDecision onTransferStart(LinkId link, double bytes,
                                          double now) = 0;
};

/** Shared wireless channel connecting every device to the server. */
class Channel
{
  public:
    using Callback = std::function<void(TransferResult)>;

    static constexpr double kNoTimeout =
        std::numeric_limits<double>::infinity();

    /**
     * @param sim event loop; must outlive the channel.
     * @param links one capacity trace per device link. @pre non-empty
     */
    Channel(sim::Simulation &sim, std::vector<BandwidthTrace> links);
    ~Channel();

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    std::size_t linkCount() const { return links_.size(); }

    /** Link capacity (bytes/sec) at time @p t, before sharing. */
    double linkCapacityAt(LinkId link, double t) const;

    /** Number of flows currently in the air. */
    std::size_t activeFlows() const { return flows_.size(); }

    /** Total bytes delivered since construction (all links). */
    double totalBytesDelivered() const { return bytes_delivered_; }

    /**
     * Install a per-transfer fault policy (nullptr to remove). The
     * policy is non-owning and must outlive the channel's transfers;
     * it only affects transfers started after installation.
     */
    void setFaultPolicy(TransferFaultPolicy *policy)
    {
        fault_policy_ = policy;
    }

    /** Number of transfers a fault policy sabotaged. */
    std::size_t faultedTransfers() const { return faulted_transfers_; }

    /**
     * Start a transfer (callback form).
     *
     * @param bytes payload size. @pre bytes > 0
     * @param timeout seconds until the transfer is cut (kNoTimeout for
     *        none).
     * @param done invoked exactly once with the result (unless the
     *        channel is destroyed first).
     * @param drop invoked instead of @p done if the channel is
     *        destroyed with the flow still active (may be empty).
     */
    void startTransfer(LinkId link, double bytes, double timeout,
                       Callback done, std::function<void()> drop = {});

    /** Awaitable transfer for simulation processes. */
    class TransferAwaiter
    {
      public:
        TransferAwaiter(Channel &ch, LinkId link, double bytes,
                        double timeout)
            : ch_(ch), link_(link), bytes_(bytes), timeout_(timeout) {}

        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h);
        TransferResult await_resume() const noexcept { return result_; }

      private:
        Channel &ch_;
        LinkId link_;
        double bytes_;
        double timeout_;
        TransferResult result_;
    };

    /**
     * co_await a transfer; resumes with the TransferResult when it
     * completes or times out.
     */
    TransferAwaiter
    transfer(LinkId link, double bytes, double timeout = kNoTimeout)
    {
        return TransferAwaiter(*this, link, bytes, timeout);
    }

  private:
    struct Flow
    {
        std::uint64_t id;
        LinkId link;
        double requested;
        double deliverable; //!< fault cap: <= requested bytes get through.
        double remaining;   //!< counts down from deliverable.
        double start_time;
        bool faulted;
        bool corrupted;
        bool duplicated;
        bool reordered;
        Callback done;
        std::function<void()> drop;
        sim::EventId timeout_event;
    };

    using FlowIter = std::list<Flow>::iterator;

    /** Per-flow rate under airtime fairness at time @p t. */
    double flowRate(const Flow &flow, double t) const;

    /** Deduct progress accumulated since the last update. */
    void settle();

    /** Recompute the next wake-up (boundary or earliest completion). */
    void reschedule();

    /** Detach a flow and deliver its result. */
    void finish(FlowIter it, double elapsed);

    void onWake();
    void onTimeout(std::uint64_t flow_id);

    sim::Simulation &sim_;
    std::vector<BandwidthTrace> links_;
    std::list<Flow> flows_;
    double last_update_ = 0.0;
    double bytes_delivered_ = 0.0;
    sim::EventId wake_event_;
    std::uint64_t next_flow_id_ = 1;
    TransferFaultPolicy *fault_policy_ = nullptr;
    std::size_t faulted_transfers_ = 0;
};

} // namespace net
} // namespace rog

#endif // ROG_NET_CHANNEL_HPP
