#include "net/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hpp"

namespace rog {
namespace net {

namespace {
constexpr const char *kHeader = "time_s,bytes_per_sec";
} // namespace

void
writeTraceCsv(std::ostream &os, const BandwidthTrace &trace)
{
    os << kHeader << '\n';
    const auto &samples = trace.samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
        os << static_cast<double>(i) * trace.stepSeconds() << ','
           << samples[i] << '\n';
    }
}

BandwidthTrace
readTraceCsv(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != kHeader)
        ROG_FATAL("trace csv: missing '", kHeader, "' header");

    std::vector<double> times;
    std::vector<double> samples;
    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream row(line);
        double t = 0.0, v = 0.0;
        char comma = 0;
        if (!(row >> t >> comma >> v) || comma != ',')
            ROG_FATAL("trace csv: malformed row at line ", line_no);
        if (v < 0.0)
            ROG_FATAL("trace csv: negative capacity at line ", line_no);
        times.push_back(t);
        samples.push_back(v);
    }
    if (samples.empty())
        ROG_FATAL("trace csv: no samples");

    double step = 0.1;
    if (times.size() >= 2) {
        step = times[1] - times[0];
        if (step <= 0.0)
            ROG_FATAL("trace csv: non-increasing timestamps");
        for (std::size_t i = 1; i < times.size(); ++i) {
            const double dt = times[i] - times[i - 1];
            if (std::fabs(dt - step) > 1e-6 * std::max(1.0, step))
                ROG_FATAL("trace csv: non-uniform step at line ", i + 2);
        }
    }
    return BandwidthTrace(std::move(samples), step);
}

void
saveTrace(const std::string &path, const BandwidthTrace &trace)
{
    std::ofstream os(path);
    if (!os)
        ROG_FATAL("cannot open '", path, "' for writing");
    writeTraceCsv(os, trace);
    if (!os)
        ROG_FATAL("write failed for '", path, "'");
}

BandwidthTrace
loadTrace(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        ROG_FATAL("cannot open '", path, "' for reading");
    return readTraceCsv(is);
}

} // namespace net
} // namespace rog
