/**
 * @file
 * Instability statistics over bandwidth traces (the paper's Sec. II-B
 * methodology: how often the capacity swings by a given fraction, how
 * often it collapses toward zero).
 */
#ifndef ROG_NET_TRACE_STATS_HPP
#define ROG_NET_TRACE_STATS_HPP

#include "net/bandwidth_trace.hpp"

namespace rog {
namespace net {

/** Summary statistics of one trace. */
struct TraceStats
{
    double mean_bytes_per_sec = 0.0;
    double stddev_bytes_per_sec = 0.0;
    double min_bytes_per_sec = 0.0;
    double max_bytes_per_sec = 0.0;
    /** Mean seconds between >=20% relative swings (paper: ~0.4 s). */
    double seconds_per_20pct_fluctuation = 0.0;
    /** Mean seconds between >=40% relative swings (paper: ~1.2 s). */
    double seconds_per_40pct_fluctuation = 0.0;
    /** Fraction of samples below 10% of the trace mean (deep fade). */
    double deep_fade_fraction = 0.0;
};

/** Compute summary statistics over one loop of the trace. */
TraceStats computeTraceStats(const BandwidthTrace &trace);

/**
 * Mean interval between relative fluctuations of at least @p fraction:
 * scanning the samples, an event fires whenever the capacity has moved
 * by >= fraction relative to the value at the previous event (which
 * then becomes the new reference). @pre 0 < fraction < 1
 */
double fluctuationIntervalSeconds(const BandwidthTrace &trace,
                                  double fraction);

} // namespace net
} // namespace rog

#endif // ROG_NET_TRACE_STATS_HPP
