#include "net/trace_generator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace rog {
namespace net {

TraceModel
TraceModel::indoor(double mean)
{
    TraceModel m;
    m.mean_bytes_per_sec = mean;
    m.volatility = 0.36;
    m.reversion_rate = 0.9;
    m.occlusion_rate_hz = 0.07;        // a fade every ~14 s.
    m.occlusion_mean_duration = 5.0;
    m.occlusion_depth_min = 0.06;      // walls reflect: shallow fades.
    m.occlusion_depth_max = 0.30;
    m.outage_rate_hz = 0.004;          // long outages are rare indoors.
    m.outage_mean_duration = 20.0;
    m.outage_depth_min = 0.03;
    m.outage_depth_max = 0.10;
    return m;
}

TraceModel
TraceModel::outdoor(double mean)
{
    TraceModel m;
    m.mean_bytes_per_sec = mean;
    m.volatility = 0.50;
    m.reversion_rate = 0.9;
    m.occlusion_rate_hz = 0.08;        // a fade every ~12 s.
    m.occlusion_mean_duration = 4.0;
    m.occlusion_depth_min = 0.02;      // open area: near-zero drops.
    m.occlusion_depth_max = 0.15;
    m.outage_rate_hz = 0.008;          // a long outage every ~2 min.
    m.outage_mean_duration = 45.0;
    m.outage_depth_min = 0.005;
    m.outage_depth_max = 0.03;
    return m;
}

TraceModel
TraceModel::stable(double mean)
{
    TraceModel m;
    m.mean_bytes_per_sec = mean;
    m.volatility = 0.02;
    m.reversion_rate = 2.0;
    m.occlusion_rate_hz = 0.0;
    return m;
}

BandwidthTrace
generateTrace(const TraceModel &model, double duration_seconds,
              std::uint64_t seed)
{
    ROG_ASSERT(duration_seconds > 0.0, "trace duration must be positive");
    ROG_ASSERT(model.mean_bytes_per_sec > 0.0, "mean capacity must be > 0");

    Rng rng(seed);
    const double dt = model.step_seconds;
    const auto n =
        static_cast<std::size_t>(std::ceil(duration_seconds / dt));

    // Pre-draw fade intervals: (start, end, depth). Two independent
    // processes overlay: frequent short occlusions and rare long
    // outages; overlapping fades take the deeper depth.
    struct Fade { double start, end, depth; };
    std::vector<Fade> fades;
    auto draw_fades = [&](double rate_hz, double mean_duration,
                          double depth_min, double depth_max) {
        if (rate_hz <= 0.0)
            return;
        double t = rng.exponential(rate_hz);
        while (t < duration_seconds) {
            Fade f;
            f.start = t;
            f.end = t + rng.exponential(
                1.0 / std::max(mean_duration, 1e-6));
            f.depth = rng.uniform(depth_min, depth_max);
            fades.push_back(f);
            t = f.end + rng.exponential(rate_hz);
        }
    };
    draw_fades(model.occlusion_rate_hz, model.occlusion_mean_duration,
               model.occlusion_depth_min, model.occlusion_depth_max);
    draw_fades(model.outage_rate_hz, model.outage_mean_duration,
               model.outage_depth_min, model.outage_depth_max);
    std::sort(fades.begin(), fades.end(),
              [](const Fade &a, const Fade &b) {
                  return a.start < b.start;
              });

    // OU on x = log(capacity / mean): dx = -theta*x*dt + sigma*dW.
    // Exact discretization keeps the process well-behaved at any dt.
    const double theta = model.reversion_rate;
    const double sigma = model.volatility;
    const double decay = std::exp(-theta * dt);
    const double step_std =
        sigma * std::sqrt((1.0 - decay * decay) / (2.0 * theta));

    std::vector<double> samples(n);
    // Start at the stationary distribution.
    double x = rng.gaussian(0.0, sigma / std::sqrt(2.0 * theta));
    std::size_t first_live = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) * dt;
        x = decay * x + rng.gaussian(0.0, step_std);
        double cap = model.mean_bytes_per_sec * std::exp(x);
        // Fades may overlap (two processes); apply the deepest one
        // covering t. The start-sorted list allows a rolling window.
        while (first_live < fades.size() && fades[first_live].end <= t)
            ++first_live;
        double depth = 1.0;
        for (std::size_t k = first_live;
             k < fades.size() && fades[k].start <= t; ++k) {
            if (t < fades[k].end)
                depth = std::min(depth, fades[k].depth);
        }
        cap *= depth;
        samples[i] = cap;
    }
    return BandwidthTrace(std::move(samples), dt);
}

} // namespace net
} // namespace rog
