#include "stats/run_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/logging.hpp"

namespace rog {
namespace stats {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
} // namespace

std::vector<MergedCheckpoint>
mergeCheckpoints(const core::RunResult &result)
{
    struct Acc
    {
        double time = 0.0, energy = 0.0, metric = 0.0;
        std::size_t count = 0;
    };
    std::map<std::size_t, Acc> by_iter;
    for (const auto &c : result.checkpoints) {
        Acc &a = by_iter[c.iteration];
        a.time += c.time_s;
        a.energy += c.energy_j;
        a.metric += c.metric;
        ++a.count;
    }
    std::vector<MergedCheckpoint> out;
    for (const auto &[iter, a] : by_iter) {
        if (a.count != result.workers)
            continue; // an iteration not every worker reached.
        MergedCheckpoint m;
        m.iteration = iter;
        const auto n = static_cast<double>(a.count);
        m.mean_time_s = a.time / n;
        m.mean_energy_j = a.energy / n;
        m.mean_metric = a.metric / n;
        out.push_back(m);
    }
    return out;
}

namespace {

/** Generic "first x at which metric crosses target" scan. */
double
firstCrossing(const std::vector<MergedCheckpoint> &curve, double target,
              bool lower_is_better,
              double (*axis)(const MergedCheckpoint &))
{
    auto reached = [&](double m) {
        return lower_is_better ? m <= target : m >= target;
    };
    for (std::size_t i = 0; i < curve.size(); ++i) {
        if (!reached(curve[i].mean_metric))
            continue;
        if (i == 0)
            return axis(curve[0]);
        // Interpolate between the bracketing checkpoints.
        const double m0 = curve[i - 1].mean_metric;
        const double m1 = curve[i].mean_metric;
        const double x0 = axis(curve[i - 1]);
        const double x1 = axis(curve[i]);
        if (m1 == m0)
            return x1;
        const double t = (target - m0) / (m1 - m0);
        return x0 + (x1 - x0) * std::clamp(t, 0.0, 1.0);
    }
    return kNaN;
}

double
timeAxis(const MergedCheckpoint &c)
{
    return c.mean_time_s;
}

double
energyAxis(const MergedCheckpoint &c)
{
    return c.mean_energy_j;
}

} // namespace

double
energyToReach(const std::vector<MergedCheckpoint> &curve, double target,
              bool lower_is_better)
{
    return firstCrossing(curve, target, lower_is_better, energyAxis);
}

double
timeToReach(const std::vector<MergedCheckpoint> &curve, double target,
            bool lower_is_better)
{
    return firstCrossing(curve, target, lower_is_better, timeAxis);
}

double
metricAtTime(const std::vector<MergedCheckpoint> &curve, double t)
{
    if (curve.empty())
        return kNaN;
    if (t <= curve.front().mean_time_s)
        return curve.front().mean_metric;
    for (std::size_t i = 1; i < curve.size(); ++i) {
        if (t > curve[i].mean_time_s)
            continue;
        const double x0 = curve[i - 1].mean_time_s;
        const double x1 = curve[i].mean_time_s;
        const double f = (x1 == x0) ? 1.0 : (t - x0) / (x1 - x0);
        return curve[i - 1].mean_metric +
               f * (curve[i].mean_metric - curve[i - 1].mean_metric);
    }
    return curve.back().mean_metric;
}

double
metricAtIteration(const std::vector<MergedCheckpoint> &curve,
                  std::size_t iter)
{
    if (curve.empty())
        return kNaN;
    if (iter <= curve.front().iteration)
        return curve.front().mean_metric;
    for (std::size_t i = 1; i < curve.size(); ++i) {
        if (iter > curve[i].iteration)
            continue;
        const auto x0 = static_cast<double>(curve[i - 1].iteration);
        const auto x1 = static_cast<double>(curve[i].iteration);
        const double f =
            (x1 == x0) ? 1.0 : (static_cast<double>(iter) - x0) / (x1 - x0);
        return curve[i - 1].mean_metric +
               f * (curve[i].mean_metric - curve[i - 1].mean_metric);
    }
    return curve.back().mean_metric;
}

double
bestMetric(const std::vector<MergedCheckpoint> &curve,
           bool lower_is_better)
{
    if (curve.empty())
        return kNaN;
    double best = curve.front().mean_metric;
    for (const auto &c : curve)
        best = lower_is_better ? std::min(best, c.mean_metric)
                               : std::max(best, c.mean_metric);
    return best;
}

} // namespace stats
} // namespace rog
