/**
 * @file
 * Post-processing of RunResults into the paper's figure quantities.
 *
 * The paper's curves are produced by "checkpointing and validating the
 * training model on each worker every 50 training iterations and then
 * averaging the validated accuracy among the workers" (Sec. VI-A);
 * mergeCheckpoints implements exactly that, and the *-ToReach helpers
 * read off the energy/time axes of Fig. 1d/6d/7d.
 */
#ifndef ROG_STATS_RUN_ANALYSIS_HPP
#define ROG_STATS_RUN_ANALYSIS_HPP

#include <vector>

#include "core/engine.hpp"

namespace rog {
namespace stats {

/** Worker-averaged checkpoint: one point of a paper curve. */
struct MergedCheckpoint
{
    std::size_t iteration = 0;
    double mean_time_s = 0.0;
    double mean_energy_j = 0.0;
    double mean_metric = 0.0;
};

/**
 * Average the per-worker checkpoints of a run at equal iteration
 * indices; only iterations every worker reached are kept.
 */
std::vector<MergedCheckpoint>
mergeCheckpoints(const core::RunResult &result);

/**
 * First energy (J) at which the metric reaches @p target, linearly
 * interpolated between checkpoints; NaN if never reached.
 * @param lower_is_better CRIMP-style error metrics.
 */
double energyToReach(const std::vector<MergedCheckpoint> &curve,
                     double target, bool lower_is_better);

/** First time (s) at which the metric reaches @p target; NaN if not. */
double timeToReach(const std::vector<MergedCheckpoint> &curve,
                   double target, bool lower_is_better);

/** Metric value at time @p t (interpolated; clamped to the ends). */
double metricAtTime(const std::vector<MergedCheckpoint> &curve, double t);

/** Metric value at iteration @p iter (interpolated; clamped). */
double metricAtIteration(const std::vector<MergedCheckpoint> &curve,
                         std::size_t iter);

/** Best metric over the curve. */
double bestMetric(const std::vector<MergedCheckpoint> &curve,
                  bool lower_is_better);

} // namespace stats
} // namespace rog

#endif // ROG_STATS_RUN_ANALYSIS_HPP
