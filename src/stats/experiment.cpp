#include "stats/experiment.hpp"

#include <ostream>

#include "common/logging.hpp"
#include "core/testbed_profile.hpp"
#include "net/trace_generator.hpp"

namespace rog {
namespace stats {

std::string
environmentName(Environment env)
{
    switch (env) {
      case Environment::Indoor:
        return "indoor";
      case Environment::Outdoor:
        return "outdoor";
      case Environment::Stable:
        return "stable";
      default:
        return "invalid";
    }
}

core::NetworkSetup
makeNetwork(core::Workload &workload, const ExperimentConfig &cfg)
{
    // Calibrate the mean link capacity so a full compressed push+pull
    // round for `calibration_workers` devices costs ~1.47 s (Sec.
    // II-B), independent of how many workers this experiment uses.
    const double wire = core::modelWireBytes(
        workload, core::Granularity::WholeModel, "onebit");
    const double mean_bw = core::calibratedMeanBandwidth(
        wire, cfg.calibration_workers);

    net::TraceModel model;
    switch (cfg.env) {
      case Environment::Indoor:
        model = net::TraceModel::indoor(mean_bw);
        break;
      case Environment::Outdoor:
        model = net::TraceModel::outdoor(mean_bw);
        break;
      case Environment::Stable:
        model = net::TraceModel::stable(mean_bw);
        break;
    }

    core::NetworkSetup network;
    for (std::size_t w = 0; w < workload.workers(); ++w) {
        network.link_traces.push_back(net::generateTrace(
            model, cfg.trace_seconds,
            cfg.network_seed + 1000 * (w + 1)));
    }
    return network;
}

SystemRun
runSystem(core::Workload &workload, const core::SystemConfig &system,
          const ExperimentConfig &cfg)
{
    core::EngineConfig engine;
    engine.system = system;
    engine.profile.batch_scale = cfg.batch_scale;
    engine.iterations = cfg.iterations;
    engine.time_horizon_seconds = cfg.time_horizon_seconds;
    engine.eval_every = cfg.eval_every;
    engine.seed = cfg.engine_seed;

    const core::NetworkSetup network = makeNetwork(workload, cfg);
    SystemRun run;
    run.result = core::runDistributedTraining(workload, engine, network);
    run.curve = mergeCheckpoints(run.result);
    return run;
}

std::vector<SystemRun>
runSystems(core::Workload &workload,
           const std::vector<core::SystemConfig> &systems,
           const ExperimentConfig &cfg)
{
    std::vector<SystemRun> out;
    out.reserve(systems.size());
    for (const auto &sys : systems)
        out.push_back(runSystem(workload, sys, cfg));
    return out;
}

Table
timeCompositionTable(const std::string &title,
                     const std::vector<SystemRun> &runs)
{
    Table t(title, {"system", "compute_s", "comm_s", "stall_s",
                    "total_s", "stall_pct"});
    for (const auto &run : runs) {
        double compute, comm, stall;
        run.result.meanTimeComposition(compute, comm, stall);
        const double total = compute + comm + stall;
        t.addRow({run.result.system, Table::num(compute),
                  Table::num(comm), Table::num(stall), Table::num(total),
                  Table::num(total > 0 ? 100.0 * stall / total : 0.0, 1)});
    }
    return t;
}

namespace {

SeriesSet
curveSeries(const std::string &title, const std::vector<SystemRun> &runs,
            const std::string &x_name,
            double (*axis)(const MergedCheckpoint &))
{
    SeriesSet s(title, x_name, "metric");
    for (const auto &run : runs)
        for (const auto &c : run.curve)
            s.add(run.result.system, axis(c), c.mean_metric);
    return s;
}

} // namespace

SeriesSet
metricVsIteration(const std::string &title,
                  const std::vector<SystemRun> &runs)
{
    return curveSeries(title, runs, "iteration",
                       [](const MergedCheckpoint &c) {
                           return static_cast<double>(c.iteration);
                       });
}

SeriesSet
metricVsTime(const std::string &title, const std::vector<SystemRun> &runs)
{
    return curveSeries(title, runs, "time_s",
                       [](const MergedCheckpoint &c) {
                           return c.mean_time_s;
                       });
}

SeriesSet
metricVsEnergy(const std::string &title,
               const std::vector<SystemRun> &runs)
{
    return curveSeries(title, runs, "energy_j",
                       [](const MergedCheckpoint &c) {
                           return c.mean_energy_j;
                       });
}

Table
summaryTable(const std::string &title, const std::vector<SystemRun> &runs,
             double time_budget_s, double target_metric,
             bool lower_is_better)
{
    Table t(title,
            {"system", "iters_done", "sim_time_s", "final_metric",
             "metric@budget", "time_to_target_s", "energy_to_target_j",
             "mean_energy_j"});
    for (const auto &run : runs) {
        t.addRow({run.result.system,
                  std::to_string(run.result.completed_iterations),
                  Table::num(run.result.sim_seconds, 1),
                  Table::num(run.curve.empty()
                                 ? 0.0
                                 : run.curve.back().mean_metric),
                  Table::num(metricAtTime(run.curve, time_budget_s)),
                  Table::num(timeToReach(run.curve, target_metric,
                                         lower_is_better), 1),
                  Table::num(energyToReach(run.curve, target_metric,
                                           lower_is_better), 1),
                  Table::num(run.result.meanEnergyJoules(), 1)});
    }
    return t;
}

void
printExperiment(std::ostream &os, const std::string &title,
                const std::vector<SystemRun> &runs, double time_budget_s,
                double target_metric, bool lower_is_better)
{
    timeCompositionTable(title + " (a) time composition", runs)
        .printText(os);
    auto b = metricVsIteration(title + " (b) statistical efficiency",
                               runs);
    b.printSummary(os);
    b.printCsv(os);
    auto c = metricVsTime(title + " (c) metric vs wall-clock", runs);
    c.printSummary(os);
    c.printCsv(os);
    auto d = metricVsEnergy(title + " (d) metric vs energy", runs);
    d.printSummary(os);
    d.printCsv(os);
    summaryTable(title + " summary", runs, time_budget_s, target_metric,
                 lower_is_better)
        .printText(os);
}

} // namespace stats
} // namespace rog
