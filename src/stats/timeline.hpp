/**
 * @file
 * Device state timelines from run results.
 *
 * The paper obtains per-state power "by matching power consumption
 * records with the training system status log" (Sec. VI-A); the status
 * log is exactly what this module reconstructs: per worker, per
 * iteration, the compute/communicate/stall segments laid out in
 * virtual time, exportable as long-form CSV for Gantt-style plots,
 * plus aggregate utilization figures.
 */
#ifndef ROG_STATS_TIMELINE_HPP
#define ROG_STATS_TIMELINE_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/engine.hpp"

namespace rog {
namespace stats {

/** One contiguous state segment of one device. */
struct TimelineSegment
{
    std::size_t worker = 0;
    std::size_t iteration = 0;
    std::string phase; //!< "compute" | "communicate" | "backoff"
                       //!< | "stall".
    double start_s = 0.0;
    double duration_s = 0.0;
};

/**
 * Reconstruct per-iteration segments from a run. Within an iteration
 * the engine's phase order is compute, then communication and stall
 * interleavings which are reported as one communicate and one stall
 * segment each (durations are exact; internal interleaving is not
 * recorded per event). Runs over the reliable transport additionally
 * split the time spent in retry backoff (radio idle between
 * retransmission attempts) out of the communicate segment as its own
 * "backoff" phase.
 */
std::vector<TimelineSegment>
buildTimeline(const core::RunResult &result);

/** Write segments as long-form CSV (worker,iteration,phase,start,dur). */
void writeTimelineCsv(std::ostream &os,
                      const std::vector<TimelineSegment> &segments);

/**
 * Utilization summary per system: the share of total device time spent
 * in each state — the quantity ROG's stall reduction moves.
 */
Table utilizationTable(const std::string &title,
                       const std::vector<core::RunResult> &results);

} // namespace stats
} // namespace rog

#endif // ROG_STATS_TIMELINE_HPP
