/**
 * @file
 * Experiment harness shared by the benchmark binaries: builds the
 * calibrated network for an environment, runs a set of systems on one
 * workload over identical traces (the paper's artifact replays
 * identical `tc` traces for exactly this reason), and renders the
 * paper's standard output panels (time composition, metric vs
 * iteration / wall-clock / energy).
 */
#ifndef ROG_STATS_EXPERIMENT_HPP
#define ROG_STATS_EXPERIMENT_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/engine.hpp"
#include "stats/run_analysis.hpp"

namespace rog {
namespace stats {

/** Wireless environment of a run (Sec. VI "Experiment Environments"). */
enum class Environment { Indoor, Outdoor, Stable };

std::string environmentName(Environment env);

/** Everything an end-to-end experiment needs besides the system. */
struct ExperimentConfig
{
    Environment env = Environment::Outdoor;
    std::size_t iterations = 1000;
    double time_horizon_seconds = 3600.0;
    std::size_t eval_every = 50;
    double batch_scale = 1.0;       //!< Fig. 9 batch sensitivity.
    double trace_seconds = 300.0;   //!< loop length (paper: 5 min).
    std::uint64_t network_seed = 5; //!< same seed = same traces.
    std::uint64_t engine_seed = 2022;

    /**
     * Bandwidth calibration anchor: the worker count at which a full
     * compressed push+pull round should take ~1.47 s (Sec. II-B
     * measures this with 4 devices). Scaling the *actual* worker count
     * beyond this increases contention, as in Fig. 9.
     */
    std::size_t calibration_workers = 4;
};

/**
 * Per-link traces for @p workload.workers() devices in the configured
 * environment, with the mean capacity calibrated against the
 * workload's compressed whole-model wire size.
 */
core::NetworkSetup makeNetwork(core::Workload &workload,
                               const ExperimentConfig &cfg);

/** One system's run plus its merged metric curve. */
struct SystemRun
{
    core::RunResult result;
    std::vector<MergedCheckpoint> curve;
};

/** Run one system on the workload over the experiment's network. */
SystemRun runSystem(core::Workload &workload,
                    const core::SystemConfig &system,
                    const ExperimentConfig &cfg);

/** Run several systems over identical traces. */
std::vector<SystemRun>
runSystems(core::Workload &workload,
           const std::vector<core::SystemConfig> &systems,
           const ExperimentConfig &cfg);

/** Panel (a): average time composition of a training iteration. */
Table timeCompositionTable(const std::string &title,
                           const std::vector<SystemRun> &runs);

/** Panel (b): metric vs iteration. */
SeriesSet metricVsIteration(const std::string &title,
                            const std::vector<SystemRun> &runs);

/** Panel (c): metric vs wall-clock time. */
SeriesSet metricVsTime(const std::string &title,
                       const std::vector<SystemRun> &runs);

/** Panel (d): metric vs energy. */
SeriesSet metricVsEnergy(const std::string &title,
                         const std::vector<SystemRun> &runs);

/**
 * Headline summary: final metric, metric at a time budget, and
 * energy/time to reach a target metric.
 */
Table summaryTable(const std::string &title,
                   const std::vector<SystemRun> &runs,
                   double time_budget_s, double target_metric,
                   bool lower_is_better);

/** Print a full four-panel experiment to @p os. */
void printExperiment(std::ostream &os, const std::string &title,
                     const std::vector<SystemRun> &runs,
                     double time_budget_s, double target_metric,
                     bool lower_is_better);

} // namespace stats
} // namespace rog

#endif // ROG_STATS_EXPERIMENT_HPP
