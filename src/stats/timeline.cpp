#include "stats/timeline.hpp"

#include <ostream>

#include "common/logging.hpp"

namespace rog {
namespace stats {

std::vector<TimelineSegment>
buildTimeline(const core::RunResult &result)
{
    std::vector<TimelineSegment> out;
    out.reserve(result.iterations.size() * 3);
    for (const auto &r : result.iterations) {
        const double total = r.compute_s + r.comm_s + r.stall_s;
        double start = r.end_time_s - total;
        auto push = [&](const char *phase, double duration) {
            if (duration <= 0.0)
                return;
            TimelineSegment seg;
            seg.worker = r.worker;
            seg.iteration = r.iteration;
            seg.phase = phase;
            seg.start_s = start;
            seg.duration_s = duration;
            out.push_back(seg);
            start += duration;
        };
        // comm_s is inclusive of transport backoff; report the active
        // transmission time and the backoff idle separately.
        push("compute", r.compute_s);
        push("communicate", std::max(0.0, r.comm_s - r.backoff_s));
        push("backoff", std::min(r.backoff_s, r.comm_s));
        push("stall", r.stall_s);
    }
    return out;
}

void
writeTimelineCsv(std::ostream &os,
                 const std::vector<TimelineSegment> &segments)
{
    os << "worker,iteration,phase,start_s,duration_s\n";
    for (const auto &s : segments) {
        os << s.worker << ',' << s.iteration << ',' << s.phase << ','
           << s.start_s << ',' << s.duration_s << '\n';
    }
}

Table
utilizationTable(const std::string &title,
                 const std::vector<core::RunResult> &results)
{
    Table t(title, {"system", "compute_pct", "communicate_pct",
                    "stall_pct", "device_seconds"});
    for (const auto &res : results) {
        double compute = 0.0, comm = 0.0, stall = 0.0;
        for (std::size_t w = 0; w < res.worker_compute_s.size(); ++w) {
            compute += res.worker_compute_s[w];
            comm += res.worker_comm_s[w];
            stall += res.worker_stall_s[w];
        }
        const double total = compute + comm + stall;
        ROG_ASSERT(total > 0.0, "empty run in utilization table");
        t.addRow({res.system, Table::num(100.0 * compute / total, 1),
                  Table::num(100.0 * comm / total, 1),
                  Table::num(100.0 * stall / total, 1),
                  Table::num(total, 1)});
    }
    return t;
}

} // namespace stats
} // namespace rog
