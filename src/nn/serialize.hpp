/**
 * @file
 * Model checkpointing.
 *
 * Robots checkpoint the shared model every 50 iterations for
 * validation (Sec. VI-A) and a fielded system must persist the adapted
 * model when the mission ends. Checkpoints use a small self-describing
 * binary format ("ROGM", version, parameter table with names and
 * shapes, float32 payloads) that loads strictly: any mismatch between
 * the checkpoint and the receiving model's architecture is an error,
 * never a silent reinterpretation.
 */
#ifndef ROG_NN_SERIALIZE_HPP
#define ROG_NN_SERIALIZE_HPP

#include <iosfwd>
#include <string>

#include "nn/model.hpp"

namespace rog {
namespace nn {

/** Write @p model's parameter values to @p os. @throws on I/O error */
void saveModel(std::ostream &os, Model &model);

/**
 * Load parameter values into an architecturally identical model.
 *
 * @throws std::runtime_error on malformed input or if the checkpoint's
 *         parameter names/shapes do not match @p model's.
 */
void loadModel(std::istream &is, Model &model);

/** File convenience wrappers. @throws on I/O failure */
void saveModelFile(const std::string &path, Model &model);
void loadModelFile(const std::string &path, Model &model);

} // namespace nn
} // namespace rog

#endif // ROG_NN_SERIALIZE_HPP
