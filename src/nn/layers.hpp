/**
 * @file
 * Neural-network layers with analytic gradients.
 *
 * A deliberately small layer zoo sufficient for the paper's two
 * workloads: an MLP classifier (CRUDA stand-in) and an implicit-map
 * regressor with positional encoding (CRIMP stand-in). Parameters are
 * exposed as named matrices so the core library can partition them into
 * rows (the paper's synchronization granularity).
 */
#ifndef ROG_NN_LAYERS_HPP
#define ROG_NN_LAYERS_HPP

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace rog {

class Rng;

namespace nn {

using tensor::Tensor;

/** A learnable matrix with its gradient accumulator. */
struct Parameter
{
    /** @param name_ unique within a model, e.g. "fc1.weight". */
    Parameter(std::string name_, std::size_t rows, std::size_t cols);

    std::string name;
    Tensor value;
    Tensor grad;

    /** Zero the gradient accumulator. */
    void zeroGrad() { grad.zero(); }
};

/**
 * Abstract layer. forward() caches whatever backward() needs; a layer
 * instance therefore services one (forward, backward) pair at a time,
 * which matches minibatch SGD.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Compute the layer output for a batch (batch x features). */
    virtual void forward(const Tensor &in, Tensor &out) = 0;

    /**
     * Given the loss gradient w.r.t. the output, accumulate parameter
     * gradients and compute the gradient w.r.t. the input.
     */
    virtual void backward(const Tensor &dout, Tensor &din) = 0;

    /** Output feature width for a given input width. */
    virtual std::size_t outputDim(std::size_t input_dim) const = 0;

    /** Learnable parameters (possibly empty). */
    virtual std::vector<Parameter *> parameters() { return {}; }

    /** Human-readable layer description. */
    virtual std::string describe() const = 0;
};

/** Fully connected layer: out = in @ W + b. */
class Linear : public Layer
{
  public:
    /**
     * @param name prefix for parameter names ("<name>.weight" etc.).
     * @param rng initializer source (He-uniform for the weight).
     */
    Linear(const std::string &name, std::size_t in_dim, std::size_t out_dim,
           Rng &rng);

    void forward(const Tensor &in, Tensor &out) override;
    void backward(const Tensor &dout, Tensor &din) override;
    std::size_t outputDim(std::size_t) const override { return out_dim_; }
    std::vector<Parameter *> parameters() override;
    std::string describe() const override;

    std::size_t inDim() const { return in_dim_; }
    std::size_t outDim() const { return out_dim_; }

  private:
    std::size_t in_dim_;
    std::size_t out_dim_;
    Parameter weight_;
    Parameter bias_;
    Tensor cached_in_;
};

/** Elementwise ReLU. */
class Relu : public Layer
{
  public:
    void forward(const Tensor &in, Tensor &out) override;
    void backward(const Tensor &dout, Tensor &din) override;
    std::size_t outputDim(std::size_t d) const override { return d; }
    std::string describe() const override { return "Relu"; }

  private:
    Tensor cached_in_;
};

/** Elementwise tanh. */
class Tanh : public Layer
{
  public:
    void forward(const Tensor &in, Tensor &out) override;
    void backward(const Tensor &dout, Tensor &din) override;
    std::size_t outputDim(std::size_t d) const override { return d; }
    std::string describe() const override { return "Tanh"; }

  private:
    Tensor cached_out_;
};

/**
 * Sinusoidal positional encoding (NeRF-style), used by the implicit-map
 * model: each input coordinate x is expanded to
 * [x, sin(2^0 x), cos(2^0 x), ..., sin(2^{L-1} x), cos(2^{L-1} x)].
 * No learnable parameters.
 */
class PositionalEncoding : public Layer
{
  public:
    /** @param frequencies number of octaves L. @pre L > 0 */
    explicit PositionalEncoding(std::size_t frequencies);

    void forward(const Tensor &in, Tensor &out) override;
    void backward(const Tensor &dout, Tensor &din) override;
    std::size_t outputDim(std::size_t d) const override;
    std::string describe() const override;

  private:
    std::size_t freqs_;
    Tensor cached_in_;
};

} // namespace nn
} // namespace rog

#endif // ROG_NN_LAYERS_HPP
