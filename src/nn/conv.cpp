#include "nn/conv.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/ops.hpp"

namespace rog {
namespace nn {

Conv2d::Conv2d(const std::string &name, std::size_t in_channels,
               std::size_t height, std::size_t width,
               std::size_t out_channels, std::size_t kernel, Rng &rng)
    : channels_(in_channels), height_(height), width_(width),
      out_channels_(out_channels), kernel_(kernel),
      hw_(height * width),
      weight_(name + ".weight", in_channels * kernel * kernel,
              out_channels),
      bias_(name + ".bias", 1, out_channels)
{
    ROG_ASSERT(kernel % 2 == 1, "same padding needs an odd kernel");
    ROG_ASSERT(in_channels > 0 && out_channels > 0 && hw_ > 0,
               "empty convolution geometry");
    const float bound = std::sqrt(
        6.0f / static_cast<float>(in_channels * kernel * kernel));
    weight_.value.randomUniform(rng, bound);
    bias_.value.zero();
}

std::size_t
Conv2d::outputDim(std::size_t) const
{
    return out_channels_ * hw_;
}

void
Conv2d::im2col(const float *sample, float *col) const
{
    // col rows: row p holds the receptive field of output pixel p,
    // channel-major then kernel row-major, C*k*k wide.
    const std::size_t ckk = channels_ * kernel_ * kernel_;
    const auto pad = static_cast<std::ptrdiff_t>(kernel_ / 2);
    const auto h = static_cast<std::ptrdiff_t>(height_);
    const auto w = static_cast<std::ptrdiff_t>(width_);
    std::size_t col_idx = 0;
    for (std::ptrdiff_t y = 0; y < h; ++y) {
        for (std::ptrdiff_t x = 0; x < w; ++x) {
            float *dst = col + col_idx * ckk;
            std::size_t j = 0;
            for (std::size_t c = 0; c < channels_; ++c) {
                const float *plane = sample + c * hw_;
                for (std::ptrdiff_t ky = -pad; ky <= pad; ++ky) {
                    for (std::ptrdiff_t kx = -pad; kx <= pad; ++kx) {
                        const std::ptrdiff_t yy = y + ky;
                        const std::ptrdiff_t xx = x + kx;
                        dst[j++] =
                            (yy >= 0 && yy < h && xx >= 0 && xx < w)
                                ? plane[yy * w + xx]
                                : 0.0f;
                    }
                }
            }
            ++col_idx;
        }
    }
}

void
Conv2d::col2im(const float *dcol, float *dsample) const
{
    const std::size_t ckk = channels_ * kernel_ * kernel_;
    const auto pad = static_cast<std::ptrdiff_t>(kernel_ / 2);
    const auto h = static_cast<std::ptrdiff_t>(height_);
    const auto w = static_cast<std::ptrdiff_t>(width_);
    std::size_t col_idx = 0;
    for (std::ptrdiff_t y = 0; y < h; ++y) {
        for (std::ptrdiff_t x = 0; x < w; ++x) {
            const float *src = dcol + col_idx * ckk;
            std::size_t j = 0;
            for (std::size_t c = 0; c < channels_; ++c) {
                float *plane = dsample + c * hw_;
                for (std::ptrdiff_t ky = -pad; ky <= pad; ++ky) {
                    for (std::ptrdiff_t kx = -pad; kx <= pad; ++kx) {
                        const std::ptrdiff_t yy = y + ky;
                        const std::ptrdiff_t xx = x + kx;
                        if (yy >= 0 && yy < h && xx >= 0 && xx < w)
                            plane[yy * w + xx] += src[j];
                        ++j;
                    }
                }
            }
            ++col_idx;
        }
    }
}

void
Conv2d::forward(const Tensor &in, Tensor &out)
{
    ROG_ASSERT(in.cols() == inputDim(), "Conv2d: input width mismatch");
    cached_in_ = in;
    const std::size_t batch = in.rows();
    const std::size_t ckk = weight_.value.rows();
    if (out.rows() != batch || out.cols() != outputDim(0))
        out = Tensor(batch, outputDim(0));

    // Batched im2col+GEMM: gather up to kSampleBlock samples into one
    // tall col matrix and run a single GEMM over the block instead of
    // one small GEMM per sample.
    const std::size_t bs = std::min<std::size_t>(batch, kSampleBlock);
    if (col_scratch_.rows() != bs * hw_ || col_scratch_.cols() != ckk)
        col_scratch_ = Tensor(bs * hw_, ckk);
    if (out_mat_scratch_.rows() != bs * hw_ ||
        out_mat_scratch_.cols() != out_channels_) {
        out_mat_scratch_ = Tensor(bs * hw_, out_channels_);
    }

    for (std::size_t b0 = 0; b0 < batch; b0 += bs) {
        const std::size_t cur = std::min(bs, batch - b0);
        Tensor block_col;
        Tensor block_out;
        // The ragged tail (if any) gets right-sized temporaries; full
        // blocks reuse the member scratch.
        Tensor &col = cur == bs ? col_scratch_
                                : (block_col = Tensor(cur * hw_, ckk));
        Tensor &out_mat = cur == bs
            ? out_mat_scratch_
            : (block_out = Tensor(cur * hw_, out_channels_));

        parallel::parallelFor(
            0, cur, 1, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t s = lo; s < hi; ++s)
                    im2col(in.data() + (b0 + s) * in.cols(),
                           col.data() + s * hw_ * ckk);
            });
        tensor::matmul(col, weight_.value, out_mat);
        tensor::addRowBias(out_mat, bias_.value);
        // (H*W x outC) -> channel-major (outC, H, W) per sample.
        parallel::parallelFor(
            0, cur, 1, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t s = lo; s < hi; ++s) {
                    const float *src =
                        out_mat.data() + s * hw_ * out_channels_;
                    float *dst = out.data() + (b0 + s) * out.cols();
                    for (std::size_t p = 0; p < hw_; ++p)
                        for (std::size_t c = 0; c < out_channels_; ++c)
                            dst[c * hw_ + p] = src[p * out_channels_ + c];
                }
            });
    }
}

void
Conv2d::backward(const Tensor &dout, Tensor &din)
{
    ROG_ASSERT(dout.cols() == outputDim(0),
               "Conv2d: dout width mismatch");
    ROG_ASSERT(dout.rows() == cached_in_.rows(),
               "Conv2d: backward without matching forward");
    const std::size_t batch = dout.rows();
    const std::size_t ckk = weight_.value.rows();
    if (din.rows() != batch || din.cols() != inputDim())
        din = Tensor(batch, inputDim());
    din.zero();

    const std::size_t bs = std::min<std::size_t>(batch, kSampleBlock);
    if (col_scratch_.rows() != bs * hw_ || col_scratch_.cols() != ckk)
        col_scratch_ = Tensor(bs * hw_, ckk);
    if (dout_mat_scratch_.rows() != bs * hw_ ||
        dout_mat_scratch_.cols() != out_channels_) {
        dout_mat_scratch_ = Tensor(bs * hw_, out_channels_);
    }
    if (dcol_scratch_.rows() != bs * hw_ || dcol_scratch_.cols() != ckk)
        dcol_scratch_ = Tensor(bs * hw_, ckk);
    if (dw_scratch_.rows() != ckk ||
        dw_scratch_.cols() != weight_.value.cols()) {
        dw_scratch_ = Tensor(ckk, weight_.value.cols());
    }

    for (std::size_t b0 = 0; b0 < batch; b0 += bs) {
        const std::size_t cur = std::min(bs, batch - b0);
        Tensor block_col, block_dout, block_dcol;
        Tensor &col = cur == bs ? col_scratch_
                                : (block_col = Tensor(cur * hw_, ckk));
        Tensor &dout_mat = cur == bs
            ? dout_mat_scratch_
            : (block_dout = Tensor(cur * hw_, out_channels_));
        Tensor &dcol = cur == bs
            ? dcol_scratch_
            : (block_dcol = Tensor(cur * hw_, ckk));

        // Per sample: re-lay dout to (H*W x outC) rows and gather the
        // forward col rows. Disjoint row ranges -> parallel over
        // samples.
        parallel::parallelFor(
            0, cur, 1, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t s = lo; s < hi; ++s) {
                    const float *src =
                        dout.data() + (b0 + s) * dout.cols();
                    float *dst =
                        dout_mat.data() + s * hw_ * out_channels_;
                    for (std::size_t p = 0; p < hw_; ++p)
                        for (std::size_t c = 0; c < out_channels_; ++c)
                            dst[p * out_channels_ + c] = src[c * hw_ + p];
                    im2col(cached_in_.data() +
                               (b0 + s) * cached_in_.cols(),
                           col.data() + s * hw_ * ckk);
                }
            });

        // One GEMM per block: dW += col^T @ dout_mat; db += column
        // sums; dcol = dout_mat @ W^T.
        tensor::matmulTransA(col, dout_mat, dw_scratch_);
        tensor::axpy(1.0f, dw_scratch_, weight_.grad);
        for (std::size_t p = 0; p < cur * hw_; ++p) {
            const float *row = dout_mat.data() + p * out_channels_;
            for (std::size_t c = 0; c < out_channels_; ++c)
                bias_.grad[c] += row[c];
        }
        tensor::matmulTransB(dout_mat, weight_.value, dcol);
        parallel::parallelFor(
            0, cur, 1, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t s = lo; s < hi; ++s)
                    col2im(dcol.data() + s * hw_ * ckk,
                           din.data() + (b0 + s) * din.cols());
            });
    }
}

std::vector<Parameter *>
Conv2d::parameters()
{
    return {&weight_, &bias_};
}

std::string
Conv2d::describe() const
{
    return "Conv2d(" + std::to_string(channels_) + "x" +
           std::to_string(height_) + "x" + std::to_string(width_) +
           " -> " + std::to_string(out_channels_) + " ch, k=" +
           std::to_string(kernel_) + ")";
}

Model
makeConvMlp(const ConvMlpConfig &cfg, Rng &rng)
{
    ROG_ASSERT(cfg.conv_layers >= 1, "ConvMLP needs a conv stage");
    Model m;
    std::size_t channels = cfg.channels;
    for (std::size_t i = 0; i < cfg.conv_layers; ++i) {
        m.add(std::make_unique<Conv2d>(
            "conv" + std::to_string(i), channels, cfg.height, cfg.width,
            cfg.conv_channels, cfg.kernel, rng));
        m.add(std::make_unique<Relu>());
        channels = cfg.conv_channels;
    }
    std::size_t in = channels * cfg.height * cfg.width;
    std::size_t idx = 0;
    for (std::size_t h : cfg.mlp_hidden) {
        m.add(std::make_unique<Linear>("mlp" + std::to_string(idx++), in,
                                       h, rng));
        m.add(std::make_unique<Relu>());
        in = h;
    }
    m.add(std::make_unique<Linear>("head", in, cfg.classes, rng));
    return m;
}

} // namespace nn
} // namespace rog
