#include "nn/loss.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "tensor/ops.hpp"

namespace rog {
namespace nn {

LossResult
softmaxCrossEntropy(const Tensor &logits,
                    const std::vector<std::uint32_t> &labels)
{
    ROG_ASSERT(labels.size() == logits.rows(),
               "label count != batch size");
    const std::size_t batch = logits.rows();
    const std::size_t classes = logits.cols();

    LossResult res;
    res.grad = logits;
    tensor::softmaxRows(res.grad);

    double loss = 0.0;
    std::size_t correct = 0;
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (std::size_t i = 0; i < batch; ++i) {
        const std::uint32_t y = labels[i];
        ROG_ASSERT(y < classes, "label out of range");
        float *p = res.grad.data() + i * classes;
        // p currently holds the softmax probabilities for row i.
        const float py = std::max(p[y], 1e-12f);
        loss -= std::log(py);
        if (tensor::argmaxRow(res.grad, i) == y)
            ++correct;
        // grad = (softmax - onehot) / batch.
        for (std::size_t j = 0; j < classes; ++j)
            p[j] *= inv_batch;
        p[y] -= inv_batch;
    }
    res.loss = static_cast<float>(loss / static_cast<double>(batch));
    res.accuracy = static_cast<float>(correct) /
                   static_cast<float>(batch);
    return res;
}

LossResult
meanSquaredError(const Tensor &pred, const Tensor &target)
{
    ROG_ASSERT(pred.sameShape(target), "mse shape mismatch");
    const std::size_t n = pred.size();
    LossResult res;
    res.grad = Tensor(pred.rows(), pred.cols());
    double loss = 0.0;
    const float scale = 2.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) {
        const float d = pred[i] - target[i];
        loss += static_cast<double>(d) * d;
        res.grad[i] = scale * d;
    }
    res.loss = static_cast<float>(loss / static_cast<double>(n));
    return res;
}

} // namespace nn
} // namespace rog
