/**
 * @file
 * Sequential model container.
 *
 * A Model owns an ordered list of layers, exposes the concatenated
 * parameter list (the unit the core library partitions into rows), and
 * provides whole-batch forward/backward. Helper factories build the two
 * workload models used in the paper's evaluation.
 */
#ifndef ROG_NN_MODEL_HPP
#define ROG_NN_MODEL_HPP

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace rog {
namespace nn {

/** An ordered stack of layers trained end to end. */
class Model
{
  public:
    Model() = default;

    // Models hold caches; copying mid-training is a bug, cloning weights
    // is done explicitly via copyParametersFrom().
    Model(const Model &) = delete;
    Model &operator=(const Model &) = delete;
    Model(Model &&) = default;
    Model &operator=(Model &&) = default;

    /** Append a layer; returns *this for chaining. */
    Model &add(std::unique_ptr<Layer> layer);

    /** Forward pass over a batch; returns the final activation. */
    const Tensor &forward(const Tensor &input);

    /** Backward pass from the loss gradient w.r.t. the output. */
    void backward(const Tensor &dloss);

    /** All learnable parameters in layer order. */
    std::vector<Parameter *> parameters();

    /** Zero all parameter gradients. */
    void zeroGrad();

    /** Total learnable element count. */
    std::size_t parameterCount();

    /** Total number of parameter-matrix rows (the ROG sync unit). */
    std::size_t rowCount();

    /**
     * Copy parameter *values* from another model with an identical
     * architecture (used to replicate one initialization across
     * simulated workers). @pre same architecture
     */
    void copyParametersFrom(Model &other);

    /** One line per layer. */
    std::string describe();

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
    std::vector<Tensor> activations_;
    Tensor grad_scratch_a_;
    Tensor grad_scratch_b_;
};

/** Configuration for the CRUDA-style MLP classifier. */
struct ClassifierConfig
{
    std::size_t input_dim = 32;
    std::vector<std::size_t> hidden = {128, 128, 64};
    std::size_t classes = 20;
};

/**
 * Build the CRUDA stand-in: an MLP classifier (our ConvMLP substitute;
 * see DESIGN.md). @param rng weight init stream.
 */
Model makeClassifier(const ClassifierConfig &cfg, Rng &rng);

/** Configuration for the CRIMP-style implicit map regressor. */
struct ImplicitMapConfig
{
    std::size_t input_dim = 3;          //!< 3-D query point.
    std::size_t encoding_octaves = 4;   //!< positional encoding L.
    std::vector<std::size_t> hidden = {64, 64};
    std::size_t output_dim = 1;         //!< scene value (depth/SDF).
};

/**
 * Build the CRIMP stand-in: positional encoding + MLP regressor (our
 * nice-slam substitute; see DESIGN.md). @param rng weight init stream.
 */
Model makeImplicitMap(const ImplicitMapConfig &cfg, Rng &rng);

} // namespace nn
} // namespace rog

#endif // ROG_NN_MODEL_HPP
