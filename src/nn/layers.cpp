#include "nn/layers.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace rog {
namespace nn {

Parameter::Parameter(std::string name_, std::size_t rows, std::size_t cols)
    : name(std::move(name_)), value(rows, cols), grad(rows, cols)
{
}

Linear::Linear(const std::string &name, std::size_t in_dim,
               std::size_t out_dim, Rng &rng)
    : in_dim_(in_dim), out_dim_(out_dim),
      weight_(name + ".weight", in_dim, out_dim),
      bias_(name + ".bias", 1, out_dim)
{
    // He-uniform init: bound = sqrt(6 / fan_in).
    const float bound =
        std::sqrt(6.0f / static_cast<float>(in_dim));
    weight_.value.randomUniform(rng, bound);
    bias_.value.zero();
}

void
Linear::forward(const Tensor &in, Tensor &out)
{
    ROG_ASSERT(in.cols() == in_dim_, "Linear: input width mismatch");
    cached_in_ = in;
    if (out.rows() != in.rows() || out.cols() != out_dim_)
        out = Tensor(in.rows(), out_dim_);
    tensor::matmul(in, weight_.value, out);
    tensor::addRowBias(out, bias_.value);
}

void
Linear::backward(const Tensor &dout, Tensor &din)
{
    ROG_ASSERT(dout.cols() == out_dim_, "Linear: dout width mismatch");
    ROG_ASSERT(dout.rows() == cached_in_.rows(),
               "Linear: backward without matching forward");
    // dW += in^T @ dout; db += column sums of dout; din = dout @ W^T.
    Tensor dw(in_dim_, out_dim_);
    tensor::matmulTransA(cached_in_, dout, dw);
    tensor::axpy(1.0f, dw, weight_.grad);

    for (std::size_t i = 0; i < dout.rows(); ++i) {
        const float *row = dout.data() + i * out_dim_;
        for (std::size_t j = 0; j < out_dim_; ++j)
            bias_.grad[j] += row[j];
    }

    if (din.rows() != dout.rows() || din.cols() != in_dim_)
        din = Tensor(dout.rows(), in_dim_);
    tensor::matmulTransB(dout, weight_.value, din);
}

std::vector<Parameter *>
Linear::parameters()
{
    return {&weight_, &bias_};
}

std::string
Linear::describe() const
{
    return "Linear(" + std::to_string(in_dim_) + " -> " +
           std::to_string(out_dim_) + ")";
}

void
Relu::forward(const Tensor &in, Tensor &out)
{
    cached_in_ = in;
    if (!out.sameShape(in))
        out = Tensor(in.rows(), in.cols());
    tensor::relu(in, out);
}

void
Relu::backward(const Tensor &dout, Tensor &din)
{
    if (!din.sameShape(dout))
        din = Tensor(dout.rows(), dout.cols());
    tensor::reluBackward(cached_in_, dout, din);
}

void
Tanh::forward(const Tensor &in, Tensor &out)
{
    if (!out.sameShape(in))
        out = Tensor(in.rows(), in.cols());
    tensor::tanhForward(in, out);
    cached_out_ = out;
}

void
Tanh::backward(const Tensor &dout, Tensor &din)
{
    if (!din.sameShape(dout))
        din = Tensor(dout.rows(), dout.cols());
    tensor::tanhBackward(cached_out_, dout, din);
}

PositionalEncoding::PositionalEncoding(std::size_t frequencies)
    : freqs_(frequencies)
{
    ROG_ASSERT(frequencies > 0, "positional encoding needs >= 1 octave");
}

std::size_t
PositionalEncoding::outputDim(std::size_t d) const
{
    return d * (1 + 2 * freqs_);
}

void
PositionalEncoding::forward(const Tensor &in, Tensor &out)
{
    cached_in_ = in;
    const std::size_t d = in.cols();
    const std::size_t od = outputDim(d);
    if (out.rows() != in.rows() || out.cols() != od)
        out = Tensor(in.rows(), od);
    for (std::size_t i = 0; i < in.rows(); ++i) {
        const float *src = in.data() + i * d;
        float *dst = out.data() + i * od;
        for (std::size_t j = 0; j < d; ++j)
            dst[j] = src[j];
        std::size_t k = d;
        for (std::size_t f = 0; f < freqs_; ++f) {
            const float w = static_cast<float>(1u << f);
            for (std::size_t j = 0; j < d; ++j) {
                dst[k++] = std::sin(w * src[j]);
                dst[k++] = std::cos(w * src[j]);
            }
        }
    }
}

void
PositionalEncoding::backward(const Tensor &dout, Tensor &din)
{
    const std::size_t d = cached_in_.cols();
    ROG_ASSERT(dout.cols() == outputDim(d),
               "PositionalEncoding: dout width mismatch");
    if (din.rows() != dout.rows() || din.cols() != d)
        din = Tensor(dout.rows(), d);
    for (std::size_t i = 0; i < dout.rows(); ++i) {
        const float *src = cached_in_.data() + i * d;
        const float *g = dout.data() + i * dout.cols();
        float *dst = din.data() + i * d;
        for (std::size_t j = 0; j < d; ++j)
            dst[j] = g[j];
        std::size_t k = d;
        for (std::size_t f = 0; f < freqs_; ++f) {
            const float w = static_cast<float>(1u << f);
            for (std::size_t j = 0; j < d; ++j) {
                const float s = g[k++];
                const float c = g[k++];
                dst[j] += w * (s * std::cos(w * src[j]) -
                               c * std::sin(w * src[j]));
            }
        }
    }
}

std::string
PositionalEncoding::describe() const
{
    return "PositionalEncoding(L=" + std::to_string(freqs_) + ")";
}

} // namespace nn
} // namespace rog
