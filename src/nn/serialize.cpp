#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hpp"

namespace rog {
namespace nn {

namespace {

constexpr char kMagic[4] = {'R', 'O', 'G', 'M'};
constexpr std::uint32_t kVersion = 1;

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

std::uint32_t
readU32(std::istream &is)
{
    std::uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        ROG_FATAL("model checkpoint: truncated input");
    return v;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writeU32(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &is)
{
    const std::uint32_t n = readU32(is);
    if (n > 4096)
        ROG_FATAL("model checkpoint: implausible name length ", n);
    std::string s(n, '\0');
    is.read(s.data(), n);
    if (!is)
        ROG_FATAL("model checkpoint: truncated name");
    return s;
}

} // namespace

void
saveModel(std::ostream &os, Model &model)
{
    os.write(kMagic, sizeof(kMagic));
    writeU32(os, kVersion);
    const auto params = model.parameters();
    writeU32(os, static_cast<std::uint32_t>(params.size()));
    for (Parameter *p : params) {
        writeString(os, p->name);
        writeU32(os, static_cast<std::uint32_t>(p->value.rows()));
        writeU32(os, static_cast<std::uint32_t>(p->value.cols()));
        os.write(reinterpret_cast<const char *>(p->value.data()),
                 static_cast<std::streamsize>(p->value.size() *
                                              sizeof(float)));
    }
    if (!os)
        ROG_FATAL("model checkpoint: write failed");
}

void
loadModel(std::istream &is, Model &model)
{
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    if (!is || std::string(magic, 4) != std::string(kMagic, 4))
        ROG_FATAL("model checkpoint: bad magic");
    const std::uint32_t version = readU32(is);
    if (version != kVersion)
        ROG_FATAL("model checkpoint: unsupported version ", version);

    const auto params = model.parameters();
    const std::uint32_t count = readU32(is);
    if (count != params.size()) {
        ROG_FATAL("model checkpoint: has ", count,
                  " parameters, model expects ", params.size());
    }
    for (Parameter *p : params) {
        const std::string name = readString(is);
        if (name != p->name)
            ROG_FATAL("model checkpoint: parameter '", name,
                      "' where '", p->name, "' expected");
        const std::uint32_t rows = readU32(is);
        const std::uint32_t cols = readU32(is);
        if (rows != p->value.rows() || cols != p->value.cols()) {
            ROG_FATAL("model checkpoint: shape ", rows, "x", cols,
                      " for '", name, "', model expects ",
                      p->value.rows(), "x", p->value.cols());
        }
        is.read(reinterpret_cast<char *>(p->value.data()),
                static_cast<std::streamsize>(p->value.size() *
                                             sizeof(float)));
        if (!is)
            ROG_FATAL("model checkpoint: truncated payload for '", name,
                      "'");
    }
}

void
saveModelFile(const std::string &path, Model &model)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        ROG_FATAL("cannot open '", path, "' for writing");
    saveModel(os, model);
}

void
loadModelFile(const std::string &path, Model &model)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        ROG_FATAL("cannot open '", path, "' for reading");
    loadModel(is, model);
}

} // namespace nn
} // namespace rog
