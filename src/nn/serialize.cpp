#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/crc32c.hpp"
#include "common/logging.hpp"

namespace rog {
namespace nn {

namespace {

constexpr char kMagic[4] = {'R', 'O', 'G', 'M'};

// v1: raw parameter table. v2 appends a CRC32C trailer over the body
// (everything after magic+version) so a torn or bit-rotten checkpoint
// is rejected instead of silently loading garbage weights. v1 files
// still load — they simply predate the integrity check.
constexpr std::uint32_t kVersionLegacy = 1;
constexpr std::uint32_t kVersion = 2;

/** Ostream adapter accumulating the body CRC as it writes. */
class Sink
{
  public:
    explicit Sink(std::ostream &os) : os_(os) {}

    void
    write(const void *p, std::size_t n)
    {
        os_.write(static_cast<const char *>(p),
                  static_cast<std::streamsize>(n));
        crc_ = crc32c({static_cast<const std::uint8_t *>(p), n}, crc_);
    }

    void
    u32(std::uint32_t v)
    {
        write(&v, sizeof(v));
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        write(s.data(), s.size());
    }

    std::uint32_t crc() const { return crc_; }
    std::ostream &raw() { return os_; }

  private:
    std::ostream &os_;
    std::uint32_t crc_ = 0;
};

/**
 * Istream adapter accumulating the body CRC as it reads. It consumes
 * exactly the checkpoint's bytes — never the rest of the stream — so
 * concatenated checkpoints load back to back.
 */
class Source
{
  public:
    explicit Source(std::istream &is) : is_(is) {}

    void
    read(void *p, std::size_t n, const char *what)
    {
        is_.read(static_cast<char *>(p),
                 static_cast<std::streamsize>(n));
        if (!is_ || static_cast<std::size_t>(is_.gcount()) != n)
            ROG_FATAL("model checkpoint: truncated ", what);
        crc_ = crc32c({static_cast<const std::uint8_t *>(p), n}, crc_);
    }

    std::uint32_t
    u32(const char *what)
    {
        std::uint32_t v = 0;
        read(&v, sizeof(v), what);
        return v;
    }

    std::string
    str(const char *what)
    {
        const std::uint32_t n = u32(what);
        if (n > 4096)
            ROG_FATAL("model checkpoint: implausible name length ", n);
        std::string s(n, '\0');
        read(s.data(), n, what);
        return s;
    }

    std::uint32_t crc() const { return crc_; }
    std::istream &raw() { return is_; }

  private:
    std::istream &is_;
    std::uint32_t crc_ = 0;
};

} // namespace

void
saveModel(std::ostream &os, Model &model)
{
    os.write(kMagic, sizeof(kMagic));
    const std::uint32_t version = kVersion;
    os.write(reinterpret_cast<const char *>(&version), sizeof(version));

    Sink sink(os);
    const auto params = model.parameters();
    sink.u32(static_cast<std::uint32_t>(params.size()));
    for (Parameter *p : params) {
        sink.str(p->name);
        sink.u32(static_cast<std::uint32_t>(p->value.rows()));
        sink.u32(static_cast<std::uint32_t>(p->value.cols()));
        sink.write(p->value.data(), p->value.size() * sizeof(float));
    }
    const std::uint32_t crc = sink.crc();
    os.write(reinterpret_cast<const char *>(&crc), sizeof(crc));
    if (!os)
        ROG_FATAL("model checkpoint: write failed");
}

void
loadModel(std::istream &is, Model &model)
{
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    if (!is || std::string(magic, 4) != std::string(kMagic, 4))
        ROG_FATAL("model checkpoint: bad magic");
    std::uint32_t version = 0;
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!is)
        ROG_FATAL("model checkpoint: truncated header");
    if (version != kVersion && version != kVersionLegacy)
        ROG_FATAL("model checkpoint: unsupported version ", version);

    Source src(is);
    const auto params = model.parameters();
    const std::uint32_t count = src.u32("parameter count");
    if (count != params.size()) {
        ROG_FATAL("model checkpoint: has ", count,
                  " parameters, model expects ", params.size());
    }
    for (Parameter *p : params) {
        const std::string name = src.str("name");
        if (name != p->name)
            ROG_FATAL("model checkpoint: parameter '", name,
                      "' where '", p->name, "' expected");
        const std::uint32_t rows = src.u32("shape");
        const std::uint32_t cols = src.u32("shape");
        if (rows != p->value.rows() || cols != p->value.cols()) {
            ROG_FATAL("model checkpoint: shape ", rows, "x", cols,
                      " for '", name, "', model expects ",
                      p->value.rows(), "x", p->value.cols());
        }
        src.read(p->value.data(), p->value.size() * sizeof(float),
                 "payload");
    }
    if (version >= kVersion) {
        const std::uint32_t computed = src.crc();
        std::uint32_t stored = 0;
        is.read(reinterpret_cast<char *>(&stored), sizeof(stored));
        if (!is)
            ROG_FATAL("model checkpoint: truncated CRC trailer");
        if (stored != computed)
            ROG_FATAL("model checkpoint: CRC mismatch (stored ",
                      stored, ", computed ", computed, ")");
    }
}

void
saveModelFile(const std::string &path, Model &model)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        ROG_FATAL("cannot open '", path, "' for writing");
    saveModel(os, model);
}

void
loadModelFile(const std::string &path, Model &model)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        ROG_FATAL("cannot open '", path, "' for reading");
    loadModel(is, model);
}

} // namespace nn
} // namespace rog
