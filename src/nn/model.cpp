#include "nn/model.hpp"

#include <sstream>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace rog {
namespace nn {

Model &
Model::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
    return *this;
}

const Tensor &
Model::forward(const Tensor &input)
{
    ROG_ASSERT(!layers_.empty(), "forward on an empty model");
    activations_.resize(layers_.size());
    const Tensor *cur = &input;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        layers_[i]->forward(*cur, activations_[i]);
        cur = &activations_[i];
    }
    return activations_.back();
}

void
Model::backward(const Tensor &dloss)
{
    ROG_ASSERT(activations_.size() == layers_.size(),
               "backward without forward");
    grad_scratch_a_ = dloss;
    Tensor *dout = &grad_scratch_a_;
    Tensor *din = &grad_scratch_b_;
    for (std::size_t i = layers_.size(); i-- > 0;) {
        layers_[i]->backward(*dout, *din);
        std::swap(dout, din);
    }
}

std::vector<Parameter *>
Model::parameters()
{
    std::vector<Parameter *> out;
    for (auto &l : layers_)
        for (Parameter *p : l->parameters())
            out.push_back(p);
    return out;
}

void
Model::zeroGrad()
{
    for (Parameter *p : parameters())
        p->zeroGrad();
}

std::size_t
Model::parameterCount()
{
    std::size_t n = 0;
    for (Parameter *p : parameters())
        n += p->value.size();
    return n;
}

std::size_t
Model::rowCount()
{
    std::size_t n = 0;
    for (Parameter *p : parameters())
        n += p->value.rows();
    return n;
}

void
Model::copyParametersFrom(Model &other)
{
    auto mine = parameters();
    auto theirs = other.parameters();
    ROG_ASSERT(mine.size() == theirs.size(),
               "copyParametersFrom: architecture mismatch");
    for (std::size_t i = 0; i < mine.size(); ++i) {
        ROG_ASSERT(mine[i]->value.sameShape(theirs[i]->value),
                   "copyParametersFrom: shape mismatch at ",
                   mine[i]->name);
        tensor::copy(theirs[i]->value, mine[i]->value);
    }
}

std::string
Model::describe()
{
    std::ostringstream os;
    for (auto &l : layers_)
        os << l->describe() << "\n";
    os << "parameters: " << parameterCount() << " in " << rowCount()
       << " rows";
    return os.str();
}

Model
makeClassifier(const ClassifierConfig &cfg, Rng &rng)
{
    ROG_ASSERT(cfg.classes > 1, "classifier needs >= 2 classes");
    Model m;
    std::size_t in = cfg.input_dim;
    std::size_t idx = 0;
    for (std::size_t h : cfg.hidden) {
        m.add(std::make_unique<Linear>("fc" + std::to_string(idx++), in, h,
                                       rng));
        m.add(std::make_unique<Relu>());
        in = h;
    }
    m.add(std::make_unique<Linear>("head", in, cfg.classes, rng));
    return m;
}

Model
makeImplicitMap(const ImplicitMapConfig &cfg, Rng &rng)
{
    Model m;
    auto enc = std::make_unique<PositionalEncoding>(cfg.encoding_octaves);
    std::size_t in = enc->outputDim(cfg.input_dim);
    m.add(std::move(enc));
    std::size_t idx = 0;
    for (std::size_t h : cfg.hidden) {
        m.add(std::make_unique<Linear>("map" + std::to_string(idx++), in, h,
                                       rng));
        m.add(std::make_unique<Tanh>());
        in = h;
    }
    m.add(std::make_unique<Linear>("out", in, cfg.output_dim, rng));
    return m;
}

} // namespace nn
} // namespace rog
