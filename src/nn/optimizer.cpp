#include "nn/optimizer.hpp"

#include "common/logging.hpp"

namespace rog {
namespace nn {

SgdMomentum::SgdMomentum(Model &model, const OptimizerConfig &cfg)
    : cfg_(cfg)
{
    ROG_ASSERT(cfg.learning_rate > 0.0f, "learning rate must be positive");
    ROG_ASSERT(cfg.momentum >= 0.0f && cfg.momentum < 1.0f,
               "momentum must be in [0, 1)");
    for (Parameter *p : model.parameters()) {
        for (std::size_t r = 0; r < p->value.rows(); ++r) {
            row_values_.push_back(p->value.row(r));
            row_grads_.push_back(p->grad.row(r));
            momentum_.emplace_back(p->value.cols(), 0.0f);
        }
    }
}

std::size_t
SgdMomentum::rowWidth(std::size_t row) const
{
    ROG_ASSERT(row < row_values_.size(), "row out of range");
    return row_values_[row].size();
}

std::span<float>
SgdMomentum::rowValues(std::size_t row)
{
    ROG_ASSERT(row < row_values_.size(), "row out of range");
    return row_values_[row];
}

std::span<float>
SgdMomentum::rowGrad(std::size_t row)
{
    ROG_ASSERT(row < row_grads_.size(), "row out of range");
    return row_grads_[row];
}

void
SgdMomentum::applyRow(std::size_t row, std::span<const float> g)
{
    applyRowRange(row, 0, g);
}

void
SgdMomentum::applyRowRange(std::size_t row, std::size_t col_begin,
                           std::span<const float> g)
{
    ROG_ASSERT(row < row_values_.size(), "row out of range");
    ROG_ASSERT(col_begin + g.size() <= row_values_[row].size(),
               "gradient row range out of bounds");
    auto w = row_values_[row];
    auto &v = momentum_[row];
    const float lr = cfg_.learning_rate;
    const float mu = cfg_.momentum;
    for (std::size_t j = 0; j < g.size(); ++j) {
        const std::size_t c = col_begin + j;
        v[c] = mu * v[c] + g[j];
        w[c] -= lr * v[c];
    }
}

void
SgdMomentum::applyAll(const std::vector<std::vector<float>> &rows)
{
    ROG_ASSERT(rows.size() == row_values_.size(),
               "applyAll: row count mismatch");
    for (std::size_t r = 0; r < rows.size(); ++r)
        applyRow(r, rows[r]);
}

} // namespace nn
} // namespace rog
