/**
 * @file
 * 2-D convolution (im2col) and the ConvMLP-style model factory.
 *
 * The paper's CRUDA model is ConvMLP [41]: a convolutional tokenizer
 * feeding MLP stages. Conv2d supplies the convolutional stage for a
 * faithful miniature: stride-1, same-padding square kernels over a
 * channel-major (C, H, W) layout flattened per sample. The im2col
 * weight matrix has C*k*k rows of out_channels width — rows that ROG
 * synchronizes like any other parameter rows.
 *
 * Forward/backward batch the im2col gather over blocks of samples and
 * run one GEMM per block (per-sample gathers/scatters fan out over the
 * parallel runtime with deterministic per-sample boundaries).
 */
#ifndef ROG_NN_CONV_HPP
#define ROG_NN_CONV_HPP

#include "nn/layers.hpp"
#include "nn/model.hpp"

namespace rog {
namespace nn {

/** Stride-1 same-padding 2-D convolution over flattened (C,H,W). */
class Conv2d : public Layer
{
  public:
    /**
     * @param name parameter-name prefix.
     * @param in_channels / height / width input image geometry.
     * @param out_channels filter count.
     * @param kernel odd square kernel size (same padding). @pre odd
     * @param rng weight init (He-uniform over fan-in).
     */
    Conv2d(const std::string &name, std::size_t in_channels,
           std::size_t height, std::size_t width,
           std::size_t out_channels, std::size_t kernel, Rng &rng);

    void forward(const Tensor &in, Tensor &out) override;
    void backward(const Tensor &dout, Tensor &din) override;
    std::size_t outputDim(std::size_t) const override;
    std::vector<Parameter *> parameters() override;
    std::string describe() const override;

    std::size_t inputDim() const { return channels_ * hw_; }

  private:
    /**
     * Gather one sample's im2col rows: @p col points at the first of
     * hw_ consecutive rows of width C*k*k inside the batched matrix.
     */
    void im2col(const float *sample, float *col) const;

    /** Scatter one sample's hw_ column-space gradient rows (@p dcol)
     *  back to image space. */
    void col2im(const float *dcol, float *dsample) const;

    /** Samples per GEMM block: batches im2col+GEMM over up to this
     *  many samples so the col matrix stays cache-sized. */
    static constexpr std::size_t kSampleBlock = 64;

    std::size_t channels_;
    std::size_t height_;
    std::size_t width_;
    std::size_t out_channels_;
    std::size_t kernel_;
    std::size_t hw_;
    Parameter weight_; //!< (C*k*k x out_channels).
    Parameter bias_;   //!< (1 x out_channels).
    Tensor cached_in_;
    Tensor col_scratch_;      //!< (block*H*W x C*k*k) im2col rows.
    Tensor dcol_scratch_;     //!< (block*H*W x C*k*k) column grads.
    Tensor out_mat_scratch_;  //!< (block*H*W x outC) forward GEMM out.
    Tensor dout_mat_scratch_; //!< (block*H*W x outC) re-laid dout.
    Tensor dw_scratch_;       //!< (C*k*k x outC) per-block dW.
};

/** Configuration of the miniature ConvMLP classifier. */
struct ConvMlpConfig
{
    std::size_t channels = 3;   //!< input image channels.
    std::size_t height = 8;     //!< input image height.
    std::size_t width = 8;      //!< input image width.
    std::size_t conv_channels = 8;
    std::size_t conv_layers = 2;
    std::size_t kernel = 3;
    std::vector<std::size_t> mlp_hidden = {64};
    std::size_t classes = 10;
};

/**
 * Build the miniature ConvMLP: a convolutional tokenizer stage
 * followed by an MLP head, as in [41]. Input is (batch x C*H*W).
 */
Model makeConvMlp(const ConvMlpConfig &cfg, Rng &rng);

} // namespace nn
} // namespace rog

#endif // ROG_NN_CONV_HPP
