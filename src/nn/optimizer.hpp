/**
 * @file
 * Per-row SGD-momentum optimizer.
 *
 * The paper's implementation uses the block-wise distributed
 * SGD-momentum of [22] integrated with the staleness-tolerant momentum
 * scheme of [46]: momentum is kept *per row block* and updates may
 * arrive for any subset of rows in any iteration. SgdMomentum mirrors
 * that: applyRow() consumes one averaged-gradient row at a time, which
 * is exactly what PullAveragedGradients() delivers (Algo 1, line 13-17).
 */
#ifndef ROG_NN_OPTIMIZER_HPP
#define ROG_NN_OPTIMIZER_HPP

#include <span>
#include <vector>

#include "nn/model.hpp"

namespace rog {
namespace nn {

/** Hyperparameters for SgdMomentum. */
struct OptimizerConfig
{
    float learning_rate = 0.05f;
    float momentum = 0.9f;
};

/**
 * Block-wise SGD with momentum over a model's row-partitioned
 * parameters. Row indices are global: rows of all parameter matrices
 * concatenated in parameters() order.
 */
class SgdMomentum
{
  public:
    /** Bind to a model; momentum buffers match the row partition. */
    SgdMomentum(Model &model, const OptimizerConfig &cfg);

    /** Number of global rows managed. */
    std::size_t rowCount() const { return row_values_.size(); }

    /** Width (element count) of global row @p row. */
    std::size_t rowWidth(std::size_t row) const;

    /** Mutable view of the parameter values of global row @p row. */
    std::span<float> rowValues(std::size_t row);

    /** Mutable view of the gradient accumulator of global row @p row. */
    std::span<float> rowGrad(std::size_t row);

    /**
     * Apply one averaged-gradient row: v = mu*v + g; w -= lr*v.
     * @pre g.size() == rowWidth(row)
     */
    void applyRow(std::size_t row, std::span<const float> g);

    /**
     * Apply a partial row starting at @p col_begin (used by the
     * element-granularity ablation where a unit is narrower than a
     * row). @pre col_begin + g.size() <= rowWidth(row)
     */
    void applyRowRange(std::size_t row, std::size_t col_begin,
                       std::span<const float> g);

    /** Apply a full dense gradient (all rows); used by unit tests. */
    void applyAll(const std::vector<std::vector<float>> &rows);

    const OptimizerConfig &config() const { return cfg_; }

    /** Change the learning rate (e.g. for decay schedules). */
    void setLearningRate(float lr) { cfg_.learning_rate = lr; }

  private:
    OptimizerConfig cfg_;
    std::vector<std::span<float>> row_values_;
    std::vector<std::span<float>> row_grads_;
    std::vector<std::vector<float>> momentum_;
};

} // namespace nn
} // namespace rog

#endif // ROG_NN_OPTIMIZER_HPP
