/**
 * @file
 * Loss functions: softmax cross-entropy (classification) and mean
 * squared error (regression). Each returns the scalar loss and the
 * gradient w.r.t. the network output, already averaged over the batch.
 */
#ifndef ROG_NN_LOSS_HPP
#define ROG_NN_LOSS_HPP

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace rog {
namespace nn {

using tensor::Tensor;

/** Result of a loss evaluation. */
struct LossResult
{
    float loss = 0.0f;       //!< mean loss over the batch.
    float accuracy = 0.0f;   //!< top-1 accuracy (classification only).
    Tensor grad;             //!< d(loss)/d(logits or predictions).
};

/**
 * Mean softmax cross-entropy over a batch.
 *
 * @param logits (batch x classes) raw scores.
 * @param labels class index per batch item. @pre labels.size()==batch
 */
LossResult softmaxCrossEntropy(const Tensor &logits,
                               const std::vector<std::uint32_t> &labels);

/**
 * Mean squared error over a batch.
 *
 * @param pred (batch x dim) predictions.
 * @param target (batch x dim) regression targets. @pre same shape
 */
LossResult meanSquaredError(const Tensor &pred, const Tensor &target);

} // namespace nn
} // namespace rog

#endif // ROG_NN_LOSS_HPP
