#include "common/math_util.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace rog {

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
stddev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double s = 0.0;
    for (double x : v)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size()));
}

double
lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

double
clamp(double v, double lo, double hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

double
bisect(const std::function<double(double)> &f, double lo, double hi,
       double tol)
{
    double flo = f(lo);
    double fhi = f(hi);
    ROG_ASSERT(flo * fhi <= 0.0, "bisect: no sign change on interval");
    while (hi - lo > tol) {
        const double mid = 0.5 * (lo + hi);
        const double fm = f(mid);
        if (flo * fm <= 0.0) {
            hi = mid;
            fhi = fm;
        } else {
            lo = mid;
            flo = fm;
        }
    }
    return 0.5 * (lo + hi);
}

Ewma::Ewma(double alpha, double initial) : alpha_(alpha), value_(initial)
{
    ROG_ASSERT(alpha > 0.0 && alpha <= 1.0, "ewma alpha must be in (0,1]");
}

double
Ewma::observe(double x)
{
    if (!seeded_) {
        value_ = x;
        seeded_ = true;
    } else {
        value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
    return value_;
}

} // namespace rog
