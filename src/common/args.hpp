/**
 * @file
 * Minimal command-line argument parsing for the tools.
 *
 * Supports `--key value`, `--key=value`, bare `--flag`, and leading
 * positional arguments. Unknown options are an error (caught early
 * rather than silently ignored).
 */
#ifndef ROG_COMMON_ARGS_HPP
#define ROG_COMMON_ARGS_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

namespace rog {

/** Parsed command line. */
class Args
{
  public:
    /**
     * Parse argv.
     *
     * @param known the accepted option names (without "--").
     * @throws std::runtime_error (via ROG_FATAL) on unknown options or
     *         a missing value for a non-terminal option.
     */
    Args(int argc, const char *const *argv,
         const std::set<std::string> &known);

    /** Positional arguments in order (e.g. the subcommand). */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** True if --name appeared (with or without a value). */
    bool has(const std::string &name) const;

    /** Value of --name, or @p fallback if absent. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Value of --name as a double. @throws if non-numeric */
    double getDouble(const std::string &name, double fallback) const;

    /** Value of --name as a non-negative integer. @throws likewise */
    std::size_t getSize(const std::string &name,
                        std::size_t fallback) const;

  private:
    std::vector<std::string> positional_;
    std::map<std::string, std::string> options_;
};

/** Split a comma-separated list ("bsp,ssp4,rog4"). */
std::vector<std::string> splitCommaList(const std::string &s);

} // namespace rog

#endif // ROG_COMMON_ARGS_HPP
