/**
 * @file
 * CRC32C (Castagnoli) checksums.
 *
 * One checksum routine serves every integrity boundary in the system:
 * the reliable transport verifies each reassembled chunk against the
 * CRC in its frame header, model checkpoints (nn/serialize) carry a
 * whole-file CRC trailer, and server recovery checkpoints
 * (core/server_checkpoint) refuse to restore from a corrupted file.
 * CRC32C is the polynomial used by iSCSI, ext4, and RDMA NICs — the
 * natural choice for a robot-to-server gradient wire and its durable
 * state. This is the portable table-driven software implementation (no
 * SSE4.2 requirement; determinism matters more than throughput here,
 * the payloads are small).
 */
#ifndef ROG_COMMON_CRC32C_HPP
#define ROG_COMMON_CRC32C_HPP

#include <cstddef>
#include <cstdint>
#include <span>

namespace rog {

/**
 * CRC32C of @p data continued from @p seed (pass the previous return
 * value to checksum a message in pieces). The empty-span CRC of seed 0
 * is 0; crc32c("123456789") == 0xE3069283 (the standard check value).
 */
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0);

} // namespace rog

#endif // ROG_COMMON_CRC32C_HPP
