/**
 * @file
 * CRC32C (Castagnoli) checksums, hardware-accelerated where possible.
 *
 * One checksum routine serves every integrity boundary in the system:
 * the reliable transport verifies each reassembled chunk against the
 * CRC in its frame header, model checkpoints (nn/serialize) carry a
 * whole-file CRC trailer, and server recovery checkpoints
 * (core/server_checkpoint) refuse to restore from a corrupted file.
 * CRC32C is the polynomial used by iSCSI, ext4, and RDMA NICs — the
 * natural choice for a robot-to-server gradient wire and its durable
 * state, and the one CPUs implement in silicon.
 *
 * Three implementation tiers compute the identical function:
 *
 *  - crc32cRef():    the seed's byte-at-a-time table walk. Slowest,
 *                    simplest, the oracle every fuzz test compares
 *                    against.
 *  - crc32cSlice8(): slicing-by-8 software kernel — eight table
 *                    lookups fold 8 input bytes per iteration. The
 *                    portable fast path and the fallback wherever no
 *                    CRC instruction exists.
 *  - crc32cHw():     the CPU instruction (SSE4.2 `crc32` on x86-64,
 *                    ARMv8 `crc32cx` on aarch64), striding 8 bytes per
 *                    instruction. Only callable when
 *                    crc32cHwAvailable() is true.
 *
 * crc32c() itself dispatches once per process (cpu::hasCrc32c()) to
 * the fastest available tier. Because all tiers are bit-exact, the
 * choice is invisible to checksummed artifacts: a checkpoint written
 * on a robot with CRC silicon verifies on a server without it.
 */
#ifndef ROG_COMMON_CRC32C_HPP
#define ROG_COMMON_CRC32C_HPP

#include <cstddef>
#include <cstdint>
#include <span>

namespace rog {

/**
 * CRC32C of @p data continued from @p seed (pass the previous return
 * value to checksum a message in pieces). The empty-span CRC of seed 0
 * is 0; crc32c("123456789") == 0xE3069283 (the standard check value).
 * Dispatched: hardware tier when the CPU has one, slicing-by-8
 * otherwise.
 */
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0);

/** Reference tier: the seed's byte-at-a-time table implementation.
 *  The oracle for the fuzz tests and the bench baseline. */
std::uint32_t crc32cRef(std::span<const std::uint8_t> data,
                        std::uint32_t seed = 0);

/** Software fast tier: slicing-by-8, folds 8 bytes per iteration. */
std::uint32_t crc32cSlice8(std::span<const std::uint8_t> data,
                           std::uint32_t seed = 0);

/** True when crc32cHw() may be called on this CPU. */
bool crc32cHwAvailable();

/**
 * Hardware tier: one CRC32C instruction per 8 input bytes.
 * @pre crc32cHwAvailable()
 */
std::uint32_t crc32cHw(std::span<const std::uint8_t> data,
                       std::uint32_t seed = 0);

/** Name of the tier crc32c() dispatches to ("hw" | "slice8"). */
const char *crc32cActiveTier();

} // namespace rog

#endif // ROG_COMMON_CRC32C_HPP
