#include "common/args.hpp"

#include <cstdlib>

#include "common/logging.hpp"

namespace rog {

Args::Args(int argc, const char *const *argv,
           const std::set<std::string> &known)
{
    bool options_started = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            if (options_started)
                ROG_FATAL("positional argument '", arg,
                          "' after options");
            positional_.push_back(arg);
            continue;
        }
        options_started = true;
        arg = arg.substr(2);
        std::string value;
        const auto eq = arg.find('=');
        bool have_value = false;
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            have_value = true;
        }
        if (!known.count(arg))
            ROG_FATAL("unknown option --", arg);
        if (!have_value && i + 1 < argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0) {
            value = argv[++i];
        }
        options_[arg] = value;
    }
}

bool
Args::has(const std::string &name) const
{
    return options_.count(name) > 0;
}

std::string
Args::get(const std::string &name, const std::string &fallback) const
{
    auto it = options_.find(name);
    return it == options_.end() ? fallback : it->second;
}

double
Args::getDouble(const std::string &name, double fallback) const
{
    if (!has(name))
        return fallback;
    const std::string v = get(name);
    char *end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        ROG_FATAL("option --", name, " expects a number, got '", v, "'");
    return parsed;
}

std::size_t
Args::getSize(const std::string &name, std::size_t fallback) const
{
    const double v =
        getDouble(name, static_cast<double>(fallback));
    if (v < 0.0)
        ROG_FATAL("option --", name, " must be non-negative");
    return static_cast<std::size_t>(v);
}

std::vector<std::string>
splitCommaList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= s.size()) {
        const auto comma = s.find(',', begin);
        const auto end = comma == std::string::npos ? s.size() : comma;
        if (end > begin)
            out.push_back(s.substr(begin, end - begin));
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return out;
}

} // namespace rog
