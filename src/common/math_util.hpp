/**
 * @file
 * Small numeric helpers shared across modules.
 */
#ifndef ROG_COMMON_MATH_UTIL_HPP
#define ROG_COMMON_MATH_UTIL_HPP

#include <cstddef>
#include <functional>
#include <vector>

namespace rog {

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &v);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &v);

/** Linear interpolation between a and b at t in [0, 1]. */
double lerp(double a, double b, double t);

/** Clamp v to [lo, hi]. */
double clamp(double v, double lo, double hi);

/**
 * Find a root of f on [lo, hi] by bisection.
 *
 * @pre f(lo) and f(hi) have opposite signs.
 * @param tol absolute tolerance on the argument.
 */
double bisect(const std::function<double(double)> &f, double lo, double hi,
              double tol = 1e-10);

/**
 * Exponentially weighted moving average estimator.
 * value() returns the current estimate; before any observation it
 * returns the configured initial value.
 */
class Ewma
{
  public:
    /** @param alpha weight of a new observation, in (0, 1]. */
    explicit Ewma(double alpha, double initial = 0.0);

    /** Fold in a new observation and return the updated estimate. */
    double observe(double x);

    double value() const { return value_; }
    bool seeded() const { return seeded_; }

    /**
     * Overwrite the estimator state (checkpoint restore). alpha is
     * configuration, not state, and is left untouched.
     */
    void restore(double value, bool seeded)
    {
        value_ = value;
        seeded_ = seeded;
    }

  private:
    double alpha_;
    double value_;
    bool seeded_ = false;
};

} // namespace rog

#endif // ROG_COMMON_MATH_UTIL_HPP
