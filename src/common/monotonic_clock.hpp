/**
 * @file
 * Monotonic wall-clock seconds for the real-socket transport backends.
 *
 * The DES twin runs on virtual seconds; a real backend needs a clock
 * with the same shape — a double of seconds that starts near zero and
 * never goes backwards — so the protocol core's arithmetic (deadlines,
 * backoff scheduling, elapsed accounting) is identical on both. The
 * epoch is captured at construction, so timestamps are small and
 * trace normalization (t=0) has little to strip.
 */
#ifndef ROG_COMMON_MONOTONIC_CLOCK_HPP
#define ROG_COMMON_MONOTONIC_CLOCK_HPP

#include <cstdint>

namespace rog {

/** Seconds since construction, from CLOCK_MONOTONIC. */
class MonotonicClock
{
  public:
    MonotonicClock();

    /** Seconds elapsed since the clock was constructed. */
    double now() const;

  private:
    std::int64_t epoch_ns_ = 0;
};

} // namespace rog

#endif // ROG_COMMON_MONOTONIC_CLOCK_HPP
