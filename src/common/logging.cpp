#include "common/logging.hpp"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace rog {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

void
panicImpl(std::string_view file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(std::string_view file, int line, const std::string &msg)
{
    // Throw instead of exit(1) so that library users (and tests) can
    // catch configuration errors; uncaught it still terminates.
    throw std::runtime_error(detail::concat("fatal: ", msg, " @ ", file,
                                            ":", line));
}

void
logImpl(LogLevel level, std::string_view tag, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(g_level))
        return;
    std::cerr << tag << ": " << msg << std::endl;
}

} // namespace detail

} // namespace rog
