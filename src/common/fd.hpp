/**
 * @file
 * RAII ownership of a POSIX file descriptor.
 *
 * Socket code leaks descriptors on every early return unless closing
 * is tied to scope; UniqueFd is the one-liner that ties it. Move-only,
 * closes on destruction, and converts to the raw int where syscalls
 * need it.
 */
#ifndef ROG_COMMON_FD_HPP
#define ROG_COMMON_FD_HPP

#include <utility>

namespace rog {

/** Move-only owner of a file descriptor (-1 = none). */
class UniqueFd
{
  public:
    UniqueFd() = default;
    explicit UniqueFd(int fd) : fd_(fd) {}
    ~UniqueFd() { reset(); }

    UniqueFd(const UniqueFd &) = delete;
    UniqueFd &operator=(const UniqueFd &) = delete;

    UniqueFd(UniqueFd &&o) noexcept : fd_(std::exchange(o.fd_, -1)) {}

    UniqueFd &
    operator=(UniqueFd &&o) noexcept
    {
        if (this != &o) {
            reset();
            fd_ = std::exchange(o.fd_, -1);
        }
        return *this;
    }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    explicit operator bool() const { return valid(); }

    /** Close now (idempotent). */
    void reset(int fd = -1);

    /** Give up ownership without closing. */
    int
    release()
    {
        return std::exchange(fd_, -1);
    }

  private:
    int fd_ = -1;
};

/** Set O_NONBLOCK on @p fd; returns false on fcntl failure. */
bool setNonBlocking(int fd);

} // namespace rog

#endif // ROG_COMMON_FD_HPP
