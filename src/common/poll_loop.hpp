/**
 * @file
 * Single-threaded poll(2) event loop with one-shot timers.
 *
 * The real-socket transport backends are written in exactly the style
 * of the simulator — callbacks fired from one dispatch loop, never a
 * thread — so the protocol core cannot tell the two apart. PollLoop is
 * that dispatch loop: registered fds fire readiness handlers, timers
 * fire in deadline order off the monotonic clock, and run() interleaves
 * the two until told to stop. Both ends of a loopback test can share
 * one loop in one process; the daemon runs one per process.
 *
 * Long-lived daemons additionally need the loop to survive the ugly
 * parts of poll(2): an interrupted wait (EINTR — signals are routine
 * under a chaos supervisor) is treated as a timeout, never an error;
 * POLLERR/POLLHUP are delivered to the handler like any readiness so
 * a connection handler can drain-and-close; an fd that turns invalid
 * under the loop (POLLNVAL — closed without unwatch) is dropped
 * immediately; and an fd that reports *only* error bits repeatedly
 * while its handler leaves the registration untouched is force-
 * unwatched after a bounded number of strikes, so a handler bug can
 * degrade a connection but never spin the daemon at 100% CPU.
 */
#ifndef ROG_COMMON_POLL_LOOP_HPP
#define ROG_COMMON_POLL_LOOP_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/monotonic_clock.hpp"

namespace rog {

/** poll(2)-driven fd + timer dispatcher (single thread). */
class PollLoop
{
  public:
    /** @p revents is the poll(2) result mask for the fd. */
    using FdHandler = std::function<void(short revents)>;
    using TimerHandle = std::uint64_t; //!< 0 = invalid.

    PollLoop() = default;

    /** Consecutive error-only wakeups before an fd whose handler
     *  never reacts is force-unwatched (anti-spin backstop). */
    static constexpr int kMaxErrorStrikes = 8;

    /** Watch @p fd for @p events (POLLIN/POLLOUT); replaces any prior
     *  registration of the same fd. */
    void watch(int fd, short events, FdHandler handler);

    /** Stop watching @p fd (safe from inside its own handler). */
    void unwatch(int fd);

    /** True while @p fd is registered. */
    bool watching(int fd) const { return fds_.count(fd) != 0; }

    /** Fire @p fn once, @p delay_s seconds from now. */
    TimerHandle after(double delay_s, std::function<void()> fn);

    /** Cancel a pending timer; no-op if fired or invalid. */
    void cancel(TimerHandle id);

    /** Monotonic seconds since loop construction. */
    double now() const { return clock_.now(); }

    /**
     * Dispatch ready fds and due timers once, sleeping at most
     * @p max_wait_s. Returns false when there is nothing left to wait
     * for (no fds, no timers).
     */
    bool step(double max_wait_s);

    /**
     * Dispatch until @p done() returns true or @p max_wall_s elapses.
     * @return true when @p done was reached in time.
     */
    bool runUntil(const std::function<bool()> &done, double max_wall_s);

  private:
    struct Timer
    {
        double deadline = 0.0;
        std::function<void()> fn;
    };

    void fireDueTimers();
    double nextTimerDelay() const;

    MonotonicClock clock_;
    std::map<int, FdHandler> fds_;
    std::map<TimerHandle, Timer> timers_;
    TimerHandle next_timer_ = 1;
    std::map<int, short> fd_events_;
    std::map<int, int> error_strikes_; //!< consecutive error-only wakes.
};

} // namespace rog

#endif // ROG_COMMON_POLL_LOOP_HPP
