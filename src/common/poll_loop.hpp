/**
 * @file
 * Single-threaded poll(2) event loop with one-shot timers.
 *
 * The real-socket transport backends are written in exactly the style
 * of the simulator — callbacks fired from one dispatch loop, never a
 * thread — so the protocol core cannot tell the two apart. PollLoop is
 * that dispatch loop: registered fds fire readiness handlers, timers
 * fire in deadline order off the monotonic clock, and run() interleaves
 * the two until told to stop. Both ends of a loopback test can share
 * one loop in one process; the daemon runs one per process.
 */
#ifndef ROG_COMMON_POLL_LOOP_HPP
#define ROG_COMMON_POLL_LOOP_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/monotonic_clock.hpp"

namespace rog {

/** poll(2)-driven fd + timer dispatcher (single thread). */
class PollLoop
{
  public:
    /** @p revents is the poll(2) result mask for the fd. */
    using FdHandler = std::function<void(short revents)>;
    using TimerHandle = std::uint64_t; //!< 0 = invalid.

    PollLoop() = default;

    /** Watch @p fd for @p events (POLLIN/POLLOUT); replaces any prior
     *  registration of the same fd. */
    void watch(int fd, short events, FdHandler handler);

    /** Stop watching @p fd (safe from inside its own handler). */
    void unwatch(int fd);

    /** Fire @p fn once, @p delay_s seconds from now. */
    TimerHandle after(double delay_s, std::function<void()> fn);

    /** Cancel a pending timer; no-op if fired or invalid. */
    void cancel(TimerHandle id);

    /** Monotonic seconds since loop construction. */
    double now() const { return clock_.now(); }

    /**
     * Dispatch ready fds and due timers once, sleeping at most
     * @p max_wait_s. Returns false when there is nothing left to wait
     * for (no fds, no timers).
     */
    bool step(double max_wait_s);

    /**
     * Dispatch until @p done() returns true or @p max_wall_s elapses.
     * @return true when @p done was reached in time.
     */
    bool runUntil(const std::function<bool()> &done, double max_wall_s);

  private:
    struct Timer
    {
        double deadline = 0.0;
        std::function<void()> fn;
    };

    void fireDueTimers();
    double nextTimerDelay() const;

    MonotonicClock clock_;
    std::map<int, FdHandler> fds_;
    std::map<TimerHandle, Timer> timers_;
    TimerHandle next_timer_ = 1;
    std::map<int, short> fd_events_;
};

} // namespace rog

#endif // ROG_COMMON_POLL_LOOP_HPP
