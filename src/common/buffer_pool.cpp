#include "common/buffer_pool.hpp"

#include <cstdlib>

namespace rog {

namespace {

/** Parse a non-negative size from @p env; @p fallback if unset/bad. */
std::size_t
envSize(const char *env, std::size_t fallback)
{
    const char *raw = std::getenv(env);
    if (raw == nullptr || *raw == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0')
        return fallback;
    return static_cast<std::size_t>(v);
}

} // namespace

template <typename T>
BufferPool::Lease<T>
BufferPool::leaseFrom(SubPool<T> &sub, std::size_t n)
{
    std::vector<T> buf;
    {
        std::lock_guard<std::mutex> lock(sub.mu);
        ++sub.stats.leases;
        ++sub.stats.outstanding;
        if (sub.stats.outstanding > sub.stats.peak_outstanding)
            sub.stats.peak_outstanding = sub.stats.outstanding;
        if (!sub.free.empty()) {
            // Largest-capacity buffer last: take it to minimize the
            // chance the resize below has to reallocate.
            buf = std::move(sub.free.back());
            sub.free.pop_back();
            sub.stats.resident_bytes -= buf.capacity() * sizeof(T);
            ++sub.stats.reuses;
        } else {
            ++sub.stats.allocations;
        }
    }
    buf.resize(n);
    return Lease<T>(this, std::move(buf));
}

template <typename T>
void
BufferPool::giveTo(SubPool<T> &sub, std::vector<T> buf)
{
    std::lock_guard<std::mutex> lock(sub.mu);
    if (sub.stats.outstanding > 0)
        --sub.stats.outstanding;
    if (buf.capacity() == 0)
        return; // moved-from husk, nothing to recycle.
    if (buf.capacity() * sizeof(T) > max_pooled_bytes_ ||
        sub.free.size() >= max_free_buffers_) {
        ++sub.stats.dropped;
        return; // freed by ~buf.
    }
    sub.stats.resident_bytes += buf.capacity() * sizeof(T);
    // Keep the free list sorted by capacity so leaseFrom() always
    // grabs the biggest buffer (fewest regrows).
    auto it = sub.free.begin();
    while (it != sub.free.end() && it->capacity() <= buf.capacity())
        ++it;
    sub.free.insert(it, std::move(buf));
}

BufferPool::Lease<std::uint8_t>
BufferPool::leaseBytes(std::size_t n)
{
    return leaseFrom(bytes_, n);
}

BufferPool::Lease<float>
BufferPool::leaseFloats(std::size_t n)
{
    return leaseFrom(floats_, n);
}

BufferPool::Lease<std::size_t>
BufferPool::leaseIndices(std::size_t n)
{
    return leaseFrom(indices_, n);
}

void
BufferPool::give(std::vector<std::uint8_t> buf)
{
    giveTo(bytes_, std::move(buf));
}

void
BufferPool::give(std::vector<float> buf)
{
    giveTo(floats_, std::move(buf));
}

void
BufferPool::give(std::vector<std::size_t> buf)
{
    giveTo(indices_, std::move(buf));
}

BufferPool::Stats
BufferPool::stats() const
{
    Stats total;
    auto add = [&total](const auto &sub) {
        std::lock_guard<std::mutex> lock(sub.mu);
        total.leases += sub.stats.leases;
        total.reuses += sub.stats.reuses;
        total.allocations += sub.stats.allocations;
        total.dropped += sub.stats.dropped;
        total.outstanding += sub.stats.outstanding;
        total.peak_outstanding += sub.stats.peak_outstanding;
        total.resident_bytes += sub.stats.resident_bytes;
    };
    add(bytes_);
    add(floats_);
    add(indices_);
    return total;
}

void
BufferPool::setCaps(std::size_t max_bytes, std::size_t max_buffers)
{
    max_pooled_bytes_ = max_bytes;
    max_free_buffers_ = max_buffers;
}

BufferPool &
BufferPool::global()
{
    // Leaked on purpose (like ThreadPool::global()): leases may be
    // returned from static destructors in arbitrary order.
    static BufferPool *pool = [] {
        auto *p = new BufferPool();
        p->setCaps(envSize("ROG_POOL_MAX_BYTES", kMaxPooledCapacity),
                   envSize("ROG_POOL_MAX_BUFFERS", kMaxFreeBuffers));
        return p;
    }();
    return *pool;
}

} // namespace rog
