/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user errors that
 * make continuing impossible (bad configuration, invalid arguments),
 * warn()/inform() are non-fatal status messages.
 */
#ifndef ROG_COMMON_LOGGING_HPP
#define ROG_COMMON_LOGGING_HPP

#include <sstream>
#include <string>
#include <string_view>

namespace rog {

/** Verbosity levels for non-fatal messages. */
enum class LogLevel { Silent, Warn, Inform, Debug };

/** Set the global verbosity threshold (default: Warn). */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(std::string_view file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(std::string_view file, int line,
                            const std::string &msg);
void logImpl(LogLevel level, std::string_view tag, const std::string &msg);

/** Concatenate any streamable arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Abort with a message: something that should never happen happened. */
#define ROG_PANIC(...) \
    ::rog::detail::panicImpl(__FILE__, __LINE__, \
                             ::rog::detail::concat(__VA_ARGS__))

/** Exit with a message: the user asked for something impossible. */
#define ROG_FATAL(...) \
    ::rog::detail::fatalImpl(__FILE__, __LINE__, \
                             ::rog::detail::concat(__VA_ARGS__))

/** Panic unless a library invariant holds. */
#define ROG_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::rog::detail::panicImpl(__FILE__, __LINE__, \
                ::rog::detail::concat("assertion failed: " #cond " ", \
                                      ##__VA_ARGS__)); \
        } \
    } while (0)

/** Non-fatal warning about questionable behaviour. */
#define ROG_WARN(...) \
    ::rog::detail::logImpl(::rog::LogLevel::Warn, "warn", \
                           ::rog::detail::concat(__VA_ARGS__))

/** Informational status message. */
#define ROG_INFORM(...) \
    ::rog::detail::logImpl(::rog::LogLevel::Inform, "info", \
                           ::rog::detail::concat(__VA_ARGS__))

/** Verbose debugging message. */
#define ROG_DEBUG(...) \
    ::rog::detail::logImpl(::rog::LogLevel::Debug, "debug", \
                           ::rog::detail::concat(__VA_ARGS__))

} // namespace rog

#endif // ROG_COMMON_LOGGING_HPP
