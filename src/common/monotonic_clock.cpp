#include "common/monotonic_clock.hpp"

#include <ctime>

namespace rog {

namespace {

std::int64_t
monotonicNs()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::int64_t>(ts.tv_sec) * 1000000000ll +
           static_cast<std::int64_t>(ts.tv_nsec);
}

} // namespace

MonotonicClock::MonotonicClock() : epoch_ns_(monotonicNs()) {}

double
MonotonicClock::now() const
{
    return static_cast<double>(monotonicNs() - epoch_ns_) * 1e-9;
}

} // namespace rog
