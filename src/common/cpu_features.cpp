#include "common/cpu_features.hpp"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace rog {
namespace cpu {

namespace {

bool
detectAvx2Fma()
{
#if defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
#else
    return false;
#endif
#else
    return false;
#endif
}

bool
detectAvx512f()
{
#if defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_cpu_supports("avx512f");
#else
    return false;
#endif
#else
    return false;
#endif
}

bool
detectCrc32c()
{
#if defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_cpu_supports("sse4.2");
#else
    return false;
#endif
#elif defined(__aarch64__)
#if defined(__ARM_FEATURE_CRC32)
    // Baked into the target baseline: no runtime probe needed.
    return true;
#elif defined(__linux__)
    return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#else
    return false;
#endif
#else
    return false;
#endif
}

} // namespace

bool
hasCrc32c()
{
    static const bool has = detectCrc32c();
    return has;
}

bool
hasAvx2Fma()
{
    static const bool has = detectAvx2Fma();
    return has;
}

bool
hasAvx512f()
{
    static const bool has = detectAvx512f();
    return has;
}

bool
hasNeon()
{
#if defined(__aarch64__)
    // ASIMD is architecturally mandatory on aarch64.
    return true;
#else
    return false;
#endif
}

const char *
simdIsa()
{
    if (hasAvx512f())
        return "avx512f";
    if (hasAvx2Fma())
        return "avx2+fma";
    if (hasNeon())
        return "neon";
    return "none";
}

const char *
crc32cIsa()
{
    if (!hasCrc32c())
        return "none";
#if defined(__x86_64__) || defined(__i386__)
    return "sse4.2";
#elif defined(__aarch64__)
    return "armv8-crc";
#else
    return "none";
#endif
}

} // namespace cpu
} // namespace rog
