#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/logging.hpp"

namespace rog {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns))
{
    ROG_ASSERT(!columns_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    ROG_ASSERT(cells.size() == columns_.size(),
               "row width ", cells.size(), " != header width ",
               columns_.size(), " in table '", title_, "'");
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
Table::printText(std::ostream &os) const
{
    std::vector<std::size_t> width(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
        width[c] = columns_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto rule = [&] {
        os << '+';
        for (auto w : width)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << ' ' << std::setw(static_cast<int>(width[c])) << std::left
               << cells[c] << " |";
        os << '\n';
    };

    os << "== " << title_ << " ==\n";
    rule();
    line(columns_);
    rule();
    for (const auto &row : rows_)
        line(row);
    rule();
}

void
Table::printCsv(std::ostream &os) const
{
    os << "# " << title_ << '\n';
    for (std::size_t c = 0; c < columns_.size(); ++c)
        os << columns_[c] << (c + 1 < columns_.size() ? "," : "\n");
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 < row.size() ? "," : "\n");
}

SeriesSet::SeriesSet(std::string title, std::string x_name,
                     std::string y_name)
    : title_(std::move(title)), x_name_(std::move(x_name)),
      y_name_(std::move(y_name))
{
}

SeriesSet::Series *
SeriesSet::find(const std::string &name)
{
    for (auto &s : series_)
        if (s.name == name)
            return &s;
    return nullptr;
}

const SeriesSet::Series *
SeriesSet::find(const std::string &name) const
{
    for (const auto &s : series_)
        if (s.name == name)
            return &s;
    return nullptr;
}

void
SeriesSet::add(const std::string &series, double x, double y)
{
    Series *s = find(series);
    if (!s) {
        series_.push_back({series, {}});
        s = &series_.back();
    }
    s->pts.push_back({x, y});
}

void
SeriesSet::printCsv(std::ostream &os) const
{
    os << "# " << title_ << '\n';
    os << "series," << x_name_ << ',' << y_name_ << '\n';
    for (const auto &s : series_)
        for (const auto &p : s.pts)
            os << s.name << ',' << p.x << ',' << p.y << '\n';
}

void
SeriesSet::printSummary(std::ostream &os) const
{
    Table t(title_ + " (sampled)",
            {"series", x_name_ + "[0]", "y[0]", x_name_ + "[1/2]", "y[1/2]",
             x_name_ + "[end]", "y[end]"});
    for (const auto &s : series_) {
        if (s.pts.empty())
            continue;
        const auto &a = s.pts.front();
        const auto &m = s.pts[s.pts.size() / 2];
        const auto &z = s.pts.back();
        t.addRow({s.name, Table::num(a.x, 1), Table::num(a.y),
                  Table::num(m.x, 1), Table::num(m.y), Table::num(z.x, 1),
                  Table::num(z.y)});
    }
    t.printText(os);
}

double
SeriesSet::finalValue(const std::string &series) const
{
    const Series *s = find(series);
    if (!s || s->pts.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return s->pts.back().y;
}

} // namespace rog
