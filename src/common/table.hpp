/**
 * @file
 * Text table and CSV emission for benchmark output.
 *
 * Every bench binary prints (a) a human-readable aligned table mirroring
 * the paper's table/figure rows, and (b) the same data as CSV so plots
 * can be regenerated. Table collects rows of heterogeneous cells and
 * renders both forms.
 */
#ifndef ROG_COMMON_TABLE_HPP
#define ROG_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace rog {

/** An aligned text / CSV table with a fixed column header. */
class Table
{
  public:
    /** Construct with a title and column names. */
    Table(std::string title, std::vector<std::string> columns);

    /** Append a row of preformatted cells. @pre cells match columns */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision (helper for rows). */
    static std::string num(double v, int precision = 3);

    /** Render as an aligned, boxed text table. */
    void printText(std::ostream &os) const;

    /** Render as CSV (header + rows), prefixed by "# <title>". */
    void printCsv(std::ostream &os) const;

    const std::string &title() const { return title_; }
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * A named series of (x, y) points — one curve in a paper figure.
 * Rendered as long-form CSV: series,x,y.
 */
class SeriesSet
{
  public:
    /** Construct with a title and the x / y axis names. */
    SeriesSet(std::string title, std::string x_name, std::string y_name);

    /** Append a point to the named series. */
    void add(const std::string &series, double x, double y);

    /** Render long-form CSV with a "# <title>" prefix. */
    void printCsv(std::ostream &os) const;

    /**
     * Render a compact text summary: for each series, the y value at a
     * few evenly spaced x positions (first/quarter/half/threequarter/
     * last sample), so the curve shape is visible in a terminal.
     */
    void printSummary(std::ostream &os) const;

    /** Last y value of the named series, or NaN if absent. */
    double finalValue(const std::string &series) const;

  private:
    struct Point { double x; double y; };
    struct Series { std::string name; std::vector<Point> pts; };

    Series *find(const std::string &name);
    const Series *find(const std::string &name) const;

    std::string title_;
    std::string x_name_;
    std::string y_name_;
    std::vector<Series> series_;
};

} // namespace rog

#endif // ROG_COMMON_TABLE_HPP
