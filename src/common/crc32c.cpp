#include "common/crc32c.hpp"

#include <array>

#include "common/cpu_features.hpp"
#include "common/logging.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define ROG_CRC32C_X86 1
#elif defined(__aarch64__) && (defined(__ARM_FEATURE_CRC32) || \
                               defined(__GNUC__) || defined(__clang__))
#include <arm_acle.h>
#define ROG_CRC32C_ARM 1
#endif

namespace rog {

namespace {

// Reflected CRC32C polynomial (0x1EDC6F41 bit-reversed).
constexpr std::uint32_t kPoly = 0x82F63B78u;

/**
 * Slicing tables: kTables[0] is the classic byte-at-a-time table;
 * kTables[k][b] is the CRC of byte b followed by k zero bytes, so
 * eight lookups — one per table — advance the CRC across a whole
 * 64-bit word at once (Intel's "slicing-by-8").
 */
constexpr std::array<std::array<std::uint32_t, 256>, 8>
makeTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ (kPoly & (0u - (crc & 1u)));
        t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
        for (std::size_t k = 1; k < 8; ++k)
            t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    return t;
}

constexpr auto kTables = makeTables();
constexpr const auto &kTable = kTables[0];

/** Little-endian load of 8 bytes (compiles to one mov on LE targets). */
inline std::uint64_t
load64le(const std::uint8_t *p)
{
    std::uint64_t w = 0;
    for (int i = 0; i < 8; ++i)
        w |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return w;
}

#if defined(ROG_CRC32C_X86)

__attribute__((target("sse4.2"))) std::uint32_t
crc32cHwImpl(const std::uint8_t *p, std::size_t n, std::uint32_t crc)
{
#if defined(__x86_64__)
    std::uint64_t c = crc;
    while (n >= 8) {
        c = _mm_crc32_u64(c, load64le(p));
        p += 8;
        n -= 8;
    }
    crc = static_cast<std::uint32_t>(c);
#else
    while (n >= 4) {
        std::uint32_t w = 0;
        for (int i = 0; i < 4; ++i)
            w |= static_cast<std::uint32_t>(p[i]) << (8 * i);
        crc = _mm_crc32_u32(crc, w);
        p += 4;
        n -= 4;
    }
#endif
    while (n--)
        crc = _mm_crc32_u8(crc, *p++);
    return crc;
}

#elif defined(ROG_CRC32C_ARM)

#if !defined(__ARM_FEATURE_CRC32)
__attribute__((target("+crc")))
#endif
std::uint32_t
crc32cHwImpl(const std::uint8_t *p, std::size_t n, std::uint32_t crc)
{
    while (n >= 8) {
        crc = __crc32cd(crc, load64le(p));
        p += 8;
        n -= 8;
    }
    while (n--)
        crc = __crc32cb(crc, *p++);
    return crc;
}

#endif

std::uint32_t
crc32cSlice8Impl(const std::uint8_t *p, std::size_t n, std::uint32_t crc)
{
    while (n >= 8) {
        const std::uint64_t w =
            load64le(p) ^ static_cast<std::uint64_t>(crc);
        const auto lo = static_cast<std::uint32_t>(w);
        const auto hi = static_cast<std::uint32_t>(w >> 32);
        crc = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
              kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
              kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
              kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
        p += 8;
        n -= 8;
    }
    while (n--)
        crc = (crc >> 8) ^ kTable[(crc ^ *p++) & 0xFFu];
    return crc;
}

using CrcFn = std::uint32_t (*)(const std::uint8_t *, std::size_t,
                                std::uint32_t);

/** One-time dispatch: resolved on first use, cached for the process. */
CrcFn
activeFn()
{
    static const CrcFn fn = [] {
#if defined(ROG_CRC32C_X86) || defined(ROG_CRC32C_ARM)
        if (cpu::hasCrc32c())
            return static_cast<CrcFn>(crc32cHwImpl);
#endif
        return static_cast<CrcFn>(crc32cSlice8Impl);
    }();
    return fn;
}

} // namespace

std::uint32_t
crc32c(std::span<const std::uint8_t> data, std::uint32_t seed)
{
    return ~activeFn()(data.data(), data.size(), ~seed);
}

std::uint32_t
crc32cRef(std::span<const std::uint8_t> data, std::uint32_t seed)
{
    std::uint32_t crc = ~seed;
    for (std::uint8_t byte : data)
        crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFFu];
    return ~crc;
}

std::uint32_t
crc32cSlice8(std::span<const std::uint8_t> data, std::uint32_t seed)
{
    return ~crc32cSlice8Impl(data.data(), data.size(), ~seed);
}

bool
crc32cHwAvailable()
{
#if defined(ROG_CRC32C_X86) || defined(ROG_CRC32C_ARM)
    return cpu::hasCrc32c();
#else
    return false;
#endif
}

std::uint32_t
crc32cHw(std::span<const std::uint8_t> data, std::uint32_t seed)
{
#if defined(ROG_CRC32C_X86) || defined(ROG_CRC32C_ARM)
    ROG_ASSERT(crc32cHwAvailable(),
               "crc32cHw called without hardware support");
    return ~crc32cHwImpl(data.data(), data.size(), ~seed);
#else
    (void)data;
    (void)seed;
    ROG_PANIC("crc32cHw called on a build without a hardware tier");
#endif
}

const char *
crc32cActiveTier()
{
    return crc32cHwAvailable() ? "hw" : "slice8";
}

} // namespace rog
