#include "common/crc32c.hpp"

#include <array>

namespace rog {

namespace {

// Reflected CRC32C polynomial (0x1EDC6F41 bit-reversed).
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ (kPoly & (0u - (crc & 1u)));
        table[i] = crc;
    }
    return table;
}

constexpr auto kTable = makeTable();

} // namespace

std::uint32_t
crc32c(std::span<const std::uint8_t> data, std::uint32_t seed)
{
    std::uint32_t crc = ~seed;
    for (std::uint8_t byte : data)
        crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFFu];
    return ~crc;
}

} // namespace rog
