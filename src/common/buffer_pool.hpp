/**
 * @file
 * Leased-buffer pool for the gradient wire path.
 *
 * Every message the transport sends used to allocate fresh vectors —
 * frame headers, chunk payload scratch, reassembly buffers — and the
 * codec kept per-thread scratch that grew to the largest row ever seen
 * and never shrank. BufferPool replaces both patterns with leases:
 * callers borrow a buffer of at least the requested size, use it, and
 * the RAII lease recycles it on destruction. After a short warm-up the
 * steady state allocates nothing per message, and scratch memory is
 * bounded by the pool's caps instead of by the high-water mark of
 * every thread separately.
 *
 * Design points:
 *
 *  - Typed sub-pools (bytes / floats / indices) with one mutex each;
 *    a lease or return is one lock + one vector move. The lock is
 *    orders of magnitude cheaper than the malloc/free pair it
 *    replaces, and leases are thread-safe so pool buffers can feed
 *    parallelFor regions directly.
 *  - Buffers whose capacity exceeds kMaxPooledCapacity bytes are
 *    dropped on return instead of cached (the cap that thread_local
 *    scratch lacked); at most kMaxFreeBuffers recycle per sub-pool.
 *  - Occupancy stats (leases / reuse hits / allocations / outstanding
 *    peak / resident bytes) are cheap counters, snapshot-able for the
 *    engine's run accounting and the wire bench.
 *
 * Determinism: the pool only changes *where* scratch memory comes
 * from, never its contents — a leased buffer is sized (not zeroed) by
 * the caller exactly as the vectors it replaces were, so every kernel
 * output stays bitwise identical to the allocation-heavy path.
 */
#ifndef ROG_COMMON_BUFFER_POOL_HPP
#define ROG_COMMON_BUFFER_POOL_HPP

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace rog {

/** Reusable buffer arena with RAII leases and occupancy stats. */
class BufferPool
{
  public:
    /** Default cap: returned buffers above this capacity (in bytes)
     *  are freed, not pooled — one huge row must not pin the pool's
     *  high-water mark. Override per instance with setCaps() or, for
     *  the global() pool, with the ROG_POOL_MAX_BYTES env var. */
    static constexpr std::size_t kMaxPooledCapacity = 4u << 20;

    /** Default free-list depth per sub-pool; ROG_POOL_MAX_BUFFERS
     *  overrides it for the global() pool. */
    static constexpr std::size_t kMaxFreeBuffers = 64;

    /** Point-in-time occupancy counters (monotonic unless noted). */
    struct Stats
    {
        std::size_t leases = 0;      //!< lease() calls served.
        std::size_t reuses = 0;      //!< served from a free list.
        std::size_t allocations = 0; //!< served by a fresh allocation.
        std::size_t dropped = 0;     //!< returns freed by the caps.
        std::size_t outstanding = 0; //!< live leases now (not monotonic).
        std::size_t peak_outstanding = 0; //!< high-water live leases.
        std::size_t resident_bytes = 0;   //!< free-list bytes now.

        /** Fraction of leases served without allocating. */
        double
        hitRate() const
        {
            return leases == 0
                       ? 0.0
                       : static_cast<double>(reuses) /
                             static_cast<double>(leases);
        }
    };

    /**
     * RAII lease of a T-buffer with size() == the requested count.
     * Movable, not copyable; returns the buffer to its pool on
     * destruction. The contents start unspecified (like a resized
     * vector's tail) — callers overwrite before reading, exactly as
     * they did with their own scratch vectors.
     */
    template <typename T> class Lease
    {
      public:
        Lease() = default;
        Lease(BufferPool *pool, std::vector<T> buf)
            : pool_(pool), buf_(std::move(buf))
        {
        }
        Lease(Lease &&o) noexcept
            : pool_(o.pool_), buf_(std::move(o.buf_))
        {
            o.pool_ = nullptr;
        }
        Lease &
        operator=(Lease &&o) noexcept
        {
            if (this != &o) {
                release();
                pool_ = o.pool_;
                buf_ = std::move(o.buf_);
                o.pool_ = nullptr;
            }
            return *this;
        }
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        ~Lease() { release(); }

        T *data() { return buf_.data(); }
        const T *data() const { return buf_.data(); }
        std::size_t size() const { return buf_.size(); }
        bool empty() const { return buf_.empty(); }
        std::span<T> span() { return {buf_.data(), buf_.size()}; }
        std::span<const T>
        span() const
        {
            return {buf_.data(), buf_.size()};
        }
        T &operator[](std::size_t i) { return buf_[i]; }
        const T &operator[](std::size_t i) const { return buf_[i]; }

        /** Hand the buffer back early (the lease becomes empty). */
        void
        release()
        {
            if (pool_ != nullptr)
                pool_->give(std::move(buf_));
            pool_ = nullptr;
            buf_ = {};
        }

      private:
        BufferPool *pool_ = nullptr;
        std::vector<T> buf_;
    };

    BufferPool() = default;
    BufferPool(const BufferPool &) = delete;
    BufferPool &operator=(const BufferPool &) = delete;

    /** Lease @p n bytes of payload/frame scratch. */
    Lease<std::uint8_t> leaseBytes(std::size_t n);

    /** Lease @p n floats of codec scratch. */
    Lease<float> leaseFloats(std::size_t n);

    /** Lease @p n indices (top-k selection scratch). */
    Lease<std::size_t> leaseIndices(std::size_t n);

    /** Snapshot the occupancy counters (aggregated over sub-pools). */
    Stats stats() const;

    /**
     * Reconfigure the drop bounds: returned buffers above
     * @p max_bytes capacity are freed instead of pooled, and at most
     * @p max_buffers recycle per sub-pool (0 disables pooling
     * entirely). Applies to future returns; already-pooled buffers
     * stay until leased.
     */
    void setCaps(std::size_t max_bytes, std::size_t max_buffers);

    std::size_t maxPooledCapacity() const { return max_pooled_bytes_; }
    std::size_t maxFreeBuffers() const { return max_free_buffers_; }

    /**
     * The process-wide pool the codec and transport share. Lives until
     * process exit. Its drop bounds honor the ROG_POOL_MAX_BYTES and
     * ROG_POOL_MAX_BUFFERS environment variables, read once at first
     * use.
     */
    static BufferPool &global();

  private:
    template <typename T> struct SubPool
    {
        mutable std::mutex mu;
        std::vector<std::vector<T>> free;
        Stats stats;
    };

    template <typename T>
    Lease<T> leaseFrom(SubPool<T> &sub, std::size_t n);
    template <typename T> void giveTo(SubPool<T> &sub, std::vector<T> buf);

    void give(std::vector<std::uint8_t> buf);
    void give(std::vector<float> buf);
    void give(std::vector<std::size_t> buf);

    SubPool<std::uint8_t> bytes_;
    SubPool<float> floats_;
    SubPool<std::size_t> indices_;
    std::size_t max_pooled_bytes_ = kMaxPooledCapacity;
    std::size_t max_free_buffers_ = kMaxFreeBuffers;
};

} // namespace rog

#endif // ROG_COMMON_BUFFER_POOL_HPP
