#include "common/fd.hpp"

#include <fcntl.h>
#include <unistd.h>

namespace rog {

void
UniqueFd::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

} // namespace rog
