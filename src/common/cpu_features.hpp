/**
 * @file
 * One-time runtime CPU feature detection for the dispatched kernels.
 *
 * The wire-path kernels (common/crc32c) and the GEMM microkernels
 * (tensor/gemm) pick their fastest implementation once per process:
 * the first query probes the CPU and every later call reads a cached
 * answer. Detection is deliberately conservative — anything the probe
 * cannot positively confirm is reported absent, and the caller falls
 * back to the portable software tier, so a wrong answer can cost speed
 * but never correctness.
 */
#ifndef ROG_COMMON_CPU_FEATURES_HPP
#define ROG_COMMON_CPU_FEATURES_HPP

namespace rog {
namespace cpu {

/**
 * True when the CPU exposes a hardware CRC32C instruction this build
 * can execute: SSE4.2 `crc32` on x86-64, the ARMv8 CRC32 extension
 * (`crc32cx`) on aarch64. Detected once; later calls are a load.
 */
bool hasCrc32c();

/** Short human-readable summary ("sse4.2", "armv8-crc", "none") for
 *  logs and bench metadata. */
const char *crc32cIsa();

/** True when the CPU supports AVX2 *and* FMA3 (the GEMM microkernel
 *  needs both). Detected once; later calls are a load. */
bool hasAvx2Fma();

/** True when the CPU supports AVX-512F (implies 512-bit FMA). */
bool hasAvx512f();

/** True when the CPU supports NEON/ASIMD (always true on aarch64). */
bool hasNeon();

/** Short summary of the widest SIMD tier available to the GEMM
 *  dispatch ("avx512f", "avx2+fma", "neon", "none"). */
const char *simdIsa();

} // namespace cpu
} // namespace rog

#endif // ROG_COMMON_CPU_FEATURES_HPP
