#include "common/rng.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace rog {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    ROG_ASSERT(n > 0, "uniformInt needs n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::gaussian()
{
    if (has_cached_gauss_) {
        has_cached_gauss_ = false;
        return cached_gauss_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::exponential(double rate)
{
    ROG_ASSERT(rate > 0.0, "exponential needs rate > 0");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

double
Rng::gamma(double shape)
{
    ROG_ASSERT(shape > 0.0, "gamma needs shape > 0");
    if (shape < 1.0) {
        // Boost to shape >= 1 (Marsaglia-Tsang trick).
        const double u = uniform();
        return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x = gaussian();
        double v = 1.0 + c * x;
        if (v <= 0.0)
            continue;
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (u > 0.0 &&
            std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
            return d * v;
        }
    }
}

std::vector<double>
Rng::dirichlet(std::size_t dim, double alpha)
{
    ROG_ASSERT(dim > 0 && alpha > 0.0, "dirichlet needs dim>0, alpha>0");
    std::vector<double> out(dim);
    double sum = 0.0;
    for (auto &v : out) {
        v = gamma(alpha);
        sum += v;
    }
    if (sum <= 0.0) {
        // Degenerate draw (all zeros): fall back to uniform weights.
        for (auto &v : out)
            v = 1.0 / static_cast<double>(dim);
        return out;
    }
    for (auto &v : out)
        v /= sum;
    return out;
}

void
Rng::shuffle(std::vector<std::size_t> &v)
{
    for (std::size_t i = v.size(); i > 1; --i)
        std::swap(v[i - 1], v[uniformInt(i)]);
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace rog
