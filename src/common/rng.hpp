/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (datasets, bandwidth traces,
 * minibatch sampling) draw from an explicitly seeded Rng so that every
 * experiment is exactly reproducible. The core generator is
 * xoshiro256** which is fast, high quality, and has a tiny state that
 * can be cheaply forked into independent streams.
 */
#ifndef ROG_COMMON_RNG_HPP
#define ROG_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

namespace rog {

/**
 * Seeded xoshiro256** generator with convenience distributions.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also feed
 * <random> distributions, but the built-in helpers are preferred for
 * cross-platform determinism (libstdc++/libc++ distributions differ).
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }
    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ull; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal via Box-Muller (cached pair). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Exponential with the given rate (lambda). @pre rate > 0 */
    double exponential(double rate);

    /**
     * A point from a symmetric Dirichlet distribution of the given
     * dimension and concentration alpha; used for non-IID data
     * partitioning. @pre dim > 0 && alpha > 0
     */
    std::vector<double> dirichlet(std::size_t dim, double alpha);

    /** Fisher-Yates shuffle of an index vector. */
    void shuffle(std::vector<std::size_t> &v);

    /**
     * Fork an independent child stream. The child is seeded from this
     * generator's output so forks are reproducible but decorrelated.
     */
    Rng fork();

  private:
    /** Gamma(shape, 1) sampler (Marsaglia-Tsang). */
    double gamma(double shape);

    std::uint64_t s_[4];
    double cached_gauss_ = 0.0;
    bool has_cached_gauss_ = false;
};

} // namespace rog

#endif // ROG_COMMON_RNG_HPP
