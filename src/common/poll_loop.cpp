#include "common/poll_loop.hpp"

#include <errno.h>
#include <poll.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace rog {

void
PollLoop::watch(int fd, short events, FdHandler handler)
{
    fds_[fd] = std::move(handler);
    fd_events_[fd] = events;
    error_strikes_.erase(fd); // a fresh registration starts clean.
}

void
PollLoop::unwatch(int fd)
{
    fds_.erase(fd);
    fd_events_.erase(fd);
    error_strikes_.erase(fd);
}

PollLoop::TimerHandle
PollLoop::after(double delay_s, std::function<void()> fn)
{
    const TimerHandle id = next_timer_++;
    timers_[id] = Timer{now() + std::max(0.0, delay_s), std::move(fn)};
    return id;
}

void
PollLoop::cancel(TimerHandle id)
{
    timers_.erase(id);
}

double
PollLoop::nextTimerDelay() const
{
    double best = std::numeric_limits<double>::infinity();
    for (const auto &[id, t] : timers_)
        best = std::min(best, t.deadline);
    return best - now();
}

void
PollLoop::fireDueTimers()
{
    // Fire strictly due timers, earliest deadline first. Handlers may
    // add or cancel timers, so re-scan after every firing.
    for (;;) {
        const double t = now();
        TimerHandle due = 0;
        double due_deadline = std::numeric_limits<double>::infinity();
        for (const auto &[id, timer] : timers_) {
            if (timer.deadline <= t && timer.deadline < due_deadline) {
                due = id;
                due_deadline = timer.deadline;
            }
        }
        if (due == 0)
            return;
        auto it = timers_.find(due);
        std::function<void()> fn = std::move(it->second.fn);
        timers_.erase(it);
        fn();
    }
}

bool
PollLoop::step(double max_wait_s)
{
    fireDueTimers();
    if (fds_.empty() && timers_.empty())
        return false;

    double wait = max_wait_s;
    if (!timers_.empty())
        wait = std::min(wait, std::max(0.0, nextTimerDelay()));

    std::vector<pollfd> pfds;
    pfds.reserve(fds_.size());
    for (const auto &[fd, handler] : fds_)
        pfds.push_back(pollfd{fd, fd_events_[fd], 0});

    const int timeout_ms = static_cast<int>(
        std::clamp(std::ceil(wait * 1e3), 0.0, 60e3));
    const int n = ::poll(pfds.data(),
                         static_cast<nfds_t>(pfds.size()), timeout_ms);
    // EINTR is routine for a daemon under signals (SIGCHLD from a
    // supervisor, profiling timers): treat it exactly like a timeout
    // and let the next step retry the wait.
    fireDueTimers();
    if (n > 0) {
        for (const auto &p : pfds) {
            if (p.revents == 0) {
                error_strikes_.erase(p.fd);
                continue;
            }
            // Handlers may unwatch or re-watch fds (including their
            // own), erasing or reassigning the map slot mid-call:
            // invoke a copy, never the std::function living in the
            // map.
            auto it = fds_.find(p.fd);
            if (it != fds_.end()) {
                const FdHandler handler = it->second;
                handler(p.revents);
            }

            if (fds_.count(p.fd) == 0)
                continue; // handler (or a peer) dropped it.
            if (p.revents & POLLNVAL) {
                // The fd was closed while still registered; polling it
                // again can only return POLLNVAL forever.
                unwatch(p.fd);
                continue;
            }
            const bool error_only =
                (p.revents & (POLLERR | POLLHUP)) != 0 &&
                (p.revents & (POLLIN | POLLOUT | POLLPRI)) == 0;
            if (!error_only) {
                error_strikes_.erase(p.fd);
                continue;
            }
            // Error-only wakeup the handler left registered: strike.
            // A handler that drains-and-closes never accumulates any;
            // one that ignores the condition is cut off before it can
            // spin the loop hot.
            if (++error_strikes_[p.fd] >= kMaxErrorStrikes)
                unwatch(p.fd);
        }
    }
    return true;
}

bool
PollLoop::runUntil(const std::function<bool()> &done, double max_wall_s)
{
    const double give_up = now() + max_wall_s;
    while (!done()) {
        if (now() >= give_up)
            return false;
        if (!step(std::min(0.05, give_up - now())))
            return done();
    }
    return true;
}

} // namespace rog
