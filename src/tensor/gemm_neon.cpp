/**
 * @file
 * NEON GEMM microkernel: 8 x 8 over the packed panels from gemm.cpp.
 *
 * 8 rows x 2 q-registers = 16 accumulators plus 2 B loads and 2 packed
 * A vectors per k step — 20 of the 32 aarch64 vector registers, with
 * every multiply a lane-indexed vfmaq so no scalar broadcasts hit the
 * datapath. ASIMD is architecturally mandatory on aarch64, so unlike
 * the x86 tiers this kernel needs no runtime probe, only the
 * ROG_GEMM_NATIVE build gate.
 */
#include "tensor/gemm.hpp"

#include "common/cpu_features.hpp"

#if defined(__aarch64__) && defined(ROG_GEMM_NATIVE)
#define ROG_GEMM_NEON 1
#include <arm_neon.h>
#endif

namespace rog {
namespace tensor {
namespace gemm {

#if defined(ROG_GEMM_NEON)

namespace {

void
kernelNeon_8x8(const float *ap, const float *bp, std::size_t kc,
               float *c, std::size_t ldc, bool accumulate)
{
    float32x4_t acc[8][2];
    for (std::size_t r = 0; r < 8; ++r) {
        acc[r][0] = vdupq_n_f32(0.0f);
        acc[r][1] = vdupq_n_f32(0.0f);
    }
    for (std::size_t p = 0; p < kc; ++p) {
        const float32x4_t b0 = vld1q_f32(bp + p * 8);
        const float32x4_t b1 = vld1q_f32(bp + p * 8 + 4);
        const float32x4_t a03 = vld1q_f32(ap + p * 8);
        const float32x4_t a47 = vld1q_f32(ap + p * 8 + 4);
        acc[0][0] = vfmaq_laneq_f32(acc[0][0], b0, a03, 0);
        acc[0][1] = vfmaq_laneq_f32(acc[0][1], b1, a03, 0);
        acc[1][0] = vfmaq_laneq_f32(acc[1][0], b0, a03, 1);
        acc[1][1] = vfmaq_laneq_f32(acc[1][1], b1, a03, 1);
        acc[2][0] = vfmaq_laneq_f32(acc[2][0], b0, a03, 2);
        acc[2][1] = vfmaq_laneq_f32(acc[2][1], b1, a03, 2);
        acc[3][0] = vfmaq_laneq_f32(acc[3][0], b0, a03, 3);
        acc[3][1] = vfmaq_laneq_f32(acc[3][1], b1, a03, 3);
        acc[4][0] = vfmaq_laneq_f32(acc[4][0], b0, a47, 0);
        acc[4][1] = vfmaq_laneq_f32(acc[4][1], b1, a47, 0);
        acc[5][0] = vfmaq_laneq_f32(acc[5][0], b0, a47, 1);
        acc[5][1] = vfmaq_laneq_f32(acc[5][1], b1, a47, 1);
        acc[6][0] = vfmaq_laneq_f32(acc[6][0], b0, a47, 2);
        acc[6][1] = vfmaq_laneq_f32(acc[6][1], b1, a47, 2);
        acc[7][0] = vfmaq_laneq_f32(acc[7][0], b0, a47, 3);
        acc[7][1] = vfmaq_laneq_f32(acc[7][1], b1, a47, 3);
    }
    for (std::size_t r = 0; r < 8; ++r) {
        float *c_row = c + r * ldc;
        float32x4_t lo = acc[r][0];
        float32x4_t hi = acc[r][1];
        if (accumulate) {
            lo = vaddq_f32(vld1q_f32(c_row), lo);
            hi = vaddq_f32(vld1q_f32(c_row + 4), hi);
        }
        vst1q_f32(c_row, lo);
        vst1q_f32(c_row + 4, hi);
    }
}

constexpr MicroKernel kNeonKernel = {8, 8, kernelNeon_8x8};

} // namespace

const MicroKernel *
neonKernel()
{
    return cpu::hasNeon() ? &kNeonKernel : nullptr;
}

#else // !ROG_GEMM_NEON

const MicroKernel *
neonKernel()
{
    return nullptr;
}

#endif

} // namespace gemm
} // namespace tensor
} // namespace rog
