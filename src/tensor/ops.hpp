/**
 * @file
 * Tensor operations used by the neural-network substrate.
 *
 * Free functions over Tensor (and raw spans for per-row work). All
 * shapes are checked with ROG_ASSERT; shape errors are library bugs at
 * call sites, not user errors.
 */
#ifndef ROG_TENSOR_OPS_HPP
#define ROG_TENSOR_OPS_HPP

#include <cstddef>
#include <span>

#include "tensor/tensor.hpp"

namespace rog {
namespace tensor {

/** out = a @ b. Shapes: (m x k) @ (k x n) -> (m x n). */
void matmul(const Tensor &a, const Tensor &b, Tensor &out);

/** out = a^T @ b. Shapes: (k x m)^T @ (k x n) -> (m x n). */
void matmulTransA(const Tensor &a, const Tensor &b, Tensor &out);

/** out = a @ b^T. Shapes: (m x k) @ (n x k)^T -> (m x n). */
void matmulTransB(const Tensor &a, const Tensor &b, Tensor &out);

/** y += alpha * x (elementwise). @pre same shape */
void axpy(float alpha, const Tensor &x, Tensor &y);

/** y = x (elementwise copy). @pre same shape */
void copy(const Tensor &x, Tensor &y);

/** x *= alpha. */
void scale(Tensor &x, float alpha);

/** Add row-vector bias (1 x n) to every row of x (m x n). */
void addRowBias(Tensor &x, const Tensor &bias);

/** out = relu(x). @pre same shape */
void relu(const Tensor &x, Tensor &out);

/** din = dout where x > 0 else 0. @pre same shapes */
void reluBackward(const Tensor &x, const Tensor &dout, Tensor &din);

/** out = tanh(x). @pre same shape */
void tanhForward(const Tensor &x, Tensor &out);

/** din = dout * (1 - out^2), out being tanh(x). @pre same shapes */
void tanhBackward(const Tensor &out, const Tensor &dout, Tensor &din);

/** Row-wise softmax in place. */
void softmaxRows(Tensor &x);

/** Sum of |v| / n over a span; 0 for an empty span. */
float meanAbs(std::span<const float> v);

/** Mean of |x| over a whole tensor. */
float meanAbs(const Tensor &x);

/** Max of |x| over a whole tensor; 0 if empty. */
float maxAbs(const Tensor &x);

/** Frobenius norm. */
float frobeniusNorm(const Tensor &x);

/** Index of the max element of row r. */
std::size_t argmaxRow(const Tensor &x, std::size_t r);

/**
 * Name of the GEMM microkernel tier the matmul entry points dispatch
 * to ("avx512", "avx2", "neon", "packed"). Resolved once per process;
 * overridable with ROG_MATMUL_TIER (see tensor/gemm.hpp).
 */
const char *matmulActiveTier();

/** ISA summary of the active GEMM tier ("avx512f+fma", "avx2+fma",
 *  "neon", "portable") for logs and bench metadata. */
const char *matmulIsa();

/**
 * Scalar reference kernels: the seed library's original triple-loop
 * implementations (ops_ref.cpp, built with default flags). Baseline
 * for the kernel-equivalence tests and the micro benchmarks; never
 * used on the hot path.
 */
namespace ref {

void matmul(const Tensor &a, const Tensor &b, Tensor &out);
void matmulTransA(const Tensor &a, const Tensor &b, Tensor &out);
void matmulTransB(const Tensor &a, const Tensor &b, Tensor &out);

} // namespace ref

/**
 * PR-2 blocked/register-tiled autovectorized GEMMs (ops_blocked.cpp,
 * built with -march=native like the old hot path). Baseline the micro
 * benchmarks measure the packed-panel microkernels against; never used
 * on the hot path.
 */
namespace blocked {

void matmul(const Tensor &a, const Tensor &b, Tensor &out);
void matmulTransA(const Tensor &a, const Tensor &b, Tensor &out);
void matmulTransB(const Tensor &a, const Tensor &b, Tensor &out);

} // namespace blocked

} // namespace tensor
} // namespace rog

#endif // ROG_TENSOR_OPS_HPP
