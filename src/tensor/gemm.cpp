/**
 * @file
 * Packed-panel GEMM driver, portable packed-scalar tier, and the
 * one-time tier dispatch. See gemm.hpp for the layout and determinism
 * contract; the SIMD microkernels live in gemm_x86.cpp / gemm_neon.cpp
 * so each translation unit can carry its own target attributes.
 */
#include "tensor/gemm.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/buffer_pool.hpp"
#include "common/logging.hpp"
#include "parallel/parallel_for.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define ROG_GEMM_PACK_SSE 1
#include <immintrin.h>
#endif

namespace rog {
namespace tensor {
namespace gemm {

namespace {

// ---------------------------------------------------------------------
// Portable packed-scalar tier: the same packed-panel traversal as the
// SIMD tiers with a 4 x 8 tile the compiler can keep in SSE2/plain
// registers under default flags. This is the correctness anchor every
// build can run (ROG_NATIVE_KERNELS=OFF, unknown ISAs).
// ---------------------------------------------------------------------

constexpr std::size_t kPackedMr = 4;
constexpr std::size_t kPackedNr = 8;

void
packedTile(const float *ap, const float *bp, std::size_t kc, float *c,
           std::size_t ldc, bool accumulate)
{
    float t[kPackedMr][kPackedNr] = {};
    for (std::size_t p = 0; p < kc; ++p) {
        const float *b_row = bp + p * kPackedNr;
        const float a0 = ap[p * kPackedMr + 0];
        const float a1 = ap[p * kPackedMr + 1];
        const float a2 = ap[p * kPackedMr + 2];
        const float a3 = ap[p * kPackedMr + 3];
        for (std::size_t j = 0; j < kPackedNr; ++j) {
            const float bv = b_row[j];
            t[0][j] += a0 * bv;
            t[1][j] += a1 * bv;
            t[2][j] += a2 * bv;
            t[3][j] += a3 * bv;
        }
    }
    for (std::size_t r = 0; r < kPackedMr; ++r) {
        float *c_row = c + r * ldc;
        if (accumulate) {
            for (std::size_t j = 0; j < kPackedNr; ++j)
                c_row[j] += t[r][j];
        } else {
            for (std::size_t j = 0; j < kPackedNr; ++j)
                c_row[j] = t[r][j];
        }
    }
}

constexpr MicroKernel kPackedKernel = {kPackedMr, kPackedNr,
                                       packedTile};

// ---------------------------------------------------------------------
// Packing: one strided pass per K-block turns any operand view into
// contiguous zero-padded panels, so the microkernel inner loop only
// ever touches unit-stride memory.
// ---------------------------------------------------------------------

/** Pack rows [i0, i0 + mcur) x K-slice [pc, pc + kc) of A into
 *  column-sliver layout ap[p * mr + r], zero-padding rows past mcur.
 *
 *  For the common row-major full-sliver case this is an mr x kc
 *  transpose, done in 4x4 SSE blocks (baseline on x86-64, so it lives
 *  in this default-flags TU): after _MM_TRANSPOSE4_PS each register
 *  holds one p-column of four consecutive rows, which is exactly a
 *  contiguous run of the sliver layout. ~3x over the scalar strided
 *  walk, which at 256^2 was ~9% of the whole GEMM. */
void
packA(const Operand &a, std::size_t pc, std::size_t kc, std::size_t i0,
      std::size_t mcur, std::size_t mr, float *ap)
{
    std::size_t r0 = 0;
#if defined(ROG_GEMM_PACK_SSE)
    if (a.col_stride == 1) {
        const float *base = a.data + i0 * a.row_stride + pc;
        for (; r0 + 4 <= mcur; r0 += 4) {
            const float *s0 = base + (r0 + 0) * a.row_stride;
            const float *s1 = base + (r0 + 1) * a.row_stride;
            const float *s2 = base + (r0 + 2) * a.row_stride;
            const float *s3 = base + (r0 + 3) * a.row_stride;
            std::size_t p = 0;
            for (; p + 4 <= kc; p += 4) {
                __m128 v0 = _mm_loadu_ps(s0 + p);
                __m128 v1 = _mm_loadu_ps(s1 + p);
                __m128 v2 = _mm_loadu_ps(s2 + p);
                __m128 v3 = _mm_loadu_ps(s3 + p);
                _MM_TRANSPOSE4_PS(v0, v1, v2, v3);
                float *dst = ap + p * mr + r0;
                _mm_storeu_ps(dst, v0);
                _mm_storeu_ps(dst + mr, v1);
                _mm_storeu_ps(dst + 2 * mr, v2);
                _mm_storeu_ps(dst + 3 * mr, v3);
            }
            for (; p < kc; ++p) {
                float *dst = ap + p * mr + r0;
                dst[0] = s0[p];
                dst[1] = s1[p];
                dst[2] = s2[p];
                dst[3] = s3[p];
            }
        }
    }
#endif
    for (std::size_t p = 0; p < kc; ++p) {
        const float *src =
            a.data + i0 * a.row_stride + (pc + p) * a.col_stride;
        float *dst = ap + p * mr;
        std::size_t r = r0;
        for (; r < mcur; ++r)
            dst[r] = src[r * a.row_stride];
        for (; r < mr; ++r)
            dst[r] = 0.0f;
    }
}

/** Pack cols [j0, j0 + ncur) x K-slice [pc, pc + kc) of B into
 *  row-panel layout bp[p * nr + c], zero-padding cols past ncur. */
void
packB(const Operand &b, std::size_t pc, std::size_t kc, std::size_t j0,
      std::size_t ncur, std::size_t nr, float *bp)
{
    for (std::size_t p = 0; p < kc; ++p) {
        const float *src =
            b.data + (pc + p) * b.row_stride + j0 * b.col_stride;
        float *dst = bp + p * nr;
        if (b.col_stride == 1) {
            std::memcpy(dst, src, ncur * sizeof(float));
        } else {
            for (std::size_t c = 0; c < ncur; ++c)
                dst[c] = src[c * b.col_stride];
        }
        for (std::size_t c = ncur; c < nr; ++c)
            dst[c] = 0.0f;
    }
}

Tier
parseTier(const std::string &name, bool &ok)
{
    ok = true;
    if (name == "avx512")
        return Tier::Avx512;
    if (name == "avx2")
        return Tier::Avx2;
    if (name == "neon")
        return Tier::Neon;
    if (name == "packed")
        return Tier::Packed;
    ok = false;
    return Tier::Packed;
}

} // namespace

const MicroKernel *
packedKernel()
{
    return &kPackedKernel;
}

const MicroKernel *
kernel(Tier tier)
{
    switch (tier) {
    case Tier::Avx512:
        return avx512Kernel();
    case Tier::Avx2:
        return avx2Kernel();
    case Tier::Neon:
        return neonKernel();
    case Tier::Packed:
        return packedKernel();
    }
    return nullptr;
}

bool
tierAvailable(Tier tier)
{
    return kernel(tier) != nullptr;
}

const char *
tierName(Tier tier)
{
    switch (tier) {
    case Tier::Avx512:
        return "avx512";
    case Tier::Avx2:
        return "avx2";
    case Tier::Neon:
        return "neon";
    case Tier::Packed:
        return "packed";
    }
    return "packed";
}

const char *
tierIsa(Tier tier)
{
    switch (tier) {
    case Tier::Avx512:
        return "avx512f+fma";
    case Tier::Avx2:
        return "avx2+fma";
    case Tier::Neon:
        return "neon";
    case Tier::Packed:
        return "portable";
    }
    return "portable";
}

Tier
activeTier()
{
    static const Tier tier = [] {
        if (const char *env = std::getenv("ROG_MATMUL_TIER")) {
            bool ok = false;
            const Tier forced = parseTier(env, ok);
            if (ok && tierAvailable(forced))
                return forced;
            ROG_WARN("ROG_MATMUL_TIER=", env,
                     " unknown or unavailable; using fastest tier");
        }
        for (Tier t : {Tier::Avx512, Tier::Avx2, Tier::Neon})
            if (tierAvailable(t))
                return t;
        return Tier::Packed;
    }();
    return tier;
}

void
run(Tier tier, const Operand &a, const Operand &b, float *c,
    std::size_t ldc, std::size_t m, std::size_t n, std::size_t k,
    parallel::ThreadPool &pool)
{
    const MicroKernel *uk = kernel(tier);
    ROG_ASSERT(uk != nullptr, "gemm tier unavailable: ", tierName(tier));
    if (m == 0 || n == 0)
        return;
    if (k == 0) {
        for (std::size_t i = 0; i < m; ++i)
            std::memset(c + i * ldc, 0, n * sizeof(float));
        return;
    }

    const std::size_t mr = uk->mr;
    const std::size_t nr = uk->nr;
    const std::size_t panels = (n + nr - 1) / nr;
    BufferPool &mem = BufferPool::global();

    for (std::size_t pc = 0; pc < k; pc += kKc) {
        const std::size_t kc = std::min(kKc, k - pc);
        const bool accumulate = pc > 0;

        // Pack this K-block of B once, shared by every row chunk.
        auto bpack = mem.leaseFloats(panels * kc * nr);
        float *bp = bpack.data();
        parallel::parallelFor(
            0, panels, 1,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t jp = lo; jp < hi; ++jp)
                    packB(b, pc, kc, jp * nr,
                          std::min(nr, n - jp * nr), nr,
                          bp + jp * kc * nr);
            },
            pool);

        // M-loop over fixed row chunks: each chunk packs its own A
        // slivers and streams the microkernel across the B panels.
        parallel::parallelFor(
            0, m, kRowChunk,
            [&](std::size_t lo, std::size_t hi) {
                auto apack = mem.leaseFloats(kc * mr);
                float tile[kMaxMr * kMaxNr];
                for (std::size_t i0 = lo; i0 < hi; i0 += mr) {
                    const std::size_t mcur = std::min(mr, hi - i0);
                    packA(a, pc, kc, i0, mcur, mr, apack.data());
                    for (std::size_t jp = 0; jp < panels; ++jp) {
                        const std::size_t j0 = jp * nr;
                        const std::size_t ncur = std::min(nr, n - j0);
                        const float *bpanel = bp + jp * kc * nr;
                        float *cdst = c + i0 * ldc + j0;
                        if (mcur == mr && ncur == nr) {
                            uk->fn(apack.data(), bpanel, kc, cdst, ldc,
                                   accumulate);
                            continue;
                        }
                        // Ragged edge: compute the full tile into
                        // scratch, merge only the valid region.
                        uk->fn(apack.data(), bpanel, kc, tile, nr,
                               false);
                        for (std::size_t r = 0; r < mcur; ++r) {
                            const float *t = tile + r * nr;
                            float *c_row = cdst + r * ldc;
                            if (accumulate) {
                                for (std::size_t j = 0; j < ncur; ++j)
                                    c_row[j] += t[j];
                            } else {
                                for (std::size_t j = 0; j < ncur; ++j)
                                    c_row[j] = t[j];
                            }
                        }
                    }
                }
            },
            pool);
    }
}

} // namespace gemm
} // namespace tensor
} // namespace rog
