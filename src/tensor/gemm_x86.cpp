/**
 * @file
 * x86 GEMM microkernels: AVX2/FMA 6 x 16 and AVX-512F 12 x 32, both
 * over the packed panels laid out by gemm.cpp.
 *
 * Register budget (the whole point of the explicit kernels — the
 * autovectorized blocked loop never kept enough independent FMA chains
 * in flight to cover the FMA latency):
 *
 *   AVX2   6 rows x 2 ymm  = 12 accumulators + 2 B + 1 broadcast = 15
 *          of 16 ymm; 12 FMAs per 2 B loads.
 *   AVX512 12 rows x 2 zmm = 24 accumulators + 2 B + 1 broadcast = 27
 *          of 32 zmm; 24 FMAs per 2 B loads.
 *
 * Both kernels are compiled with function-level target attributes in
 * this default-flags TU, so the binary stays runnable on any x86-64
 * CPU and the runtime dispatch in gemm.cpp decides what executes —
 * same pattern as common/crc32c. ROG_GEMM_NATIVE (the
 * ROG_NATIVE_KERNELS cmake option) gates the whole file so portable
 * builds carry only the packed-scalar tier.
 */
#include "tensor/gemm.hpp"

#include "common/cpu_features.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    defined(ROG_GEMM_NATIVE) && (defined(__GNUC__) || defined(__clang__))
#define ROG_GEMM_X86 1
#include <immintrin.h>
#endif

namespace rog {
namespace tensor {
namespace gemm {

#if defined(ROG_GEMM_X86)

namespace {

__attribute__((target("avx2,fma"))) void
kernelAvx2_6x16(const float *ap, const float *bp, std::size_t kc,
                float *c, std::size_t ldc, bool accumulate)
{
    __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
    __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
    __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
    __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
    __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
    __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
    for (std::size_t p = 0; p < kc; ++p) {
        const __m256 b0 = _mm256_loadu_ps(bp + p * 16);
        const __m256 b1 = _mm256_loadu_ps(bp + p * 16 + 8);
        const float *a_col = ap + p * 6;
        __m256 a;
        a = _mm256_broadcast_ss(a_col + 0);
        c00 = _mm256_fmadd_ps(a, b0, c00);
        c01 = _mm256_fmadd_ps(a, b1, c01);
        a = _mm256_broadcast_ss(a_col + 1);
        c10 = _mm256_fmadd_ps(a, b0, c10);
        c11 = _mm256_fmadd_ps(a, b1, c11);
        a = _mm256_broadcast_ss(a_col + 2);
        c20 = _mm256_fmadd_ps(a, b0, c20);
        c21 = _mm256_fmadd_ps(a, b1, c21);
        a = _mm256_broadcast_ss(a_col + 3);
        c30 = _mm256_fmadd_ps(a, b0, c30);
        c31 = _mm256_fmadd_ps(a, b1, c31);
        a = _mm256_broadcast_ss(a_col + 4);
        c40 = _mm256_fmadd_ps(a, b0, c40);
        c41 = _mm256_fmadd_ps(a, b1, c41);
        a = _mm256_broadcast_ss(a_col + 5);
        c50 = _mm256_fmadd_ps(a, b0, c50);
        c51 = _mm256_fmadd_ps(a, b1, c51);
    }
    // Explicit per-row stores: no accumulator may have its address
    // taken or be reached through an array, or GCC spills the whole
    // tile to the stack inside the k loop.
#define ROG_AVX2_STORE_ROW(r, lo, hi) \
    do { \
        float *c_row = c + (r) * ldc; \
        __m256 vlo = (lo); \
        __m256 vhi = (hi); \
        if (accumulate) { \
            vlo = _mm256_add_ps(_mm256_loadu_ps(c_row), vlo); \
            vhi = _mm256_add_ps(_mm256_loadu_ps(c_row + 8), vhi); \
        } \
        _mm256_storeu_ps(c_row, vlo); \
        _mm256_storeu_ps(c_row + 8, vhi); \
    } while (0)
    ROG_AVX2_STORE_ROW(0, c00, c01);
    ROG_AVX2_STORE_ROW(1, c10, c11);
    ROG_AVX2_STORE_ROW(2, c20, c21);
    ROG_AVX2_STORE_ROW(3, c30, c31);
    ROG_AVX2_STORE_ROW(4, c40, c41);
    ROG_AVX2_STORE_ROW(5, c50, c51);
#undef ROG_AVX2_STORE_ROW
}

__attribute__((target("avx512f"))) void
kernelAvx512_12x32(const float *ap, const float *bp, std::size_t kc,
                   float *c, std::size_t ldc, bool accumulate)
{
    // Named accumulators only (no arrays, no address-taken locals):
    // GCC must be able to keep all 24 in zmm registers for the whole
    // k loop or the kernel runs out of the stack instead.
    __m512 c00 = _mm512_setzero_ps(), c01 = _mm512_setzero_ps();
    __m512 c10 = _mm512_setzero_ps(), c11 = _mm512_setzero_ps();
    __m512 c20 = _mm512_setzero_ps(), c21 = _mm512_setzero_ps();
    __m512 c30 = _mm512_setzero_ps(), c31 = _mm512_setzero_ps();
    __m512 c40 = _mm512_setzero_ps(), c41 = _mm512_setzero_ps();
    __m512 c50 = _mm512_setzero_ps(), c51 = _mm512_setzero_ps();
    __m512 c60 = _mm512_setzero_ps(), c61 = _mm512_setzero_ps();
    __m512 c70 = _mm512_setzero_ps(), c71 = _mm512_setzero_ps();
    __m512 c80 = _mm512_setzero_ps(), c81 = _mm512_setzero_ps();
    __m512 c90 = _mm512_setzero_ps(), c91 = _mm512_setzero_ps();
    __m512 ca0 = _mm512_setzero_ps(), ca1 = _mm512_setzero_ps();
    __m512 cb0 = _mm512_setzero_ps(), cb1 = _mm512_setzero_ps();
    for (std::size_t p = 0; p < kc; ++p) {
        const __m512 b0 = _mm512_loadu_ps(bp + p * 32);
        const __m512 b1 = _mm512_loadu_ps(bp + p * 32 + 16);
        const float *a_col = ap + p * 12;
        __m512 a;
#define ROG_AVX512_ROW(r, lo, hi) \
    a = _mm512_set1_ps(a_col[r]); \
    lo = _mm512_fmadd_ps(a, b0, lo); \
    hi = _mm512_fmadd_ps(a, b1, hi)
        ROG_AVX512_ROW(0, c00, c01);
        ROG_AVX512_ROW(1, c10, c11);
        ROG_AVX512_ROW(2, c20, c21);
        ROG_AVX512_ROW(3, c30, c31);
        ROG_AVX512_ROW(4, c40, c41);
        ROG_AVX512_ROW(5, c50, c51);
        ROG_AVX512_ROW(6, c60, c61);
        ROG_AVX512_ROW(7, c70, c71);
        ROG_AVX512_ROW(8, c80, c81);
        ROG_AVX512_ROW(9, c90, c91);
        ROG_AVX512_ROW(10, ca0, ca1);
        ROG_AVX512_ROW(11, cb0, cb1);
#undef ROG_AVX512_ROW
    }
#define ROG_AVX512_STORE_ROW(r, lo, hi) \
    do { \
        float *c_row = c + (r) * ldc; \
        __m512 vlo = (lo); \
        __m512 vhi = (hi); \
        if (accumulate) { \
            vlo = _mm512_add_ps(_mm512_loadu_ps(c_row), vlo); \
            vhi = _mm512_add_ps(_mm512_loadu_ps(c_row + 16), vhi); \
        } \
        _mm512_storeu_ps(c_row, vlo); \
        _mm512_storeu_ps(c_row + 16, vhi); \
    } while (0)
    ROG_AVX512_STORE_ROW(0, c00, c01);
    ROG_AVX512_STORE_ROW(1, c10, c11);
    ROG_AVX512_STORE_ROW(2, c20, c21);
    ROG_AVX512_STORE_ROW(3, c30, c31);
    ROG_AVX512_STORE_ROW(4, c40, c41);
    ROG_AVX512_STORE_ROW(5, c50, c51);
    ROG_AVX512_STORE_ROW(6, c60, c61);
    ROG_AVX512_STORE_ROW(7, c70, c71);
    ROG_AVX512_STORE_ROW(8, c80, c81);
    ROG_AVX512_STORE_ROW(9, c90, c91);
    ROG_AVX512_STORE_ROW(10, ca0, ca1);
    ROG_AVX512_STORE_ROW(11, cb0, cb1);
#undef ROG_AVX512_STORE_ROW
}

constexpr MicroKernel kAvx2Kernel = {6, 16, kernelAvx2_6x16};
constexpr MicroKernel kAvx512Kernel = {12, 32, kernelAvx512_12x32};

} // namespace

const MicroKernel *
avx2Kernel()
{
    return cpu::hasAvx2Fma() ? &kAvx2Kernel : nullptr;
}

const MicroKernel *
avx512Kernel()
{
    return cpu::hasAvx512f() ? &kAvx512Kernel : nullptr;
}

#else // !ROG_GEMM_X86

const MicroKernel *
avx2Kernel()
{
    return nullptr;
}

const MicroKernel *
avx512Kernel()
{
    return nullptr;
}

#endif

} // namespace gemm
} // namespace tensor
} // namespace rog
