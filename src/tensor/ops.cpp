/**
 * @file
 * Blocked, vectorizable, pool-parallel tensor kernels.
 *
 * Every kernel here obeys the parallel runtime's determinism contract
 * (parallel_for.hpp): work splits at *fixed* boundaries that depend
 * only on the tensor shape, each chunk writes disjoint output (or
 * reduces through parallelReduce's ordered tree), and the per-element
 * floating-point operation order never depends on ROG_THREADS. The
 * original scalar kernels survive in ops_ref.cpp as the equivalence
 * baseline.
 *
 * GEMM layout: outputs are computed in MR x NR register tiles with the
 * k loop innermost-but-one, so the accumulators live in registers for
 * the whole reduction and the inner loop is a contiguous
 * multiply-accumulate the compiler auto-vectorizes. There is no
 * data-dependent branch in the dense path (the seed skipped av == 0
 * rows, which costs a branch per scalar and defeats vectorization),
 * and the first k-slice *writes* the tile so the output needs no
 * zero-fill pass.
 */
#include "tensor/ops.hpp"

#include <cmath>
#include <cstring>

#include "common/logging.hpp"
#include "parallel/parallel_for.hpp"

namespace rog {
namespace tensor {

namespace {

// Register tile: MR output rows x NR output columns per microkernel.
// NR = 16 floats spans a full AVX-512 register (or 2 AVX2 / 4 SSE
// registers); MR = 4 keeps MR * NR accumulators within the 16-32
// vector registers of x86-64 while reusing each loaded b value 4x.
constexpr std::size_t MR = 4;
constexpr std::size_t NR = 16;

// Rows of output per parallel chunk. A multiple of MR so full tiles
// never straddle a chunk boundary; boundaries depend only on the
// shape, never on the thread count.
constexpr std::size_t kRowGrain = 32;

// Elementwise grain (see parallel_for.hpp).
constexpr std::size_t kGrain = parallel::kDefaultGrain;

/**
 * MR x NR microkernel: out[i0..i0+MR) x [j0..j0+NR) = A-panel @ B-panel
 * with A addressed as a[row_stride_a * (i0 + r) + p * col_stride_a] —
 * col_stride_a = 1 addresses A (m x k) directly, row_stride_a = 1 with
 * col_stride_a = lda addresses A^T without materializing it.
 */
inline void
gemmTile(const float *a, std::size_t row_stride_a,
         std::size_t col_stride_a, const float *b, std::size_t ldb,
         float *out, std::size_t ldo, std::size_t i0, std::size_t j0,
         std::size_t k)
{
    float acc[MR][NR] = {};
    const float *a0 = a + (i0 + 0) * row_stride_a;
    const float *a1 = a + (i0 + 1) * row_stride_a;
    const float *a2 = a + (i0 + 2) * row_stride_a;
    const float *a3 = a + (i0 + 3) * row_stride_a;
    for (std::size_t p = 0; p < k; ++p) {
        const float *b_row = b + p * ldb + j0;
        const float av0 = a0[p * col_stride_a];
        const float av1 = a1[p * col_stride_a];
        const float av2 = a2[p * col_stride_a];
        const float av3 = a3[p * col_stride_a];
        for (std::size_t c = 0; c < NR; ++c) {
            const float bv = b_row[c];
            acc[0][c] += av0 * bv;
            acc[1][c] += av1 * bv;
            acc[2][c] += av2 * bv;
            acc[3][c] += av3 * bv;
        }
    }
    for (std::size_t r = 0; r < MR; ++r) {
        float *o = out + (i0 + r) * ldo + j0;
        for (std::size_t c = 0; c < NR; ++c)
            o[c] = acc[r][c];
    }
}

/** Ragged edge of the tile grid: any rows x cols block, accumulators
 *  still in registers, same p-ascending per-element order. */
inline void
gemmEdge(const float *a, std::size_t row_stride_a,
         std::size_t col_stride_a, const float *b, std::size_t ldb,
         float *out, std::size_t ldo, std::size_t i0, std::size_t i1,
         std::size_t j0, std::size_t j1, std::size_t k)
{
    for (std::size_t i = i0; i < i1; ++i) {
        const float *a_row = a + i * row_stride_a;
        float *o = out + i * ldo;
        for (std::size_t j = j0; j < j1; ++j) {
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += a_row[p * col_stride_a] * b[p * ldb + j];
            o[j] = acc;
        }
    }
}

/** Shared GEMM driver over output rows [lo, hi). */
void
gemmRows(const float *a, std::size_t row_stride_a,
         std::size_t col_stride_a, const float *b, std::size_t ldb,
         float *out, std::size_t ldo, std::size_t lo, std::size_t hi,
         std::size_t n, std::size_t k)
{
    std::size_t i = lo;
    for (; i + MR <= hi; i += MR) {
        std::size_t j = 0;
        for (; j + NR <= n; j += NR)
            gemmTile(a, row_stride_a, col_stride_a, b, ldb, out, ldo, i,
                     j, k);
        if (j < n)
            gemmEdge(a, row_stride_a, col_stride_a, b, ldb, out, ldo, i,
                     i + MR, j, n, k);
    }
    if (i < hi)
        gemmEdge(a, row_stride_a, col_stride_a, b, ldb, out, ldo, i, hi,
                 0, n, k);
}

/** Parallel GEMM over the output's rows with fixed row chunks. */
void
gemmParallel(const float *a, std::size_t row_stride_a,
             std::size_t col_stride_a, const float *b, std::size_t ldb,
             float *out, std::size_t ldo, std::size_t m, std::size_t n,
             std::size_t k)
{
    if (k == 0) {
        for (std::size_t i = 0; i < m; ++i)
            std::memset(out + i * ldo, 0, n * sizeof(float));
        return;
    }
    parallel::parallelFor(0, m, kRowGrain,
                          [&](std::size_t lo, std::size_t hi) {
                              gemmRows(a, row_stride_a, col_stride_a, b,
                                       ldb, out, ldo, lo, hi, n, k);
                          });
}

// Lane count for deterministic vectorized dot products: k is split
// across 16 independent accumulators (elementwise, so the compiler
// vectorizes it), then folded in a fixed pairwise tree.
constexpr std::size_t kDotLanes = 16;

inline float
dotLanes(const float *x, const float *y, std::size_t k)
{
    float acc[kDotLanes] = {};
    std::size_t p = 0;
    for (; p + kDotLanes <= k; p += kDotLanes)
        for (std::size_t l = 0; l < kDotLanes; ++l)
            acc[l] += x[p + l] * y[p + l];
    for (std::size_t l = 0; p < k; ++p, ++l)
        acc[l] += x[p] * y[p];
    for (std::size_t w = kDotLanes / 2; w > 0; w /= 2)
        for (std::size_t l = 0; l < w; ++l)
            acc[l] += acc[l + w];
    return acc[0];
}

} // namespace

void
matmul(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.cols() == b.rows() && out.rows() == a.rows() &&
               out.cols() == b.cols(), "matmul shape mismatch");
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    gemmParallel(a.data(), /*row_stride_a=*/k, /*col_stride_a=*/1,
                 b.data(), n, out.data(), n, m, n, k);
}

void
matmulTransA(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.rows() == b.rows() && out.rows() == a.cols() &&
               out.cols() == b.cols(), "matmulTransA shape mismatch");
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    // A^T is addressed in place: element (i, p) of A^T is a[p * m + i],
    // i.e. row stride 1 and column stride m. The microkernel's av0..av3
    // loads then touch 4 *contiguous* floats of a row of A.
    gemmParallel(a.data(), /*row_stride_a=*/1, /*col_stride_a=*/m,
                 b.data(), n, out.data(), n, m, n, k);
}

void
matmulTransB(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.cols() == b.cols() && out.rows() == a.rows() &&
               out.cols() == b.rows(), "matmulTransB shape mismatch");
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    const float *adata = a.data();
    const float *bdata = b.data();
    float *odata = out.data();
    // Both operands are traversed along contiguous rows of length k, so
    // each output element is a lane-accumulated dot product.
    parallel::parallelFor(
        0, m, kRowGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const float *a_row = adata + i * k;
                float *out_row = odata + i * n;
                for (std::size_t j = 0; j < n; ++j)
                    out_row[j] = dotLanes(a_row, bdata + j * k, k);
            }
        });
}

void
axpy(float alpha, const Tensor &x, Tensor &y)
{
    ROG_ASSERT(x.sameShape(y), "axpy shape mismatch");
    const float *xd = x.data();
    float *yd = y.data();
    parallel::parallelFor(0, x.size(), kGrain,
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                  yd[i] += alpha * xd[i];
                          });
}

void
copy(const Tensor &x, Tensor &y)
{
    ROG_ASSERT(x.sameShape(y), "copy shape mismatch");
    std::memcpy(y.data(), x.data(), x.size() * sizeof(float));
}

void
scale(Tensor &x, float alpha)
{
    float *xd = x.data();
    parallel::parallelFor(0, x.size(), kGrain,
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                  xd[i] *= alpha;
                          });
}

void
addRowBias(Tensor &x, const Tensor &bias)
{
    ROG_ASSERT(bias.rows() == 1 && bias.cols() == x.cols(),
               "bias shape mismatch");
    const std::size_t cols = x.cols();
    float *xd = x.data();
    const float *bd = bias.data();
    parallel::parallelFor(
        0, x.rows(), kRowGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                float *row = xd + i * cols;
                for (std::size_t j = 0; j < cols; ++j)
                    row[j] += bd[j];
            }
        });
}

void
relu(const Tensor &x, Tensor &out)
{
    ROG_ASSERT(x.sameShape(out), "relu shape mismatch");
    const float *xd = x.data();
    float *od = out.data();
    parallel::parallelFor(0, x.size(), kGrain,
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                  od[i] = xd[i] > 0.0f ? xd[i] : 0.0f;
                          });
}

void
reluBackward(const Tensor &x, const Tensor &dout, Tensor &din)
{
    ROG_ASSERT(x.sameShape(dout) && x.sameShape(din),
               "reluBackward shape mismatch");
    const float *xd = x.data();
    const float *dd = dout.data();
    float *od = din.data();
    parallel::parallelFor(
        0, x.size(), kGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                od[i] = xd[i] > 0.0f ? dd[i] : 0.0f;
        });
}

void
tanhForward(const Tensor &x, Tensor &out)
{
    ROG_ASSERT(x.sameShape(out), "tanh shape mismatch");
    const float *xd = x.data();
    float *od = out.data();
    parallel::parallelFor(0, x.size(), kGrain,
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                  od[i] = std::tanh(xd[i]);
                          });
}

void
tanhBackward(const Tensor &out, const Tensor &dout, Tensor &din)
{
    ROG_ASSERT(out.sameShape(dout) && out.sameShape(din),
               "tanhBackward shape mismatch");
    const float *od = out.data();
    const float *dd = dout.data();
    float *id = din.data();
    parallel::parallelFor(
        0, out.size(), kGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                id[i] = dd[i] * (1.0f - od[i] * od[i]);
        });
}

void
softmaxRows(Tensor &x)
{
    const std::size_t cols = x.cols();
    float *xd = x.data();
    parallel::parallelFor(
        0, x.rows(), kRowGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                float *row = xd + i * cols;
                float mx = row[0];
                for (std::size_t j = 1; j < cols; ++j)
                    mx = std::max(mx, row[j]);
                float sum = 0.0f;
                for (std::size_t j = 0; j < cols; ++j) {
                    row[j] = std::exp(row[j] - mx);
                    sum += row[j];
                }
                const float inv = 1.0f / sum;
                for (std::size_t j = 0; j < cols; ++j)
                    row[j] *= inv;
            }
        });
}

float
meanAbs(std::span<const float> v)
{
    if (v.empty())
        return 0.0f;
    const float *d = v.data();
    // Double accumulation (like frobeniusNorm): float accumulation
    // drifts measurably by ~10^6 elements, and the importance ranking
    // compares these values across units of very different sizes.
    const double s = parallel::parallelReduce(
        std::size_t{0}, v.size(), kGrain, 0.0,
        [&](std::size_t lo, std::size_t hi) {
            double partial = 0.0;
            for (std::size_t i = lo; i < hi; ++i)
                partial += std::fabs(static_cast<double>(d[i]));
            return partial;
        },
        [](double a, double b) { return a + b; });
    return static_cast<float>(s / static_cast<double>(v.size()));
}

float
meanAbs(const Tensor &x)
{
    return meanAbs(std::span<const float>(x.data(), x.size()));
}

float
maxAbs(const Tensor &x)
{
    const float *d = x.data();
    return parallel::parallelReduce(
        std::size_t{0}, x.size(), kGrain, 0.0f,
        [&](std::size_t lo, std::size_t hi) {
            float partial = 0.0f;
            for (std::size_t i = lo; i < hi; ++i)
                partial = std::max(partial, std::fabs(d[i]));
            return partial;
        },
        [](float a, float b) { return std::max(a, b); });
}

float
frobeniusNorm(const Tensor &x)
{
    const float *d = x.data();
    const double s = parallel::parallelReduce(
        std::size_t{0}, x.size(), kGrain, 0.0,
        [&](std::size_t lo, std::size_t hi) {
            double partial = 0.0;
            for (std::size_t i = lo; i < hi; ++i)
                partial += static_cast<double>(d[i]) * d[i];
            return partial;
        },
        [](double a, double b) { return a + b; });
    return static_cast<float>(std::sqrt(s));
}

std::size_t
argmaxRow(const Tensor &x, std::size_t r)
{
    auto row = x.row(r);
    std::size_t best = 0;
    for (std::size_t j = 1; j < row.size(); ++j)
        if (row[j] > row[best])
            best = j;
    return best;
}

} // namespace tensor
} // namespace rog
