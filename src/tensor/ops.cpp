#include "tensor/ops.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace rog {
namespace tensor {

void
matmul(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.cols() == b.rows() && out.rows() == a.rows() &&
               out.cols() == b.cols(), "matmul shape mismatch");
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    out.zero();
    // i-k-j loop order keeps the inner loop contiguous in b and out.
    for (std::size_t i = 0; i < m; ++i) {
        float *out_row = out.data() + i * n;
        const float *a_row = a.data() + i * k;
        for (std::size_t p = 0; p < k; ++p) {
            const float av = a_row[p];
            if (av == 0.0f)
                continue;
            const float *b_row = b.data() + p * n;
            for (std::size_t j = 0; j < n; ++j)
                out_row[j] += av * b_row[j];
        }
    }
}

void
matmulTransA(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.rows() == b.rows() && out.rows() == a.cols() &&
               out.cols() == b.cols(), "matmulTransA shape mismatch");
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    out.zero();
    for (std::size_t p = 0; p < k; ++p) {
        const float *a_row = a.data() + p * m;
        const float *b_row = b.data() + p * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float av = a_row[i];
            if (av == 0.0f)
                continue;
            float *out_row = out.data() + i * n;
            for (std::size_t j = 0; j < n; ++j)
                out_row[j] += av * b_row[j];
        }
    }
}

void
matmulTransB(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.cols() == b.cols() && out.rows() == a.rows() &&
               out.cols() == b.rows(), "matmulTransB shape mismatch");
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    for (std::size_t i = 0; i < m; ++i) {
        const float *a_row = a.data() + i * k;
        float *out_row = out.data() + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float *b_row = b.data() + j * k;
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += a_row[p] * b_row[p];
            out_row[j] = acc;
        }
    }
}

void
axpy(float alpha, const Tensor &x, Tensor &y)
{
    ROG_ASSERT(x.sameShape(y), "axpy shape mismatch");
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i)
        y[i] += alpha * x[i];
}

void
copy(const Tensor &x, Tensor &y)
{
    ROG_ASSERT(x.sameShape(y), "copy shape mismatch");
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i)
        y[i] = x[i];
}

void
scale(Tensor &x, float alpha)
{
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i)
        x[i] *= alpha;
}

void
addRowBias(Tensor &x, const Tensor &bias)
{
    ROG_ASSERT(bias.rows() == 1 && bias.cols() == x.cols(),
               "bias shape mismatch");
    for (std::size_t i = 0; i < x.rows(); ++i) {
        float *row = x.data() + i * x.cols();
        for (std::size_t j = 0; j < x.cols(); ++j)
            row[j] += bias[j];
    }
}

void
relu(const Tensor &x, Tensor &out)
{
    ROG_ASSERT(x.sameShape(out), "relu shape mismatch");
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i)
        out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void
reluBackward(const Tensor &x, const Tensor &dout, Tensor &din)
{
    ROG_ASSERT(x.sameShape(dout) && x.sameShape(din),
               "reluBackward shape mismatch");
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i)
        din[i] = x[i] > 0.0f ? dout[i] : 0.0f;
}

void
tanhForward(const Tensor &x, Tensor &out)
{
    ROG_ASSERT(x.sameShape(out), "tanh shape mismatch");
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i)
        out[i] = std::tanh(x[i]);
}

void
tanhBackward(const Tensor &out, const Tensor &dout, Tensor &din)
{
    ROG_ASSERT(out.sameShape(dout) && out.sameShape(din),
               "tanhBackward shape mismatch");
    const std::size_t n = out.size();
    for (std::size_t i = 0; i < n; ++i)
        din[i] = dout[i] * (1.0f - out[i] * out[i]);
}

void
softmaxRows(Tensor &x)
{
    for (std::size_t i = 0; i < x.rows(); ++i) {
        float *row = x.data() + i * x.cols();
        float mx = row[0];
        for (std::size_t j = 1; j < x.cols(); ++j)
            mx = std::max(mx, row[j]);
        float sum = 0.0f;
        for (std::size_t j = 0; j < x.cols(); ++j) {
            row[j] = std::exp(row[j] - mx);
            sum += row[j];
        }
        const float inv = 1.0f / sum;
        for (std::size_t j = 0; j < x.cols(); ++j)
            row[j] *= inv;
    }
}

float
meanAbs(std::span<const float> v)
{
    if (v.empty())
        return 0.0f;
    float s = 0.0f;
    for (float x : v)
        s += std::fabs(x);
    return s / static_cast<float>(v.size());
}

float
meanAbs(const Tensor &x)
{
    return meanAbs(std::span<const float>(x.data(), x.size()));
}

float
maxAbs(const Tensor &x)
{
    float m = 0.0f;
    for (std::size_t i = 0; i < x.size(); ++i)
        m = std::max(m, std::fabs(x[i]));
    return m;
}

float
frobeniusNorm(const Tensor &x)
{
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        s += static_cast<double>(x[i]) * x[i];
    return static_cast<float>(std::sqrt(s));
}

std::size_t
argmaxRow(const Tensor &x, std::size_t r)
{
    auto row = x.row(r);
    std::size_t best = 0;
    for (std::size_t j = 1; j < row.size(); ++j)
        if (row[j] > row[best])
            best = j;
    return best;
}

} // namespace tensor
} // namespace rog
