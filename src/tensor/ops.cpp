/**
 * @file
 * Pool-parallel tensor kernels.
 *
 * Every kernel here obeys the parallel runtime's determinism contract
 * (parallel_for.hpp): work splits at *fixed* boundaries that depend
 * only on the tensor shape, each chunk writes disjoint output (or
 * reduces through parallelReduce's ordered tree), and the per-element
 * floating-point operation order never depends on ROG_THREADS. The
 * seed's scalar kernels survive in ops_ref.cpp as the equivalence
 * baseline; the PR-2 autovectorized blocked GEMMs survive in
 * ops_blocked.cpp as the measured bench baseline.
 *
 * All four matmul variants (plain / transA / transB, and through them
 * the conv im2col path) run the packed-panel microkernel engine in
 * gemm.cpp: operands are strided views packed once per K-block, so
 * transpose cases stop paying strided loads, and the register
 * microkernel tier (AVX-512 / AVX2+FMA / NEON / packed scalar) is
 * picked once per process by runtime dispatch — same pattern as
 * common/crc32c.
 */
#include "tensor/ops.hpp"

#include <cmath>
#include <cstring>

#include "common/logging.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/gemm.hpp"

namespace rog {
namespace tensor {

namespace {

// Rows of output per parallel chunk for row-wise elementwise kernels.
constexpr std::size_t kRowGrain = 32;

// Elementwise grain (see parallel_for.hpp).
constexpr std::size_t kGrain = parallel::kDefaultGrain;

} // namespace

void
matmul(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.cols() == b.rows() && out.rows() == a.rows() &&
               out.cols() == b.cols(), "matmul shape mismatch");
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    gemm::run(gemm::activeTier(), {a.data(), k, 1}, {b.data(), n, 1},
              out.data(), n, m, n, k);
}

void
matmulTransA(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.rows() == b.rows() && out.rows() == a.cols() &&
               out.cols() == b.cols(), "matmulTransA shape mismatch");
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    // A^T is a strided view: element (i, p) of A^T is a[p * m + i].
    // The packer materializes it as contiguous slivers in one pass.
    gemm::run(gemm::activeTier(), {a.data(), 1, m}, {b.data(), n, 1},
              out.data(), n, m, n, k);
}

void
matmulTransB(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.cols() == b.cols() && out.rows() == a.rows() &&
               out.cols() == b.rows(), "matmulTransB shape mismatch");
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    // B^T view: element (p, j) of B^T is b[j * k + p].
    gemm::run(gemm::activeTier(), {a.data(), k, 1}, {b.data(), 1, k},
              out.data(), n, m, n, k);
}

const char *
matmulActiveTier()
{
    return gemm::tierName(gemm::activeTier());
}

const char *
matmulIsa()
{
    return gemm::tierIsa(gemm::activeTier());
}

void
axpy(float alpha, const Tensor &x, Tensor &y)
{
    ROG_ASSERT(x.sameShape(y), "axpy shape mismatch");
    const float *xd = x.data();
    float *yd = y.data();
    parallel::parallelFor(0, x.size(), kGrain,
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                  yd[i] += alpha * xd[i];
                          });
}

void
copy(const Tensor &x, Tensor &y)
{
    ROG_ASSERT(x.sameShape(y), "copy shape mismatch");
    std::memcpy(y.data(), x.data(), x.size() * sizeof(float));
}

void
scale(Tensor &x, float alpha)
{
    float *xd = x.data();
    parallel::parallelFor(0, x.size(), kGrain,
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                  xd[i] *= alpha;
                          });
}

void
addRowBias(Tensor &x, const Tensor &bias)
{
    ROG_ASSERT(bias.rows() == 1 && bias.cols() == x.cols(),
               "bias shape mismatch");
    const std::size_t cols = x.cols();
    float *xd = x.data();
    const float *bd = bias.data();
    parallel::parallelFor(
        0, x.rows(), kRowGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                float *row = xd + i * cols;
                for (std::size_t j = 0; j < cols; ++j)
                    row[j] += bd[j];
            }
        });
}

void
relu(const Tensor &x, Tensor &out)
{
    ROG_ASSERT(x.sameShape(out), "relu shape mismatch");
    const float *xd = x.data();
    float *od = out.data();
    parallel::parallelFor(0, x.size(), kGrain,
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                  od[i] = xd[i] > 0.0f ? xd[i] : 0.0f;
                          });
}

void
reluBackward(const Tensor &x, const Tensor &dout, Tensor &din)
{
    ROG_ASSERT(x.sameShape(dout) && x.sameShape(din),
               "reluBackward shape mismatch");
    const float *xd = x.data();
    const float *dd = dout.data();
    float *od = din.data();
    parallel::parallelFor(
        0, x.size(), kGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                od[i] = xd[i] > 0.0f ? dd[i] : 0.0f;
        });
}

void
tanhForward(const Tensor &x, Tensor &out)
{
    ROG_ASSERT(x.sameShape(out), "tanh shape mismatch");
    const float *xd = x.data();
    float *od = out.data();
    parallel::parallelFor(0, x.size(), kGrain,
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                  od[i] = std::tanh(xd[i]);
                          });
}

void
tanhBackward(const Tensor &out, const Tensor &dout, Tensor &din)
{
    ROG_ASSERT(out.sameShape(dout) && out.sameShape(din),
               "tanhBackward shape mismatch");
    const float *od = out.data();
    const float *dd = dout.data();
    float *id = din.data();
    parallel::parallelFor(
        0, out.size(), kGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i)
                id[i] = dd[i] * (1.0f - od[i] * od[i]);
        });
}

void
softmaxRows(Tensor &x)
{
    const std::size_t cols = x.cols();
    float *xd = x.data();
    parallel::parallelFor(
        0, x.rows(), kRowGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                float *row = xd + i * cols;
                float mx = row[0];
                for (std::size_t j = 1; j < cols; ++j)
                    mx = std::max(mx, row[j]);
                float sum = 0.0f;
                for (std::size_t j = 0; j < cols; ++j) {
                    row[j] = std::exp(row[j] - mx);
                    sum += row[j];
                }
                const float inv = 1.0f / sum;
                for (std::size_t j = 0; j < cols; ++j)
                    row[j] *= inv;
            }
        });
}

float
meanAbs(std::span<const float> v)
{
    if (v.empty())
        return 0.0f;
    const float *d = v.data();
    // Double accumulation (like frobeniusNorm): float accumulation
    // drifts measurably by ~10^6 elements, and the importance ranking
    // compares these values across units of very different sizes.
    const double s = parallel::parallelReduce(
        std::size_t{0}, v.size(), kGrain, 0.0,
        [&](std::size_t lo, std::size_t hi) {
            double partial = 0.0;
            for (std::size_t i = lo; i < hi; ++i)
                partial += std::fabs(static_cast<double>(d[i]));
            return partial;
        },
        [](double a, double b) { return a + b; });
    return static_cast<float>(s / static_cast<double>(v.size()));
}

float
meanAbs(const Tensor &x)
{
    return meanAbs(std::span<const float>(x.data(), x.size()));
}

float
maxAbs(const Tensor &x)
{
    const float *d = x.data();
    return parallel::parallelReduce(
        std::size_t{0}, x.size(), kGrain, 0.0f,
        [&](std::size_t lo, std::size_t hi) {
            float partial = 0.0f;
            for (std::size_t i = lo; i < hi; ++i)
                partial = std::max(partial, std::fabs(d[i]));
            return partial;
        },
        [](float a, float b) { return std::max(a, b); });
}

float
frobeniusNorm(const Tensor &x)
{
    const float *d = x.data();
    const double s = parallel::parallelReduce(
        std::size_t{0}, x.size(), kGrain, 0.0,
        [&](std::size_t lo, std::size_t hi) {
            double partial = 0.0;
            for (std::size_t i = lo; i < hi; ++i)
                partial += static_cast<double>(d[i]) * d[i];
            return partial;
        },
        [](double a, double b) { return a + b; });
    return static_cast<float>(std::sqrt(s));
}

std::size_t
argmaxRow(const Tensor &x, std::size_t r)
{
    auto row = x.row(r);
    std::size_t best = 0;
    for (std::size_t j = 1; j < row.size(); ++j)
        if (row[j] > row[best])
            best = j;
    return best;
}

} // namespace tensor
} // namespace rog
