/**
 * @file
 * Scalar reference kernels — the seed library's original triple-loop
 * implementations, preserved verbatim in their own translation unit
 * (built with the project's default flags, no kernel tuning) so that:
 *
 *  - equivalence tests can compare the blocked/parallel kernels in
 *    ops.cpp against a known-good baseline, and
 *  - micro benchmarks can report blocked-vs-seed speedups against the
 *    exact code the seed shipped.
 */
#include "tensor/ops.hpp"

#include "common/logging.hpp"

namespace rog {
namespace tensor {
namespace ref {

void
matmul(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.cols() == b.rows() && out.rows() == a.rows() &&
               out.cols() == b.cols(), "matmul shape mismatch");
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    out.zero();
    // i-k-j loop order keeps the inner loop contiguous in b and out.
    for (std::size_t i = 0; i < m; ++i) {
        float *out_row = out.data() + i * n;
        const float *a_row = a.data() + i * k;
        for (std::size_t p = 0; p < k; ++p) {
            const float av = a_row[p];
            if (av == 0.0f)
                continue;
            const float *b_row = b.data() + p * n;
            for (std::size_t j = 0; j < n; ++j)
                out_row[j] += av * b_row[j];
        }
    }
}

void
matmulTransA(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.rows() == b.rows() && out.rows() == a.cols() &&
               out.cols() == b.cols(), "matmulTransA shape mismatch");
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    out.zero();
    for (std::size_t p = 0; p < k; ++p) {
        const float *a_row = a.data() + p * m;
        const float *b_row = b.data() + p * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float av = a_row[i];
            if (av == 0.0f)
                continue;
            float *out_row = out.data() + i * n;
            for (std::size_t j = 0; j < n; ++j)
                out_row[j] += av * b_row[j];
        }
    }
}

void
matmulTransB(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.cols() == b.cols() && out.rows() == a.rows() &&
               out.cols() == b.rows(), "matmulTransB shape mismatch");
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    for (std::size_t i = 0; i < m; ++i) {
        const float *a_row = a.data() + i * k;
        float *out_row = out.data() + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float *b_row = b.data() + j * k;
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += a_row[p] * b_row[p];
            out_row[j] = acc;
        }
    }
}

} // namespace ref
} // namespace tensor
} // namespace rog
