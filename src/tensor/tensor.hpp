/**
 * @file
 * Dense row-major float tensor.
 *
 * The synchronization protocols in this library operate on *rows* of a
 * parameter matrix, so Tensor is deliberately a matrix-first design:
 * every tensor is logically (rows x cols); vectors are (1 x cols). Row
 * access returns a contiguous std::span, which is exactly the unit ROG
 * schedules, compresses, and transmits.
 */
#ifndef ROG_TENSOR_TENSOR_HPP
#define ROG_TENSOR_TENSOR_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace rog {

class Rng;

namespace tensor {

/** A dense row-major matrix of float32. */
class Tensor
{
  public:
    /** An empty (0 x 0) tensor. */
    Tensor() = default;

    /** A zero-initialized (rows x cols) tensor. @pre rows, cols > 0 */
    Tensor(std::size_t rows, std::size_t cols);

    /** A (rows x cols) tensor filled with @p value. */
    Tensor(std::size_t rows, std::size_t cols, float value);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Element access (row-major). @pre r < rows(), c < cols() */
    float &at(std::size_t r, std::size_t c);
    float at(std::size_t r, std::size_t c) const;

    /** Flat element access. @pre i < size() */
    float &operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** Contiguous view of one row. @pre r < rows() */
    std::span<float> row(std::size_t r);
    std::span<const float> row(std::size_t r) const;

    /** Set every element to @p value. */
    void fill(float value);

    /** Set every element to zero. */
    void zero() { fill(0.0f); }

    /** True iff shapes match. */
    bool sameShape(const Tensor &o) const;

    /** Fill with N(0, stddev) noise. */
    void randomNormal(Rng &rng, float stddev);

    /** Fill with U(-bound, bound) noise. */
    void randomUniform(Rng &rng, float bound);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace tensor
} // namespace rog

#endif // ROG_TENSOR_TENSOR_HPP
