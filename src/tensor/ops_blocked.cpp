/**
 * @file
 * The PR-2 blocked/register-tiled GEMM kernels, preserved under
 * tensor::blocked as a measured baseline — exactly as ops_ref.cpp
 * preserves the seed's scalar loops. The hot path now runs the
 * packed-panel microkernels (gemm.cpp); BENCH_micro.json reports the
 * packed tiers' speedup over *these* kernels, so keep them compiled
 * with the same -march=native tuning they shipped with.
 *
 * Layout: outputs are computed in MR x NR register tiles with the k
 * loop innermost-but-one, accumulators live in registers for the whole
 * reduction, and the contiguous inner multiply-accumulate is left to
 * the autovectorizer — the "compiler luck" tier the explicit
 * microkernels replace.
 */
#include "tensor/ops.hpp"

#include <cstring>

#include "common/logging.hpp"
#include "parallel/parallel_for.hpp"

namespace rog {
namespace tensor {
namespace blocked {

namespace {

// Register tile: MR output rows x NR output columns per microkernel.
constexpr std::size_t MR = 4;
constexpr std::size_t NR = 16;

// Rows of output per parallel chunk. A multiple of MR so full tiles
// never straddle a chunk boundary; boundaries depend only on the
// shape, never on the thread count.
constexpr std::size_t kRowGrain = 32;

/**
 * MR x NR microkernel: out[i0..i0+MR) x [j0..j0+NR) = A-panel @ B-panel
 * with A addressed as a[row_stride_a * (i0 + r) + p * col_stride_a] —
 * col_stride_a = 1 addresses A (m x k) directly, row_stride_a = 1 with
 * col_stride_a = lda addresses A^T without materializing it.
 */
inline void
gemmTile(const float *a, std::size_t row_stride_a,
         std::size_t col_stride_a, const float *b, std::size_t ldb,
         float *out, std::size_t ldo, std::size_t i0, std::size_t j0,
         std::size_t k)
{
    float acc[MR][NR] = {};
    const float *a0 = a + (i0 + 0) * row_stride_a;
    const float *a1 = a + (i0 + 1) * row_stride_a;
    const float *a2 = a + (i0 + 2) * row_stride_a;
    const float *a3 = a + (i0 + 3) * row_stride_a;
    for (std::size_t p = 0; p < k; ++p) {
        const float *b_row = b + p * ldb + j0;
        const float av0 = a0[p * col_stride_a];
        const float av1 = a1[p * col_stride_a];
        const float av2 = a2[p * col_stride_a];
        const float av3 = a3[p * col_stride_a];
        for (std::size_t c = 0; c < NR; ++c) {
            const float bv = b_row[c];
            acc[0][c] += av0 * bv;
            acc[1][c] += av1 * bv;
            acc[2][c] += av2 * bv;
            acc[3][c] += av3 * bv;
        }
    }
    for (std::size_t r = 0; r < MR; ++r) {
        float *o = out + (i0 + r) * ldo + j0;
        for (std::size_t c = 0; c < NR; ++c)
            o[c] = acc[r][c];
    }
}

/** Ragged edge of the tile grid: any rows x cols block, accumulators
 *  still in registers, same p-ascending per-element order. */
inline void
gemmEdge(const float *a, std::size_t row_stride_a,
         std::size_t col_stride_a, const float *b, std::size_t ldb,
         float *out, std::size_t ldo, std::size_t i0, std::size_t i1,
         std::size_t j0, std::size_t j1, std::size_t k)
{
    for (std::size_t i = i0; i < i1; ++i) {
        const float *a_row = a + i * row_stride_a;
        float *o = out + i * ldo;
        for (std::size_t j = j0; j < j1; ++j) {
            float acc = 0.0f;
            for (std::size_t p = 0; p < k; ++p)
                acc += a_row[p * col_stride_a] * b[p * ldb + j];
            o[j] = acc;
        }
    }
}

/** Shared GEMM driver over output rows [lo, hi). */
void
gemmRows(const float *a, std::size_t row_stride_a,
         std::size_t col_stride_a, const float *b, std::size_t ldb,
         float *out, std::size_t ldo, std::size_t lo, std::size_t hi,
         std::size_t n, std::size_t k)
{
    std::size_t i = lo;
    for (; i + MR <= hi; i += MR) {
        std::size_t j = 0;
        for (; j + NR <= n; j += NR)
            gemmTile(a, row_stride_a, col_stride_a, b, ldb, out, ldo, i,
                     j, k);
        if (j < n)
            gemmEdge(a, row_stride_a, col_stride_a, b, ldb, out, ldo, i,
                     i + MR, j, n, k);
    }
    if (i < hi)
        gemmEdge(a, row_stride_a, col_stride_a, b, ldb, out, ldo, i, hi,
                 0, n, k);
}

/** Parallel GEMM over the output's rows with fixed row chunks. */
void
gemmParallel(const float *a, std::size_t row_stride_a,
             std::size_t col_stride_a, const float *b, std::size_t ldb,
             float *out, std::size_t ldo, std::size_t m, std::size_t n,
             std::size_t k)
{
    if (k == 0) {
        for (std::size_t i = 0; i < m; ++i)
            std::memset(out + i * ldo, 0, n * sizeof(float));
        return;
    }
    parallel::parallelFor(0, m, kRowGrain,
                          [&](std::size_t lo, std::size_t hi) {
                              gemmRows(a, row_stride_a, col_stride_a, b,
                                       ldb, out, ldo, lo, hi, n, k);
                          });
}

// Lane count for deterministic vectorized dot products: k is split
// across 16 independent accumulators (elementwise, so the compiler
// vectorizes it), then folded in a fixed pairwise tree.
constexpr std::size_t kDotLanes = 16;

inline float
dotLanes(const float *x, const float *y, std::size_t k)
{
    float acc[kDotLanes] = {};
    std::size_t p = 0;
    for (; p + kDotLanes <= k; p += kDotLanes)
        for (std::size_t l = 0; l < kDotLanes; ++l)
            acc[l] += x[p + l] * y[p + l];
    for (std::size_t l = 0; p < k; ++p, ++l)
        acc[l] += x[p] * y[p];
    for (std::size_t w = kDotLanes / 2; w > 0; w /= 2)
        for (std::size_t l = 0; l < w; ++l)
            acc[l] += acc[l + w];
    return acc[0];
}

} // namespace

void
matmul(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.cols() == b.rows() && out.rows() == a.rows() &&
               out.cols() == b.cols(), "matmul shape mismatch");
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    gemmParallel(a.data(), /*row_stride_a=*/k, /*col_stride_a=*/1,
                 b.data(), n, out.data(), n, m, n, k);
}

void
matmulTransA(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.rows() == b.rows() && out.rows() == a.cols() &&
               out.cols() == b.cols(), "matmulTransA shape mismatch");
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    gemmParallel(a.data(), /*row_stride_a=*/1, /*col_stride_a=*/m,
                 b.data(), n, out.data(), n, m, n, k);
}

void
matmulTransB(const Tensor &a, const Tensor &b, Tensor &out)
{
    ROG_ASSERT(a.cols() == b.cols() && out.rows() == a.rows() &&
               out.cols() == b.rows(), "matmulTransB shape mismatch");
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    const float *adata = a.data();
    const float *bdata = b.data();
    float *odata = out.data();
    parallel::parallelFor(
        0, m, kRowGrain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const float *a_row = adata + i * k;
                float *out_row = odata + i * n;
                for (std::size_t j = 0; j < n; ++j)
                    out_row[j] = dotLanes(a_row, bdata + j * k, k);
            }
        });
}

} // namespace blocked
} // namespace tensor
} // namespace rog
