/**
 * @file
 * Packed-panel GEMM with runtime-dispatched register microkernels.
 *
 * Internal engine behind tensor::matmul / matmulTransA / matmulTransB
 * (and through them the conv im2col path). The driver packs A and B
 * into contiguous, zero-padded panels once per K-block (pool-leased
 * scratch), then streams an MR x NR register microkernel over the
 * packed panels. Operands are strided *views*, so all four transpose
 * variants share one packer and the transpose cases stop paying
 * strided loads in the inner loop — the only strided traversal is the
 * one pass that packs.
 *
 * Tiers (fastest available wins, resolved once per process like the
 * crc32c dispatch):
 *
 *   avx512  12 x 32 FMA kernel, 24 zmm accumulators
 *   avx2     6 x 16 FMA kernel, 12 ymm accumulators
 *   neon     8 x  8 FMA kernel, 16 q-register accumulators
 *   packed   4 x  8 portable scalar kernel over the same packed panels
 *
 * Determinism contract: for a fixed tier, each output element is one
 * k-ascending accumulator chain per K-block, merged into C in K-block
 * order. Chunk boundaries of the parallel M-loop depend only on the
 * shape (kRowChunk is a multiple of every tier's MR), so results are
 * bitwise independent of ROG_THREADS. Different tiers may round
 * differently (FMA fuses the multiply-add); the fuzz tests bound each
 * tier against a double-precision oracle instead of bitwise-comparing
 * tiers.
 */
#ifndef ROG_TENSOR_GEMM_HPP
#define ROG_TENSOR_GEMM_HPP

#include <cstddef>

#include "parallel/thread_pool.hpp"

namespace rog {
namespace tensor {
namespace gemm {

/** Dispatch tiers, fastest first. */
enum class Tier { Avx512, Avx2, Neon, Packed };

/**
 * Strided read-only view of an operand matrix: element (i, j) lives at
 * data[i * row_stride + j * col_stride]. A plain (m x k) matrix is
 * {data, k, 1}; its transpose is {data, 1, m} with no copy.
 */
struct Operand
{
    const float *data;
    std::size_t row_stride;
    std::size_t col_stride;
};

/**
 * An MR x NR register microkernel over packed panels. `fn` computes
 * TILE = Apanel (kc x mr, column-sliver layout ap[p*mr + r]) @ Bpanel
 * (kc x nr, row-panel layout bp[p*nr + c]) in registers, then stores
 * the full tile to c (leading dimension ldc): `accumulate` adds to the
 * existing C values (later K-blocks), otherwise it overwrites (first
 * K-block — no zero-fill pass needed).
 */
struct MicroKernel
{
    std::size_t mr;
    std::size_t nr;
    void (*fn)(const float *ap, const float *bp, std::size_t kc,
               float *c, std::size_t ldc, bool accumulate);
};

/** Largest MR / NR over all tiers (edge-tile scratch sizing). */
inline constexpr std::size_t kMaxMr = 12;
inline constexpr std::size_t kMaxNr = 32;

/**
 * Rows of C per parallel chunk: a multiple of every tier's MR, so full
 * slivers never straddle a chunk boundary and the packing/microkernel
 * sequence for each output element is independent of ROG_THREADS.
 */
inline constexpr std::size_t kRowChunk = 24;

/** K-block depth: packed panels for one block stay cache-resident. */
inline constexpr std::size_t kKc = 256;

/** True when @p tier was compiled in *and* the CPU can execute it.
 *  Tier::Packed is always available. */
bool tierAvailable(Tier tier);

/** The tier the public matmul entry points use: the fastest available
 *  tier, overridable with ROG_MATMUL_TIER=avx512|avx2|neon|packed
 *  (ignored when unavailable). Resolved once per process. */
Tier activeTier();

/** Stable lowercase tier name ("avx512", "avx2", "neon", "packed"). */
const char *tierName(Tier tier);

/** ISA summary of @p tier ("avx512f+fma", "avx2+fma", "neon",
 *  "portable"). */
const char *tierIsa(Tier tier);

/** Microkernel for @p tier; nullptr when unavailable (tests/benches
 *  introspection — run() asserts availability itself). */
const MicroKernel *kernel(Tier tier);

/**
 * C (m x n, leading dimension ldc) = A-view (m x k) @ B-view (k x n)
 * using @p tier's microkernel, M-parallel over @p pool. k == 0 zeroes
 * C. @pre tierAvailable(tier).
 */
void run(Tier tier, const Operand &a, const Operand &b, float *c,
         std::size_t ldc, std::size_t m, std::size_t n, std::size_t k,
         parallel::ThreadPool &pool = parallel::ThreadPool::global());

// Per-tier microkernel factories (one per TU so each can carry its own
// target attributes); nullptr when the build or CPU lacks the tier.
const MicroKernel *avx2Kernel();
const MicroKernel *avx512Kernel();
const MicroKernel *neonKernel();
const MicroKernel *packedKernel();

} // namespace gemm
} // namespace tensor
} // namespace rog

#endif // ROG_TENSOR_GEMM_HPP
