#include "tensor/tensor.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace rog {
namespace tensor {

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
    ROG_ASSERT(rows > 0 && cols > 0, "tensor dims must be positive");
}

Tensor::Tensor(std::size_t rows, std::size_t cols, float value)
    : Tensor(rows, cols)
{
    fill(value);
}

float &
Tensor::at(std::size_t r, std::size_t c)
{
    ROG_ASSERT(r < rows_ && c < cols_, "tensor index out of range");
    return data_[r * cols_ + c];
}

float
Tensor::at(std::size_t r, std::size_t c) const
{
    ROG_ASSERT(r < rows_ && c < cols_, "tensor index out of range");
    return data_[r * cols_ + c];
}

std::span<float>
Tensor::row(std::size_t r)
{
    ROG_ASSERT(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
}

std::span<const float>
Tensor::row(std::size_t r) const
{
    ROG_ASSERT(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

bool
Tensor::sameShape(const Tensor &o) const
{
    return rows_ == o.rows_ && cols_ == o.cols_;
}

void
Tensor::randomNormal(Rng &rng, float stddev)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.gaussian(0.0, stddev));
}

void
Tensor::randomUniform(Rng &rng, float bound)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.uniform(-bound, bound));
}

} // namespace tensor
} // namespace rog
