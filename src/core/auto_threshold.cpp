#include "core/auto_threshold.hpp"

#include <numeric>

#include "common/logging.hpp"

namespace rog {
namespace core {

AutoThresholdController::AutoThresholdController(AutoThresholdConfig cfg)
    : cfg_(cfg), threshold_(cfg.initial_threshold)
{
    ROG_ASSERT(cfg.min_threshold >= 2, "RSP thresholds start at 2");
    ROG_ASSERT(cfg.max_threshold >= cfg.min_threshold,
               "bad threshold bounds");
    ROG_ASSERT(cfg.initial_threshold >= cfg.min_threshold &&
               cfg.initial_threshold <= cfg.max_threshold,
               "initial threshold out of bounds");
    ROG_ASSERT(cfg.window > 0, "window must be positive");
    ROG_ASSERT(cfg.low_stall_fraction <= cfg.high_stall_fraction,
               "stall band inverted");
}

void
AutoThresholdController::observe(double stall_s, double iteration_s)
{
    ROG_ASSERT(stall_s >= 0.0 && iteration_s >= stall_s,
               "invalid iteration observation");
    stall_.push_back(stall_s);
    total_.push_back(iteration_s);
    if (stall_.size() >= cfg_.window)
        decide();
}

void
AutoThresholdController::decide()
{
    const double stall =
        std::accumulate(stall_.begin(), stall_.end(), 0.0);
    const double total =
        std::accumulate(total_.begin(), total_.end(), 0.0);
    stall_.clear();
    total_.clear();
    if (total <= 0.0)
        return;
    const double fraction = stall / total;
    if (fraction > cfg_.high_stall_fraction &&
        threshold_ < cfg_.max_threshold) {
        // Instability is binding: buy slack (multiplicatively, the
        // useful threshold range spans an order of magnitude).
        threshold_ = std::min(cfg_.max_threshold,
                              threshold_ + (threshold_ + 1) / 2);
        ++adjustments_;
    } else if (fraction < cfg_.low_stall_fraction &&
               threshold_ > cfg_.min_threshold) {
        // Calm network: tighten for statistical efficiency.
        threshold_ = std::max(cfg_.min_threshold, threshold_ - 1);
        ++adjustments_;
    }
}

} // namespace core
} // namespace rog
