/**
 * @file
 * RSP Version Storage (Fig. 5 / Algo 2).
 *
 * Tracks, per (worker, unit), the latest training iteration whose
 * gradients for that unit reached the parameter server — the V = {v_i^r}
 * of Algo 2. RSP's two-level staleness control reduces to one check
 * against min(V): a worker that just pushed units at iteration n must
 * wait while n - min(V) >= threshold, which simultaneously bounds the
 * divergence of the same row across workers and of different rows
 * within one worker.
 */
#ifndef ROG_CORE_VERSION_STORAGE_HPP
#define ROG_CORE_VERSION_STORAGE_HPP

#include <cstdint>
#include <vector>

namespace rog {
namespace core {

/** Plain-data copy of a VersionStorage (checkpointing). */
struct VersionSnapshot
{
    std::vector<std::vector<std::int64_t>> versions;
    std::vector<std::uint8_t> retired;
};

/** The server's per-(worker, unit) version matrix. */
class VersionStorage
{
  public:
    /** All versions start at 0 (nothing pushed yet). */
    VersionStorage(std::size_t workers, std::size_t units);

    std::size_t workers() const { return versions_.size(); }
    std::size_t units() const { return units_; }

    /** Version of @p unit as pushed by @p worker. */
    std::int64_t get(std::size_t worker, std::size_t unit) const;

    /** Record that @p worker pushed @p unit at iteration @p iter. */
    void update(std::size_t worker, std::size_t unit, std::int64_t iter);

    /**
     * min(V) over all units of all *active* workers; retired workers
     * are excluded. Returns the last computed min if every worker has
     * retired.
     */
    std::int64_t minVersion() const;

    /**
     * min over active workers of the version of @p unit — the
     * per-row staleness reference of Algo 2's gate ("wait for other
     * worker update g_i"). Falls back to minVersion() semantics if
     * every worker has retired.
     */
    std::int64_t minAcrossWorkers(std::size_t unit) const;

    /**
     * Exclude a finished worker from min(V) so it cannot stall the
     * remaining ones after it leaves the training run.
     */
    void retireWorker(std::size_t worker);

    bool retired(std::size_t worker) const;

    /**
     * Re-admit a previously retired (crashed) worker that resynced to
     * the model at iteration @p iter: its versions jump to @p iter so
     * the gate treats it as freshly caught up, not eternally stale.
     * @pre iter >= every version the worker pushed before the crash.
     */
    void rejoinWorker(std::size_t worker, std::int64_t iter);

    /** Oldest version among @p worker's own units (diagnostics). */
    std::int64_t minVersionOfWorker(std::size_t worker) const;

    /** Newest version among @p worker's units — its last pushed
     *  training iteration. */
    std::int64_t maxVersionOfWorker(std::size_t worker) const;

    /** Copy out the full matrix + retirement flags (checkpointing). */
    VersionSnapshot snapshot() const;

    /**
     * Overwrite the matrix from a snapshot of the *same shape*;
     * fails (throws) on a shape mismatch.
     */
    void restore(const VersionSnapshot &s);

    /**
     * min over active workers of their last pushed iteration — the
     * reference for RSP's cross-worker staleness level: how far the
     * slowest worker's training state lags. Falls back to
     * minVersion() if every worker has retired.
     */
    std::int64_t minWorkerIteration() const;

  private:
    std::vector<std::vector<std::int64_t>> versions_;
    std::vector<bool> retired_;
    std::size_t units_;

    // min(V) cache: recomputed only when an update lowers confidence.
    mutable std::int64_t cached_min_ = 0;
    mutable bool dirty_ = true;
};

} // namespace core
} // namespace rog

#endif // ROG_CORE_VERSION_STORAGE_HPP
