#include "core/server_state.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace rog {
namespace core {

ServerState::ServerState(std::size_t workers,
                         const RowPartition &partition)
    : inv_workers_(1.0 / static_cast<double>(workers))
{
    ROG_ASSERT(workers > 0, "server needs at least one worker");
    unit_widths_.reserve(partition.unitCount());
    for (const Unit &u : partition.units())
        unit_widths_.push_back(u.width);
    last_update_.assign(partition.unitCount(), 0);

    outbox_.resize(workers);
    has_pending_.resize(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        outbox_[w].resize(partition.unitCount());
        has_pending_[w].assign(partition.unitCount(), false);
        for (std::size_t u = 0; u < partition.unitCount(); ++u)
            outbox_[w][u].assign(unit_widths_[u], 0.0f);
    }
}

void
ServerState::accumulate(std::size_t unit, std::span<const float> decoded)
{
    ROG_ASSERT(unit < unit_widths_.size(), "unit out of range");
    ROG_ASSERT(decoded.size() == unit_widths_[unit],
               "decoded width mismatch");
    const auto scale = static_cast<float>(inv_workers_);
    for (std::size_t w = 0; w < outbox_.size(); ++w) {
        auto &dst = outbox_[w][unit];
        for (std::size_t j = 0; j < decoded.size(); ++j)
            dst[j] += scale * decoded[j];
        has_pending_[w][unit] = true;
    }
}

std::span<float>
ServerState::pending(std::size_t worker, std::size_t unit)
{
    ROG_ASSERT(worker < outbox_.size() && unit < unit_widths_.size(),
               "pending index out of range");
    return outbox_[worker][unit];
}

bool
ServerState::hasPending(std::size_t worker, std::size_t unit) const
{
    ROG_ASSERT(worker < outbox_.size() && unit < unit_widths_.size(),
               "pending index out of range");
    return has_pending_[worker][unit];
}

void
ServerState::clearPending(std::size_t worker, std::size_t unit)
{
    ROG_ASSERT(worker < outbox_.size() && unit < unit_widths_.size(),
               "pending index out of range");
    auto &buf = outbox_[worker][unit];
    std::fill(buf.begin(), buf.end(), 0.0f);
    has_pending_[worker][unit] = false;
}

void
ServerState::clearWorker(std::size_t worker)
{
    ROG_ASSERT(worker < outbox_.size(), "worker out of range");
    for (std::size_t u = 0; u < unit_widths_.size(); ++u)
        clearPending(worker, u);
}

double
ServerState::pendingMeanAbs(std::size_t worker, std::size_t unit) const
{
    ROG_ASSERT(worker < outbox_.size() && unit < unit_widths_.size(),
               "pending index out of range");
    const auto &buf = outbox_[worker][unit];
    if (buf.empty())
        return 0.0;
    double s = 0.0;
    for (float v : buf)
        s += std::fabs(v);
    return s / static_cast<double>(buf.size());
}

std::int64_t
ServerState::lastUpdate(std::size_t unit) const
{
    ROG_ASSERT(unit < last_update_.size(), "unit out of range");
    return last_update_[unit];
}

void
ServerState::noteUpdate(std::size_t unit, std::int64_t iter)
{
    ROG_ASSERT(unit < last_update_.size(), "unit out of range");
    last_update_[unit] = std::max(last_update_[unit], iter);
}

ServerStateSnapshot
ServerState::snapshot() const
{
    ServerStateSnapshot s;
    s.outbox = outbox_;
    s.has_pending.resize(has_pending_.size());
    for (std::size_t w = 0; w < has_pending_.size(); ++w) {
        s.has_pending[w].reserve(has_pending_[w].size());
        for (bool p : has_pending_[w])
            s.has_pending[w].push_back(p ? 1 : 0);
    }
    s.last_update = last_update_;
    return s;
}

void
ServerState::restore(const ServerStateSnapshot &s)
{
    if (s.outbox.size() != outbox_.size() ||
        s.has_pending.size() != has_pending_.size() ||
        s.last_update.size() != last_update_.size())
        ROG_FATAL("server snapshot shape mismatch");
    for (std::size_t w = 0; w < outbox_.size(); ++w) {
        if (s.outbox[w].size() != unit_widths_.size() ||
            s.has_pending[w].size() != unit_widths_.size())
            ROG_FATAL("server snapshot unit count mismatch");
        for (std::size_t u = 0; u < unit_widths_.size(); ++u)
            if (s.outbox[w][u].size() != unit_widths_[u])
                ROG_FATAL("server snapshot unit width mismatch");
    }
    outbox_ = s.outbox;
    for (std::size_t w = 0; w < has_pending_.size(); ++w)
        for (std::size_t u = 0; u < has_pending_[w].size(); ++u)
            has_pending_[w][u] = s.has_pending[w][u] != 0;
    last_update_ = s.last_update;
}

MtaTimeTracker::MtaTimeTracker(std::size_t workers, double alpha,
                               double floor_seconds, double ceil_seconds)
    : rate_(workers, Ewma(alpha)), mta_bytes_(workers, 0.0),
      floor_seconds_(floor_seconds), ceil_seconds_(ceil_seconds)
{
    ROG_ASSERT(workers > 0, "tracker needs at least one worker");
    ROG_ASSERT(floor_seconds > 0.0 && ceil_seconds > floor_seconds,
               "bad tMTA clamp");
}

double
MtaTimeTracker::estimateFor(std::size_t worker) const
{
    ROG_ASSERT(worker < rate_.size(), "worker out of range");
    if (!rate_[worker].seeded() || mta_bytes_[worker] <= 0.0)
        return std::numeric_limits<double>::infinity();
    const double rate = std::max(rate_[worker].value(), 1e-9);
    return mta_bytes_[worker] / rate;
}

double
MtaTimeTracker::mtaTime() const
{
    double worst = 0.0;
    for (std::size_t w = 0; w < rate_.size(); ++w) {
        const double est = estimateFor(w);
        if (std::isinf(est))
            return std::numeric_limits<double>::infinity();
        worst = std::max(worst, est);
    }
    return clamp(worst, floor_seconds_, ceil_seconds_);
}

void
MtaTimeTracker::report(std::size_t worker, double bytes_transmitted,
                       double elapsed_seconds, double mta_bytes)
{
    ROG_ASSERT(worker < rate_.size(), "worker out of range");
    ROG_ASSERT(elapsed_seconds > 0.0, "elapsed must be positive");
    rate_[worker].observe(bytes_transmitted / elapsed_seconds);
    mta_bytes_[worker] = mta_bytes;
}

MtaTrackerSnapshot
MtaTimeTracker::snapshot() const
{
    MtaTrackerSnapshot s;
    s.rate.reserve(rate_.size());
    s.seeded.reserve(rate_.size());
    for (const Ewma &e : rate_) {
        s.rate.push_back(e.value());
        s.seeded.push_back(e.seeded() ? 1 : 0);
    }
    s.mta_bytes = mta_bytes_;
    return s;
}

void
MtaTimeTracker::restore(const MtaTrackerSnapshot &s)
{
    if (s.rate.size() != rate_.size() ||
        s.seeded.size() != rate_.size() ||
        s.mta_bytes.size() != mta_bytes_.size())
        ROG_FATAL("tracker snapshot shape mismatch");
    for (std::size_t w = 0; w < rate_.size(); ++w)
        rate_[w].restore(s.rate[w], s.seeded[w] != 0);
    mta_bytes_ = s.mta_bytes;
}

} // namespace core
} // namespace rog
