#include "core/server_state.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace rog {
namespace core {

ServerState::ServerState(std::size_t workers,
                         const RowPartition &partition)
    : inv_workers_(1.0 / static_cast<double>(workers))
{
    ROG_ASSERT(workers > 0, "server needs at least one worker");
    unit_widths_.reserve(partition.unitCount());
    for (const Unit &u : partition.units())
        unit_widths_.push_back(u.width);
    last_update_.assign(partition.unitCount(), 0);

    outbox_.resize(workers);
    has_pending_.resize(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        outbox_[w].resize(partition.unitCount());
        has_pending_[w].assign(partition.unitCount(), false);
        for (std::size_t u = 0; u < partition.unitCount(); ++u)
            outbox_[w][u].assign(unit_widths_[u], 0.0f);
    }
}

void
ServerState::accumulate(std::size_t unit, std::span<const float> decoded)
{
    ROG_ASSERT(unit < unit_widths_.size(), "unit out of range");
    ROG_ASSERT(decoded.size() == unit_widths_[unit],
               "decoded width mismatch");
    const auto scale = static_cast<float>(inv_workers_);
    for (std::size_t w = 0; w < outbox_.size(); ++w) {
        auto &dst = outbox_[w][unit];
        for (std::size_t j = 0; j < decoded.size(); ++j)
            dst[j] += scale * decoded[j];
        has_pending_[w][unit] = true;
    }
}

std::span<float>
ServerState::pending(std::size_t worker, std::size_t unit)
{
    ROG_ASSERT(worker < outbox_.size() && unit < unit_widths_.size(),
               "pending index out of range");
    return outbox_[worker][unit];
}

bool
ServerState::hasPending(std::size_t worker, std::size_t unit) const
{
    ROG_ASSERT(worker < outbox_.size() && unit < unit_widths_.size(),
               "pending index out of range");
    return has_pending_[worker][unit];
}

void
ServerState::clearPending(std::size_t worker, std::size_t unit)
{
    ROG_ASSERT(worker < outbox_.size() && unit < unit_widths_.size(),
               "pending index out of range");
    auto &buf = outbox_[worker][unit];
    std::fill(buf.begin(), buf.end(), 0.0f);
    has_pending_[worker][unit] = false;
}

void
ServerState::clearWorker(std::size_t worker)
{
    ROG_ASSERT(worker < outbox_.size(), "worker out of range");
    for (std::size_t u = 0; u < unit_widths_.size(); ++u)
        clearPending(worker, u);
}

double
ServerState::pendingMeanAbs(std::size_t worker, std::size_t unit) const
{
    ROG_ASSERT(worker < outbox_.size() && unit < unit_widths_.size(),
               "pending index out of range");
    const auto &buf = outbox_[worker][unit];
    if (buf.empty())
        return 0.0;
    double s = 0.0;
    for (float v : buf)
        s += std::fabs(v);
    return s / static_cast<double>(buf.size());
}

std::int64_t
ServerState::lastUpdate(std::size_t unit) const
{
    ROG_ASSERT(unit < last_update_.size(), "unit out of range");
    return last_update_[unit];
}

void
ServerState::noteUpdate(std::size_t unit, std::int64_t iter)
{
    ROG_ASSERT(unit < last_update_.size(), "unit out of range");
    last_update_[unit] = std::max(last_update_[unit], iter);
}

MtaTimeTracker::MtaTimeTracker(std::size_t workers, double alpha,
                               double floor_seconds, double ceil_seconds)
    : rate_(workers, Ewma(alpha)), mta_bytes_(workers, 0.0),
      floor_seconds_(floor_seconds), ceil_seconds_(ceil_seconds)
{
    ROG_ASSERT(workers > 0, "tracker needs at least one worker");
    ROG_ASSERT(floor_seconds > 0.0 && ceil_seconds > floor_seconds,
               "bad tMTA clamp");
}

double
MtaTimeTracker::estimateFor(std::size_t worker) const
{
    ROG_ASSERT(worker < rate_.size(), "worker out of range");
    if (!rate_[worker].seeded() || mta_bytes_[worker] <= 0.0)
        return std::numeric_limits<double>::infinity();
    const double rate = std::max(rate_[worker].value(), 1e-9);
    return mta_bytes_[worker] / rate;
}

double
MtaTimeTracker::mtaTime() const
{
    double worst = 0.0;
    for (std::size_t w = 0; w < rate_.size(); ++w) {
        const double est = estimateFor(w);
        if (std::isinf(est))
            return std::numeric_limits<double>::infinity();
        worst = std::max(worst, est);
    }
    return clamp(worst, floor_seconds_, ceil_seconds_);
}

void
MtaTimeTracker::report(std::size_t worker, double bytes_transmitted,
                       double elapsed_seconds, double mta_bytes)
{
    ROG_ASSERT(worker < rate_.size(), "worker out of range");
    ROG_ASSERT(elapsed_seconds > 0.0, "elapsed must be positive");
    rate_[worker].observe(bytes_transmitted / elapsed_seconds);
    mta_bytes_[worker] = mta_bytes;
}

} // namespace core
} // namespace rog
