#include "core/node_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/logging.hpp"
#include "core/server_checkpoint.hpp"
#include "net/transport/backend.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"

namespace rog {
namespace core {

using net::session::AdmitMode;
using net::session::admitModeName;
using net::session::Bye;
using net::session::FabricTimer;
using net::session::Heartbeat;
using net::session::Hello;
using net::session::isControlRow;
using net::session::kServerNode;
using net::session::MessageKey;
using net::session::packVersion;
using net::session::PullData;
using net::session::PullReq;
using net::session::Reject;
using net::session::rejectReasonName;
using net::session::RejectReason;
using net::session::UnitUpdate;
using net::session::versionScope;
using net::session::versionSeq;
using net::session::Welcome;
using net::session::workerNode;
using net::transport::kNoDeadline;

namespace {

std::string
fmt(double t, const char *body)
{
    std::ostringstream os;
    os << "t=" << t << ' ' << body;
    return os.str();
}

} // namespace

// --------------------------------------------------------------------
// ServerNode
// --------------------------------------------------------------------

ServerNode::ServerNode(net::session::Fabric &fabric, Workload &workload,
                       const NodeTrainConfig &cfg, NodeLogger log)
    : fabric_(fabric), workload_(workload), cfg_(cfg),
      log_(std::move(log)), model_(workload.buildReplica()),
      flat_(std::make_unique<FlatModel>(*model_)),
      partition_(
          std::make_unique<RowPartition>(*flat_, cfg.granularity)),
      opt_(std::make_unique<nn::SgdMomentum>(
          *model_, workload.optimizerConfig())),
      table_(workload.workers(), cfg.epoch, cfg.session_salt),
      versions_(workload.workers(), partition_->unitCount()),
      state_(workload.workers(), *partition_),
      mta_(workload.workers()),
      tracker_(workload.workers(), cfg.detector),
      peers_(workload.workers())
{
    recovered_ = restoreFromCheckpoint();
}

ServerNode::~ServerNode()
{
    if (member_timer_ != 0)
        fabric_.cancelTimer(member_timer_);
    // Unbind from the fabric: it outlives this node, and a crash
    // twin (destroy + reconstruct against the same fabric) must not
    // deliver into a dead server.
    fabric_.setMessageHandler({});
}

bool
ServerNode::restoreFromCheckpoint()
{
    if (cfg_.checkpoint_path.empty())
        return false;
    try {
        const ServerCheckpoint ckpt =
            readServerCheckpointFile(cfg_.checkpoint_path);
        // Validate everything that can throw *before* mutating any
        // member: a rejected checkpoint must leave a clean fresh
        // start, never a torn session table or half-restored model.
        if (ckpt.sessions.entries.size() != peers_.size())
            throw std::runtime_error(
                "checkpoint session table does not cover this fleet");
        if (ckpt.model.empty())
            throw std::runtime_error("checkpoint carries no model");
        {
            // Parse into a throwaway replica first; only a blob the
            // architecture fully accepts may touch the live model.
            auto probe = workload_.buildReplica();
            std::string s(ckpt.model.begin(), ckpt.model.end());
            std::istringstream is(s);
            nn::loadModel(is, *probe);
        }
        versions_.restore(ckpt.versions);
        state_.restore(ckpt.server);
        mta_.restore(ckpt.tracker);
        {
            std::string s(ckpt.model.begin(), ckpt.model.end());
            std::istringstream is(s);
            nn::loadModel(is, *model_);
        }
        // The epoch bump fences off every pre-crash scope; workers
        // holding the old epoch are rejected with the new one and
        // adopt it on retry.
        table_.restore(ckpt.sessions, ckpt.epoch + 1);
        for (std::size_t w = 0; w < peers_.size(); ++w) {
            const bool done = w < ckpt.worker_done.size() &&
                              ckpt.worker_done[w] != 0;
            peers_[w].bye = done;
            if (done)
                tracker_.deactivate(w);
        }
        // Control keys restart past the checkpoint's high-water mark
        // with a gap covering anything sent after it was cut, so no
        // pre-crash in-flight key is ever minted again.
        ctrl_seq_ = static_cast<std::uint32_t>(ckpt.msg_seq) + 4096;
        return true;
    } catch (const std::exception &e) {
        std::ostringstream os;
        os << "recover_failed why=\"" << e.what() << '"';
        logLine(fmt(fabric_.now(), os.str().c_str()));
        return false;
    }
}

void
ServerNode::logLine(const std::string &line)
{
    if (log_)
        log_(line);
}

void
ServerNode::start()
{
    fabric_.setMessageHandler(
        [this](const MessageKey &key, std::vector<std::uint8_t> &&b) {
            onMessage(key, std::move(b));
        });
    member_timer_ = fabric_.after(cfg_.detector.check_interval_s,
                                  [this] { evaluateMembership(); });
    {
        std::ostringstream os;
        os << "server_start epoch=" << table_.epoch()
           << " recovered=" << (recovered_ ? 1 : 0);
        logLine(fmt(fabric_.now(), os.str().c_str()));
    }
    if (recovered_) {
        // The restored apply watermark, one row per worker — the
        // invariant checker uses these to prove no push that survived
        // the crash is ever applied twice by the new incarnation.
        for (std::size_t w = 0; w < peers_.size(); ++w) {
            std::ostringstream os;
            os << "recover_w w=" << w << " versions=";
            for (std::size_t u = 0; u < partition_->unitCount(); ++u) {
                if (u > 0)
                    os << ',';
                os << versions_.get(w, u);
            }
            logLine(fmt(fabric_.now(), os.str().c_str()));
        }
        // Re-persist immediately under the bumped epoch: a second
        // crash before the next cadence checkpoint must recover to
        // this epoch, not re-derive it from the pre-crash file.
        checkpointNow();
        checkDone();
    }
}

void
ServerNode::onMessage(const MessageKey &key,
                      std::vector<std::uint8_t> &&bytes)
{
    if (!isControlRow(key.row)) {
        onPush(key, std::move(bytes));
        return;
    }
    switch (key.row) {
    case net::session::kRowHello:
        onHello(std::move(bytes));
        return;
    case net::session::kRowPullReq:
        onPullReq(key, std::move(bytes));
        return;
    case net::session::kRowHeartbeat:
        onHeartbeat(key, std::move(bytes));
        return;
    case net::session::kRowBye:
        onBye(key, std::move(bytes));
        return;
    default:
        return; // not addressed to a server.
    }
}

bool
ServerNode::sessionCurrent(std::size_t w, std::int64_t version)
{
    if (w < peers_.size() && table_.isCurrent(w, versionScope(version)))
        return true;
    ++stale_drops_;
    std::ostringstream os;
    os << "stale_drop w=" << w << " scope=" << versionScope(version);
    logLine(fmt(fabric_.now(), os.str().c_str()));
    return false;
}

void
ServerNode::onHello(std::vector<std::uint8_t> &&bytes)
{
    Hello h;
    if (!net::session::parse(bytes, h) || h.worker >= peers_.size())
        return;
    const std::size_t w = h.worker;
    const double now = fabric_.now();
    const net::session::Admission a = table_.onHello(h);

    // A handshake (either way) proves the old return path is stale:
    // (re)connect to the worker's receiver before answering.
    WorkerPeer &peer = peers_[w];
    peer.host = "127.0.0.1";
    peer.port = h.rx_port;
    peer.connected =
        fabric_.connectPeer(workerNode(w), peer.host, peer.port);
    if (!peer.connected) {
        // No return path — e.g. the worker died right after its Hello
        // and a tcp connect fails synchronously. Answering would hit
        // sendTo on a missing peer; drop the handshake instead. The
        // worker's Hello retry re-triggers admission on a live socket.
        std::ostringstream os;
        os << "hello_connect_failed w=" << w << " port=" << h.rx_port;
        logLine(fmt(now, os.str().c_str()));
        return;
    }

    if (!a.admitted) {
        Reject rej;
        rej.nonce = h.nonce;
        rej.reason = a.reject;
        rej.server_epoch = table_.epoch();
        std::ostringstream os;
        os << "reject w=" << w
           << " reason=" << rejectReasonName(a.reject)
           << " inc=" << h.incarnation;
        logLine(fmt(now, os.str().c_str()));
        MessageKey key{static_cast<std::uint16_t>(w),
                       packVersion(0, ctrl_seq_++),
                       net::session::kRowReject, true};
        fabric_.sendTo(workerNode(w), key, net::session::encode(rej),
                       now + cfg_.welcome_timeout_s, {});
        return;
    }

    // Membership lifecycle: a restarted process and a simulated
    // crash/rejoin walk the same transitions.
    if (tracker_.active(w)) {
        switch (tracker_.state(w)) {
        case MemberState::Dead:
            tracker_.markRejoining(w, now);
            tracker_.markRejoined(w, now);
            break;
        case MemberState::Rejoining:
            tracker_.markRejoined(w, now);
            break;
        default:
            tracker_.resetStats(w, now);
            break;
        }
    }

    // Version re-entry: never below anything the worker already
    // pushed, so its next push is fresh by construction.
    std::int64_t start = a.start_iter;
    if (a.mode != AdmitMode::Fresh) {
        start = std::max(start, versions_.maxVersionOfWorker(w));
        versions_.rejoinWorker(w, start);
    }

    // Rejoin resyncs to the canonical model, which already reflects
    // every averaged gradient the worker missed: drop its pending
    // copies or they would be applied twice. Resume keeps them — that
    // is the whole point of resuming.
    if (a.mode == AdmitMode::Rejoin)
        state_.clearWorker(w);

    peer.pending_pull = -1;
    peer.bye = false;

    Welcome wmsg;
    wmsg.nonce = h.nonce;
    wmsg.session = a.session;
    wmsg.resume_token = a.resume_token;
    wmsg.mode = a.mode;
    wmsg.start_iter = start;
    wmsg.epoch = table_.epoch();
    if (a.mode != AdmitMode::Resume)
        wmsg.model = modelBytes();

    std::ostringstream os;
    os << "admit w=" << w << " mode=" << admitModeName(a.mode)
       << " session=" << a.session << " start=" << start
       << " inc=" << h.incarnation
       << " model_bytes=" << wmsg.model.size()
       << " epoch=" << table_.epoch();
    logLine(fmt(now, os.str().c_str()));

    MessageKey key{static_cast<std::uint16_t>(w),
                   packVersion(0, ctrl_seq_++),
                   net::session::kRowWelcome, true};
    fabric_.sendTo(workerNode(w), key, net::session::encode(wmsg),
                   now + cfg_.welcome_timeout_s, {});
    answerReadyPulls();
}

void
ServerNode::onPush(const MessageKey &key,
                   std::vector<std::uint8_t> &&bytes)
{
    const std::size_t w = key.worker;
    if (w >= peers_.size() || !sessionCurrent(w, key.version))
        return;
    const std::int64_t iter = versionSeq(key.version);
    const std::size_t unit = key.row;
    if (unit >= partition_->unitCount())
        return;
    std::vector<float> decoded;
    if (!net::session::parseFloats(bytes, decoded) ||
        decoded.size() != partition_->unit(unit).width)
        return;

    // Application-level exactly-once: the version matrix is monotone
    // per (worker, unit), so a retransmitted or replayed push (e.g. a
    // restarted worker redoing its last iteration) is recorded, never
    // applied.
    if (iter <= versions_.get(w, unit)) {
        ++duplicate_pushes_;
        std::ostringstream os;
        os << "dup_push w=" << w << " iter=" << iter
           << " unit=" << unit;
        logLine(fmt(fabric_.now(), os.str().c_str()));
        return;
    }

    state_.accumulate(unit, decoded);
    state_.noteUpdate(unit, iter);
    versions_.update(w, unit, iter);

    // The canonical model eats the same 1/num share every outbox
    // gets, so a rejoiner resyncing from it owes nothing twice.
    const float inv =
        1.0f / static_cast<float>(workload_.workers());
    scaled_.resize(decoded.size());
    for (std::size_t i = 0; i < decoded.size(); ++i)
        scaled_[i] = decoded[i] * inv;
    const Unit &u = partition_->unit(unit);
    flat_->forEachRowChunk(
        u.begin, u.width,
        [&](std::size_t row, std::size_t col_begin, std::size_t count,
            std::size_t off) {
            opt_->applyRowRange(
                row, col_begin,
                std::span<const float>(scaled_.data() + off, count));
        });

    ++applied_pushes_;
    ++applies_since_ckpt_;
    std::ostringstream os;
    os << "apply w=" << w << " iter=" << iter << " unit=" << unit;
    logLine(fmt(fabric_.now(), os.str().c_str()));
    maybeCheckpoint();
    if (apply_hook_)
        apply_hook_(iter);
    answerReadyPulls();
}

void
ServerNode::onPullReq(const MessageKey &key,
                      std::vector<std::uint8_t> &&bytes)
{
    PullReq req;
    if (!net::session::parse(bytes, req) ||
        req.worker >= peers_.size())
        return;
    const std::size_t w = req.worker;
    if (!sessionCurrent(w, key.version))
        return;
    table_.noteProgress(w, req.iter - 1);
    peers_[w].pending_pull = req.iter;
    std::ostringstream os;
    os << "pull_req w=" << w << " iter=" << req.iter;
    logLine(fmt(fabric_.now(), os.str().c_str()));
    answerReadyPulls();
}

void
ServerNode::onHeartbeat(const MessageKey &key,
                        std::vector<std::uint8_t> &&bytes)
{
    Heartbeat hb;
    if (!net::session::parse(bytes, hb) ||
        hb.worker >= peers_.size())
        return;
    if (!sessionCurrent(hb.worker, key.version))
        return;
    if (tracker_.active(hb.worker))
        tracker_.observeHeartbeat(hb.worker, fabric_.now());
    table_.noteProgress(hb.worker, hb.iter);
}

void
ServerNode::onBye(const MessageKey &key,
                  std::vector<std::uint8_t> &&bytes)
{
    Bye bye;
    if (!net::session::parse(bytes, bye) ||
        bye.worker >= peers_.size())
        return;
    const std::size_t w = bye.worker;
    if (!sessionCurrent(w, key.version) || peers_[w].bye)
        return;
    table_.noteProgress(w, bye.done_iter);
    peers_[w].bye = true;
    peers_[w].pending_pull = -1;
    versions_.retireWorker(w);
    tracker_.deactivate(w);
    std::ostringstream os;
    os << "bye w=" << w << " done_iter=" << bye.done_iter;
    logLine(fmt(fabric_.now(), os.str().c_str()));
    answerReadyPulls();
    checkDone();
}

void
ServerNode::evaluateMembership()
{
    const double now = fabric_.now();
    for (const MembershipEvent &ev : tracker_.evaluate(now)) {
        std::ostringstream os;
        os << "member w=" << ev.worker
           << " from=" << memberStateName(ev.from)
           << " to=" << memberStateName(ev.to) << " phi=" << ev.phi;
        logLine(fmt(ev.time, os.str().c_str()));
        if (ev.to == MemberState::Dead)
            evictWorker(ev.worker);
    }
    if (!done_)
        member_timer_ = fabric_.after(cfg_.detector.check_interval_s,
                                      [this] { evaluateMembership(); });
    else
        member_timer_ = 0;
}

void
ServerNode::evictWorker(std::size_t w)
{
    if (peers_[w].bye)
        return;
    versions_.retireWorker(w);
    state_.clearWorker(w);
    peers_[w].pending_pull = -1;
    std::ostringstream os;
    os << "evict w=" << w;
    logLine(fmt(fabric_.now(), os.str().c_str()));
    answerReadyPulls();
}

bool
ServerNode::gateOpen(std::int64_t iter) const
{
    // RSP's gate (Algo 2): wait while n - min(V) >= threshold.
    return iter - versions_.minWorkerIteration() < cfg_.staleness;
}

void
ServerNode::answerReadyPulls()
{
    for (std::size_t w = 0; w < peers_.size(); ++w)
        if (peers_[w].pending_pull >= 0 &&
            gateOpen(peers_[w].pending_pull))
            answerPull(w, peers_[w].pending_pull);
}

void
ServerNode::answerPull(std::size_t w, std::int64_t iter)
{
    // The return connection can vanish independently of the pull
    // (dropped on a failed re-Hello): keep the pull and its pending
    // gradients queued until the worker reconnects or is evicted.
    if (!fabric_.hasPeer(workerNode(w)))
        return;
    PullData pd;
    pd.iter = iter;
    pd.min_done = versions_.minWorkerIteration();
    for (std::size_t u = 0; u < partition_->unitCount(); ++u) {
        if (!state_.hasPending(w, u))
            continue;
        UnitUpdate up;
        up.unit = static_cast<std::uint32_t>(u);
        std::span<float> pending = state_.pending(w, u);
        up.values.assign(pending.begin(), pending.end());
        pd.units.push_back(std::move(up));
        state_.clearPending(w, u);
    }
    peers_[w].pending_pull = -1;
    table_.noteResponse(w, iter);

    std::ostringstream os;
    os << "pull_answer w=" << w << " iter=" << iter
       << " units=" << pd.units.size();
    logLine(fmt(fabric_.now(), os.str().c_str()));

    MessageKey key{static_cast<std::uint16_t>(w),
                   packVersion(table_.sessionOf(w), iter),
                   net::session::kRowPullData, true};
    fabric_.sendTo(workerNode(w), key, net::session::encode(pd),
                   fabric_.now() + cfg_.pull_timeout_s, {});
}

void
ServerNode::maybeCheckpoint()
{
    if (cfg_.checkpoint_path.empty() || cfg_.checkpoint_every == 0 ||
        applies_since_ckpt_ < cfg_.checkpoint_every)
        return;
    checkpointNow();
}

void
ServerNode::checkpointNow()
{
    if (cfg_.checkpoint_path.empty())
        return;
    ServerCheckpoint ckpt;
    ckpt.iteration = versions_.minWorkerIteration();
    ckpt.msg_seq = ctrl_seq_;
    ckpt.versions = versions_.snapshot();
    ckpt.server = state_.snapshot();
    ckpt.tracker = mta_.snapshot();
    ckpt.epoch = table_.epoch();
    ckpt.sessions = table_.snapshot();
    ckpt.model = modelBytes();
    ckpt.worker_done.resize(peers_.size());
    for (std::size_t w = 0; w < peers_.size(); ++w)
        ckpt.worker_done[w] = peers_[w].bye ? 1 : 0;
    writeServerCheckpointFile(cfg_.checkpoint_path, ckpt);
    applies_since_ckpt_ = 0;
    std::ostringstream os;
    os << "checkpoint iter=" << ckpt.iteration
       << " applied=" << applied_pushes_;
    logLine(fmt(fabric_.now(), os.str().c_str()));
}

void
ServerNode::checkDone()
{
    for (const WorkerPeer &p : peers_)
        if (!p.bye)
            return;
    done_ = true;
    checkpointNow();
    logLine(fmt(fabric_.now(), "server_done"));
}

double
ServerNode::evaluateModel()
{
    return workload_.evaluate(*model_);
}

std::vector<std::uint8_t>
ServerNode::modelBytes()
{
    std::ostringstream os;
    nn::saveModel(os, *model_);
    const std::string s = os.str();
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

// --------------------------------------------------------------------
// WorkerNode
// --------------------------------------------------------------------

WorkerNode::WorkerNode(net::session::Fabric &fabric, Workload &workload,
                       const NodeTrainConfig &cfg, std::size_t worker,
                       const WorkerResumeState &resume, NodeLogger log)
    : fabric_(fabric), workload_(workload), cfg_(cfg), worker_(worker),
      log_(std::move(log)), model_(workload.buildReplica()),
      flat_(std::make_unique<FlatModel>(*model_)),
      partition_(
          std::make_unique<RowPartition>(*flat_, cfg.granularity)),
      opt_(std::make_unique<nn::SgdMomentum>(
          *model_, workload.optimizerConfig())),
      codec_(compress::makeCodec(cfg.codec)),
      sampler_(workload.makeSampler(worker)),
      incarnation_(resume.incarnation),
      resume_token_(resume.resume_token), epoch_(cfg.epoch),
      done_iter_(resume.last_done_iter)
{
    // A resume claim is only honest with the checkpointed model on
    // disk; without it, fall back to a fresh (token-less) handshake.
    if (resume_token_ != 0) {
        bool loaded = false;
        if (!cfg_.worker_state_dir.empty()) {
            try {
                nn::loadModelFile(cfg_.worker_state_dir + "/worker" +
                                      std::to_string(worker_) + ".rogm",
                                  *model_);
                loaded = true;
            } catch (const std::exception &) {
                loaded = false;
            }
        }
        if (!loaded) {
            resume_token_ = 0;
            done_iter_ = 0;
        }
    }
}

WorkerNode::~WorkerNode()
{
    if (hello_timer_ != 0)
        fabric_.cancelTimer(hello_timer_);
    if (heartbeat_timer_ != 0)
        fabric_.cancelTimer(heartbeat_timer_);
    if (server_watch_timer_ != 0)
        fabric_.cancelTimer(server_watch_timer_);
    fabric_.setMessageHandler({});
}

void
WorkerNode::logLine(const std::string &line)
{
    if (log_)
        log_(line);
}

void
WorkerNode::start(const std::string &server_host,
                  std::uint16_t server_port)
{
    server_host_ = server_host;
    server_port_ = server_port;
    fabric_.setMessageHandler(
        [this](const MessageKey &key, std::vector<std::uint8_t> &&b) {
            onMessage(key, std::move(b));
        });
    if (!fabric_.connectPeer(kServerNode, server_host_, server_port_)) {
        logLine(fmt(fabric_.now(), "connect_failed"));
        phase_ = Phase::Failed;
        return;
    }
    sendHello();
    armHelloRetry();
}

void
WorkerNode::onMessage(const MessageKey &key,
                      std::vector<std::uint8_t> &&bytes)
{
    // Every one of these rows only ever originates at the server:
    // each is proof of life for the response-gap failure detector.
    noteServerAlive();
    switch (key.row) {
    case net::session::kRowWelcome:
        onWelcome(std::move(bytes));
        return;
    case net::session::kRowReject:
        onReject(std::move(bytes));
        return;
    case net::session::kRowPullData:
        // Only this live session's responses count; a slow PullData
        // from a pre-restart session must not double-apply.
        if (session_ != 0 && versionScope(key.version) == session_)
            onPullData(std::move(bytes));
        return;
    default:
        return; // not addressed to a worker.
    }
}

void
WorkerNode::sendHello()
{
    hello_nonce_ = (static_cast<std::uint64_t>(worker_) << 40) ^
                   (static_cast<std::uint64_t>(incarnation_) << 20) ^
                   hello_seq_;
    Hello h;
    h.worker = static_cast<std::uint16_t>(worker_);
    h.incarnation = incarnation_;
    h.epoch = epoch_;
    h.resume_token = resume_token_;
    h.nonce = hello_nonce_;
    h.rx_port = fabric_.listenPort();
    h.last_done_iter = done_iter_;

    std::ostringstream os;
    os << "hello try=" << hello_tries_ << " inc=" << incarnation_
       << " token=" << resume_token_ << " done_iter=" << done_iter_;
    logLine(fmt(fabric_.now(), os.str().c_str()));

    MessageKey key{static_cast<std::uint16_t>(worker_),
                   packVersion(incarnation_, hello_seq_++),
                   net::session::kRowHello, false};
    fabric_.sendTo(kServerNode, key, net::session::encode(h),
                   fabric_.now() + cfg_.hello_retry_max_s, {});
}

void
WorkerNode::armHelloRetry()
{
    // Capped exponential: the same shape as the transport's retry
    // backoff, so a long server outage costs a bounded poll rate.
    const double exp2 = std::pow(
        2.0, static_cast<double>(std::min<std::size_t>(
                 hello_tries_, net::transport::kMaxBackoffExponent)));
    const double delay = std::min(cfg_.hello_retry_max_s,
                                  cfg_.hello_retry_base_s * exp2);
    hello_timer_ = fabric_.after(delay, [this] {
        hello_timer_ = 0;
        if (phase_ != Phase::Hello)
            return;
        if (++hello_tries_ >= cfg_.hello_max_tries) {
            logLine(fmt(fabric_.now(), "hello_giveup"));
            phase_ = Phase::Failed;
            return;
        }
        // The socket itself may be the problem (server restarted):
        // reconnect before retrying.
        fabric_.connectPeer(kServerNode, server_host_, server_port_);
        sendHello();
        armHelloRetry();
    });
}

void
WorkerNode::onWelcome(std::vector<std::uint8_t> &&bytes)
{
    Welcome w;
    if (!net::session::parse(bytes, w) || w.nonce != hello_nonce_ ||
        phase_ != Phase::Hello)
        return;
    if (hello_timer_ != 0) {
        fabric_.cancelTimer(hello_timer_);
        hello_timer_ = 0;
    }
    session_ = w.session;
    resume_token_ = w.resume_token;
    epoch_ = w.epoch;
    admit_mode_ = w.mode;
    done_iter_ = w.start_iter;
    hello_tries_ = 0;

    if (w.mode != AdmitMode::Resume && !w.model.empty()) {
        std::string s(w.model.begin(), w.model.end());
        std::istringstream is(s);
        nn::loadModel(is, *model_);
    }
    // Fresh transmission state for a fresh session: the codec's error
    // residual and the momentum buffers belong to the dead
    // incarnation's stream (they are not part of the resume
    // contract — the model checkpoint is).
    codec_ = compress::makeCodec(cfg_.codec);
    opt_ = std::make_unique<nn::SgdMomentum>(
        *model_, workload_.optimizerConfig());

    std::ostringstream os;
    os << "welcome mode=" << admitModeName(w.mode)
       << " session=" << session_ << " start=" << done_iter_
       << " epoch=" << epoch_ << " model_bytes=" << w.model.size();
    logLine(fmt(fabric_.now(), os.str().c_str()));

    hb_fail_streak_ = 0;
    armHeartbeat();
    armServerWatch();

    // A Resume admission whose start line sits exactly one short of
    // the parked push means the new server never applied it: re-send
    // the parked bytes under the fresh session scope instead of
    // recomputing (the codec residual has moved on). Any other
    // admission mode resynced the model, which already covers — or
    // deliberately discards — whatever was in flight.
    if (w.mode == AdmitMode::Resume && !parked_.empty() &&
        parked_iter_ == done_iter_ + 1) {
        repushParked();
        return;
    }
    parked_.clear();
    beginIteration();
}

void
WorkerNode::onReject(std::vector<std::uint8_t> &&bytes)
{
    Reject r;
    if (!net::session::parse(bytes, r) || r.nonce != hello_nonce_ ||
        phase_ != Phase::Hello)
        return;
    std::ostringstream os;
    os << "rejected reason=" << rejectReasonName(r.reason);
    logLine(fmt(fabric_.now(), os.str().c_str()));
    if (r.reason == RejectReason::BadEpoch) {
        epoch_ = r.server_epoch; // adopt and retry.
        // An epoch change means the server restarted with fresh
        // receiver state: wipe this link's per-key delivery memory
        // (it describes a dead process) and rebuild the connection.
        fabric_.resetPeer(kServerNode);
        fabric_.connectPeer(kServerNode, server_host_, server_port_);
    } else {
        resume_token_ = 0; // stale claim: re-enter fresh.
        done_iter_ = 0;
    }
    if (hello_timer_ != 0) {
        fabric_.cancelTimer(hello_timer_);
        hello_timer_ = 0;
    }
    ++hello_tries_;
    sendHello();
    armHelloRetry();
}

void
WorkerNode::beginIteration()
{
    iter_ = done_iter_ + 1;
    if (iter_ > cfg_.max_iters) {
        finishRun();
        return;
    }
    phase_ = Phase::Pushing;
    {
        std::ostringstream os;
        os << "iter=" << iter_ << " phase=push_begin";
        logLine(fmt(fabric_.now(), os.str().c_str()));
    }

    // One real training step (identical to the in-process engine).
    data::Batch batch = sampler_.sample(workload_.batchSize());
    model_->zeroGrad();
    const tensor::Tensor &out = model_->forward(batch.features);
    nn::LossResult loss =
        batch.labels.empty()
            ? nn::meanSquaredError(out, batch.targets)
            : nn::softmaxCrossEntropy(out, batch.labels);
    model_->backward(loss.grad);

    // Encode every synchronization unit through the codec and park
    // the bytes: if the server dies mid-push, the next admission can
    // re-send these exact payloads (the codec residual has already
    // advanced, so a recompute would not reproduce them).
    parked_.clear();
    parked_.reserve(partition_->unitCount());
    parked_iter_ = iter_;
    for (std::size_t u = 0; u < partition_->unitCount(); ++u) {
        const Unit &unit = partition_->unit(u);
        grad_.resize(unit.width);
        decoded_.resize(unit.width);
        flat_->gatherGrad(unit.begin, grad_);
        codec_->transcodeRow(u, grad_, decoded_);
        parked_.push_back(net::session::encodeFloats(decoded_));
    }
    sendParked();
}

void
WorkerNode::sendParked()
{
    // Deadline-less with unbounded chunk retries: a partition stalls
    // the run, it does not corrupt it.
    pushes_in_flight_ = parked_.size();
    push_failed_ = false;
    const std::uint32_t session = session_;
    for (std::size_t u = 0; u < parked_.size(); ++u) {
        MessageKey key{static_cast<std::uint16_t>(worker_),
                       packVersion(session, iter_),
                       static_cast<std::uint32_t>(u), false};
        fabric_.sendTo(
            kServerNode, key, parked_[u], kNoDeadline,
            [this, session](bool ok) {
                if (session != session_ || phase_ != Phase::Pushing)
                    return; // superseded by a resync.
                if (!ok)
                    push_failed_ = true;
                if (--pushes_in_flight_ == 0)
                    onPushesSettled();
            });
    }
}

void
WorkerNode::repushParked()
{
    iter_ = parked_iter_;
    phase_ = Phase::Pushing;
    std::ostringstream os;
    os << "iter=" << iter_ << " phase=repush units=" << parked_.size();
    logLine(fmt(fabric_.now(), os.str().c_str()));
    sendParked();
}

void
WorkerNode::onPushesSettled()
{
    if (push_failed_) {
        resync("push_failed");
        return;
    }
    {
        std::ostringstream os;
        os << "iter=" << iter_ << " phase=push_done";
        logLine(fmt(fabric_.now(), os.str().c_str()));
    }
    phase_ = Phase::PullWait;
    PullReq req;
    req.worker = static_cast<std::uint16_t>(worker_);
    req.iter = iter_;
    MessageKey key{static_cast<std::uint16_t>(worker_),
                   packVersion(session_, iter_),
                   net::session::kRowPullReq, false};
    const std::uint32_t session = session_;
    fabric_.sendTo(kServerNode, key, net::session::encode(req),
                   kNoDeadline, [this, session](bool ok) {
                       if (!ok && session == session_ &&
                           phase_ == Phase::PullWait)
                           resync("pull_req_failed");
                   });
}

void
WorkerNode::onPullData(std::vector<std::uint8_t> &&bytes)
{
    PullData pd;
    if (!net::session::parse(bytes, pd) || phase_ != Phase::PullWait ||
        pd.iter != iter_)
        return;
    for (const UnitUpdate &u : pd.units)
        applyUnit(u.unit, u.values);
    done_iter_ = iter_;
    parked_.clear(); // the iteration landed; nothing left to re-send.
    writeLocalCheckpoint();
    std::ostringstream os;
    os << "iter=" << iter_ << " phase=applied units=" << pd.units.size();
    logLine(fmt(fabric_.now(), os.str().c_str()));
    beginIteration();
}

void
WorkerNode::applyUnit(std::uint32_t unit, std::span<const float> values)
{
    if (unit >= partition_->unitCount() ||
        values.size() != partition_->unit(unit).width)
        return;
    const Unit &u = partition_->unit(unit);
    flat_->forEachRowChunk(
        u.begin, u.width,
        [&](std::size_t row, std::size_t col_begin, std::size_t count,
            std::size_t off) {
            opt_->applyRowRange(
                row, col_begin,
                std::span<const float>(values.data() + off, count));
        });
}

void
WorkerNode::writeLocalCheckpoint()
{
    if (cfg_.worker_state_dir.empty())
        return;
    const std::string base =
        cfg_.worker_state_dir + "/worker" + std::to_string(worker_);
    nn::saveModelFile(base + ".rogm", *model_);
    // Tiny metadata sidecar, atomically renamed into place: token,
    // durable iteration, incarnation.
    const std::string tmp = base + ".meta.tmp";
    {
        std::ostringstream os;
        os << resume_token_ << ' ' << done_iter_ << ' '
           << incarnation_ << '\n';
        FILE *f = std::fopen(tmp.c_str(), "w");
        if (f == nullptr)
            return;
        const std::string s = os.str();
        std::fwrite(s.data(), 1, s.size(), f);
        std::fclose(f);
    }
    std::rename(tmp.c_str(), (base + ".meta").c_str());
}

void
WorkerNode::finishRun()
{
    phase_ = Phase::Leaving;
    if (heartbeat_timer_ != 0) {
        fabric_.cancelTimer(heartbeat_timer_);
        heartbeat_timer_ = 0;
    }
    if (server_watch_timer_ != 0) {
        fabric_.cancelTimer(server_watch_timer_);
        server_watch_timer_ = 0;
    }
    Bye bye;
    bye.worker = static_cast<std::uint16_t>(worker_);
    bye.done_iter = done_iter_;
    std::ostringstream os;
    os << "bye done_iter=" << done_iter_;
    logLine(fmt(fabric_.now(), os.str().c_str()));
    MessageKey key{static_cast<std::uint16_t>(worker_),
                   packVersion(session_, 0), net::session::kRowBye,
                   false};
    fabric_.sendTo(kServerNode, key, net::session::encode(bye),
                   fabric_.now() + cfg_.welcome_timeout_s,
                   [this](bool) { phase_ = Phase::Done; });
}

void
WorkerNode::armHeartbeat()
{
    heartbeat_timer_ =
        fabric_.after(cfg_.detector.heartbeat_interval_s, [this] {
            heartbeat_timer_ = 0;
            if (!admitted() || phase_ == Phase::Leaving ||
                phase_ == Phase::Done)
                return;
            sendHeartbeat();
            armHeartbeat();
        });
}

void
WorkerNode::sendHeartbeat()
{
    Heartbeat hb;
    hb.worker = static_cast<std::uint16_t>(worker_);
    hb.iter = done_iter_;
    MessageKey key{static_cast<std::uint16_t>(worker_),
                   packVersion(session_, hb_seq_++),
                   net::session::kRowHeartbeat, false};
    // Best effort with a short deadline: a heartbeat that cannot get
    // through quickly is worthless, and must never pile up retries.
    // A *streak* of failures, though, is transport-level evidence the
    // server is gone — faster than waiting out the response-gap phi.
    const std::uint32_t session = session_;
    fabric_.sendTo(
        kServerNode, key, net::session::encode(hb),
        fabric_.now() + 2.0 * cfg_.detector.heartbeat_interval_s,
        [this, session](bool ok) {
            if (session != session_)
                return; // superseded by a resync.
            if (ok) {
                hb_fail_streak_ = 0;
                return;
            }
            if (++hb_fail_streak_ < 3 ||
                (phase_ != Phase::Pushing && phase_ != Phase::PullWait))
                return;
            hb_fail_streak_ = 0;
            resync("heartbeat_failed");
        });
}

void
WorkerNode::noteServerAlive()
{
    const double now = fabric_.now();
    if (last_server_msg_ > 0.0) {
        const double gap = now - last_server_msg_;
        // Same EWMA shape as the server's heartbeat detector.
        server_gap_ewma_ = server_gap_samples_ == 0
                               ? gap
                               : 0.8 * server_gap_ewma_ + 0.2 * gap;
        ++server_gap_samples_;
    }
    last_server_msg_ = now;
}

void
WorkerNode::armServerWatch()
{
    if (server_watch_timer_ != 0)
        fabric_.cancelTimer(server_watch_timer_);
    if (last_server_msg_ <= 0.0)
        last_server_msg_ = fabric_.now();
    server_watch_timer_ =
        fabric_.after(cfg_.server_check_interval_s, [this] {
            server_watch_timer_ = 0;
            checkServer();
        });
}

void
WorkerNode::checkServer()
{
    // Only a mid-iteration worker expects the server to answer; in
    // Hello the capped-retry loop is already probing, and a leaving
    // or finished worker has nothing left to wait for.
    if (phase_ != Phase::Pushing && phase_ != Phase::PullWait)
        return;
    const double now = fabric_.now();
    const double silence = now - last_server_msg_;
    bool suspect = silence >= cfg_.server_silence_bound_s;
    if (!suspect && server_gap_samples_ >= cfg_.server_phi_min_samples) {
        constexpr double kLn10 = 2.302585092994046;
        const double mean =
            std::max(server_gap_ewma_, cfg_.server_check_interval_s);
        suspect = silence / (mean * kLn10) >= cfg_.server_phi_suspect;
    }
    if (suspect) {
        std::ostringstream os;
        os << "server_suspect silence=" << silence;
        logLine(fmt(now, os.str().c_str()));
        resync("server_suspect");
        return;
    }
    armServerWatch();
}

void
WorkerNode::resync(const char *why)
{
    std::ostringstream os;
    os << "resync why=" << why;
    logLine(fmt(fabric_.now(), os.str().c_str()));
    if (heartbeat_timer_ != 0) {
        fabric_.cancelTimer(heartbeat_timer_);
        heartbeat_timer_ = 0;
    }
    if (hello_timer_ != 0) {
        fabric_.cancelTimer(hello_timer_);
        hello_timer_ = 0;
    }
    if (server_watch_timer_ != 0) {
        fabric_.cancelTimer(server_watch_timer_);
        server_watch_timer_ = 0;
    }
    session_ = 0;
    phase_ = Phase::Hello;
    hello_tries_ = 0;
    hb_fail_streak_ = 0;
    // The next incarnation of the server speaks on its own cadence:
    // old response-gap statistics would only poison the detector.
    last_server_msg_ = 0.0;
    server_gap_ewma_ = 0.0;
    server_gap_samples_ = 0;
    fabric_.dropPeer(kServerNode);
    fabric_.connectPeer(kServerNode, server_host_, server_port_);
    sendHello();
    armHelloRetry();
}

std::int64_t
WorkerNode::pushVersion(std::int64_t iter) const
{
    return packVersion(session_, iter);
}

} // namespace core
} // namespace rog
