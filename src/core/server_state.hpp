/**
 * @file
 * Parameter-server state (Fig. 5, right side) and the shared MTA-time
 * tracker of ATP.
 *
 * The server keeps *one gradient copy per worker* (Sec. III-B): when
 * worker r pushes row i at iteration n, g'_i / num is accumulated into
 * every worker's copy; when the server later sends row i to worker s,
 * only s's copy of row i is zeroed. Together with worker-side
 * accumulation this guarantees every computed gradient is eventually
 * applied to every replica exactly once (gradient conservation).
 */
#ifndef ROG_CORE_SERVER_STATE_HPP
#define ROG_CORE_SERVER_STATE_HPP

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/math_util.hpp"
#include "core/row_partition.hpp"
#include "core/version_storage.hpp"

namespace rog {
namespace core {

/** Plain-data copy of a ServerState's volatile fields (checkpointing). */
struct ServerStateSnapshot
{
    std::vector<std::vector<std::vector<float>>> outbox;
    std::vector<std::vector<std::uint8_t>> has_pending;
    std::vector<std::int64_t> last_update;
};

/** Plain-data copy of an MtaTimeTracker's estimates (checkpointing). */
struct MtaTrackerSnapshot
{
    std::vector<double> rate;          //!< EWMA value per device.
    std::vector<std::uint8_t> seeded;  //!< EWMA seeded flag per device.
    std::vector<double> mta_bytes;
};

/** Accumulated averaged gradients awaiting pull, per worker per unit. */
class ServerState
{
  public:
    ServerState(std::size_t workers, const RowPartition &partition);

    std::size_t workers() const { return outbox_.size(); }
    std::size_t units() const { return unit_widths_.size(); }

    /**
     * Accumulate a pushed (already decoded) gradient of @p unit from
     * one worker into *every* worker's copy, scaled by 1/num_workers.
     */
    void accumulate(std::size_t unit, std::span<const float> decoded);

    /** Pending averaged gradient of @p unit for @p worker (mutable). */
    std::span<float> pending(std::size_t worker, std::size_t unit);

    /** True if @p worker has a nonzero pending gradient for @p unit. */
    bool hasPending(std::size_t worker, std::size_t unit) const;

    /** Zero @p worker's copy of @p unit after it was sent. */
    void clearPending(std::size_t worker, std::size_t unit);

    /**
     * Drop every pending copy held for @p worker — used when a crashed
     * worker rejoins from the current model version, which already
     * reflects the averaged gradients it missed.
     */
    void clearWorker(std::size_t worker);

    /** Mean |pending| of @p unit for @p worker (importance input). */
    double pendingMeanAbs(std::size_t worker, std::size_t unit) const;

    /** Latest iteration that updated @p unit (any worker). */
    std::int64_t lastUpdate(std::size_t unit) const;

    /** Record that @p unit was updated at iteration @p iter. */
    void noteUpdate(std::size_t unit, std::int64_t iter);

    /** Copy out outbox + pending flags + update stamps. */
    ServerStateSnapshot snapshot() const;

    /**
     * Overwrite from a snapshot of the *same shape*; fails (throws)
     * on worker/unit/width mismatch.
     */
    void restore(const ServerStateSnapshot &s);

  private:
    std::vector<std::vector<std::vector<float>>> outbox_;
    std::vector<std::vector<bool>> has_pending_;
    std::vector<std::size_t> unit_widths_;
    std::vector<std::int64_t> last_update_;
    double inv_workers_;
};

/**
 * ATP's shared MTA-time estimate (Algo 4's GetMTATime /
 * UpdateMTATime): each device reports its observed throughput after a
 * push/pull; the tracker estimates, per device, the seconds that
 * device needs to transmit an MTA's worth of bytes, and tMTA is the
 * maximum over devices — so non-stragglers keep transmitting for as
 * long as the slowest device needs for its minimum amount, aligning
 * transmission times.
 */
class MtaTimeTracker
{
  public:
    /**
     * @param workers device count.
     * @param alpha EWMA weight for new throughput observations.
     * @param floor_seconds / ceil_seconds clamp on tMTA.
     */
    explicit MtaTimeTracker(std::size_t workers, double alpha = 0.35,
                            double floor_seconds = 0.05,
                            double ceil_seconds = 30.0);

    /**
     * Current tMTA: max over devices of their estimated MTA
     * transmission time; +infinity until the first report (the first
     * iteration transmits everything, like SSP).
     */
    double mtaTime() const;

    /**
     * Report one observed transmission.
     *
     * @param worker reporting device.
     * @param bytes_transmitted total bytes that left the device.
     * @param elapsed_seconds wall time of the transmission. @pre > 0
     * @param mta_bytes current size of this device's MTA in bytes.
     */
    void report(std::size_t worker, double bytes_transmitted,
                double elapsed_seconds, double mta_bytes);

    /** Estimated seconds for @p worker to transmit its MTA. */
    double estimateFor(std::size_t worker) const;

    /** Copy out the per-device rate estimates and MTA sizes. */
    MtaTrackerSnapshot snapshot() const;

    /** Overwrite from a same-shape snapshot; fails (throws) else. */
    void restore(const MtaTrackerSnapshot &s);

  private:
    std::vector<Ewma> rate_;           //!< bytes/sec per device.
    std::vector<double> mta_bytes_;    //!< latest MTA size per device.
    double floor_seconds_;
    double ceil_seconds_;
};

} // namespace core
} // namespace rog

#endif // ROG_CORE_SERVER_STATE_HPP
