/**
 * @file
 * Post-mortem invariant verification of a chaos run.
 *
 * The chaos supervisor (tools/rog_chaos) SIGKILLs workers mid-push,
 * restarts them, and injects seeded wire faults; this checker then
 * reads only the run's on-disk artifacts — no live process state —
 * and decides whether the system stayed correct:
 *
 *  1. The server checkpoint parses with a valid CRC (crash-consistent
 *     write survived the run).
 *  2. The final model file parses with a valid CRC and evaluates to a
 *     finite metric.
 *  3. No (worker, iteration, unit) gradient was applied twice
 *     (application-level exactly-once, from the server run log).
 *  4. The server's transport event log shows no receiver-side
 *     exactly-once violation: at most one Deliver per message key, at
 *     most one fresh Accept per (key, chunk).
 *  5. Every killed worker was either evicted or re-admitted (and when
 *     the run requires it, finished with a Bye).
 *  6. The final metric is within tolerance of the DES twin of the
 *     same seed and plan (the twin replays the server-crash fault
 *     plan in simulation when the run used one).
 *  7. When the supervisor killed the server, each restart is visible
 *     as a recovered server_start under a strictly higher epoch, no
 *     gradient the checkpoint already covered is re-applied by a
 *     later incarnation, and every worker that finished after the
 *     last restart was re-admitted under the final epoch.
 *
 * Violations are returned as human-readable strings; an empty list is
 * a passing run.
 */
#ifndef ROG_CORE_CHAOS_CHECK_HPP
#define ROG_CORE_CHAOS_CHECK_HPP

#include <string>
#include <vector>

#include "core/node_runner.hpp"

namespace rog {
namespace core {

struct ChaosCheckOptions
{
    /** Workers the supervisor killed at least once. */
    std::vector<std::size_t> killed_workers;

    /** Require a Bye from every worker (restart-all scenarios). */
    bool require_all_bye = true;

    /** |metric - twin metric| bound, in metric units (accuracy
     *  percentage points for CRUDA). */
    double metric_tolerance = 15.0;

    /** Skip invariant 6 when no DES twin summary exists. */
    bool require_twin = true;

    /** Times the supervisor SIGKILLed + restarted the *server*. When
     *  > 0 the checker additionally requires: one server_start line
     *  per incarnation, the last one recovered from a checkpoint, a
     *  strictly rising epoch, and every worker that finished after
     *  the last restart re-admitted under the final epoch. */
    std::size_t server_restarts = 0;
};

struct ChaosCheckResult
{
    bool ok = false;
    std::vector<std::string> violations;
    /** One-line-per-check human readable report. */
    std::string report;
};

/** Verify the artifacts under cfg.artifact_dir. */
ChaosCheckResult checkChaosRun(const NodeRunConfig &cfg,
                               const ChaosCheckOptions &opts);

} // namespace core
} // namespace rog

#endif // ROG_CORE_CHAOS_CHECK_HPP
