#include "core/failure_detector.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace rog {
namespace core {

namespace {

// EWMA weight for inter-arrival estimates: light enough to adapt to
// a congested link within a handful of beats, heavy enough that one
// delayed beat does not halve the estimate.
constexpr double kIntervalAlpha = 0.25;

constexpr double kLn10 = 2.302585092994046;

} // namespace

const char *
memberStateName(MemberState s)
{
    switch (s) {
    case MemberState::Alive: return "alive";
    case MemberState::Suspect: return "suspect";
    case MemberState::Dead: return "dead";
    case MemberState::Rejoining: return "rejoining";
    }
    return "?";
}

std::string
FailureDetectorConfig::validationError() const
{
    if (heartbeat_interval_s <= 0.0)
        return "heartbeat_interval_s must be positive";
    if (check_interval_s <= 0.0)
        return "check_interval_s must be positive";
    if (phi_suspect <= 0.0 || phi_evict < phi_suspect)
        return "need 0 < phi_suspect <= phi_evict";
    if (detection_bound_s <= heartbeat_interval_s)
        return "detection_bound_s must exceed the heartbeat interval";
    if (heartbeat_bytes == 0)
        return "heartbeat_bytes must be positive";
    return "";
}

MembershipTracker::MembershipTracker(std::size_t workers,
                                     const FailureDetectorConfig &cfg)
    : cfg_(cfg), members_(workers)
{
    ROG_ASSERT(workers > 0, "tracker needs at least one worker");
    const std::string err = cfg.validationError();
    if (!err.empty())
        ROG_FATAL("bad failure detector config: ", err);
}

void
MembershipTracker::observeHeartbeat(std::size_t worker, double now)
{
    ROG_ASSERT(worker < members_.size(), "worker out of range");
    Member &m = members_[worker];
    if (!m.active)
        return;
    if (m.samples > 0) {
        const double gap = std::max(now - m.last_arrival, 0.0);
        m.mean_interval = m.samples == 1
                              ? gap
                              : (1.0 - kIntervalAlpha) * m.mean_interval +
                                    kIntervalAlpha * gap;
    }
    m.last_arrival = now;
    ++m.samples;
    // A heartbeat from a Suspect clears the suspicion immediately;
    // Dead workers stay dead until the engine resyncs them (their
    // version rows were already reclaimed).
    if (m.state == MemberState::Suspect)
        transition(m, worker, now, MemberState::Alive, 0.0, nullptr);
}

double
MembershipTracker::silence(std::size_t worker, double now) const
{
    ROG_ASSERT(worker < members_.size(), "worker out of range");
    const Member &m = members_[worker];
    return std::max(now - m.last_arrival, 0.0);
}

double
MembershipTracker::phi(std::size_t worker, double now) const
{
    ROG_ASSERT(worker < members_.size(), "worker out of range");
    const Member &m = members_[worker];
    if (m.samples < cfg_.min_samples)
        return 0.0;
    // Exponential arrival model: P(silence > t) = exp(-t / mean), so
    // phi = -log10 P = silence / (mean * ln 10). The expected gap is
    // at least the configured send interval even if observed arrivals
    // bunched up tighter.
    const double mean =
        std::max(m.mean_interval, cfg_.heartbeat_interval_s);
    return silence(worker, now) / (mean * kLn10);
}

void
MembershipTracker::transition(Member &m, std::size_t worker, double now,
                              MemberState to, double phi_now,
                              std::vector<MembershipEvent> *out)
{
    ROG_ASSERT(m.state != to, "self transition");
    MembershipEvent e;
    e.time = now;
    e.worker = worker;
    e.from = m.state;
    e.to = to;
    e.phi = phi_now;
    m.state = to;
    history_.push_back(e);
    if (out)
        out->push_back(e);
}

std::vector<MembershipEvent>
MembershipTracker::evaluate(double now)
{
    std::vector<MembershipEvent> out;
    for (std::size_t w = 0; w < members_.size(); ++w) {
        Member &m = members_[w];
        if (!m.active)
            continue;
        if (m.state != MemberState::Alive &&
            m.state != MemberState::Suspect)
            continue;
        // The hard bound counts silence from the last arrival — or
        // from group start / resync for a worker that never got a
        // beat out — so even a crash before the first heartbeat is
        // detected within the bound.
        const double p = phi(w, now);
        const bool over_bound =
            silence(w, now) >= cfg_.detection_bound_s;
        if (over_bound || p >= cfg_.phi_evict) {
            if (m.state == MemberState::Alive)
                transition(m, w, now, MemberState::Suspect, p, &out);
            transition(m, w, now, MemberState::Dead, p, &out);
        } else if (p >= cfg_.phi_suspect &&
                   m.state == MemberState::Alive) {
            transition(m, w, now, MemberState::Suspect, p, &out);
        }
    }
    return out;
}

MemberState
MembershipTracker::state(std::size_t worker) const
{
    ROG_ASSERT(worker < members_.size(), "worker out of range");
    return members_[worker].state;
}

void
MembershipTracker::markRejoining(std::size_t worker, double now)
{
    ROG_ASSERT(worker < members_.size(), "worker out of range");
    Member &m = members_[worker];
    if (!m.active || m.state == MemberState::Rejoining)
        return;
    ROG_ASSERT(m.state == MemberState::Dead,
               "only a dead worker can start rejoining");
    transition(m, worker, now, MemberState::Rejoining, 0.0, nullptr);
}

void
MembershipTracker::markRejoined(std::size_t worker, double now)
{
    ROG_ASSERT(worker < members_.size(), "worker out of range");
    Member &m = members_[worker];
    if (!m.active)
        return;
    ROG_ASSERT(m.state == MemberState::Rejoining,
               "markRejoined without markRejoining");
    m.last_arrival = now;
    m.mean_interval = 0.0;
    m.samples = 0;
    transition(m, worker, now, MemberState::Alive, 0.0, nullptr);
}

void
MembershipTracker::resetStats(std::size_t worker, double now)
{
    ROG_ASSERT(worker < members_.size(), "worker out of range");
    Member &m = members_[worker];
    if (!m.active)
        return;
    ROG_ASSERT(m.state == MemberState::Alive ||
                   m.state == MemberState::Suspect,
               "resetStats on a dead worker; use markRejoining");
    m.last_arrival = now;
    m.mean_interval = 0.0;
    m.samples = 0;
    if (m.state == MemberState::Suspect)
        transition(m, worker, now, MemberState::Alive, 0.0, nullptr);
}

void
MembershipTracker::deactivate(std::size_t worker)
{
    ROG_ASSERT(worker < members_.size(), "worker out of range");
    members_[worker].active = false;
}

bool
MembershipTracker::active(std::size_t worker) const
{
    ROG_ASSERT(worker < members_.size(), "worker out of range");
    return members_[worker].active;
}

std::size_t
MembershipTracker::participantCount() const
{
    std::size_t n = 0;
    for (const Member &m : members_)
        if (m.active && (m.state == MemberState::Alive ||
                         m.state == MemberState::Suspect))
            ++n;
    return n;
}

} // namespace core
} // namespace rog
