#include "core/node_runner.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/workloads.hpp"
#include "net/session/des_fabric.hpp"
#include "net/session/socket_fabric.hpp"
#include "nn/serialize.hpp"
#include "sim/simulation.hpp"

namespace rog {
namespace core {

namespace {

/** Line-buffered artifact log: every line hits the disk immediately,
 *  because the interesting processes are the ones that get SIGKILLed
 *  mid-sentence. */
class LineLog
{
  public:
    explicit LineLog(const std::string &path)
    {
        if (!path.empty())
            f_ = std::fopen(path.c_str(), "a");
    }

    ~LineLog()
    {
        if (f_ != nullptr)
            std::fclose(f_);
    }

    void
    line(const std::string &s)
    {
        if (f_ == nullptr)
            return;
        std::fwrite(s.data(), 1, s.size(), f_);
        std::fputc('\n', f_);
        std::fflush(f_);
    }

    NodeLogger
    logger()
    {
        if (f_ == nullptr)
            return {};
        return [this](const std::string &s) { line(s); };
    }

  private:
    FILE *f_ = nullptr;
};

void
writeEventLog(const std::string &path,
              const std::vector<net::transport::TransportEvent> &events)
{
    if (path.empty())
        return;
    std::ofstream os(path, std::ios::trunc);
    for (const auto &ev : events)
        os << net::transport::toString(ev) << '\n';
}

net::session::SocketFabricOptions
fabricOptions(const NodeRunConfig &cfg, bool faults,
              std::uint16_t listen_port)
{
    net::session::SocketFabricOptions o;
    o.kind = cfg.backend;
    o.transport = cfg.transport;
    o.socket = cfg.socket;
    o.fault_plan = cfg.fault_plan;
    o.inject_faults = faults;
    o.listen_port = listen_port;
    return o;
}

} // namespace

NodeRunConfig
chaosRunDefaults()
{
    NodeRunConfig cfg;
    cfg.train.max_iters = 12;
    cfg.train.staleness = 3;
    cfg.train.checkpoint_every = 8;

    // Fast detection so a SIGKILLed worker is evicted in about a
    // second; restarts usually beat the bound and re-enter as a
    // planned rejoin instead.
    cfg.train.detector.heartbeat_interval_s = 0.1;
    cfg.train.detector.check_interval_s = 0.05;
    cfg.train.detector.detection_bound_s = 1.5;
    cfg.train.detector.min_samples = 3;

    cfg.train.welcome_timeout_s = 3.0;
    cfg.train.pull_timeout_s = 6.0;
    cfg.train.hello_retry_base_s = 0.1;
    cfg.train.hello_retry_max_s = 1.0;
    cfg.train.hello_max_tries = 60;

    // Worker-side server failure detection: quick checks, a silence
    // bound a bit past the worst legitimate pull stall (a dead peer
    // worker holds the RSP gate for detection_bound + restart time).
    cfg.train.server_check_interval_s = 0.1;
    cfg.train.server_silence_bound_s = 2.5;
    cfg.train.server_phi_suspect = 6.0;

    // A restarted server reclaims its port even if the kernel is
    // still tearing down its predecessor's socket.
    cfg.socket.bind_retry_window_s = 3.0;

    // Pushes ride out partitions: unbounded chunk retries, quick
    // capped backoff.
    cfg.transport.max_attempts_per_chunk = 0;
    cfg.transport.backoff_base_s = 0.02;
    cfg.transport.backoff_max_s = 0.25;
    cfg.socket.ack_timeout_s = 0.1;
    return cfg;
}

std::unique_ptr<Workload>
makeNodeWorkload(const NodeRunConfig &cfg)
{
    // Small enough that a Welcome's model resync fits one transport
    // chunk and a full chaos fleet converges in seconds, big enough
    // that row-granularity partitioning yields a real unit fan-out.
    CrudaWorkloadConfig wc;
    wc.data.input_dim = 8;
    wc.data.classes = 4;
    wc.data.train_samples = 240;
    wc.data.test_samples = 80;
    wc.data.seed = cfg.workload_seed;
    wc.model = nn::ClassifierConfig{8, {12}, 4};
    wc.workers = cfg.workers;
    wc.batch_size = 4;
    // Momentum-free so the canonical server replica (per-push applies)
    // and the worker replicas (per-pull aggregate applies) follow the
    // same additive trajectory.
    wc.opt = nn::OptimizerConfig{0.05f, 0.0f};
    wc.pretrain_iters = 40;
    wc.pretrain_batch = 16;
    wc.eval_subset = 80;
    wc.seed = cfg.workload_seed;
    return std::make_unique<CrudaWorkload>(wc);
}

WorkerResumeState
loadWorkerResume(const std::string &state_dir, std::size_t worker)
{
    WorkerResumeState r;
    if (state_dir.empty())
        return r;
    std::ifstream is(state_dir + "/worker" + std::to_string(worker) +
                     ".meta");
    std::uint64_t token = 0;
    std::int64_t iter = 0;
    std::uint32_t inc = 0;
    if (is >> token >> iter >> inc) {
        r.resume_token = token;
        r.last_done_iter = iter;
        r.incarnation = inc + 1; // this is a new process.
    }
    return r;
}

ServerRunResult
runServerNode(const NodeRunConfig &cfg,
              const std::function<void(std::uint16_t)> &on_listen)
{
    ServerRunResult res;
    std::unique_ptr<Workload> workload = makeNodeWorkload(cfg);
    res.metric_name = workload->metricName();

    PollLoop loop;
    // The server never injects faults: perturbation belongs on the
    // worker->server push path where the chaos plan puts it.
    net::session::SocketFabric fabric(
        loop, net::session::kServerNode,
        fabricOptions(cfg, /*faults=*/false, cfg.listen_port));
    if (!fabric.ok())
        return res;
    if (on_listen)
        on_listen(fabric.listenPort());

    NodeTrainConfig train = cfg.train;
    if (!cfg.artifact_dir.empty() && train.checkpoint_path.empty())
        train.checkpoint_path = cfg.artifact_dir + "/checkpoint.rogs";

    LineLog log(cfg.artifact_dir.empty()
                    ? std::string()
                    : cfg.artifact_dir + "/server_run.log");
    ServerNode server(fabric, *workload, train, log.logger());
    server.start();

    const double deadline = loop.now() + cfg.run_timeout_s;
    while (!server.done() && loop.now() < deadline)
        loop.step(0.05);

    res.done = server.done();
    res.metric = server.evaluateModel();
    res.applied_pushes = server.appliedPushes();
    res.duplicate_pushes = server.duplicatePushes();
    res.stale_drops = server.staleDrops();
    res.epoch = server.epoch();
    res.recovered = server.recovered();
    if (!res.done)
        log.line("server_timeout");

    if (!cfg.artifact_dir.empty()) {
        server.checkpointNow();
        nn::saveModelFile(cfg.artifact_dir + "/model.rogm",
                          server.model());
        writeEventLog(cfg.artifact_dir + "/server_events.log",
                      fabric.receiverLog());
        std::ofstream sum(cfg.artifact_dir + "/summary.txt",
                          std::ios::trunc);
        sum << "done " << (res.done ? 1 : 0) << '\n'
            << "metric_name " << res.metric_name << '\n'
            << "metric " << res.metric << '\n'
            << "applied_pushes " << res.applied_pushes << '\n'
            << "duplicate_pushes " << res.duplicate_pushes << '\n'
            << "stale_drops " << res.stale_drops << '\n'
            << "min_worker_iteration " << server.minWorkerIteration()
            << '\n'
            << "epoch " << res.epoch << '\n'
            << "recovered " << (res.recovered ? 1 : 0) << '\n';
    }
    return res;
}

WorkerRunResult
runWorkerNode(const NodeRunConfig &cfg, std::size_t worker,
              const std::string &host, std::uint16_t port)
{
    WorkerRunResult res;
    std::unique_ptr<Workload> workload = makeNodeWorkload(cfg);

    PollLoop loop;
    net::session::SocketFabric fabric(
        loop, net::session::workerNode(worker),
        fabricOptions(cfg, cfg.inject_faults, /*listen_port=*/0));
    if (!fabric.ok()) {
        res.failed = true;
        return res;
    }

    const WorkerResumeState resume =
        loadWorkerResume(cfg.train.worker_state_dir, worker);
    LineLog log(cfg.artifact_dir.empty()
                    ? std::string()
                    : cfg.artifact_dir + "/worker" +
                          std::to_string(worker) + ".log");
    {
        std::ostringstream os;
        os << "worker_start w=" << worker
           << " inc=" << resume.incarnation
           << " token=" << resume.resume_token
           << " done_iter=" << resume.last_done_iter;
        log.line(os.str());
    }
    WorkerNode node(fabric, *workload, cfg.train, worker, resume,
                    log.logger());
    node.start(host, port);

    const double deadline = loop.now() + cfg.run_timeout_s;
    while (!node.done() && !node.failed() && loop.now() < deadline)
        loop.step(0.05);

    res.done = node.done();
    res.failed = node.failed();
    res.done_iter = node.iter();
    if (!res.done && !res.failed)
        log.line("worker_timeout");
    return res;
}

DesTwinResult
runDesTwin(const NodeRunConfig &cfg)
{
    DesTwinResult res;
    std::unique_ptr<Workload> workload = makeNodeWorkload(cfg);
    res.metric_name = workload->metricName();

    sim::Simulation sim;
    net::session::DesFabricNet net(sim, cfg.des_rate_bps,
                                   cfg.transport);

    // The twin ignores socket-only knobs (fault plan, ack timeouts)
    // but shares the training plan, seeds, detector tuning, and
    // transport config with the socket run it twins.
    NodeTrainConfig train = cfg.train;
    train.worker_state_dir.clear(); // no process restarts to resume.
    train.checkpoint_path.clear();

    // The server_crash fault plan needs a checkpoint to recover from.
    const bool crash_plan =
        cfg.server_crash_iter > 0 && !cfg.artifact_dir.empty();
    if (crash_plan) {
        train.checkpoint_path =
            cfg.artifact_dir + "/des_checkpoint.rogs";
        std::remove(train.checkpoint_path.c_str());
    }

    LineLog log(cfg.artifact_dir.empty()
                    ? std::string()
                    : cfg.artifact_dir + "/des_twin.log");
    net::session::DesFabric &server_fabric =
        net.node(net::session::kServerNode);
    auto server = std::make_unique<ServerNode>(server_fabric, *workload,
                                               train, log.logger());
    bool crash_requested = false;
    if (crash_plan)
        server->setApplyHook([&crash_requested, &cfg](std::int64_t it) {
            if (it >= cfg.server_crash_iter)
                crash_requested = true;
        });
    server->start();

    std::vector<std::unique_ptr<WorkerNode>> nodes;
    for (std::size_t w = 0; w < cfg.workers; ++w) {
        nodes.push_back(std::make_unique<WorkerNode>(
            net.node(net::session::workerNode(w)), *workload, train, w,
            WorkerResumeState{}, log.logger()));
        nodes.back()->start("des", 0);
    }

    if (!crash_plan) {
        sim.runUntil(cfg.run_timeout_s);
    } else {
        // Slice the simulation so the crash lands mid-run, exactly
        // where the fork harness SIGKILLs its server: destroy the
        // node (in-flight state evaporates), wait out the restart
        // delay in simulated time, rebuild from the checkpoint.
        // Slices stay fine-grained until the restart has happened —
        // a DES iteration takes well under a millisecond, and a
        // coarse slice would fire the "crash" after the fleet
        // already finished.
        double restart_at = -1.0;
        double t = 0.0;
        bool restarted = false;
        while (t < cfg.run_timeout_s) {
            t = std::min(cfg.run_timeout_s,
                         t + (restarted ? 0.05 : 0.0005));
            sim.runUntil(t);
            if (crash_requested && server) {
                crash_requested = false;
                server.reset();
                log.line("des_server_killed");
                restart_at = t + cfg.server_crash_restart_s;
            }
            if (restart_at >= 0.0 && t >= restart_at) {
                restart_at = -1.0;
                restarted = true;
                server = std::make_unique<ServerNode>(
                    server_fabric, *workload, train, log.logger());
                server->start();
            }
            if (server && server->done())
                break;
        }
    }

    res.done = server && server->done();
    res.metric = server ? server->evaluateModel() : 0.0;
    res.applied_pushes = server ? server->appliedPushes() : 0;
    if (!cfg.artifact_dir.empty()) {
        std::ofstream sum(cfg.artifact_dir + "/des_summary.txt",
                          std::ios::trunc);
        sum << "done " << (res.done ? 1 : 0) << '\n'
            << "metric_name " << res.metric_name << '\n'
            << "metric " << res.metric << '\n'
            << "applied_pushes " << res.applied_pushes << '\n';
    }
    return res;
}

} // namespace core
} // namespace rog
