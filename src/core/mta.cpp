#include "core/mta.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace rog {
namespace core {

double
mtaFraction(std::size_t staleness_threshold)
{
    if (staleness_threshold <= 1)
        return 1.0;
    const double s = static_cast<double>(staleness_threshold);
    // f(P) = (1-P)^(S-1) - P is strictly decreasing on (0, 1) with
    // f(0) = 1 and f(1) = -1, so the root is unique.
    return bisect(
        [s](double p) { return std::pow(1.0 - p, s - 1.0) - p; }, 0.0,
        1.0, 1e-12);
}

std::size_t
mtaUnits(std::size_t staleness_threshold, std::size_t total_units)
{
    ROG_ASSERT(total_units > 0, "mtaUnits with no units");
    const double frac = mtaFraction(staleness_threshold);
    const auto units = static_cast<std::size_t>(
        std::ceil(frac * static_cast<double>(total_units)));
    return std::max<std::size_t>(1, std::min(units, total_units));
}

} // namespace core
} // namespace rog
