/**
 * @file
 * ATP's Importance Metric (Algo 3).
 *
 * Ranks synchronization units for transmission. On a worker, staled
 * rows get priority (they risk triggering the staleness threshold at
 * the server and stalling everyone) alongside rows with large
 * gradients (they contribute most to convergence):
 *     j_i = f1 * meanAbs(g'_i) + f2 * (max(iter) - iter_i).
 * On the server, pulls cannot trigger the threshold, so *fresher* rows
 * (typically larger contribution) get priority instead:
 *     j_i = f1 * meanAbs(g_i) + f2 * (iter_i - min(iter)).
 *
 * The magnitude term is normalized by its mean so f1 and f2 weigh
 * comparable scales regardless of the model's gradient magnitude.
 */
#ifndef ROG_CORE_IMPORTANCE_HPP
#define ROG_CORE_IMPORTANCE_HPP

#include <cstdint>
#include <vector>

namespace rog {

class Rng;

namespace core {

/** Which side of the protocol is ranking (Algo 3's `mode`). */
enum class ImportanceMode { Worker, Server };

/** Empirical coefficients and ablation switches. */
struct ImportanceConfig
{
    double f1 = 1.0;      //!< weight of the gradient-magnitude term.
    double f2 = 1.0;      //!< weight of the staleness/freshness term.
    bool random = false;  //!< ablation: ignore importance, shuffle.
};

/**
 * Rank units for transmission, most important first.
 *
 * @param mode worker (push) or server (pull) formula.
 * @param mean_abs_grad per-unit mean absolute gradient.
 * @param iters per-unit iteration tag (worker: last pushed iteration;
 *        server: last updated iteration). @pre same size
 * @param rng used only when cfg.random is set.
 * @return unit indices sorted by descending importance (ties broken by
 *         unit index for determinism).
 */
std::vector<std::size_t>
rankUnits(ImportanceMode mode, const ImportanceConfig &cfg,
          const std::vector<double> &mean_abs_grad,
          const std::vector<std::int64_t> &iters, Rng &rng);

} // namespace core
} // namespace rog

#endif // ROG_CORE_IMPORTANCE_HPP
