#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/buffer_pool.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "compress/codec.hpp"
#include "core/failure_detector.hpp"
#include "core/flat_model.hpp"
#include "core/importance.hpp"
#include "core/auto_threshold.hpp"
#include "core/dynamic_batching.hpp"
#include "core/mta.hpp"
#include "core/server_checkpoint.hpp"
#include "core/server_shard.hpp"
#include "core/server_state.hpp"
#include "core/version_storage.hpp"
#include "data/dataset.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_checker.hpp"
#include "net/channel.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/energy.hpp"
#include "sim/process.hpp"
#include "tensor/ops.hpp"

namespace rog {
namespace core {

void
RunResult::meanTimeComposition(double &compute, double &comm,
                               double &stall) const
{
    compute = comm = stall = 0.0;
    if (iterations.empty())
        return;
    for (const auto &r : iterations) {
        compute += r.compute_s;
        comm += r.comm_s;
        stall += r.stall_s;
    }
    const auto n = static_cast<double>(iterations.size());
    compute /= n;
    comm /= n;
    stall /= n;
}

double
RunResult::meanEnergyJoules() const
{
    if (worker_energy_j.empty())
        return 0.0;
    double s = 0.0;
    for (double e : worker_energy_j)
        s += e;
    return s / static_cast<double>(worker_energy_j.size());
}

namespace {

/** Shard 0 keeps the configured path; shard k gets ".shard<k>". */
std::string
shardCheckpointPath(const std::string &base, std::size_t shard)
{
    return shard == 0 ? base : base + ".shard" + std::to_string(shard);
}

/** Everything one simulated robot owns. */
struct WorkerContext
{
    std::size_t id = 0;
    std::unique_ptr<nn::Model> model;
    std::unique_ptr<FlatModel> flat;
    std::unique_ptr<nn::SgdMomentum> opt;
    std::unique_ptr<data::BatchSampler> sampler;
    std::unique_ptr<compress::Codec> push_codec; //!< worker-side state.
    std::unique_ptr<compress::Codec> pull_codec; //!< server-side state.
    std::unique_ptr<sim::EnergyMeter> meter;
    std::vector<std::vector<float>> accum;  //!< g' per unit (Algo 1).
    std::vector<std::int64_t> push_iter;    //!< iters per unit.
    Rng rng{0};
    std::size_t cur_iter = 0;
    bool done = false;

    // Churn (fault injection): a crashed worker discards its in-flight
    // rows and either waits for rejoin_time or leaves for good; a
    // leaving worker finishes its current iteration first.
    bool crashed = false;
    bool leaving = false;
    double rejoin_time = std::numeric_limits<double>::infinity();

    // Heterogeneity (dynamic batching).
    std::size_t batch_size = 0;
    double compute_seconds = 0.0;

    // Pull bookkeeping: the pull runs as its own process (joined
    // inline normally; overlapped with compute under pipeline_pull)
    // and deposits its totals here for the next record that drains it.
    std::unique_ptr<sim::Condition> pull_cond;
    bool pull_in_flight = false;
    double carried_pull_comm_s = 0.0;
    double carried_bytes_pulled = 0.0;
    std::size_t carried_units_pulled = 0;
    std::size_t carried_pull_retries = 0;
    double carried_pull_backoff_s = 0.0;
    double carried_pull_retransmitted = 0.0;
};

/** One engine instance == one training run. */
class Engine
{
  public:
    Engine(Workload &workload, const EngineConfig &cfg,
           const NetworkSetup &network);
    ~Engine();

    RunResult run();

  private:
    sim::Process workerProcess(WorkerContext &w);

    /** One pull round (Algo 2 lines 10-13) as a detached process;
     *  deposits totals into w.carried_* and notifies w.pull_cond. */
    sim::Process pullProcess(WorkerContext &w);

    void computeGradients(WorkerContext &w);
    void accumulateGradients(WorkerContext &w);
    std::vector<std::size_t> rankPushOrder(WorkerContext &w,
                                           std::size_t iteration,
                                           std::size_t threshold,
                                           std::size_t &forced);

    /** Staleness threshold in force for @p worker right now. */
    std::size_t currentThreshold(std::size_t worker) const;

    /**
     * Transcode one synchronization unit through @p codec, blocking at
     * matrix-row boundaries: compression blocks follow [22]'s
     * block-wise scheme regardless of the transmission granularity.
     *
     * @return sum(|grad|) over the unit as measured inside the codec's
     *         fused sweep (see Codec::lastTranscodeMagnitude); 0.0 for
     *         codecs that do not record it.
     */
    double transcodeUnit(compress::Codec &codec, FlatModel &flat,
                         std::size_t unit_idx, std::span<const float> in,
                         std::span<float> out);
    void applyPulledUnit(WorkerContext &w, std::size_t unit,
                         std::span<const float> decoded);
    void checkpoint(WorkerContext &w, std::size_t iteration);
    std::int64_t stalenessBehind(const WorkerContext &w) const;

    // Churn event handlers (fired by the fault injector) and the
    // rejoin resync performed inside the worker's own coroutine.
    void onCrashEvent(const fault::ChurnEvent &e);
    void onDetectEvent(const fault::ChurnEvent &e);
    void onLeaveEvent(const fault::ChurnEvent &e);
    void rejoinResync(WorkerContext &w, std::size_t &n);

    // Heartbeat failure detection (opt-in): each worker beats over
    // its own link; the monitor re-scores membership at a fixed
    // cadence and retires the dead.
    sim::Process heartbeatProcess(WorkerContext &w);
    sim::Process monitorProcess();
    bool quorumRecoverable() const;

    // Crash-consistent server recovery.
    void maybeCheckpointServer(std::int64_t iter);
    void serverCrashRecover(std::int64_t crash_iter);

    Workload &workload_;
    EngineConfig cfg_;

    // Declaration order doubles as teardown order (reverse): the
    // channel and condition destroy any still-suspended process frames
    // while meters/models/sim are alive; sim is destroyed last.
    sim::Simulation sim_;
    std::unique_ptr<RowPartition> partition_;
    // Contiguous worker arena: reserved once, never reallocated, so
    // the WorkerContext& held by suspended coroutines stay valid.
    std::vector<WorkerContext> workers_;
    std::unique_ptr<ShardedServer> server_;
    std::unique_ptr<FlownScheduler> flown_;
    std::unique_ptr<AutoThresholdController> auto_ctrl_;
    std::vector<double> unit_bytes_;  //!< wire bytes per unit.
    RunResult result_;
    std::size_t finished_workers_ = 0;
    Rng rng_;
    std::unique_ptr<sim::Condition> version_cond_;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::unique_ptr<MembershipTracker> membership_;
    std::vector<std::int64_t> pending_server_crashes_; //!< ascending.
    std::vector<ServerCheckpoint> genesis_; //!< pre-run, per shard.
    std::int64_t last_checkpoint_iter_ = -1; //!< -1 = none on disk.
    // The transport wraps the channel and must be destroyed after it
    // (channel teardown drops in-flight sends through the transport's
    // callbacks), hence declared before channel_.
    std::unique_ptr<net::transport::ReliableLink> transport_;
    std::unique_ptr<net::Channel> channel_;
    std::uint64_t msg_seq_ = 0; //!< unique transport message tags.
};

Engine::Engine(Workload &workload, const EngineConfig &cfg,
               const NetworkSetup &network)
    : workload_(workload), cfg_(cfg), rng_(cfg.seed)
{
    const std::size_t num_workers = workload.workers();
    ROG_ASSERT(network.link_traces.size() == num_workers,
               "need one link trace per worker, got ",
               network.link_traces.size(), " for ", num_workers);
    ROG_ASSERT(cfg.iterations > 0, "need at least one iteration");
    ROG_ASSERT(cfg.system.staleness_threshold >= 1,
               "staleness threshold must be >= 1");
    ROG_ASSERT(cfg.worker_departure_times.empty() ||
               cfg.worker_departure_times.size() == num_workers,
               "need one departure time per worker (or none)");

    result_.system = cfg.system.name;
    result_.workers = num_workers;
    result_.worker_iterations.assign(num_workers, 0);
    result_.worker_energy_j.assign(num_workers, 0.0);
    result_.worker_compute_s.assign(num_workers, 0.0);
    result_.worker_comm_s.assign(num_workers, 0.0);
    result_.worker_stall_s.assign(num_workers, 0.0);

    workers_.reserve(num_workers);
    for (std::size_t i = 0; i < num_workers; ++i) {
        WorkerContext &w = workers_.emplace_back();
        w.id = i;
        w.model = workload.buildReplica();
        w.flat = std::make_unique<FlatModel>(*w.model);
        w.opt = std::make_unique<nn::SgdMomentum>(
            *w.model, workload.optimizerConfig());
        w.sampler = std::make_unique<data::BatchSampler>(
            workload.makeSampler(i));
        w.push_codec = compress::makeCodec(cfg.codec);
        w.pull_codec = compress::makeCodec(cfg.codec);
        w.meter = std::make_unique<sim::EnergyMeter>(
            sim_, cfg.profile.power);
        w.rng = rng_.fork();
        w.pull_cond = std::make_unique<sim::Condition>(sim_);
    }

    // Per-worker batch sizes and compute times. Heterogeneous teams
    // split the global batch with dynamic batching [49] (or uniformly
    // for the ablation); homogeneous teams charge the profile's fixed
    // compute time for the workload's batch size.
    if (!cfg.heterogeneous_seconds_per_sample.empty()) {
        ROG_ASSERT(cfg.heterogeneous_seconds_per_sample.size() ==
                       num_workers,
                   "need one compute speed per worker");
        const std::size_t total_batch =
            workload.batchSize() * num_workers;
        const BatchAssignment assignment = cfg.dynamic_batching
            ? assignDynamicBatches(cfg.heterogeneous_seconds_per_sample,
                                   total_batch)
            : assignUniformBatches(cfg.heterogeneous_seconds_per_sample,
                                   total_batch);
        for (std::size_t i = 0; i < num_workers; ++i) {
            workers_[i].batch_size = assignment.batch_sizes[i];
            workers_[i].compute_seconds =
                assignment.compute_seconds[i] * cfg.profile.batch_scale +
                cfg.profile.compress_seconds;
        }
    } else {
        for (auto &w : workers_) {
            w.batch_size = workload.batchSize();
            w.compute_seconds = cfg.profile.iterationComputeSeconds();
        }
    }

    partition_ = std::make_unique<RowPartition>(
        *workers_[0].flat, cfg.system.granularity);
    const std::size_t units = partition_->unitCount();
    result_.total_units = units;

    for (auto &w : workers_) {
        w.accum.resize(units);
        for (std::size_t u = 0; u < units; ++u)
            w.accum[u].assign(partition_->unit(u).width, 0.0f);
        w.push_iter.assign(units, 0);
    }

    server_ = std::make_unique<ShardedServer>(num_workers, *partition_,
                                              cfg.server_shards);
    result_.server_shards = server_->shardCount();
    if (cfg.system.flown_dynamic) {
        flown_ = std::make_unique<FlownScheduler>(num_workers,
                                                  cfg.system.flown);
    }
    if (cfg.auto_threshold) {
        AutoThresholdConfig at;
        at.initial_threshold =
            std::max<std::size_t>(2, cfg.system.staleness_threshold);
        auto_ctrl_ = std::make_unique<AutoThresholdController>(at);
    }

    // Wire size per unit: per-row-chunk codec payloads (each chunk
    // carries its own scale, per [22]'s block-wise compression) plus
    // the per-unit index tag.
    auto sizer = compress::makeCodec(cfg.codec);
    unit_bytes_.resize(units);
    FlatModel &flat0 = *workers_[0].flat;
    for (std::size_t u = 0; u < units; ++u) {
        const Unit &unit = partition_->unit(u);
        double bytes = partition_->perUnitOverheadBytes();
        flat0.forEachRowChunk(unit.begin, unit.width,
                              [&](std::size_t, std::size_t,
                                  std::size_t count, std::size_t) {
                                  bytes += sizer->payloadBytes(count);
                              });
        unit_bytes_[u] = bytes;
    }

    version_cond_ = std::make_unique<sim::Condition>(sim_);

    if (cfg.failure_detector) {
        membership_ =
            std::make_unique<MembershipTracker>(num_workers,
                                                cfg.detector);
    }
    ROG_ASSERT(cfg.quorum == 0 || cfg.failure_detector,
               "quorum needs the failure detector");
    ROG_ASSERT(cfg.quorum <= num_workers,
               "quorum exceeds the worker count");

    if (cfg.fault_plan) {
        for (const auto &e : cfg.fault_plan->server_crashes) {
            ROG_ASSERT(e.at_iter <=
                           static_cast<std::int64_t>(cfg.iterations),
                       "server crash at iteration ", e.at_iter,
                       " beyond the ", cfg.iterations, "-iteration run");
            pending_server_crashes_.push_back(e.at_iter);
        }
        std::sort(pending_server_crashes_.begin(),
                  pending_server_crashes_.end());
    }
    if (!pending_server_crashes_.empty()) {
        // A crash before the first checkpoint recovers to this.
        genesis_.resize(server_->shardCount());
        for (std::size_t s = 0; s < server_->shardCount(); ++s) {
            genesis_[s].iteration = 0;
            genesis_[s].msg_seq = 0;
            genesis_[s].versions = server_->shard(s).versionSnapshot();
            genesis_[s].server = server_->shard(s).serverSnapshot();
            genesis_[s].tracker = server_->shard(s).trackerSnapshot();
        }
    }

    // Fault injection: bake the plan's link blackouts / bandwidth
    // collapses into the traces, install the per-transfer policy, and
    // schedule the churn events.
    std::vector<net::BandwidthTrace> traces = network.link_traces;
    if (cfg.fault_plan) {
        const fault::FaultPlan &plan = *cfg.fault_plan;
        plan.validate();
        for (const auto &f : plan.link_faults)
            ROG_ASSERT(f.link < traces.size(),
                       "fault plan names link ", f.link, " but the run "
                       "has ", traces.size());
        for (const auto &e : plan.churn)
            ROG_ASSERT(e.worker < num_workers,
                       "fault plan names worker ", e.worker,
                       " but the run has ", num_workers);
        if (!plan.link_faults.empty()) {
            double horizon = plan.maxLinkFaultEnd() + 1.0;
            if (std::isfinite(cfg.time_horizon_seconds))
                horizon = std::max(horizon, cfg.time_horizon_seconds);
            for (std::size_t l = 0; l < traces.size(); ++l)
                traces[l] = fault::applyLinkFaults(
                    traces[l], plan.link_faults, l, horizon);
        }
    }
    channel_ = std::make_unique<net::Channel>(sim_, std::move(traces));
    if (cfg.reliable_transport) {
        transport_ = std::make_unique<net::transport::ReliableLink>(
            sim_, *channel_, cfg.transport, cfg.invariants);
    }
    if (cfg.fault_plan) {
        injector_ =
            std::make_unique<fault::FaultInjector>(sim_,
                                                   *cfg.fault_plan);
        injector_->attach(*channel_);
        fault::ChurnHooks hooks;
        hooks.on_crash = [this](const fault::ChurnEvent &e) {
            onCrashEvent(e);
        };
        hooks.on_detect = [this](const fault::ChurnEvent &e) {
            onDetectEvent(e);
        };
        hooks.on_leave = [this](const fault::ChurnEvent &e) {
            onLeaveEvent(e);
        };
        // Rejoin is driven from inside the worker coroutine (it must
        // not be resynced while suspended mid-iteration), so no
        // on_rejoin hook is needed.
        injector_->scheduleChurn(std::move(hooks));
    }
}

Engine::~Engine() = default;

void
Engine::computeGradients(WorkerContext &w)
{
    auto batch = w.sampler->sample(w.batch_size);
    w.model->zeroGrad();
    const tensor::Tensor &out = w.model->forward(batch.features);
    nn::LossResult loss;
    if (!batch.labels.empty())
        loss = nn::softmaxCrossEntropy(out, batch.labels);
    else
        loss = nn::meanSquaredError(out, batch.targets);
    w.model->backward(loss.grad);
}

void
Engine::accumulateGradients(WorkerContext &w)
{
    // Units are disjoint flat ranges, so accumulating them touches
    // disjoint accumulators — safe to fan out across the pool.
    parallel::parallelFor(
        0, partition_->unitCount(), 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t u = lo; u < hi; ++u) {
                const Unit &unit = partition_->unit(u);
                auto &acc = w.accum[u];
                w.flat->accumulateGrad(unit.begin,
                                       {acc.data(), unit.width});
            }
        });
}

std::size_t
Engine::currentThreshold(std::size_t worker) const
{
    if (auto_ctrl_)
        return auto_ctrl_->threshold();
    if (flown_)
        return flown_->thresholdFor(worker);
    return cfg_.system.staleness_threshold;
}

std::vector<std::size_t>
Engine::rankPushOrder(WorkerContext &w, std::size_t iteration,
                      std::size_t threshold, std::size_t &forced)
{
    const std::size_t units = partition_->unitCount();
    std::vector<double> mags(units);
    // Each unit's magnitude is independent; the nested meanAbs runs
    // inline inside the pool region, so the value per unit is the
    // same as the sequential loop's.
    parallel::parallelFor(0, units, 1,
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t u = lo; u < hi; ++u)
                                  mags[u] = tensor::meanAbs(
                                      std::span<const float>(
                                          w.accum[u].data(),
                                          w.accum[u].size()));
                          });
    auto order = rankUnits(ImportanceMode::Worker, cfg_.system.importance,
                           mags, w.push_iter, w.rng);

    // Staleness floor: a unit whose age would trigger the RSP gate if
    // skipped again MUST be in this transmission, or the worker would
    // stall on its own stale row — the situation the MTA inequality
    // (1-P)^(S-1) < P is meant to rule out. Move those units to the
    // front, oldest first, and report how many there are so the
    // speculative transmission cannot cut them.
    forced = 0;
    if (cfg_.system.atp) {
        const auto n = static_cast<std::int64_t>(iteration);
        const auto t = static_cast<std::int64_t>(threshold);
        std::stable_partition(order.begin(), order.end(),
                              [&](std::size_t u) {
                                  return n - w.push_iter[u] >= t - 1;
                              });
        for (std::size_t u : order) {
            if (n - w.push_iter[u] >= t - 1)
                ++forced;
            else
                break;
        }
        std::stable_sort(order.begin(), order.begin() + forced,
                         [&](std::size_t a, std::size_t b) {
                             return w.push_iter[a] < w.push_iter[b];
                         });
    }
    return order;
}

double
Engine::transcodeUnit(compress::Codec &codec, FlatModel &flat,
                      std::size_t unit_idx, std::span<const float> in,
                      std::span<float> out)
{
    const Unit &unit = partition_->unit(unit_idx);
    ROG_ASSERT(in.size() == unit.width && out.size() == unit.width,
               "transcode unit size mismatch");

    // Collect the (row, column-range) chunks first: each chunk is a
    // distinct codec block, so after prepare() they can transcode
    // concurrently without racing on the codec's block map.
    struct Chunk
    {
        std::size_t row, col, count, off;
    };
    std::vector<Chunk> chunks;
    flat.forEachRowChunk(
        unit.begin, unit.width,
        [&](std::size_t row, std::size_t col, std::size_t count,
            std::size_t off) {
            chunks.push_back({row, col, count, off});
        });
    for (const Chunk &c : chunks)
        codec.prepare(c.row, flat.rowInfo(c.row).width);
    parallel::parallelFor(
        0, chunks.size(), 1, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const Chunk &c = chunks[i];
                codec.transcode(c.row, flat.rowInfo(c.row).width, c.col,
                                in.subspan(c.off, c.count),
                                out.subspan(c.off, c.count));
            }
        });
    // A unit is a contiguous flat span, so each row contributes at
    // most one chunk here and the per-block by-products sum cleanly.
    double magnitude = 0.0;
    for (const Chunk &c : chunks)
        magnitude += codec.lastTranscodeMagnitude(c.row);
    return magnitude;
}

void
Engine::applyPulledUnit(WorkerContext &w, std::size_t unit,
                        std::span<const float> decoded)
{
    const Unit &info = partition_->unit(unit);
    w.flat->forEachRowChunk(
        info.begin, info.width,
        [&](std::size_t row, std::size_t col, std::size_t count,
            std::size_t off) {
            w.opt->applyRowRange(row, col,
                                 {decoded.data() + off, count});
        });
}

void
Engine::checkpoint(WorkerContext &w, std::size_t iteration)
{
    CheckpointRecord c;
    c.worker = w.id;
    c.iteration = iteration;
    c.time_s = sim_.now();
    c.energy_j = w.meter->totalJoules();
    c.metric = workload_.evaluate(*w.model);
    result_.checkpoints.push_back(c);
}

std::int64_t
Engine::stalenessBehind(const WorkerContext &w) const
{
    std::size_t fastest = 0;
    for (const auto &other : workers_)
        fastest = std::max(fastest, other.cur_iter);
    return static_cast<std::int64_t>(fastest) -
           static_cast<std::int64_t>(w.cur_iter);
}

sim::Process
Engine::workerProcess(WorkerContext &w)
{
    using sim::DeviceState;

    const std::size_t units = partition_->unitCount();
    const bool atp = cfg_.system.atp;
    const double header = cfg_.transfer_header_bytes;
    std::vector<float> decoded;

    const double departure = cfg_.worker_departure_times.empty()
        ? std::numeric_limits<double>::infinity()
        : cfg_.worker_departure_times[w.id];

    std::size_t n = 0;
    while (n < cfg_.iterations) {
        // Crash limbo (fault injection): the iteration in flight when
        // the crash hit was discarded. Wait out the outage and resync
        // to the current model, or exit for good when the plan never
        // brings this worker back (or only after the horizon).
        if (w.crashed) {
            w.meter->setState(DeviceState::Stall);
            while (w.pull_in_flight)
                co_await w.pull_cond->wait();
            w.carried_pull_comm_s = 0.0;
            w.carried_bytes_pulled = 0.0;
            w.carried_units_pulled = 0;
            w.carried_pull_retries = 0;
            w.carried_pull_backoff_s = 0.0;
            w.carried_pull_retransmitted = 0.0;
            if (!std::isfinite(w.rejoin_time)) {
                // Permanent silent crash: stay dark — peers keep
                // stalling on this ghost — until the server's failure
                // detector retires it, then exit (plan validation
                // guarantees detection is finite here).
                while (!server_->retired(w.id))
                    co_await version_cond_->wait();
                break;
            }
            if (sim_.now() < w.rejoin_time) {
                co_await sim::delay(sim_, w.rejoin_time - sim_.now());
                continue;
            }
            rejoinResync(w, n);
            continue;
        }
        // Falsely evicted while actually healthy: the detector
        // retired this worker, but it is alive — re-admit through the
        // rejoin resync (fresh model, versions jump to the resync
        // point), the same path a crashed worker takes.
        if (membership_ && !w.leaving && server_->retired(w.id)) {
            rejoinResync(w, n);
            continue;
        }
        // Below quorum: Pause parks this worker while the shortfall
        // is recoverable (a crashed peer with a scheduled rejoin, or
        // a false eviction about to re-admit itself); an
        // unrecoverable shortfall ends the run early — degrading to
        // fewer workers beats deadlocking on ghosts.
        if (membership_ && cfg_.quorum > 0 &&
            cfg_.quorum_policy == QuorumPolicy::Pause &&
            membership_->participantCount() < cfg_.quorum) {
            const double pause_start = sim_.now();
            w.meter->setState(DeviceState::Stall);
            while (!w.crashed &&
                   membership_->participantCount() < cfg_.quorum &&
                   quorumRecoverable())
                co_await version_cond_->wait();
            result_.quorum_paused_s += sim_.now() - pause_start;
            if (w.crashed)
                continue;
            if (membership_->participantCount() < cfg_.quorum)
                break;
        }
        if (sim_.now() >= cfg_.time_horizon_seconds)
            break;
        if (sim_.now() >= departure)
            break; // battery dead / crashed: leave the team.
        if (w.leaving)
            break; // announced graceful departure (fault plan).
        ++n;

        IterationRecord rec;
        rec.worker = w.id;
        rec.iteration = n;

        // ---- Computation (Algo 1 line 2-3) ----
        // Gradients are taken against the weights at the start of the
        // compute window: a pipelined pull landing mid-window applies
        // to the *next* iteration's gradients, as in Pipe-SGD [65].
        w.meter->setState(DeviceState::Compute);
        computeGradients(w);
        accumulateGradients(w);
        co_await sim::delay(sim_, w.compute_seconds);
        if (w.crashed)
            continue; // crashed mid-compute: the iteration is lost.
        rec.compute_s = w.compute_seconds;

        // Radio is half-duplex: join a still-in-flight pipelined pull
        // before pushing, and account its totals to this iteration.
        if (w.pull_in_flight) {
            w.meter->setState(DeviceState::Communicate);
            while (w.pull_in_flight)
                co_await w.pull_cond->wait();
        }
        if (w.crashed)
            continue;
        rec.comm_s += w.carried_pull_comm_s;
        rec.bytes_pulled += w.carried_bytes_pulled;
        rec.units_pulled += w.carried_units_pulled;
        rec.retries += w.carried_pull_retries;
        rec.backoff_s += w.carried_pull_backoff_s;
        rec.bytes_retransmitted += w.carried_pull_retransmitted;
        w.carried_pull_comm_s = 0.0;
        w.carried_bytes_pulled = 0.0;
        w.carried_units_pulled = 0;
        w.carried_pull_retries = 0;
        w.carried_pull_backoff_s = 0.0;
        w.carried_pull_retransmitted = 0.0;

        // ---- PushGradients (Algo 1 line 4, Algo 3+4) ----
        const std::size_t threshold = currentThreshold(w.id);
        std::size_t forced = 0;
        const auto order = rankPushOrder(w, n, threshold, forced);
        std::vector<double> prefix(units + 1, 0.0);
        for (std::size_t i = 0; i < units; ++i)
            prefix[i + 1] = prefix[i] + unit_bytes_[order[i]];

        // The transmitted minimum is the MTA, extended if the
        // staleness floor demands more (see rankPushOrder).
        const std::size_t mta = atp
            ? std::max(mtaUnits(threshold, units), forced)
            : units;
        const double timeout =
            atp ? server_->mtaTime() : net::Channel::kNoTimeout;

        // Two phases (Algo 4): the minimum transmission amount is
        // mandatory — a straggler transmits exactly its MTA, however
        // long the degraded bandwidth makes that take, and reports the
        // time; a non-straggler finishes its MTA quickly and keeps
        // transmitting more rows until the shared MTA time window
        // closes (speculatively — the cut row is discarded).
        w.meter->setState(DeviceState::Communicate);
        double push_elapsed = 0.0;
        double push_wire = 0.0;
        std::vector<std::size_t> arrived; //!< units the server holds.
        std::size_t sent = 0;
        if (transport_) {
            // Reliable path: each unit is one framed, checksummed
            // message. Mandatory (MTA) units retry without a deadline
            // (bounded by the transport's attempt cap); speculative
            // units carry the MTA window as an absolute deadline. A
            // failed unit stays accumulated — it rides the next push,
            // late but intact. The judgement-insertion ablation only
            // applies to the legacy bulk path.
            const double push_start = sim_.now();
            for (std::size_t i = 0; i < units && !w.crashed; ++i) {
                const bool mandatory = i < mta;
                if (!mandatory &&
                    (!atp || sim_.now() >= push_start + timeout))
                    break;
                net::transport::MessageKey key;
                key.worker = static_cast<std::uint16_t>(w.id);
                key.version = static_cast<std::int64_t>(msg_seq_++);
                key.row = static_cast<std::uint32_t>(order[i]);
                key.pull = false;
                const double deadline = mandatory
                    ? net::transport::kNoDeadline
                    : push_start + timeout;
                auto tres = co_await transport_->send(
                    w.id, key, unit_bytes_[order[i]], deadline);
                push_elapsed += tres.elapsed_s;
                push_wire += tres.bytes_sent;
                rec.retries += tres.retries;
                rec.backoff_s += tres.backoff_s;
                rec.bytes_retransmitted += tres.retransmitted_bytes;
                if (tres.delivered)
                    arrived.push_back(order[i]);
                else if (!mandatory && tres.deadline_expired)
                    break; // the speculative window closed.
            }
            sent = arrived.size();
        } else {
        auto res = co_await channel_->transfer(w.id, header + prefix[mta],
                                               net::Channel::kNoTimeout);
        sent = mta;
        if (!res.completed) {
            // A fault (truncation / forced timeout) cut the mandatory
            // transfer: only rows whose bytes fully arrived count.
            sent = 0;
            while (sent < mta &&
                   header + prefix[sent + 1] <= res.bytes_sent + 1e-6)
                ++sent;
        }
        push_elapsed = res.elapsed;
        push_wire = res.bytes_sent;
        if (atp && res.completed && sent < units &&
            push_elapsed < timeout &&
            cfg_.per_unit_judgement_seconds <= 0.0) {
            const double window = timeout - push_elapsed;
            auto res2 = co_await channel_->transfer(
                w.id, prefix[units] - prefix[mta], window);
            while (sent < units &&
                   prefix[sent + 1] - prefix[mta] <=
                       res2.bytes_sent + 1e-6) {
                ++sent;
            }
            push_elapsed += res2.elapsed;
            push_wire += res2.bytes_sent;
        } else if (atp && cfg_.per_unit_judgement_seconds > 0.0) {
            // Judgement-insertion ablation: transmit unit by unit,
            // checking the window between transmissions. No bytes are
            // ever discarded, but every check burns time comparable to
            // a row transmission (Sec. III-A's rejected alternative).
            while (sent < units && push_elapsed < timeout) {
                co_await sim::delay(sim_,
                                    cfg_.per_unit_judgement_seconds);
                push_elapsed += cfg_.per_unit_judgement_seconds;
                if (push_elapsed >= timeout)
                    break;
                auto res2 = co_await channel_->transfer(
                    w.id, unit_bytes_[order[sent]],
                    net::Channel::kNoTimeout);
                push_elapsed += res2.elapsed;
                push_wire += res2.bytes_sent;
                ++sent;
            }
        }
        for (std::size_t i = 0; i < sent; ++i)
            arrived.push_back(order[i]);
        } // legacy bulk path.
        // A crash anywhere in the push discards the iteration: the
        // transferred bytes never reached the server, so no row of it
        // is accumulated or versioned.
        if (w.crashed)
            continue;
        // Evicted while this push was in flight: the server no longer
        // counts this worker, so the arrived rows are discarded; the
        // worker re-admits itself at the top of the next iteration.
        if (membership_ && server_->retired(w.id))
            arrived.clear();
        rec.comm_s += push_elapsed;
        rec.bytes_pushed = push_wire;
        rec.units_pushed = arrived.size();
        rec.push_fraction = static_cast<double>(arrived.size()) /
                            static_cast<double>(units);

        // Server receive (Algo 2 lines 2-6): exactly the units whose
        // bytes verifiably arrived.
        for (const std::size_t u : arrived) {
            decoded.resize(w.accum[u].size());
            rec.pushed_magnitude += transcodeUnit(
                *w.push_codec, *w.flat, u, w.accum[u], decoded);
            server_->accumulate(u, decoded);
            server_->noteUpdate(u, static_cast<std::int64_t>(n));
            server_->updateVersion(w.id, u, static_cast<std::int64_t>(n));
            if (cfg_.invariants) {
                cfg_.invariants->onPush(w.id, u,
                                        static_cast<std::int64_t>(n),
                                        server_->version(w.id, u));
            }
            std::fill(w.accum[u].begin(), w.accum[u].end(), 0.0f);
            w.push_iter[u] = static_cast<std::int64_t>(n);
        }
        if (atp && push_elapsed > 0.0) {
            server_->report(w.id, push_wire, push_elapsed,
                             header + prefix[mta]);
        }
        if (flown_ && push_elapsed > 0.0)
            flown_->reportThroughput(w.id, push_wire / push_elapsed);
        version_cond_->notifyAll();

        // Write-ahead server checkpoint, then any scheduled server
        // crash keyed to the iteration just applied. Both run
        // synchronously — zero virtual time, zero RNG — so a crash
        // aligned with the checkpoint cadence recovers to the exact
        // pre-crash state and the run continues byte-identically.
        maybeCheckpointServer(static_cast<std::int64_t>(n));
        while (!pending_server_crashes_.empty() &&
               pending_server_crashes_.front() <=
                   static_cast<std::int64_t>(n)) {
            const std::int64_t at = pending_server_crashes_.front();
            pending_server_crashes_.erase(
                pending_server_crashes_.begin());
            serverCrashRecover(at);
        }

        // ---- RSP gate (Algo 2 lines 7-9) ----
        // RSP's two-level staleness control splits the budget:
        //  * across workers, the rows just pushed (v_r_i = n) must stay
        //    within t of the slowest worker's training state — enforced
        //    here by waiting while n - min_s(iteration_s) >= t;
        //  * within a worker, row versions must stay within t of each
        //    other — enforced constructively by the MTA staleness floor
        //    (see rankPushOrder), which caps row rotation at t-1.
        // Each row's end-to-end staleness is therefore bounded, which
        // is what Theorem 1 needs (S_max over rows).
        // The wait is on the slowest *other* live worker: a worker's
        // own state is never ahead of itself, and waiting on one's own
        // (possibly fault-truncated) pushed versions could deadlock.
        // Fault-free this is identical to the global minimum, because a
        // full push always advances the worker's own versions to n.
        // With the failure detector on, a Suspect (or worse) peer no
        // longer holds the gate: its in-flight rows are reclaimed and
        // the survivors stop stalling on it. If suspicion was wrong,
        // the next heartbeat restores the peer to Alive and it counts
        // again.
        const auto gate_floor = [this, &w]() {
            std::int64_t m = std::numeric_limits<std::int64_t>::max();
            for (const auto &other : workers_) {
                if (other.id == w.id ||
                    server_->retired(other.id))
                    continue;
                if (membership_ && membership_->active(other.id) &&
                    membership_->state(other.id) != MemberState::Alive)
                    continue;
                m = std::min(m,
                             server_->maxVersionOfWorker(other.id));
            }
            return m;
        };
        const double stall_start = sim_.now();
        w.meter->setState(DeviceState::Stall);
        while (!w.crashed && !server_->retired(w.id) &&
               static_cast<std::int64_t>(n) - gate_floor() >=
                   static_cast<std::int64_t>(threshold)) {
            co_await version_cond_->wait();
        }
        if (w.crashed)
            continue; // crashed while stalling; the push stands.
        rec.stall_s = sim_.now() - stall_start;
        if (cfg_.invariants) {
            std::int64_t gate_min = gate_floor();
            if (gate_min == std::numeric_limits<std::int64_t>::max())
                gate_min = static_cast<std::int64_t>(n); // alone.
            cfg_.invariants->onGatePass(
                w.id, static_cast<std::int64_t>(n),
                std::min(gate_min, static_cast<std::int64_t>(n)),
                static_cast<std::int64_t>(threshold),
                server_->retired(w.id));
        }

        // ---- Pull averaged gradients (Algo 2 lines 10-13) ----
        // The pull runs as its own process: joined inline normally,
        // overlapped with the next iteration's computation when
        // pipeline_pull is set (the Pipe-SGD-style future work of
        // Sec. VI-D).
        ROG_ASSERT(!w.pull_in_flight, "pull already in flight");
        w.pull_in_flight = true;
        pullProcess(w);
        if (!cfg_.pipeline_pull) {
            while (w.pull_in_flight)
                co_await w.pull_cond->wait();
            if (w.crashed)
                continue;
            rec.comm_s += w.carried_pull_comm_s;
            rec.bytes_pulled += w.carried_bytes_pulled;
            rec.units_pulled += w.carried_units_pulled;
            rec.retries += w.carried_pull_retries;
            rec.backoff_s += w.carried_pull_backoff_s;
            rec.bytes_retransmitted += w.carried_pull_retransmitted;
            w.carried_pull_comm_s = 0.0;
            w.carried_bytes_pulled = 0.0;
            w.carried_units_pulled = 0;
            w.carried_pull_retries = 0;
            w.carried_pull_backoff_s = 0.0;
            w.carried_pull_retransmitted = 0.0;
        }

        // ---- Bookkeeping ----
        if (auto_ctrl_) {
            auto_ctrl_->observe(rec.stall_s, rec.compute_s + rec.comm_s +
                                                 rec.stall_s);
        }
        w.cur_iter = n;
        rec.staleness_behind = stalenessBehind(w);
        rec.end_time_s = sim_.now();
        if (cfg_.invariants)
            cfg_.invariants->onTimeAdvance(rec.end_time_s);
        result_.iterations.push_back(rec);
        if (n % cfg_.eval_every == 0 || n == cfg_.iterations)
            checkpoint(w, n);
        w.meter->setState(DeviceState::Compute);
    }

    // Join any still-in-flight pipelined pull before leaving.
    while (w.pull_in_flight)
        co_await w.pull_cond->wait();

    // Leave the run: never stall the remaining workers (Sec. IV).
    if (w.cur_iter < cfg_.iterations && w.cur_iter > 0 &&
        w.cur_iter % cfg_.eval_every != 0) {
        checkpoint(w, w.cur_iter);
    }
    w.done = true;
    if (membership_)
        membership_->deactivate(w.id); // finished, not dead.
    if (!server_->retired(w.id)) {
        server_->retireWorker(w.id);
        if (cfg_.invariants)
            cfg_.invariants->onRetire(w.id);
    }
    version_cond_->notifyAll();

    // Snapshot this worker's accounting at its own departure time: a
    // finished robot powers down and must not accrue phantom compute
    // energy while slower teammates keep training.
    result_.worker_iterations[w.id] = w.cur_iter;
    result_.worker_energy_j[w.id] = w.meter->totalJoules();
    result_.worker_compute_s[w.id] =
        w.meter->secondsIn(sim::DeviceState::Compute);
    result_.worker_comm_s[w.id] =
        w.meter->secondsIn(sim::DeviceState::Communicate);
    result_.worker_stall_s[w.id] =
        w.meter->secondsIn(sim::DeviceState::Stall);
    ++finished_workers_;
    co_return;
}

sim::Process
Engine::pullProcess(WorkerContext &w)
{
    using sim::DeviceState;

    const std::size_t units = partition_->unitCount();
    const bool atp = cfg_.system.atp;
    const double header = cfg_.transfer_header_bytes;
    std::vector<float> decoded;

    std::vector<std::size_t> cand;
    for (std::size_t u = 0; u < units; ++u)
        if (server_->hasPending(w.id, u))
            cand.push_back(u);
    if (!cand.empty()) {
        std::vector<double> mags(cand.size());
        std::vector<std::int64_t> iters(cand.size());
        for (std::size_t i = 0; i < cand.size(); ++i) {
            mags[i] = server_->pendingMeanAbs(w.id, cand[i]);
            iters[i] = server_->lastUpdate(cand[i]);
        }
        const auto rank = rankUnits(ImportanceMode::Server,
                                    cfg_.system.importance, mags, iters,
                                    w.rng);
        std::vector<double> pull_prefix(cand.size() + 1, 0.0);
        for (std::size_t i = 0; i < cand.size(); ++i)
            pull_prefix[i + 1] =
                pull_prefix[i] + unit_bytes_[cand[rank[i]]];

        const std::size_t pull_mta = atp
            ? std::min(mtaUnits(currentThreshold(w.id), units),
                       cand.size())
            : cand.size();
        const double pull_timeout =
            atp ? server_->mtaTime() : net::Channel::kNoTimeout;

        // When pipelined, the main process may flip the meter back to
        // Compute while this transfer is in flight; the overlap is
        // then charged at compute power (which dominates).
        w.meter->setState(DeviceState::Communicate);
        double pull_elapsed = 0.0;
        double pull_wire = 0.0;
        std::vector<std::size_t> fetched; //!< units delivered intact.
        if (transport_) {
            // Reliable path: mirror of the push — mandatory pull units
            // retry until intact, speculative ones race the window.
            // An undelivered unit stays pending at the server.
            const double pull_start = sim_.now();
            for (std::size_t i = 0; i < cand.size() && !w.crashed;
                 ++i) {
                const bool mandatory = i < pull_mta;
                if (!mandatory &&
                    (!atp || sim_.now() >= pull_start + pull_timeout))
                    break;
                net::transport::MessageKey key;
                key.worker = static_cast<std::uint16_t>(w.id);
                key.version = static_cast<std::int64_t>(msg_seq_++);
                key.row = static_cast<std::uint32_t>(cand[rank[i]]);
                key.pull = true;
                const double deadline = mandatory
                    ? net::transport::kNoDeadline
                    : pull_start + pull_timeout;
                auto tres = co_await transport_->send(
                    w.id, key, unit_bytes_[cand[rank[i]]], deadline);
                pull_elapsed += tres.elapsed_s;
                pull_wire += tres.bytes_sent;
                w.carried_pull_retries += tres.retries;
                w.carried_pull_backoff_s += tres.backoff_s;
                w.carried_pull_retransmitted +=
                    tres.retransmitted_bytes;
                if (tres.delivered)
                    fetched.push_back(cand[rank[i]]);
                else if (!mandatory && tres.deadline_expired)
                    break;
            }
        } else {
        auto pres = co_await channel_->transfer(
            w.id, header + pull_prefix[pull_mta],
            net::Channel::kNoTimeout);
        std::size_t pulled = pull_mta;
        if (!pres.completed) {
            // Faulted pull: only fully delivered units are applied;
            // the rest stay pending at the server for the next round.
            pulled = 0;
            while (pulled < pull_mta &&
                   header + pull_prefix[pulled + 1] <=
                       pres.bytes_sent + 1e-6)
                ++pulled;
        }
        pull_elapsed = pres.elapsed;
        pull_wire = pres.bytes_sent;
        if (atp && pres.completed && pulled < cand.size() &&
            pull_elapsed < pull_timeout) {
            auto pres2 = co_await channel_->transfer(
                w.id, pull_prefix[cand.size()] - pull_prefix[pull_mta],
                pull_timeout - pull_elapsed);
            while (pulled < cand.size() &&
                   pull_prefix[pulled + 1] - pull_prefix[pull_mta] <=
                       pres2.bytes_sent + 1e-6) {
                ++pulled;
            }
            pull_elapsed += pres2.elapsed;
            pull_wire += pres2.bytes_sent;
        }
        for (std::size_t i = 0; i < pulled; ++i)
            fetched.push_back(cand[rank[i]]);
        } // legacy bulk path.
        if (w.crashed) {
            // Crash mid-pull: nothing is applied; the server keeps the
            // pending copies for the rejoin resync to clear.
            w.pull_in_flight = false;
            w.pull_cond->notifyAll();
            co_return;
        }
        w.carried_pull_comm_s += pull_elapsed;
        w.carried_bytes_pulled += pull_wire;
        w.carried_units_pulled += fetched.size();

        for (const std::size_t u : fetched) {
            const bool had_pending = server_->hasPending(w.id, u);
            // A server recovery mid-pull rolls the pending copy away;
            // the fetched bytes described pre-crash state and are
            // discarded, not applied. Without a recovery a missing
            // pending copy is an engine bug and stays a violation.
            if (!had_pending && !result_.recoveries.empty())
                continue;
            if (cfg_.invariants)
                cfg_.invariants->onApply(w.id, u, had_pending);
            auto pending = server_->pending(w.id, u);
            decoded.resize(pending.size());
            transcodeUnit(*w.pull_codec, *w.flat, u, pending, decoded);
            applyPulledUnit(w, u, decoded);
            server_->clearPending(w.id, u);
        }
        if (atp && pull_elapsed > 0.0) {
            server_->report(w.id, pull_wire, pull_elapsed,
                             header + pull_prefix[pull_mta]);
        }
    }
    w.pull_in_flight = false;
    w.pull_cond->notifyAll();
    co_return;
}

void
Engine::onCrashEvent(const fault::ChurnEvent &e)
{
    WorkerContext &w = workers_[e.worker];
    if (w.done)
        return; // already left on its own.
    w.crashed = true;
    w.rejoin_time = e.rejoin_s;
    // Waiters must observe the crash promptly: the worker itself may
    // be parked in the staleness gate or a pull join, and peers must
    // re-check membership once detection retires it.
    version_cond_->notifyAll();
    w.pull_cond->notifyAll();
}

void
Engine::onDetectEvent(const fault::ChurnEvent &e)
{
    WorkerContext &w = workers_[e.worker];
    // Detection can race a rejoin or a natural exit; only a worker
    // that is still down gets retired from the gate's membership.
    if (w.done || !w.crashed || server_->retired(w.id))
        return;
    server_->retireWorker(w.id);
    if (cfg_.invariants)
        cfg_.invariants->onRetire(w.id);
    version_cond_->notifyAll();
}

void
Engine::onLeaveEvent(const fault::ChurnEvent &e)
{
    WorkerContext &w = workers_[e.worker];
    if (w.done)
        return;
    w.leaving = true; // finish the current iteration, then retire.
}

void
Engine::rejoinResync(WorkerContext &w, std::size_t &n)
{
    // A rejoining robot downloads the current model instead of
    // replaying what it missed: weights come from the most advanced
    // live replica, and optimizer/codec state restarts fresh (its
    // momentum and error feedback described the lost trajectory).
    const WorkerContext *src = nullptr;
    for (const auto &other : workers_) {
        if (other.id == w.id || other.crashed)
            continue;
        if (!src || other.cur_iter > src->cur_iter)
            src = &other;
    }
    std::int64_t resume = static_cast<std::int64_t>(w.cur_iter);
    if (src && src->cur_iter > w.cur_iter)
        resume = static_cast<std::int64_t>(src->cur_iter);
    // The worker may have pushed iteration n and crashed while
    // stalling: those rows stand at the server, so versions cannot
    // move backwards through the rejoin.
    resume = std::max(resume, server_->maxVersionOfWorker(w.id));
    if (src) {
        for (std::size_t r = 0; r < w.flat->rowCount(); ++r) {
            const auto from = src->flat->rowValues(r);
            const auto to = w.flat->rowValues(r);
            std::copy(from.begin(), from.end(), to.begin());
        }
    }
    w.opt = std::make_unique<nn::SgdMomentum>(
        *w.model, workload_.optimizerConfig());
    w.push_codec = compress::makeCodec(cfg_.codec);
    w.pull_codec = compress::makeCodec(cfg_.codec);
    for (auto &acc : w.accum)
        std::fill(acc.begin(), acc.end(), 0.0f);
    w.push_iter.assign(w.push_iter.size(), resume);
    // The resynced model already reflects every averaged gradient the
    // server was still holding for this worker.
    server_->clearWorker(w.id);
    server_->rejoinWorker(w.id, resume);
    if (cfg_.invariants)
        cfg_.invariants->onRejoin(w.id, resume);
    w.cur_iter = static_cast<std::size_t>(resume);
    n = w.cur_iter;
    w.crashed = false;
    w.rejoin_time = std::numeric_limits<double>::infinity();
    if (membership_ && membership_->active(w.id)) {
        // Walk the lifecycle back to Alive; a worker that resynced
        // before ever being declared dead just restarts its heartbeat
        // statistics so the outage silence cannot evict it now.
        if (membership_->state(w.id) == MemberState::Dead)
            membership_->markRejoining(w.id, sim_.now());
        if (membership_->state(w.id) == MemberState::Rejoining)
            membership_->markRejoined(w.id, sim_.now());
        else
            membership_->resetStats(w.id, sim_.now());
    }
    version_cond_->notifyAll();
}

sim::Process
Engine::heartbeatProcess(WorkerContext &w)
{
    const double interval = cfg_.detector.heartbeat_interval_s;
    // Stagger first beats so the fleet doesn't pulse in lockstep.
    co_await sim::delay(sim_, interval *
                                  (static_cast<double>(w.id + 1) /
                                   static_cast<double>(
                                       workers_.size() + 1)));
    while (!w.done) {
        if (w.crashed) { // silent: a crashed robot sends nothing.
            co_await sim::delay(sim_, interval);
            continue;
        }
        // The beat rides the worker's own lossy link and shares
        // airtime with its gradient traffic; a beat that cannot get
        // through within one interval is simply lost.
        auto res = co_await channel_->transfer(
            w.id, static_cast<double>(cfg_.detector.heartbeat_bytes),
            interval);
        if (res.completed && !w.done && !w.crashed)
            membership_->observeHeartbeat(w.id, sim_.now());
        co_await sim::delay(sim_, interval);
    }
    co_return;
}

sim::Process
Engine::monitorProcess()
{
    const double interval = cfg_.detector.check_interval_s;
    while (finished_workers_ < workers_.size()) {
        co_await sim::delay(sim_, interval);
        for (const auto &e : membership_->evaluate(sim_.now())) {
            if (e.to != MemberState::Dead)
                continue;
            WorkerContext &w = workers_[e.worker];
            ++result_.evictions;
            const bool actually_down =
                w.crashed || w.leaving || w.done;
            if (!actually_down)
                ++result_.false_evictions;
            if (cfg_.invariants)
                cfg_.invariants->onEvict(e.worker, actually_down);
            if (!server_->retired(e.worker)) {
                server_->retireWorker(e.worker);
                if (cfg_.invariants)
                    cfg_.invariants->onRetire(e.worker);
            }
            version_cond_->notifyAll();
        }
    }
    co_return;
}

bool
Engine::quorumRecoverable() const
{
    for (const auto &w : workers_) {
        if (w.done || w.leaving)
            continue;
        // A crashed peer with a scheduled rejoin comes back; a live
        // peer the detector falsely evicted re-admits itself.
        if (w.crashed && std::isfinite(w.rejoin_time))
            return true;
        if (!w.crashed && server_->retired(w.id))
            return true;
    }
    return false;
}

void
Engine::maybeCheckpointServer(std::int64_t iter)
{
    if (cfg_.checkpoint_path.empty())
        return;
    const std::size_t every = cfg_.checkpoint_every > 0
                                  ? cfg_.checkpoint_every
                                  : cfg_.eval_every;
    if (iter % static_cast<std::int64_t>(every) != 0 ||
        iter <= last_checkpoint_iter_)
        return;
    // One ROGS file per shard: shard 0 keeps the legacy path so a
    // single-shard run is file-for-file identical to the old layout.
    for (std::size_t s = 0; s < server_->shardCount(); ++s) {
        ServerCheckpoint ckpt;
        ckpt.iteration = iter;
        ckpt.msg_seq = msg_seq_;
        ckpt.versions = server_->shard(s).versionSnapshot();
        ckpt.server = server_->shard(s).serverSnapshot();
        ckpt.tracker = server_->shard(s).trackerSnapshot();
        writeServerCheckpointFile(
            shardCheckpointPath(cfg_.checkpoint_path, s), ckpt);
    }
    last_checkpoint_iter_ = iter;
    ++result_.checkpoints_written;
}

void
Engine::serverCrashRecover(std::int64_t crash_iter)
{
    // Ground truth the checkpoint cannot know: which workers are
    // retired *now* (evictions, departures, rejoins since the write),
    // and the row floor their peers saw — captured before any shard
    // restores.
    const std::size_t nw = workers_.size();
    std::vector<std::uint8_t> live_retired(nw, 0);
    std::vector<std::int64_t> live_floor(nw, 0);
    for (std::size_t i = 0; i < nw; ++i) {
        live_retired[i] = server_->retired(i) ? 1 : 0;
        live_floor[i] = std::max<std::int64_t>(
            0, server_->maxVersionOfWorker(i));
    }

    std::int64_t ckpt_iter = 0;
    std::uint64_t ckpt_seq = 0;
    for (std::size_t s = 0; s < server_->shardCount(); ++s) {
        ServerCheckpoint ckpt;
        if (last_checkpoint_iter_ >= 0)
            ckpt = readServerCheckpointFile(
                shardCheckpointPath(cfg_.checkpoint_path, s));
        else
            ckpt = genesis_[s];
        server_->shard(s).restore(ckpt.versions, ckpt.server,
                                  ckpt.tracker);
        ckpt_iter = ckpt.iteration; // identical across shards.
        ckpt_seq = std::max(ckpt_seq, ckpt.msg_seq);
    }

    ServerRecoveryRecord rr;
    rr.crash_iter = crash_iter;
    rr.checkpoint_iter = ckpt_iter;
    rr.rolled_back = ckpt_iter < crash_iter;
    rr.time_s = sim_.now();

    // Never reuse a sequence number an in-flight frame may carry.
    msg_seq_ = std::max(msg_seq_, ckpt_seq);

    // Reconcile membership with the live truth: retirement is decided
    // by the running group, not by the dead server's last write.
    for (std::size_t i = 0; i < nw; ++i) {
        const bool was_retired = live_retired[i] != 0;
        if (was_retired && !server_->retired(i)) {
            server_->retireWorker(i);
        } else if (!was_retired && server_->retired(i)) {
            // Rejoined after the checkpoint: its live row floor is
            // what its peers saw before the crash.
            server_->rejoinWorker(i, live_floor[i]);
        }
    }

    if (cfg_.invariants)
        cfg_.invariants->onServerRecovery(ckpt_iter, crash_iter);
    result_.recoveries.push_back(rr);
}

RunResult
Engine::run()
{
    // Wire-path pool occupancy is reported as a delta over the run:
    // the pool is process-global, so absolute counters would mix in
    // whatever earlier runs (or tests) leased.
    const BufferPool::Stats pool_start = BufferPool::global().stats();

    // Iteration-0 checkpoint: the shared starting model.
    {
        const double metric0 = workload_.evaluate(*workers_[0].model);
        for (const auto &w : workers_) {
            CheckpointRecord c;
            c.worker = w.id;
            c.iteration = 0;
            c.time_s = 0.0;
            c.energy_j = 0.0;
            c.metric = metric0;
            result_.checkpoints.push_back(c);
        }
    }

    for (auto &w : workers_)
        workerProcess(w);
    if (membership_) {
        for (auto &w : workers_)
            heartbeatProcess(w);
        monitorProcess();
    }
    sim_.run();
    ROG_ASSERT(finished_workers_ == workers_.size(),
               "simulation drained with unfinished workers");

    result_.sim_seconds = sim_.now();
    result_.total_bytes = channel_->totalBytesDelivered();
    result_.completed_iterations = cfg_.iterations;
    for (const auto &w : workers_) {
        result_.completed_iterations =
            std::min(result_.completed_iterations, w.cur_iter);
    }
    if (membership_)
        result_.membership_events = membership_->history();
    if (cfg_.capture_final_model) {
        std::ostringstream os;
        for (const auto &w : workers_)
            nn::saveModel(os, *w.model);
        result_.final_model_bytes = os.str();
    }
    if (transport_) {
        const auto &t = transport_->totals();
        result_.transport_retries = t.retries;
        result_.transport_backoff_s = t.backoff_s;
        result_.transport_retransmitted_bytes = t.retransmitted_bytes;
        result_.transport_corrupt_chunks = t.corrupt_chunks;
        result_.transport_duplicate_chunks = t.duplicate_chunks;
        result_.transport_reordered_chunks = t.reordered_chunks;
    }

    const BufferPool::Stats pool_end = BufferPool::global().stats();
    result_.pool_leases = pool_end.leases - pool_start.leases;
    result_.pool_reuses = pool_end.reuses - pool_start.reuses;
    result_.pool_allocations =
        pool_end.allocations - pool_start.allocations;
    result_.pool_hit_rate =
        result_.pool_leases == 0
            ? 0.0
            : static_cast<double>(result_.pool_reuses) /
                  static_cast<double>(result_.pool_leases);
    result_.pool_peak_outstanding = pool_end.peak_outstanding;
    result_.pool_resident_bytes = pool_end.resident_bytes;
    return result_;
}

} // namespace

RunResult
runDistributedTraining(Workload &workload, const EngineConfig &config,
                       const NetworkSetup &network)
{
    Engine engine(workload, config, network);
    return engine.run();
}

double
modelWireBytes(Workload &workload, Granularity granularity,
               const std::string &codec_name)
{
    auto model = workload.buildReplica();
    FlatModel flat(*model);
    RowPartition partition(flat, granularity);
    auto codec = compress::makeCodec(codec_name);
    double bytes = 0.0;
    for (const Unit &u : partition.units()) {
        bytes += partition.perUnitOverheadBytes();
        flat.forEachRowChunk(u.begin, u.width,
                             [&](std::size_t, std::size_t,
                                 std::size_t count, std::size_t) {
                                 bytes += codec->payloadBytes(count);
                             });
    }
    return bytes;
}

} // namespace core
} // namespace rog
