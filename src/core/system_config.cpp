#include "core/system_config.hpp"

#include "common/logging.hpp"

namespace rog {
namespace core {

SystemConfig
SystemConfig::bsp()
{
    SystemConfig c;
    c.name = "BSP";
    c.granularity = Granularity::WholeModel;
    c.staleness_threshold = 1;
    return c;
}

SystemConfig
SystemConfig::ssp(std::size_t t)
{
    ROG_ASSERT(t >= 1, "SSP threshold must be >= 1");
    SystemConfig c;
    c.name = "SSP-" + std::to_string(t);
    c.granularity = Granularity::WholeModel;
    c.staleness_threshold = t;
    return c;
}

SystemConfig
SystemConfig::flownSystem(std::size_t max_threshold)
{
    SystemConfig c;
    c.name = "FLOWN";
    c.granularity = Granularity::WholeModel;
    c.staleness_threshold = max_threshold; // gate cap; per-worker below.
    c.flown_dynamic = true;
    c.flown.min_threshold = 1;
    c.flown.max_threshold = max_threshold;
    return c;
}

SystemConfig
SystemConfig::rog(std::size_t t)
{
    ROG_ASSERT(t >= 2, "ROG threshold must be >= 2 (MTA needs slack)");
    SystemConfig c;
    c.name = "ROG-" + std::to_string(t);
    c.granularity = Granularity::Row;
    c.staleness_threshold = t;
    c.atp = true;
    return c;
}

} // namespace core
} // namespace rog
