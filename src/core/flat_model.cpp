#include "core/flat_model.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace rog {
namespace core {

FlatModel::FlatModel(nn::Model &model) : model_(&model)
{
    params_ = model.parameters();
    ROG_ASSERT(!params_.empty(), "model has no parameters");
    for (std::size_t p = 0; p < params_.size(); ++p) {
        const auto &value = params_[p]->value;
        for (std::size_t r = 0; r < value.rows(); ++r) {
            RowInfo info;
            info.param = p;
            info.local_row = r;
            info.flat_begin = flat_size_;
            info.width = value.cols();
            rows_.push_back(info);
            row_flat_begin_.push_back(info.flat_begin);
            flat_size_ += info.width;
        }
    }
}

const RowInfo &
FlatModel::rowInfo(std::size_t r) const
{
    ROG_ASSERT(r < rows_.size(), "row out of range");
    return rows_[r];
}

std::size_t
FlatModel::rowOfOffset(std::size_t off) const
{
    ROG_ASSERT(off < flat_size_, "flat offset out of range");
    auto it = std::upper_bound(row_flat_begin_.begin(),
                               row_flat_begin_.end(), off);
    return static_cast<std::size_t>(it - row_flat_begin_.begin()) - 1;
}

void
FlatModel::gatherGrad(std::size_t begin, std::span<float> out) const
{
    forEachRowChunk(
        begin, out.size(),
        [&](std::size_t row, std::size_t col_begin, std::size_t count,
            std::size_t range_offset) {
            const RowInfo &info = rows_[row];
            const auto src =
                params_[info.param]->grad.row(info.local_row);
            for (std::size_t j = 0; j < count; ++j)
                out[range_offset + j] = src[col_begin + j];
        });
}

void
FlatModel::accumulateGrad(std::size_t begin, std::span<float> acc) const
{
    forEachRowChunk(
        begin, acc.size(),
        [&](std::size_t row, std::size_t col_begin, std::size_t count,
            std::size_t range_offset) {
            const RowInfo &info = rows_[row];
            const auto src =
                params_[info.param]->grad.row(info.local_row);
            for (std::size_t j = 0; j < count; ++j)
                acc[range_offset + j] += src[col_begin + j];
        });
}

void
FlatModel::forEachRowChunk(
    std::size_t begin, std::size_t length,
    const std::function<void(std::size_t, std::size_t, std::size_t,
                             std::size_t)> &fn) const
{
    ROG_ASSERT(begin + length <= flat_size_, "flat range out of bounds");
    std::size_t off = begin;
    std::size_t done = 0;
    while (done < length) {
        const std::size_t row = rowOfOffset(off);
        const RowInfo &info = rows_[row];
        const std::size_t col = off - info.flat_begin;
        const std::size_t count =
            std::min(info.width - col, length - done);
        fn(row, col, count, done);
        off += count;
        done += count;
    }
}

std::span<float>
FlatModel::rowValues(std::size_t r)
{
    const RowInfo &info = rowInfo(r);
    return params_[info.param]->value.row(info.local_row);
}

std::span<float>
FlatModel::rowGrad(std::size_t r)
{
    const RowInfo &info = rowInfo(r);
    return params_[info.param]->grad.row(info.local_row);
}

} // namespace core
} // namespace rog
