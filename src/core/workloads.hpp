/**
 * @file
 * The paper's two evaluation workloads as Workload implementations:
 * CRUDA (unsupervised domain adaptation) and CRIMP (implicit mapping
 * and positioning). See data/cruda.hpp and data/crimp.hpp for the
 * synthetic-data substitutions.
 */
#ifndef ROG_CORE_WORKLOADS_HPP
#define ROG_CORE_WORKLOADS_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/workload.hpp"
#include "data/crimp.hpp"
#include "data/cruda.hpp"

namespace rog {
namespace core {

/** Configuration of the CRUDA workload. */
struct CrudaWorkloadConfig
{
    data::CrudaConfig data{};
    nn::ClassifierConfig model{32, {96, 96, 48}, 20};
    std::size_t workers = 4;
    double dirichlet_alpha = 0.5;   //!< non-IID skew (smaller = worse).
    std::size_t batch_size = 20;    //!< per-robot minibatch (Table II).
    nn::OptimizerConfig opt{0.001f, 0.9f};
    std::size_t pretrain_iters = 400;
    std::size_t pretrain_batch = 64;
    float pretrain_lr = 0.08f;
    std::size_t eval_subset = 1000; //!< test samples used per eval.
    std::uint64_t seed = 1234;
};

/**
 * CRUDA: the model is pretrained on the clean domain (so its shifted-
 * domain accuracy starts degraded, as in the paper) and the team then
 * adapts it online on non-IID shards of shifted data.
 */
class CrudaWorkload : public Workload
{
  public:
    explicit CrudaWorkload(const CrudaWorkloadConfig &cfg);

    std::size_t workers() const override { return cfg_.workers; }
    std::unique_ptr<nn::Model> buildReplica() override;
    data::BatchSampler makeSampler(std::size_t w) override;
    std::size_t batchSize() const override { return cfg_.batch_size; }
    nn::OptimizerConfig optimizerConfig() const override
    {
        return cfg_.opt;
    }
    double evaluate(nn::Model &model) override;
    std::string metricName() const override { return "accuracy_pct"; }
    bool lowerIsBetter() const override { return false; }

    /** Shifted-domain accuracy of the pretrained (unadapted) model. */
    double initialAccuracy();

    /** Clean-domain accuracy after pretraining (diagnostics). */
    double cleanAccuracy();

  private:
    double accuracyOn(nn::Model &model, const data::Dataset &set,
                      std::size_t subset);

    CrudaWorkloadConfig cfg_;
    data::CrudaTask task_;
    std::unique_ptr<nn::Model> reference_;
    std::vector<std::vector<std::size_t>> shards_;
    Rng sampler_rng_;
};

/** Configuration of the CRIMP workload. */
struct CrimpWorkloadConfig
{
    data::CrimpConfig data{};
    nn::ImplicitMapConfig model{};
    std::size_t workers = 4;
    std::size_t batch_size = 32;
    nn::OptimizerConfig opt{0.02f, 0.9f};
    std::uint64_t seed = 99;
};

/**
 * CRIMP: the team cooperatively regresses the scene's implicit map
 * from contiguous trajectory segments; the metric is the trajectory
 * reconstruction error (RMSE over trajectory probes, lower = better).
 */
class CrimpWorkload : public Workload
{
  public:
    explicit CrimpWorkload(const CrimpWorkloadConfig &cfg);

    std::size_t workers() const override { return cfg_.workers; }
    std::unique_ptr<nn::Model> buildReplica() override;
    data::BatchSampler makeSampler(std::size_t w) override;
    std::size_t batchSize() const override { return cfg_.batch_size; }
    nn::OptimizerConfig optimizerConfig() const override
    {
        return cfg_.opt;
    }
    double evaluate(nn::Model &model) override;
    std::string metricName() const override
    {
        return "trajectory_error";
    }
    bool lowerIsBetter() const override { return true; }

  private:
    CrimpWorkloadConfig cfg_;
    data::CrimpTask task_;
    std::unique_ptr<nn::Model> reference_;
    std::vector<std::vector<std::size_t>> shards_;
    Rng sampler_rng_;
};

} // namespace core
} // namespace rog

#endif // ROG_CORE_WORKLOADS_HPP
