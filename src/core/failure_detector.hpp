/**
 * @file
 * Heartbeat failure detection and membership lifecycle for the
 * training group (Sec. III-C robustness: robot crash / rejoin / leave
 * without an announcement).
 *
 * Each worker periodically sends a small heartbeat over the same
 * lossy channel as its gradients. The server-side MembershipTracker
 * scores the silence of each worker with a phi-accrual-style
 * suspicion value and walks an explicit lifecycle
 *
 *     alive -> suspect -> dead -> rejoining -> alive
 *
 * Phi is computed against an EWMA estimate of the worker's observed
 * heartbeat inter-arrival time, so a worker behind a slow link earns
 * a proportionally longer grace period than one on a fast link —
 * the adaptive part that keeps false positives near zero under deep
 * bandwidth dips. Two thresholds split suspicion from eviction:
 * at phi_suspect the worker stops holding the staleness gate (its
 * in-flight rows are reclaimed: survivors no longer wait on it), at
 * phi_evict it is declared dead and retired from the version storage.
 * A hard cap (detection_bound_s) declares any worker dead once its
 * silence exceeds the bound regardless of phi, which upper-bounds
 * detection latency for truly crashed workers.
 *
 * The tracker is pure deterministic state + arithmetic: it never
 * reads a clock or RNG, so the engine drives it entirely from
 * simulated time and replay determinism is preserved.
 */
#ifndef ROG_CORE_FAILURE_DETECTOR_HPP
#define ROG_CORE_FAILURE_DETECTOR_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace rog {
namespace core {

/** Lifecycle state of a group member as seen by the server. */
enum class MemberState {
    Alive,     //!< heartbeats arriving, participates in the gate.
    Suspect,   //!< suspiciously silent; gate no longer waits on it.
    Dead,      //!< evicted: retired from version storage.
    Rejoining, //!< dead worker resyncing to the current model.
};

const char *memberStateName(MemberState s);

/** Tuning of the phi-accrual detector. */
struct FailureDetectorConfig
{
    /** Worker heartbeat send period (simulated seconds). */
    double heartbeat_interval_s = 0.5;

    /** Phi at which a worker turns Suspect (gate stops waiting). */
    double phi_suspect = 2.0;

    /** Phi at which a worker is declared Dead (evicted). */
    double phi_evict = 4.0;

    /**
     * Hard detection bound: silence of at least this many seconds
     * declares the worker Dead regardless of phi. This is also the
     * only rule in force before min_samples heartbeats have arrived.
     */
    double detection_bound_s = 12.0;

    /** Heartbeats needed before phi is trusted. */
    std::size_t min_samples = 3;

    /** Wire size of one heartbeat message. */
    std::size_t heartbeat_bytes = 64;

    /** Server-side membership evaluation period. */
    double check_interval_s = 0.25;

    /** nullopt-style "no error" on success. */
    std::string validationError() const;
};

/** One lifecycle transition, as recorded by the tracker. */
struct MembershipEvent
{
    double time = 0.0;
    std::size_t worker = 0;
    MemberState from = MemberState::Alive;
    MemberState to = MemberState::Alive;
    double phi = 0.0; //!< suspicion score at transition time.
};

/**
 * Server-side membership state machine over heartbeat arrivals.
 *
 * Drive it with observeHeartbeat() per arrival and evaluate() at a
 * fixed cadence; both append every transition to history() and
 * evaluate() additionally returns the transitions it produced so the
 * caller can act on them (retire the dead, reopen the gate).
 */
class MembershipTracker
{
  public:
    MembershipTracker(std::size_t workers,
                      const FailureDetectorConfig &cfg);

    std::size_t workers() const { return members_.size(); }

    /** Record a heartbeat from @p worker at time @p now. */
    void observeHeartbeat(std::size_t worker, double now);

    /**
     * Re-score every active worker at time @p now and apply the
     * resulting transitions; returns the transitions of this call.
     */
    std::vector<MembershipEvent> evaluate(double now);

    MemberState state(std::size_t worker) const;

    /** Suspicion score of @p worker at @p now (0 while unscored). */
    double phi(std::size_t worker, double now) const;

    /** Seconds since the last heartbeat of @p worker. */
    double silence(std::size_t worker, double now) const;

    /** Dead -> Rejoining (the engine started a resync). */
    void markRejoining(std::size_t worker, double now);

    /**
     * Rejoining -> Alive. Heartbeat statistics restart from scratch
     * so stale pre-crash interval estimates cannot linger.
     */
    void markRejoined(std::size_t worker, double now);

    /**
     * Restart heartbeat statistics at @p now without a lifecycle
     * round-trip — for a worker that resynced while never declared
     * dead (e.g. a planned rejoin that beat detection). A Suspect is
     * cleared back to Alive; silence accrued during the outage is
     * forgotten so the next evaluation cannot evict the fresh rejoiner.
     */
    void resetStats(std::size_t worker, double now);

    /**
     * Administrative removal (worker finished or left gracefully):
     * the worker is no longer scored and never reported Dead.
     */
    void deactivate(std::size_t worker);

    bool active(std::size_t worker) const;

    /** Active workers currently Alive or Suspect (quorum input). */
    std::size_t participantCount() const;

    /** Every transition ever recorded, in order. */
    const std::vector<MembershipEvent> &history() const
    {
        return history_;
    }

  private:
    struct Member
    {
        MemberState state = MemberState::Alive;
        bool active = true;
        double last_arrival = 0.0;
        double mean_interval = 0.0; //!< EWMA of inter-arrival gaps.
        std::size_t samples = 0;
    };

    void transition(Member &m, std::size_t worker, double now,
                    MemberState to, double phi_now,
                    std::vector<MembershipEvent> *out);

    FailureDetectorConfig cfg_;
    std::vector<Member> members_;
    std::vector<MembershipEvent> history_;
};

} // namespace core
} // namespace rog

#endif // ROG_CORE_FAILURE_DETECTOR_HPP
