#include "core/version_storage.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace rog {
namespace core {

VersionStorage::VersionStorage(std::size_t workers, std::size_t units)
    : versions_(workers, std::vector<std::int64_t>(units, 0)),
      retired_(workers, false), units_(units)
{
    ROG_ASSERT(workers > 0 && units > 0, "empty version storage");
}

std::int64_t
VersionStorage::get(std::size_t worker, std::size_t unit) const
{
    ROG_ASSERT(worker < versions_.size() && unit < units_,
               "version index out of range");
    return versions_[worker][unit];
}

void
VersionStorage::update(std::size_t worker, std::size_t unit,
                       std::int64_t iter)
{
    ROG_ASSERT(worker < versions_.size() && unit < units_,
               "version index out of range");
    ROG_ASSERT(iter >= versions_[worker][unit],
               "versions must be monotone");
    versions_[worker][unit] = iter;
    dirty_ = true;
}

std::int64_t
VersionStorage::minVersion() const
{
    if (!dirty_)
        return cached_min_;
    bool any = false;
    std::int64_t m = 0;
    for (std::size_t w = 0; w < versions_.size(); ++w) {
        if (retired_[w])
            continue;
        const auto it =
            std::min_element(versions_[w].begin(), versions_[w].end());
        if (!any || *it < m)
            m = *it;
        any = true;
    }
    if (any)
        cached_min_ = m;
    dirty_ = false;
    return cached_min_;
}

std::int64_t
VersionStorage::minAcrossWorkers(std::size_t unit) const
{
    ROG_ASSERT(unit < units_, "unit out of range");
    bool any = false;
    std::int64_t m = 0;
    for (std::size_t w = 0; w < versions_.size(); ++w) {
        if (retired_[w])
            continue;
        if (!any || versions_[w][unit] < m)
            m = versions_[w][unit];
        any = true;
    }
    return any ? m : minVersion();
}

void
VersionStorage::retireWorker(std::size_t worker)
{
    ROG_ASSERT(worker < retired_.size(), "worker out of range");
    retired_[worker] = true;
    dirty_ = true;
}

bool
VersionStorage::retired(std::size_t worker) const
{
    ROG_ASSERT(worker < retired_.size(), "worker out of range");
    return retired_[worker];
}

void
VersionStorage::rejoinWorker(std::size_t worker, std::int64_t iter)
{
    ROG_ASSERT(worker < retired_.size(), "worker out of range");
    for (std::int64_t &v : versions_[worker]) {
        ROG_ASSERT(iter >= v, "rejoin would move a version backwards");
        v = iter;
    }
    retired_[worker] = false;
    dirty_ = true;
}

VersionSnapshot
VersionStorage::snapshot() const
{
    VersionSnapshot s;
    s.versions = versions_;
    s.retired.reserve(retired_.size());
    for (bool r : retired_)
        s.retired.push_back(r ? 1 : 0);
    return s;
}

void
VersionStorage::restore(const VersionSnapshot &s)
{
    if (s.versions.size() != versions_.size() ||
        s.retired.size() != retired_.size())
        ROG_FATAL("version snapshot worker count mismatch");
    for (const auto &row : s.versions)
        if (row.size() != units_)
            ROG_FATAL("version snapshot unit count mismatch");
    versions_ = s.versions;
    for (std::size_t w = 0; w < retired_.size(); ++w)
        retired_[w] = s.retired[w] != 0;
    dirty_ = true;
}

std::int64_t
VersionStorage::minVersionOfWorker(std::size_t worker) const
{
    ROG_ASSERT(worker < versions_.size(), "worker out of range");
    return *std::min_element(versions_[worker].begin(),
                             versions_[worker].end());
}

std::int64_t
VersionStorage::maxVersionOfWorker(std::size_t worker) const
{
    ROG_ASSERT(worker < versions_.size(), "worker out of range");
    return *std::max_element(versions_[worker].begin(),
                             versions_[worker].end());
}

std::int64_t
VersionStorage::minWorkerIteration() const
{
    bool any = false;
    std::int64_t m = 0;
    for (std::size_t w = 0; w < versions_.size(); ++w) {
        if (retired_[w])
            continue;
        const std::int64_t it = maxVersionOfWorker(w);
        if (!any || it < m)
            m = it;
        any = true;
    }
    return any ? m : minVersion();
}

} // namespace core
} // namespace rog
