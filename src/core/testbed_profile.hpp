/**
 * @file
 * Calibration constants measured on the paper's testbed.
 *
 * These mirror the paper's measured environment so that the simulated
 * time/energy composition has the same proportions: compute time and
 * compression cost from Table II / Sec. II-B, power draw from
 * Table III, and a mean usable link bandwidth chosen so that a full
 * compressed push+pull across four workers costs ~1.47 s, the paper's
 * ideal-network figure (Sec. II-B).
 */
#ifndef ROG_CORE_TESTBED_PROFILE_HPP
#define ROG_CORE_TESTBED_PROFILE_HPP

#include "sim/energy.hpp"

namespace rog {
namespace core {

/** Timing / power profile of one robot (Jetson Xavier NX class). */
struct TestbedProfile
{
    /** Forward+backward time per iteration at batch scale 1 (Sec.
     *  II-B: 2.18 s on a Jetson Xavier NX with dynamic batching). */
    double compute_seconds = 2.18;

    /** One-bit compress + decompress cost per iteration, charged as
     *  computation (Table II: 0.42-0.51 s; we use the midpoint). */
    double compress_seconds = 0.47;

    /** Batch-size multiplier: compute time scales proportionally
     *  (Sec. VI-C batch-size sensitivity). */
    double batch_scale = 1.0;

    /** Power model (Table III). */
    sim::PowerModel power{};

    /** Compute time for this profile's batch scale. */
    double
    iterationComputeSeconds() const
    {
        return compute_seconds * batch_scale + compress_seconds;
    }
};

/**
 * Mean usable link bandwidth in bytes/second, calibrated so that the
 * BSP synchronization volume of @p model_wire_bytes per worker
 * (push + pull for @p workers devices sharing the channel) costs about
 * @p target_seconds — the paper's 1.47 s ideal-network figure.
 */
inline double
calibratedMeanBandwidth(double model_wire_bytes, std::size_t workers,
                        double target_seconds = 1.47)
{
    // Total volume on the shared medium: each worker pushes and pulls
    // one compressed model (2 * workers * size), all over one channel.
    const double total = 2.0 * static_cast<double>(workers) *
                         model_wire_bytes;
    return total / target_seconds;
}

} // namespace core
} // namespace rog

#endif // ROG_CORE_TESTBED_PROFILE_HPP
