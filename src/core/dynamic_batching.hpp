/**
 * @file
 * Dynamic batching for heterogeneous devices (Sec. VI, ref. [49]).
 *
 * The paper's testbed mixes Jetson Xavier NX robots (batch 24) with
 * weaker laptops (batch 16) and "adopted dynamic batching to make all
 * the involved devices spend equal time computing gradients in each
 * iteration" — compute-power heterogeneity is explicitly out of the
 * paper's scope, so it is equalized away. This module reproduces that
 * equalization: given per-device compute speeds, it splits a global
 * batch so every device finishes its share in the same time.
 */
#ifndef ROG_CORE_DYNAMIC_BATCHING_HPP
#define ROG_CORE_DYNAMIC_BATCHING_HPP

#include <cstddef>
#include <vector>

namespace rog {
namespace core {

/** Result of a dynamic batch split. */
struct BatchAssignment
{
    /** Per-device minibatch sizes (sum == requested total). */
    std::vector<std::size_t> batch_sizes;

    /** Per-device gradient-computation seconds under the split. */
    std::vector<double> compute_seconds;

    /** max(compute_seconds): the equalized iteration compute time. */
    double iteration_seconds = 0.0;

    /** max/min of compute_seconds (1.0 = perfectly balanced). */
    double imbalance = 1.0;
};

/**
 * Split @p total_batch samples across devices proportionally to their
 * speed so compute time is equalized.
 *
 * @param seconds_per_sample per-device cost of one sample.
 *        @pre non-empty, all > 0
 * @param total_batch global batch size. @pre >= device count
 * @return assignment with every device given at least one sample.
 */
BatchAssignment
assignDynamicBatches(const std::vector<double> &seconds_per_sample,
                     std::size_t total_batch);

/**
 * The naive alternative (no dynamic batching): every device gets
 * total_batch / devices samples; slow devices become compute
 * stragglers. Used by the heterogeneity ablation.
 */
BatchAssignment
assignUniformBatches(const std::vector<double> &seconds_per_sample,
                     std::size_t total_batch);

} // namespace core
} // namespace rog

#endif // ROG_CORE_DYNAMIC_BATCHING_HPP
