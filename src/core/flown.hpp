/**
 * @file
 * FLOWN baseline: dynamic staleness-threshold scheduling [19].
 *
 * The paper's strongest baseline schedules synchronization per worker
 * from *estimated* network conditions: a worker estimated to have low
 * bandwidth (and low contribution) is given a larger staleness
 * allowance so the rest do not wait for it; a well-connected worker is
 * held close to the fresh state. The scheduling is model-granulated —
 * and that is exactly why it fails on robotic IoT networks: the
 * estimate is made before a whole-model transmission whose duration
 * exceeds the bandwidth-fluctuation timescale, so the schedule is
 * stale by the time it matters (Sec. I, Fig. 1).
 */
#ifndef ROG_CORE_FLOWN_HPP
#define ROG_CORE_FLOWN_HPP

#include <cstddef>
#include <vector>

#include "common/math_util.hpp"

namespace rog {
namespace core {

/** Configuration of the dynamic-threshold scheduler. */
struct FlownConfig
{
    std::size_t min_threshold = 1;   //!< floor for fast workers.
    std::size_t base_threshold = 2;  //!< allowance at average speed.
    std::size_t max_threshold = 8;   //!< cap for slow workers.
    double ewma_alpha = 0.3;         //!< bandwidth estimator weight.
};

/**
 * Per-worker dynamic staleness thresholds from EWMA bandwidth
 * estimates: threshold_r scales with (mean estimated rate / worker r's
 * estimated rate), clamped to [min, max]. Workers report observed
 * throughput after each whole-model transmission.
 */
class FlownScheduler
{
  public:
    FlownScheduler(std::size_t workers, FlownConfig cfg);

    /** Record an observed whole-model transmission throughput. */
    void reportThroughput(std::size_t worker, double bytes_per_sec);

    /** Current staleness allowance for @p worker. */
    std::size_t thresholdFor(std::size_t worker) const;

    /** Estimated bytes/sec for @p worker (diagnostics). */
    double estimatedRate(std::size_t worker) const;

  private:
    FlownConfig cfg_;
    std::vector<Ewma> rate_;
};

} // namespace core
} // namespace rog

#endif // ROG_CORE_FLOWN_HPP
