#include "core/chaos_check.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "core/server_checkpoint.hpp"
#include "net/transport/event_log.hpp"
#include "nn/serialize.hpp"

namespace rog {
namespace core {

namespace {

std::vector<std::string>
readLines(const std::string &path)
{
    std::vector<std::string> lines;
    std::ifstream is(path);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

/** "key value" pairs from a summary file. */
std::map<std::string, std::string>
readSummary(const std::string &path)
{
    std::map<std::string, std::string> kv;
    std::ifstream is(path);
    std::string key;
    std::string value;
    while (is >> key >> value)
        kv[key] = value;
    return kv;
}

} // namespace

ChaosCheckResult
checkChaosRun(const NodeRunConfig &cfg, const ChaosCheckOptions &opts)
{
    ChaosCheckResult res;
    std::ostringstream report;
    const std::string &dir = cfg.artifact_dir;
    auto violate = [&](const std::string &what) {
        res.violations.push_back(what);
    };

    // 1. Server checkpoint: present and CRC-clean.
    try {
        const ServerCheckpoint ckpt =
            readServerCheckpointFile(dir + "/checkpoint.rogs");
        report << "checkpoint: ok (iter " << ckpt.iteration << ")\n";
    } catch (const std::exception &e) {
        violate(std::string("checkpoint unreadable: ") + e.what());
        report << "checkpoint: FAIL\n";
    }

    // 2. Final model: CRC-clean and finite under evaluation.
    double metric = std::nan("");
    try {
        std::unique_ptr<Workload> workload = makeNodeWorkload(cfg);
        std::unique_ptr<nn::Model> model = workload->buildReplica();
        nn::loadModelFile(dir + "/model.rogm", *model);
        metric = workload->evaluate(*model);
        if (!std::isfinite(metric))
            violate("final model evaluates non-finite");
        report << "model: ok (" << workload->metricName() << ' '
               << metric << ")\n";
    } catch (const std::exception &e) {
        violate(std::string("final model unreadable: ") + e.what());
        report << "model: FAIL\n";
    }

    // 3. Application-level exactly-once + 5. membership outcomes +
    //    7. server restart invariants, all from the structured server
    //    run log. The log is append-mode across server incarnations;
    //    each `server_start` line opens a new segment with its own
    //    applied-set (a restarted server legitimately re-applies
    //    pushes its checkpoint never covered) and its own restored
    //    watermark (anything at or below it must NOT re-apply).
    std::set<std::size_t> admitted_restart; //!< admit with inc >= 1.
    std::set<std::size_t> evicted;
    std::set<std::size_t> byed;
    struct Incarnation
    {
        std::uint64_t epoch = 0;
        bool recovered = false;
        /** Restored per-(worker,unit) apply watermark from the
         *  recover_w lines; applies at or below it are duplicates. */
        std::map<std::size_t, std::vector<long long>> watermark;
        std::set<std::string> applied;
        std::map<std::size_t, std::uint64_t> admit_epoch;
        std::set<std::size_t> byes;
    };
    std::vector<Incarnation> incs;
    {
        std::size_t total_applies = 0;
        std::size_t dup_applies = 0;
        auto cur = [&incs]() -> Incarnation & {
            if (incs.empty())
                incs.emplace_back(); // pre-PR-9 logs: one segment.
            return incs.back();
        };
        for (const std::string &line :
             readLines(dir + "/server_run.log")) {
            double t = 0.0;
            std::size_t w = 0;
            long long iter = 0;
            std::size_t unit = 0;
            unsigned inc = 0;
            unsigned long long epoch = 0;
            int recovered = 0;
            char mode[16] = {0};
            if (std::sscanf(line.c_str(),
                            "t=%lf apply w=%zu iter=%lld unit=%zu", &t,
                            &w, &iter, &unit) == 4) {
                ++total_applies;
                Incarnation &seg = cur();
                std::ostringstream key;
                key << w << ':' << iter << ':' << unit;
                if (!seg.applied.insert(key.str()).second) {
                    ++dup_applies;
                    violate("gradient applied twice: w=" +
                            std::to_string(w) +
                            " iter=" + std::to_string(iter) +
                            " unit=" + std::to_string(unit));
                }
                auto wm = seg.watermark.find(w);
                if (wm != seg.watermark.end() &&
                    unit < wm->second.size() &&
                    iter <= wm->second[unit]) {
                    ++dup_applies;
                    violate(
                        "gradient re-applied after server restart: "
                        "w=" +
                        std::to_string(w) +
                        " iter=" + std::to_string(iter) +
                        " unit=" + std::to_string(unit) +
                        " watermark=" +
                        std::to_string(wm->second[unit]));
                }
            } else if (std::sscanf(line.c_str(),
                                   "t=%lf server_start epoch=%llu "
                                   "recovered=%d",
                                   &t, &epoch, &recovered) == 3) {
                incs.emplace_back();
                incs.back().epoch = epoch;
                incs.back().recovered = recovered != 0;
            } else if (std::sscanf(line.c_str(),
                                   "t=%lf recover_w w=%zu versions=",
                                   &t, &w) == 2) {
                const std::size_t pos = line.find("versions=");
                if (pos != std::string::npos) {
                    std::vector<long long> vs;
                    std::istringstream is(
                        line.substr(pos + std::strlen("versions=")));
                    std::string tok;
                    while (std::getline(is, tok, ','))
                        vs.push_back(std::stoll(tok));
                    cur().watermark[w] = std::move(vs);
                }
            } else if (std::sscanf(line.c_str(),
                                   "t=%lf admit w=%zu mode=%15s "
                                   "session=%*u start=%*d inc=%u "
                                   "model_bytes=%*u epoch=%llu",
                                   &t, &w, mode, &inc, &epoch) >= 3) {
                if (inc >= 1)
                    admitted_restart.insert(w);
                cur().admit_epoch[w] = epoch;
            } else if (std::sscanf(line.c_str(), "t=%lf evict w=%zu",
                                   &t, &w) == 2) {
                evicted.insert(w);
            } else if (std::sscanf(line.c_str(),
                                   "t=%lf bye w=%zu", &t, &w) == 2) {
                byed.insert(w);
                cur().byes.insert(w);
            }
        }
        report << "applies: " << total_applies << " total over "
               << incs.size() << " server incarnation(s), "
               << dup_applies << " double-applied\n";
    }

    // 4. Transport-level exactly-once from the server's receiver
    //    event log: one Deliver per key, one fresh Accept per chunk.
    {
        std::ifstream is(dir + "/server_events.log");
        std::stringstream buf;
        buf << is.rdbuf();
        const net::transport::LogParseResult parsed =
            net::transport::tryParseLog(buf.str());
        if (!parsed.error.empty()) {
            violate("server event log unparsable: " + parsed.error);
            report << "transport log: FAIL\n";
        } else {
            std::map<std::string, std::size_t> delivers;
            std::set<std::string> accepts;
            std::size_t dup_delivers = 0;
            std::size_t dup_accepts = 0;
            for (const auto &ev : parsed.events) {
                std::ostringstream key;
                key << ev.key.worker << ':' << ev.key.version << ':'
                    << ev.key.row << ':' << ev.key.pull;
                if (ev.kind ==
                    net::transport::TransportEvent::Kind::Deliver) {
                    if (++delivers[key.str()] > 1) {
                        ++dup_delivers;
                        violate("transport delivered twice: key " +
                                key.str());
                    }
                } else if (ev.kind == net::transport::TransportEvent::
                                          Kind::Accept) {
                    key << '#' << ev.chunk_seq;
                    if (!accepts.insert(key.str()).second) {
                        ++dup_accepts;
                        violate("chunk accepted fresh twice: " +
                                key.str());
                    }
                }
            }
            report << "transport log: " << parsed.events.size()
                   << " events, " << dup_delivers
                   << " double-delivers, " << dup_accepts
                   << " double-accepts\n";
        }
    }

    // 5. Every killed worker must have been evicted or re-admitted
    //    as a restarted incarnation — a silent disappearance is a
    //    failure-detection bug.
    for (std::size_t w : opts.killed_workers) {
        if (admitted_restart.count(w) == 0 && evicted.count(w) == 0)
            violate("killed worker neither evicted nor re-admitted: "
                    "w=" +
                    std::to_string(w));
        if (opts.require_all_bye && byed.count(w) == 0)
            violate("killed+restarted worker never finished: w=" +
                    std::to_string(w));
    }
    if (opts.require_all_bye) {
        for (std::size_t w = 0; w < cfg.workers; ++w)
            if (byed.count(w) == 0)
                violate("worker never said bye: w=" +
                        std::to_string(w));
    }
    report << "membership: " << admitted_restart.size()
           << " restarted-admits, " << evicted.size() << " evictions, "
           << byed.size() << " byes\n";

    // 7. Server crash-restart invariants: every kill produced a new
    //    incarnation that recovered from the checkpoint under a
    //    strictly higher epoch, and the workers that finished after
    //    the last restart did so under that final epoch — i.e. they
    //    actually crossed the Hello/Welcome re-admission gate instead
    //    of talking to a ghost of the old server.
    if (opts.server_restarts > 0) {
        if (incs.size() != opts.server_restarts + 1) {
            violate("expected " +
                    std::to_string(opts.server_restarts + 1) +
                    " server incarnations, log shows " +
                    std::to_string(incs.size()));
        } else {
            for (std::size_t k = 1; k < incs.size(); ++k) {
                if (!incs[k].recovered)
                    violate("server incarnation " + std::to_string(k) +
                            " did not recover from a checkpoint");
                if (incs[k].epoch <= incs[k - 1].epoch)
                    violate("server epoch did not rise across "
                            "restart: " +
                            std::to_string(incs[k - 1].epoch) +
                            " -> " + std::to_string(incs[k].epoch));
            }
            const Incarnation &last = incs.back();
            for (std::size_t w : last.byes) {
                auto it = last.admit_epoch.find(w);
                if (it == last.admit_epoch.end())
                    violate("worker finished after server restart "
                            "without re-admission: w=" +
                            std::to_string(w));
                else if (it->second != last.epoch)
                    violate("worker re-admitted under wrong epoch: "
                            "w=" +
                            std::to_string(w) + " epoch=" +
                            std::to_string(it->second) + " (want " +
                            std::to_string(last.epoch) + ")");
            }
        }
        report << "server restarts: " << (incs.size() - 1)
               << " observed, final epoch "
               << (incs.empty() ? 0 : incs.back().epoch) << "\n";
    }

    // 6. Metric within tolerance of the fault-free DES twin.
    {
        const auto twin = readSummary(dir + "/des_summary.txt");
        auto it = twin.find("metric");
        if (it == twin.end()) {
            if (opts.require_twin)
                violate("no DES twin summary to compare against");
            report << "twin: absent\n";
        } else if (std::isfinite(metric)) {
            const double ref = std::stod(it->second);
            const double delta = std::fabs(metric - ref);
            if (!(delta <= opts.metric_tolerance))
                violate("metric " + std::to_string(metric) +
                        " deviates from twin " + it->second + " by " +
                        std::to_string(delta) + " (tolerance " +
                        std::to_string(opts.metric_tolerance) + ")");
            report << "twin: ref " << ref << ", delta " << delta
                   << "\n";
        }
    }

    res.ok = res.violations.empty();
    res.report = report.str();
    return res;
}

} // namespace core
} // namespace rog
