#include "core/chaos_check.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "core/server_checkpoint.hpp"
#include "net/transport/event_log.hpp"
#include "nn/serialize.hpp"

namespace rog {
namespace core {

namespace {

std::vector<std::string>
readLines(const std::string &path)
{
    std::vector<std::string> lines;
    std::ifstream is(path);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

/** "key value" pairs from a summary file. */
std::map<std::string, std::string>
readSummary(const std::string &path)
{
    std::map<std::string, std::string> kv;
    std::ifstream is(path);
    std::string key;
    std::string value;
    while (is >> key >> value)
        kv[key] = value;
    return kv;
}

} // namespace

ChaosCheckResult
checkChaosRun(const NodeRunConfig &cfg, const ChaosCheckOptions &opts)
{
    ChaosCheckResult res;
    std::ostringstream report;
    const std::string &dir = cfg.artifact_dir;
    auto violate = [&](const std::string &what) {
        res.violations.push_back(what);
    };

    // 1. Server checkpoint: present and CRC-clean.
    try {
        const ServerCheckpoint ckpt =
            readServerCheckpointFile(dir + "/checkpoint.rogs");
        report << "checkpoint: ok (iter " << ckpt.iteration << ")\n";
    } catch (const std::exception &e) {
        violate(std::string("checkpoint unreadable: ") + e.what());
        report << "checkpoint: FAIL\n";
    }

    // 2. Final model: CRC-clean and finite under evaluation.
    double metric = std::nan("");
    try {
        std::unique_ptr<Workload> workload = makeNodeWorkload(cfg);
        std::unique_ptr<nn::Model> model = workload->buildReplica();
        nn::loadModelFile(dir + "/model.rogm", *model);
        metric = workload->evaluate(*model);
        if (!std::isfinite(metric))
            violate("final model evaluates non-finite");
        report << "model: ok (" << workload->metricName() << ' '
               << metric << ")\n";
    } catch (const std::exception &e) {
        violate(std::string("final model unreadable: ") + e.what());
        report << "model: FAIL\n";
    }

    // 3. Application-level exactly-once + 5. membership outcomes,
    //    both from the structured server run log.
    std::set<std::size_t> admitted_restart; //!< admit with inc >= 1.
    std::set<std::size_t> evicted;
    std::set<std::size_t> byed;
    {
        std::set<std::string> applied;
        std::size_t dup_applies = 0;
        for (const std::string &line :
             readLines(dir + "/server_run.log")) {
            double t = 0.0;
            std::size_t w = 0;
            long long iter = 0;
            std::size_t unit = 0;
            unsigned inc = 0;
            char mode[16] = {0};
            if (std::sscanf(line.c_str(),
                            "t=%lf apply w=%zu iter=%lld unit=%zu", &t,
                            &w, &iter, &unit) == 4) {
                std::ostringstream key;
                key << w << ':' << iter << ':' << unit;
                if (!applied.insert(key.str()).second) {
                    ++dup_applies;
                    violate("gradient applied twice: w=" +
                            std::to_string(w) +
                            " iter=" + std::to_string(iter) +
                            " unit=" + std::to_string(unit));
                }
            } else if (std::sscanf(line.c_str(),
                                   "t=%lf admit w=%zu mode=%15s "
                                   "session=%*u start=%*d inc=%u",
                                   &t, &w, mode, &inc) >= 3) {
                if (inc >= 1)
                    admitted_restart.insert(w);
            } else if (std::sscanf(line.c_str(), "t=%lf evict w=%zu",
                                   &t, &w) == 2) {
                evicted.insert(w);
            } else if (std::sscanf(line.c_str(),
                                   "t=%lf bye w=%zu", &t, &w) == 2) {
                byed.insert(w);
            }
        }
        report << "applies: " << applied.size() << " unique, "
               << dup_applies << " double-applied\n";
    }

    // 4. Transport-level exactly-once from the server's receiver
    //    event log: one Deliver per key, one fresh Accept per chunk.
    {
        std::ifstream is(dir + "/server_events.log");
        std::stringstream buf;
        buf << is.rdbuf();
        const net::transport::LogParseResult parsed =
            net::transport::tryParseLog(buf.str());
        if (!parsed.error.empty()) {
            violate("server event log unparsable: " + parsed.error);
            report << "transport log: FAIL\n";
        } else {
            std::map<std::string, std::size_t> delivers;
            std::set<std::string> accepts;
            std::size_t dup_delivers = 0;
            std::size_t dup_accepts = 0;
            for (const auto &ev : parsed.events) {
                std::ostringstream key;
                key << ev.key.worker << ':' << ev.key.version << ':'
                    << ev.key.row << ':' << ev.key.pull;
                if (ev.kind ==
                    net::transport::TransportEvent::Kind::Deliver) {
                    if (++delivers[key.str()] > 1) {
                        ++dup_delivers;
                        violate("transport delivered twice: key " +
                                key.str());
                    }
                } else if (ev.kind == net::transport::TransportEvent::
                                          Kind::Accept) {
                    key << '#' << ev.chunk_seq;
                    if (!accepts.insert(key.str()).second) {
                        ++dup_accepts;
                        violate("chunk accepted fresh twice: " +
                                key.str());
                    }
                }
            }
            report << "transport log: " << parsed.events.size()
                   << " events, " << dup_delivers
                   << " double-delivers, " << dup_accepts
                   << " double-accepts\n";
        }
    }

    // 5. Every killed worker must have been evicted or re-admitted
    //    as a restarted incarnation — a silent disappearance is a
    //    failure-detection bug.
    for (std::size_t w : opts.killed_workers) {
        if (admitted_restart.count(w) == 0 && evicted.count(w) == 0)
            violate("killed worker neither evicted nor re-admitted: "
                    "w=" +
                    std::to_string(w));
        if (opts.require_all_bye && byed.count(w) == 0)
            violate("killed+restarted worker never finished: w=" +
                    std::to_string(w));
    }
    if (opts.require_all_bye) {
        for (std::size_t w = 0; w < cfg.workers; ++w)
            if (byed.count(w) == 0)
                violate("worker never said bye: w=" +
                        std::to_string(w));
    }
    report << "membership: " << admitted_restart.size()
           << " restarted-admits, " << evicted.size() << " evictions, "
           << byed.size() << " byes\n";

    // 6. Metric within tolerance of the fault-free DES twin.
    {
        const auto twin = readSummary(dir + "/des_summary.txt");
        auto it = twin.find("metric");
        if (it == twin.end()) {
            if (opts.require_twin)
                violate("no DES twin summary to compare against");
            report << "twin: absent\n";
        } else if (std::isfinite(metric)) {
            const double ref = std::stod(it->second);
            const double delta = std::fabs(metric - ref);
            if (!(delta <= opts.metric_tolerance))
                violate("metric " + std::to_string(metric) +
                        " deviates from twin " + it->second + " by " +
                        std::to_string(delta) + " (tolerance " +
                        std::to_string(opts.metric_tolerance) + ")");
            report << "twin: ref " << ref << ", delta " << delta
                   << "\n";
        }
    }

    res.ok = res.violations.empty();
    res.report = report.str();
    return res;
}

} // namespace core
} // namespace rog
