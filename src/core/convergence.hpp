/**
 * @file
 * Empirical validation of Theorem 1 (Sec. IV-C): SGD under RSP.
 *
 * The paper proves that row-granulated staleness keeps SSP's regret
 * bound: with P workers, per-row staleness bounded by S_max, step size
 * sigma/sqrt(t), L-Lipschitz convex components and diameter F, the
 * regret satisfies R[X] <= 4 F L sqrt(2 (S_max + 1) P T) = o(T).
 *
 * simulateRspRegret runs exactly that process on a synthetic convex
 * problem: P workers compute subgradients against *per-row stale*
 * iterates (each row's view lags by an independent random delay
 * bounded by S_max, the situation RSP permits) and the aggregated
 * updates drive a projected SGD. The returned trajectory lets tests
 * and benches check R[X]/T -> 0 and R[X] against the closed-form
 * bound.
 */
#ifndef ROG_CORE_CONVERGENCE_HPP
#define ROG_CORE_CONVERGENCE_HPP

#include <cstdint>
#include <vector>

namespace rog {
namespace core {

/** Parameters of the regret simulation. */
struct RegretConfig
{
    std::size_t rows = 32;         //!< M: rows of the iterate.
    std::size_t workers = 4;       //!< P.
    std::size_t staleness = 4;     //!< S_max (0 = fully synchronous).
    std::size_t iterations = 4000; //!< T.
    double diameter = 2.0;         //!< F: domain radius (projection).
    std::uint64_t seed = 1;
};

/** Trajectory and bound comparison for one simulation. */
struct RegretResult
{
    /** Cumulative regret R[X] after each iteration. */
    std::vector<double> cumulative_regret;

    /** R[X]/T at the end (must tend to 0 as T grows). */
    double average_regret = 0.0;

    /** Empirical Lipschitz bound L = max_t ||grad f_t||. */
    double lipschitz = 0.0;

    /** Closed-form bound 4 F L sqrt(2 (S_max+1) P T). */
    double theorem_bound = 0.0;

    /** True iff R[X] <= theorem_bound. */
    bool within_bound = false;

    /** Largest per-row staleness actually realized. */
    std::size_t max_realized_staleness = 0;
};

/**
 * Run projected SGD under RSP-style per-row staleness on the convex
 * problem f_t(x) = 1/2 ||x - c_t||^2 (c_t i.i.d. in [-1, 1]^M, whose
 * minimizer is the running mean of c_t).
 */
RegretResult simulateRspRegret(const RegretConfig &cfg);

} // namespace core
} // namespace rog

#endif // ROG_CORE_CONVERGENCE_HPP
