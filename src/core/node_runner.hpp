/**
 * @file
 * Process entry points for the session-layer training nodes.
 *
 * One NodeRunConfig describes a whole run — workload sizing,
 * transport/backend selection (des | udp | tcp), fault plan, failure
 * detector tuning, artifact paths — and is shared verbatim by the
 * server process, every worker process, and the in-simulation DES
 * twin, so "same run, different wire" is a config value, not a code
 * path. The runners here own everything OS-flavored the node engine
 * refuses to know about: poll loops, fabrics, artifact files, worker
 * resume metadata, and run timeouts.
 */
#ifndef ROG_CORE_NODE_RUNNER_HPP
#define ROG_CORE_NODE_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/node_engine.hpp"
#include "fault/socket_fault.hpp"
#include "net/transport/backend.hpp"
#include "net/transport/socket_backend.hpp"

namespace rog {
namespace core {

/** Everything one training run needs, for every role. */
struct NodeRunConfig
{
    NodeTrainConfig train;

    /** Tiny-CRUDA workload sizing (deterministic per seed). */
    std::size_t workers = 4;
    std::uint64_t workload_seed = 1234;

    /** "des" | "udp" | "tcp". */
    std::string backend = "udp";

    net::transport::TransportConfig transport;
    net::transport::SocketOptions socket;

    /** Seeded wire faults on worker->server pushes (UDP only). */
    fault::SocketFaultPlan fault_plan;
    bool inject_faults = false;

    /** Server listen port (0 = ephemeral). A restarted server passes
     *  its old port here to reclaim it (with the bind-retry window). */
    std::uint16_t listen_port = 0;

    /**
     * DES twin server-crash plan: destroy the in-simulation server
     * once a push at this iteration (or later) applies, then rebuild
     * it from its checkpoint after the delay — the simulation analogue
     * of `rog_chaos --kill-server-iter`. 0 = never crash.
     */
    std::int64_t server_crash_iter = 0;
    double server_crash_restart_s = 0.5;

    /** Wall-clock (or simulated, for DES) run bound. */
    double run_timeout_s = 120.0;

    /** Logs / checkpoints / summaries land here ("" = none). */
    std::string artifact_dir;

    /** DES twin channel bandwidth. */
    double des_rate_bps = 4.0e6;
};

/** Fill in the cross-role defaults a chaos run wants: fast failure
 *  detection, unbounded chunk retries, quick transport backoff. */
NodeRunConfig chaosRunDefaults();

/** The tiny CRUDA workload every role builds identically. */
std::unique_ptr<Workload> makeNodeWorkload(const NodeRunConfig &cfg);

/** Worker resume metadata from `<dir>/worker<w>.meta` (incarnation
 *  already bumped for the new process); zeros when absent. */
WorkerResumeState loadWorkerResume(const std::string &state_dir,
                                   std::size_t worker);

struct ServerRunResult
{
    bool done = false; //!< every worker said Bye before the timeout.
    double metric = 0.0;
    std::string metric_name;
    std::size_t applied_pushes = 0;
    std::size_t duplicate_pushes = 0;
    std::size_t stale_drops = 0;
    std::uint64_t epoch = 0;  //!< run epoch the server ended with.
    bool recovered = false;   //!< construction restored a checkpoint.
};

/**
 * Run the server role over real sockets until every worker finished
 * or the timeout passed. @p on_listen fires with the bound port
 * before the loop starts (the harness prints it for the workers).
 * Writes artifacts (run log, receiver event log, final model,
 * checkpoint, summary) under cfg.artifact_dir.
 */
ServerRunResult
runServerNode(const NodeRunConfig &cfg,
              const std::function<void(std::uint16_t)> &on_listen = {});

struct WorkerRunResult
{
    bool done = false;
    bool failed = false;
    std::int64_t done_iter = 0;
};

/** Run one worker role over real sockets against @p host:@p port. */
WorkerRunResult runWorkerNode(const NodeRunConfig &cfg,
                              std::size_t worker,
                              const std::string &host,
                              std::uint16_t port);

struct DesTwinResult
{
    bool done = false;
    double metric = 0.0;
    std::string metric_name;
    std::size_t applied_pushes = 0;
};

/**
 * The correctness twin: the identical engine/server code over the
 * discrete-event fabric, fault-free, same seed and plan. Its metric
 * is the reference the chaos checker compares a faulted socket run
 * against.
 */
DesTwinResult runDesTwin(const NodeRunConfig &cfg);

} // namespace core
} // namespace rog

#endif // ROG_CORE_NODE_RUNNER_HPP
