/**
 * @file
 * Training-system configurations: BSP, SSP, FLOWN, and ROG.
 *
 * All four systems run on one engine (engine.hpp) — they differ only
 * in synchronization granularity, staleness threshold, whether ATP
 * (importance scheduling + speculative transmission + MTA alignment)
 * is active, and whether thresholds are scheduled dynamically (FLOWN).
 * BSP is the threshold-1 limit of the gate in Algo 2: a worker that
 * pushed iteration n may not pull until every worker has pushed n.
 */
#ifndef ROG_CORE_SYSTEM_CONFIG_HPP
#define ROG_CORE_SYSTEM_CONFIG_HPP

#include <string>

#include "core/flown.hpp"
#include "core/importance.hpp"
#include "core/row_partition.hpp"

namespace rog {
namespace core {

/** Complete description of one training system under test. */
struct SystemConfig
{
    std::string name = "BSP";

    /** Synchronization granularity (baselines: whole model). */
    Granularity granularity = Granularity::WholeModel;

    /** RSP/SSP staleness threshold t (1 = BSP barrier). */
    std::size_t staleness_threshold = 1;

    /** Enable ATP: importance ordering, speculative transmission with
     *  the shared MTA time, and minimum-transmission-amount flooring. */
    bool atp = false;

    /** Importance coefficients (only meaningful with atp). */
    ImportanceConfig importance{};

    /** FLOWN-style dynamic per-worker thresholds. */
    bool flown_dynamic = false;
    FlownConfig flown{};

    /** Bulk Synchronous Parallel. */
    static SystemConfig bsp();

    /** Stale Synchronous Parallel with threshold @p t. @pre t >= 1 */
    static SystemConfig ssp(std::size_t t);

    /** Dynamic-threshold scheduling baseline [19]. */
    static SystemConfig flownSystem(std::size_t max_threshold = 8);

    /** ROG (RSP + ATP) with staleness threshold @p t. @pre t >= 2 */
    static SystemConfig rog(std::size_t t);
};

} // namespace core
} // namespace rog

#endif // ROG_CORE_SYSTEM_CONFIG_HPP
