/**
 * @file
 * Minimum Transmission Amount (MTA) — Table I of the paper.
 *
 * If every transmission ships at least a fraction P of the rows
 * (highest importance first), then after s steps at most (1-P)^s of
 * the rows remain untransmitted. To guarantee every row is transmitted
 * before its staleness reaches the threshold S, the paper requires
 * (1-P)^(S-1) < P and sets MTA to the smallest such P — the solution
 * of (1-P)^(S-1) = P.
 */
#ifndef ROG_CORE_MTA_HPP
#define ROG_CORE_MTA_HPP

#include <cstddef>

namespace rog {
namespace core {

/**
 * MTA fraction for a staleness threshold.
 *
 * Solves (1-P)^(S-1) = P. Thresholds <= 1 force P = 1 (everything must
 * go every iteration — the BSP limit). Matches the paper's Table I:
 * S = 2 -> 0.50, 3 -> 0.38, 4 -> 0.32, 5 -> 0.28, 6 -> 0.25,
 * 7 -> 0.22, 8 -> 0.20.
 */
double mtaFraction(std::size_t staleness_threshold);

/**
 * MTA in units for a model of @p total_units rows (Algo 4 line 1:
 * MTA <- MTATable(t) * len(g')), rounded up, at least 1.
 */
std::size_t mtaUnits(std::size_t staleness_threshold,
                     std::size_t total_units);

} // namespace core
} // namespace rog

#endif // ROG_CORE_MTA_HPP
