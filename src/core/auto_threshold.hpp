/**
 * @file
 * Automatic staleness-threshold selection (Sec. VI-C future work).
 *
 * The paper observes a speed/quality trade-off in ROG's threshold —
 * small thresholds stall under instability, large ones cost late-stage
 * statistical efficiency — and "leave[s] automatic finding the optimal
 * threshold as future work". This controller implements the natural
 * feedback rule: track the stall fraction of recent iterations and
 * widen the threshold while stalls exceed a target budget, narrowing
 * it again when the network behaves, so staleness is only spent where
 * instability demands it.
 */
#ifndef ROG_CORE_AUTO_THRESHOLD_HPP
#define ROG_CORE_AUTO_THRESHOLD_HPP

#include <cstddef>
#include <deque>

namespace rog {
namespace core {

/** Controller tuning. */
struct AutoThresholdConfig
{
    std::size_t initial_threshold = 4;
    std::size_t min_threshold = 2;
    std::size_t max_threshold = 40;
    double high_stall_fraction = 0.10; //!< widen above this.
    double low_stall_fraction = 0.02;  //!< narrow below this.
    std::size_t window = 16;           //!< iterations per decision.
};

/** Stall-budget feedback controller over the RSP threshold. */
class AutoThresholdController
{
  public:
    explicit AutoThresholdController(AutoThresholdConfig cfg);

    /** Report one finished iteration's stall and total duration. */
    void observe(double stall_s, double iteration_s);

    /** Current staleness threshold. */
    std::size_t threshold() const { return threshold_; }

    /** Number of threshold changes so far (diagnostics). */
    std::size_t adjustments() const { return adjustments_; }

  private:
    void decide();

    AutoThresholdConfig cfg_;
    std::size_t threshold_;
    std::deque<double> stall_;
    std::deque<double> total_;
    std::size_t adjustments_ = 0;
};

} // namespace core
} // namespace rog

#endif // ROG_CORE_AUTO_THRESHOLD_HPP
