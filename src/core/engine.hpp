/**
 * @file
 * The distributed-training engine: Algo 1 (local worker) + Algo 2
 * (parameter server) + ATP (Algo 3 & 4) over the simulated wireless
 * channel, generalized so one engine runs BSP, SSP, FLOWN, and ROG.
 *
 * Each worker is a simulation process (coroutine): compute gradients
 * (virtual compute time), accumulate per-unit, push by importance
 * order through the channel (with speculative transmission under ATP),
 * pass the RSP staleness gate, pull averaged gradients, and apply
 * them. The server's per-worker handler of Algo 2 runs inline in the
 * worker's process — the simulation shares one address space, so the
 * server is its state (ServerState + VersionStorage), not a thread.
 */
#ifndef ROG_CORE_ENGINE_HPP
#define ROG_CORE_ENGINE_HPP

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/failure_detector.hpp"
#include "core/system_config.hpp"
#include "core/testbed_profile.hpp"
#include "core/workload.hpp"
#include "net/bandwidth_trace.hpp"
#include "net/transport/reliable_link.hpp"

namespace rog {

namespace fault {
class FaultPlan;
class InvariantChecker;
} // namespace fault

namespace core {

/** What the group does when it falls below quorum. */
enum class QuorumPolicy {
    Pause,    //!< wait for a rejoin while the loss is recoverable.
    Continue, //!< keep training with however many workers remain.
};

/** Engine knobs independent of the system under test. */
struct EngineConfig
{
    SystemConfig system{};
    TestbedProfile profile{};

    std::size_t iterations = 1000;      //!< per-worker iteration budget.
    double time_horizon_seconds =
        std::numeric_limits<double>::infinity(); //!< wall-clock budget.

    /**
     * Workload-metric evaluation cadence (the per-worker metric
     * checkpoints in RunResult::checkpoints). Historically this one
     * knob also drove server-checkpoint cadence; checkpoint_every
     * separates the two, inheriting this value when left at 0.
     */
    std::size_t eval_every = 50;

    /** Server-checkpoint cadence in iterations; 0 = eval_every. */
    std::size_t checkpoint_every = 0;

    /**
     * Crash-consistent server recovery: when non-empty, the server
     * writes a write-ahead checkpoint of its volatile state (version
     * matrix, gradient outbox, MTA-time estimates) to this path every
     * checkpoint_every iterations — temp file + atomic rename, CRC32C
     * verified on restore. A `server_crash iter=N` fault event then
     * recovers from the newest checkpoint (or genesis state if none
     * was written yet) instead of aborting the run.
     */
    std::string checkpoint_path{};

    /**
     * Parameter-server shard count (fleet-scale layout, ROADMAP
     * item 1). Model rows are partitioned across this many
     * ServerShards, each with its own contiguous outbox/version
     * arenas, MTA bookkeeping, and checkpoint file (shard 0 writes
     * checkpoint_path; shard k > 0 writes checkpoint_path +
     * ".shard<k>"). Clamped to the unit count. Any value yields
     * bit-identical training results to 1 — sharding only changes the
     * storage layout; see DESIGN.md Sec. 17.
     */
    std::size_t server_shards = 1;

    std::string codec = "onebit";       //!< "onebit" | "identity".
    double transfer_header_bytes = 16.0; //!< framing bytes (Sec. V).

    /**
     * Ablation of speculative transmission (Sec. III-A "Technically"):
     * when > 0, instead of one continuous timed transfer, the optional
     * phase inserts a judgement of this many seconds between every two
     * successive units ("is the MTA time reached?") — the approach the
     * paper rejects because the check costs as much as sending a row.
     */
    double per_unit_judgement_seconds = 0.0;

    /**
     * Heterogeneous compute (Sec. VI / Table II): per-worker seconds
     * per training sample. Empty = homogeneous devices charging
     * profile.compute_seconds each. When set (one entry per worker),
     * per-worker batch sizes and compute times come from dynamic
     * batching [49] (or a uniform split if dynamic_batching is off —
     * the heterogeneity ablation), splitting workers() * batchSize()
     * samples per iteration.
     */
    std::vector<double> heterogeneous_seconds_per_sample{};
    bool dynamic_batching = true;

    /**
     * Robustness: per-worker departure times in virtual seconds (a
     * robot running out of battery or crashing mid-mission, Sec. VI-D
     * "the moving devices can easily run out of energy or crash").
     * Empty = nobody leaves. A departing worker finishes its current
     * iteration, then retires from the RSP gate so the survivors
     * continue without stalling on it.
     */
    std::vector<double> worker_departure_times{};

    /**
     * Future-work extension (Sec. VI-C): adapt the staleness threshold
     * automatically from the observed stall fraction instead of fixing
     * it (see core/auto_threshold.hpp). Applies to ATP systems.
     */
    bool auto_threshold = false;

    /**
     * Future-work extension (Sec. VI-D): pipeline communication and
     * computation — the worker computes iteration n+1's gradients
     * while iteration n's pull is still in flight, hiding pull latency
     * at the cost of applying pulled updates one iteration late.
     */
    bool pipeline_pull = false;

    /**
     * Robustness: route every gradient push and pull through the
     * reliable transport sublayer (net/transport) instead of raw bulk
     * transfers. Each synchronization unit travels as one framed,
     * checksummed, chunked message: mandatory (MTA) units retry with
     * deadline-free backoff until delivered intact or out of attempts,
     * speculative units carry the MTA window as an absolute deadline.
     * A unit whose send fails stays accumulated and rides the next
     * iteration's push — late but intact, never corrupted. Opt-in: the
     * legacy bulk path (off) replays byte-identically.
     */
    bool reliable_transport = false;
    net::transport::TransportConfig transport{};

    /**
     * Robustness: heartbeat failure detection (core/failure_detector).
     * Each worker sends a periodic heartbeat over its channel link; a
     * server-side phi-accrual membership tracker walks the explicit
     * alive -> suspect -> dead -> rejoining lifecycle. Suspects stop
     * holding the RSP gate (their in-flight rows are reclaimed: the
     * survivors no longer wait on them); the dead are retired from
     * the version storage, with ground truth reported to the
     * invariant checker so a false eviction is a recorded violation.
     * A worker evicted while actually alive re-admits itself through
     * the rejoin resync. Opt-in: off replays byte-identically.
     */
    bool failure_detector = false;
    FailureDetectorConfig detector{};

    /**
     * Minimum number of live (alive-or-suspect) workers the group
     * needs to keep training; 0 disables the check. Below quorum the
     * policy decides: Pause parks every healthy worker until a
     * crashed peer rejoins (ending the run early if the loss is
     * unrecoverable), Continue degrades gracefully with fewer.
     * Requires failure_detector.
     */
    std::size_t quorum = 0;
    QuorumPolicy quorum_policy = QuorumPolicy::Pause;

    /**
     * Serialize every worker's final replica into
     * RunResult::final_model_bytes (nn/serialize format, workers
     * concatenated in id order). Byte-identity across two runs is the
     * strongest determinism check a test can make; off by default
     * because real models are large.
     */
    bool capture_final_model = false;

    /**
     * Fault injection (src/fault): a deterministic schedule of link
     * blackouts / bandwidth collapses (baked into the link traces),
     * per-transfer truncations and forced timeouts (applied by the
     * channel), and worker churn — silent crashes whose in-flight rows
     * are discarded, detection-delayed retirement from the staleness
     * gate, rejoins that resync to the current model version, and
     * announced graceful leaves. Non-owning; must outlive the run.
     */
    const fault::FaultPlan *fault_plan = nullptr;

    /**
     * Optional conservation-invariant observer (src/fault); the engine
     * reports pushes, applies, gate passes, and membership changes to
     * it. Non-owning; must outlive the run.
     */
    fault::InvariantChecker *invariants = nullptr;

    std::uint64_t seed = 2022;          //!< engine-local randomness.
};

/** One worker's per-link bandwidth environment. */
struct NetworkSetup
{
    std::vector<net::BandwidthTrace> link_traces; //!< one per worker.
};

/** Per-(worker, iteration) timing and transmission record. */
struct IterationRecord
{
    std::size_t worker = 0;
    std::size_t iteration = 0;
    double compute_s = 0.0;
    double comm_s = 0.0;
    double stall_s = 0.0;
    double bytes_pushed = 0.0;
    double bytes_pulled = 0.0;
    std::size_t units_pushed = 0;
    std::size_t units_pulled = 0;
    double push_fraction = 0.0;   //!< units pushed / total units.
    std::int64_t staleness_behind = 0; //!< fastest worker iter - mine.
    double end_time_s = 0.0;      //!< virtual time when iter finished.

    // Reliable-transport accounting (zero on the legacy bulk path).
    std::size_t retries = 0;          //!< chunk retransmission attempts.
    double backoff_s = 0.0;           //!< seconds spent backing off
                                      //!< (included in comm_s).
    double bytes_retransmitted = 0.0; //!< bytes delivered more than once.

    /** sum(|grad|) of the units pushed this iteration, measured as a
     *  by-product of the codec's fused transcode sweep (0.0 for codecs
     *  that do not record it — identity, top-k). */
    double pushed_magnitude = 0.0;
};

/** One server crash + recovery, as experienced by the run. */
struct ServerRecoveryRecord
{
    std::int64_t crash_iter = 0;      //!< iteration the crash hit at.
    std::int64_t checkpoint_iter = 0; //!< iteration recovered to.
    bool rolled_back = false; //!< recovery lost post-checkpoint state.
    double time_s = 0.0;      //!< virtual time of the recovery.
};

/** Per-(worker, checkpoint) metric record. */
struct CheckpointRecord
{
    std::size_t worker = 0;
    std::size_t iteration = 0;
    double time_s = 0.0;
    double energy_j = 0.0;   //!< this worker's cumulative joules.
    double metric = 0.0;     //!< workload metric at this point.
};

/** Everything a run produces. */
struct RunResult
{
    std::string system;
    std::size_t workers = 0;
    std::size_t total_units = 0;
    std::size_t server_shards = 0; //!< effective (clamped) shard count.
    std::vector<IterationRecord> iterations;
    std::vector<CheckpointRecord> checkpoints;
    std::vector<std::size_t> worker_iterations; //!< completed each.
    std::vector<double> worker_energy_j;     //!< total per worker.
    std::vector<double> worker_compute_s;
    std::vector<double> worker_comm_s;
    std::vector<double> worker_stall_s;
    double sim_seconds = 0.0;                //!< virtual run length.
    std::size_t completed_iterations = 0;    //!< min over workers.
    double total_bytes = 0.0;                //!< delivered on channel.

    // Reliable-transport aggregate (all zero on the legacy path).
    std::size_t transport_retries = 0;
    double transport_backoff_s = 0.0;
    double transport_retransmitted_bytes = 0.0;
    std::size_t transport_corrupt_chunks = 0;
    std::size_t transport_duplicate_chunks = 0;
    std::size_t transport_reordered_chunks = 0;

    // Failure detection / membership (empty unless failure_detector).
    std::vector<MembershipEvent> membership_events;
    std::size_t evictions = 0;       //!< dead declarations acted on.
    std::size_t false_evictions = 0; //!< evicted while healthy.
    double quorum_paused_s = 0.0;    //!< summed below-quorum stalls.

    // Server checkpointing / crash recovery.
    std::size_t checkpoints_written = 0;
    std::vector<ServerRecoveryRecord> recoveries;

    // Wire-path buffer pool occupancy over this run (deltas of the
    // process-global BufferPool between run start and end; monotonic
    // counters, so deltas are exact even across back-to-back runs).
    std::size_t pool_leases = 0;      //!< scratch leases served.
    std::size_t pool_reuses = 0;      //!< served without allocating.
    std::size_t pool_allocations = 0; //!< served by a fresh allocation.
    double pool_hit_rate = 0.0;       //!< reuses / leases for this run.
    std::size_t pool_peak_outstanding = 0; //!< high-water live leases.
    std::size_t pool_resident_bytes = 0;   //!< free-list bytes at end.

    /** All replicas serialized in worker order (opt-in, else empty). */
    std::string final_model_bytes;

    /** Mean per-iteration (compute, comm, stall) seconds. */
    void meanTimeComposition(double &compute, double &comm,
                             double &stall) const;

    /** Mean total joules per worker. */
    double meanEnergyJoules() const;
};

/**
 * Run one system on one workload over one network.
 *
 * @pre network.link_traces.size() == workload.workers()
 */
RunResult runDistributedTraining(Workload &workload,
                                 const EngineConfig &config,
                                 const NetworkSetup &network);

/**
 * Wire size of one full compressed model transmission for a workload's
 * replica at the given granularity and codec (used for bandwidth
 * calibration and the granularity ablation).
 */
double modelWireBytes(Workload &workload, Granularity granularity,
                      const std::string &codec_name);

} // namespace core
} // namespace rog

#endif // ROG_CORE_ENGINE_HPP
