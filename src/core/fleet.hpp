/**
 * @file
 * Fleet-scale parallel DES (ROADMAP item 1): a purpose-built
 * discrete-event engine that sweeps 16 -> 1024 workers over the
 * sharded parameter server, with the event queue partitioned by shard
 * and shard phases executed on the thread pool — deterministically.
 *
 * Why a second engine: the coroutine engine in engine.cpp simulates a
 * handful of robots with full model/codec/transport fidelity; its
 * per-worker coroutine frames and globally ordered single queue are
 * exactly what does NOT scale to a 1024-robot fleet. This engine
 * trades model fidelity (a synthetic convex workload with hash-derived
 * gradient noise) for scale: contiguous worker state, the
 * allocation-free heap event core, per-shard event queues, and a
 * parallel tick.
 *
 * Determinism (DESIGN.md Sec. 17): one sequential COORDINATOR owns the
 * workers' state machines and the airtime-fair fluid channel; the
 * parameter server is split into S shards, each owning a private event
 * queue and its ServerShard state. When a transfer completes, the
 * coordinator enqueues apply-operations into every affected shard's
 * queue (deterministic content, shard-local timestamps) and runs ONE
 * parallel tick: parallelFor over shards with grain 1 — each shard
 * drains its queue up to the coordinator's clock, touching only
 * shard-local state and the (disjoint) model rows it owns — then
 * combines per-shard results (event counts, digests) in ascending
 * shard order, the same ordered pairwise combine the tensor reductions
 * use. No shard reads another shard's state, the combine order is
 * fixed, so the result is bitwise identical for every ROG_THREADS
 * (verified by fleet_determinism_test across pools of 1/2/4/8).
 *
 * The engine is templated over the event-queue type so the fleet
 * benchmark can run the same simulation over the heap event core and
 * the legacy std::map queue and report the events/s ratio.
 */
#ifndef ROG_CORE_FLEET_HPP
#define ROG_CORE_FLEET_HPP

#include <cstddef>
#include <cstdint>
#include <string>

#include "parallel/thread_pool.hpp"

namespace rog {
namespace core {

/** Synthetic fleet simulation parameters. */
struct FleetConfig
{
    std::size_t workers = 16;
    std::size_t rows = 96;       //!< model rows (= sync units).
    std::size_t row_width = 24;  //!< floats per row.
    std::size_t shards = 4;      //!< server shards / queue partitions.
    std::size_t iterations = 30; //!< per worker.

    /** RSP staleness threshold; 1 == BSP lockstep. */
    std::size_t staleness_threshold = 4;
    /** ATP on: MTA partial pushes sized by the tracker's tMTA;
     *  off: every push ships all rows (the BSP/SSP baseline). */
    bool atp = true;

    float learning_rate = 0.05f;
    float gradient_noise = 0.1f; //!< hash-noise amplitude.

    double compute_seconds = 0.05; //!< mean per-iteration compute.
    double compute_jitter = 0.5;   //!< +- fraction, hashed per (w, n).
    double header_bytes = 16.0;    //!< per-transfer framing bytes.
    double mean_bandwidth = 2e6;   //!< bytes/s per robot link.
    double bandwidth_spread = 0.5; //!< +- fraction, hashed per worker.

    std::uint64_t seed = 1;

    /** When non-empty, every shard writes a ROGS checkpoint file under
     *  this directory each checkpoint_every completed iterations of
     *  worker 0. */
    std::string checkpoint_dir{};
    std::size_t checkpoint_every = 0;

    /** Run over the legacy std::map event queue instead of the heap
     *  core (benchmark baseline; identical results, slower). */
    bool use_map_queue = false;
};

/** Outcome + determinism fingerprint of one fleet run. */
struct FleetResult
{
    std::size_t workers = 0;
    std::size_t shards = 0; //!< effective (clamped) count.
    double sim_seconds = 0.0;
    double total_bytes = 0.0;

    /** Events stepped: coordinator + all shard queues. */
    std::uint64_t events_processed = 0;
    std::uint64_t iterations_completed = 0;

    /** Mean squared distance to the optimum over all replicas. */
    double final_metric = 0.0;

    /**
     * CRC32C over every replica's final parameters plus the
     * coordinator and per-shard event logs — the bitwise-determinism
     * fingerprint compared across thread counts and queue types.
     */
    std::uint32_t state_digest = 0;

    std::size_t checkpoint_files_written = 0;

    // BufferPool::global() deltas over the run (transfer staging).
    std::size_t pool_leases = 0;
    std::size_t pool_reuses = 0;
    std::size_t pool_allocations = 0;
    double pool_hit_rate = 0.0;
};

/**
 * Run the fleet simulation on @p pool (shard phases use it via
 * parallelFor; pass pools of different sizes to check determinism
 * in-process).
 */
FleetResult runFleetSimulation(const FleetConfig &cfg,
                               parallel::ThreadPool &pool);

/** Same, on the global ROG_THREADS pool. */
FleetResult runFleetSimulation(const FleetConfig &cfg);

} // namespace core
} // namespace rog

#endif // ROG_CORE_FLEET_HPP
