/**
 * @file
 * Synchronization-unit partitioning of a model.
 *
 * Sec. III-A of the paper weighs three granularities — elements, rows,
 * and layers — against the management overhead of indexing transmitted
 * units versus the flexibility of scheduling small units, and picks
 * rows. RowPartition implements all of them (plus whole-model, which
 * is what BSP/SSP/FLOWN effectively use) over the flattened element
 * space, and reports the per-unit wire overhead so the trade-off is
 * measurable (see bench/ablation_granularity).
 */
#ifndef ROG_CORE_ROW_PARTITION_HPP
#define ROG_CORE_ROW_PARTITION_HPP

#include <string_view>
#include <vector>

#include "core/flat_model.hpp"

namespace rog {
namespace core {

/** Synchronization granularity. */
enum class Granularity
{
    Element,    //!< every scalar is its own unit (ablation only).
    Row,        //!< one unit per parameter-matrix row (ROG's choice).
    Layer,      //!< one unit per parameter matrix.
    WholeModel, //!< a single unit (BSP/SSP/FLOWN-style transmission).
};

/** Human-readable granularity name. */
std::string_view granularityName(Granularity g);

/** One synchronization unit: a contiguous flat element range. */
struct Unit
{
    std::size_t begin = 0; //!< first flat element offset.
    std::size_t width = 0; //!< element count.
};

/** A model's partition into synchronization units. */
class RowPartition
{
  public:
    /**
     * Partition @p flat at granularity @p g.
     *
     * @param per_unit_overhead_bytes wire bytes added per transmitted
     *        unit (the paper's int32 row index; the producing
     *        iteration is tagged once per transmission, not per row).
     *        Default 4.
     */
    RowPartition(const FlatModel &flat, Granularity g,
                 double per_unit_overhead_bytes = 4.0);

    Granularity granularity() const { return granularity_; }
    std::size_t unitCount() const { return units_.size(); }
    const Unit &unit(std::size_t u) const;
    const std::vector<Unit> &units() const { return units_; }

    /** Wire bytes of indexing overhead per transmitted unit. */
    double perUnitOverheadBytes() const { return overhead_bytes_; }

    /** Total elements covered (== flat.flatSize()). */
    std::size_t totalElements() const { return total_elements_; }

    /**
     * Total indexing overhead if every unit is transmitted once, as a
     * fraction of the raw float32 model size (Sec. III-A's management
     * cost: ~0.24% for rows, ~200% for elements).
     */
    double indexOverheadFraction() const;

  private:
    Granularity granularity_;
    std::vector<Unit> units_;
    double overhead_bytes_;
    std::size_t total_elements_ = 0;
};

} // namespace core
} // namespace rog

#endif // ROG_CORE_ROW_PARTITION_HPP
