/**
 * @file
 * The ROG engine's worker and server roles bound onto a session
 * Fabric — the same training semantics as the in-process engine
 * (engine.hpp), factored into two message-driven nodes so they can
 * run in separate processes over real sockets *or* co-resident in one
 * discrete-event simulation, byte-for-byte the same logic.
 *
 * ServerNode: parameter-server half. Admits workers through a
 * SessionTable (epoch + resume-token gated handshake), accumulates
 * decoded gradient pushes into the one-copy-per-worker outbox
 * (gradient conservation), gates pulls on the RSP staleness bound,
 * applies every contribution to a canonical model replica (the resync
 * source for rejoining workers), drives the phi-accrual
 * MembershipTracker from heartbeats, and checkpoints its volatile
 * state crash-consistently. A worker that vanishes mid-push is
 * suspected, evicted, and — when its restarted process says Hello —
 * re-admitted through the same suspect→dead→rejoining lifecycle a
 * simulated crash takes; at the server's state level the two are
 * indistinguishable.
 *
 * WorkerNode: training half. Handshakes (with capped-exponential
 * retry), computes real minibatch gradients, pushes each
 * synchronization unit through its one-bit codec, requests a pull
 * once every push of the iteration is acknowledged, applies the
 * averaged gradients, and writes a local checkpoint (model + resume
 * token) after every applied pull so its next incarnation can resume
 * instead of resyncing.
 *
 * All I/O goes through the Fabric; neither class names a socket, a
 * simulation, or a backend.
 */
#ifndef ROG_CORE_NODE_ENGINE_HPP
#define ROG_CORE_NODE_ENGINE_HPP

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "compress/codec.hpp"
#include "core/failure_detector.hpp"
#include "core/flat_model.hpp"
#include "core/row_partition.hpp"
#include "core/server_state.hpp"
#include "core/version_storage.hpp"
#include "core/workload.hpp"
#include "net/session/fabric.hpp"
#include "net/session/session.hpp"
#include "net/session/wire.hpp"
#include "nn/optimizer.hpp"

namespace rog {
namespace core {

/** One structured line into the node's run log. */
using NodeLogger = std::function<void(const std::string &)>;

/** Knobs shared by both roles of one training run. */
struct NodeTrainConfig
{
    std::int64_t max_iters = 12;
    std::int64_t staleness = 3; //!< RSP gate threshold.
    Granularity granularity = Granularity::Row;
    std::string codec = "onebit";

    std::uint64_t epoch = 1;      //!< run epoch (handshake fence).
    std::uint64_t session_salt = 7; //!< resume-token derivation seed.

    FailureDetectorConfig detector;

    /** Server -> worker send deadlines (a dead worker must not wedge
     *  the server). Relative seconds. */
    double welcome_timeout_s = 5.0;
    double pull_timeout_s = 10.0;

    /** Worker handshake retry: capped exponential. */
    double hello_retry_base_s = 0.2;
    double hello_retry_max_s = 2.0;
    std::size_t hello_max_tries = 40;

    /**
     * Worker-side server failure detection: the worker watches the
     * gaps between server responses (Welcome / Reject / PullData)
     * with the same phi-accrual shape the server applies to worker
     * heartbeats, plus a hard silence bound. While mid-iteration
     * (Pushing / PullWait), a suspected server triggers a resync:
     * park the in-flight push, reconnect, re-run Hello, adopt the
     * new epoch, and re-send what the new server has not applied.
     */
    double server_check_interval_s = 0.25;
    double server_silence_bound_s = 6.0; //!< hard cap, seconds.
    double server_phi_suspect = 6.0;     //!< phi threshold.
    std::size_t server_phi_min_samples = 3;

    /** Worker heartbeat send deadline = 2 * interval (best effort). */

    /** Server checkpoint cadence, in applied pushes (0 = off). */
    std::size_t checkpoint_every = 16;
    std::string checkpoint_path; //!< server "ROGS" file ("" = off).

    /** Worker-side local checkpoint directory ("" = no resume). */
    std::string worker_state_dir;
};

/** What a (possibly restarted) worker process brings to the table. */
struct WorkerResumeState
{
    std::uint32_t incarnation = 0;
    std::uint64_t resume_token = 0;
    std::int64_t last_done_iter = 0;
};

/** Parameter-server node. */
class ServerNode
{
  public:
    ServerNode(net::session::Fabric &fabric, Workload &workload,
               const NodeTrainConfig &cfg, NodeLogger log = {});
    ~ServerNode();

    ServerNode(const ServerNode &) = delete;
    ServerNode &operator=(const ServerNode &) = delete;

    /** Register the message handler and arm the membership timer. */
    void start();

    /** Every worker said Bye (the run is over). */
    bool done() const { return done_; }

    /** Evaluate the canonical model into the workload metric. */
    double evaluateModel();

    /** Serialize the canonical model ("ROGM" bytes). */
    std::vector<std::uint8_t> modelBytes();

    nn::Model &model() { return *model_; }

    /** Write the crash-consistent server checkpoint now. */
    void checkpointNow();

    std::int64_t minWorkerIteration() const
    {
        return versions_.minWorkerIteration();
    }

    const MembershipTracker &membership() const { return tracker_; }
    const net::session::SessionTable &sessions() const { return table_; }

    /** The run epoch in force (bumped past the checkpoint's after a
     *  crash-recovery construction). */
    std::uint64_t epoch() const { return table_.epoch(); }

    /** True when construction restored a ROGS checkpoint. */
    bool recovered() const { return recovered_; }

    /** Test/harness hook: fired after every applied push with the
     *  push's iteration (e.g. to schedule a mid-run server crash). */
    void setApplyHook(std::function<void(std::int64_t)> hook)
    {
        apply_hook_ = std::move(hook);
    }

    /** Pushes applied / recorded-duplicate / stale-session counts. */
    std::size_t appliedPushes() const { return applied_pushes_; }
    std::size_t duplicatePushes() const { return duplicate_pushes_; }
    std::size_t staleDrops() const { return stale_drops_; }

  private:
    struct WorkerPeer
    {
        bool connected = false;
        std::string host;
        std::uint16_t port = 0;
        std::int64_t pending_pull = -1; //!< queued PullReq iter.
        bool bye = false;
    };

    void onMessage(const net::session::MessageKey &key,
                   std::vector<std::uint8_t> &&bytes);
    void onHello(std::vector<std::uint8_t> &&bytes);
    void onPush(const net::session::MessageKey &key,
                std::vector<std::uint8_t> &&bytes);
    void onPullReq(const net::session::MessageKey &key,
                   std::vector<std::uint8_t> &&bytes);
    void onHeartbeat(const net::session::MessageKey &key,
                     std::vector<std::uint8_t> &&bytes);
    void onBye(const net::session::MessageKey &key,
               std::vector<std::uint8_t> &&bytes);
    void evaluateMembership();
    void answerReadyPulls();
    bool gateOpen(std::int64_t iter) const;
    void answerPull(std::size_t w, std::int64_t iter);
    void evictWorker(std::size_t w);
    /** Try to restore a ROGS checkpoint; false = start fresh. */
    bool restoreFromCheckpoint();
    void maybeCheckpoint();
    void checkDone();
    void logLine(const std::string &line);
    /** True when @p key carries worker @p w's live session scope. */
    bool sessionCurrent(std::size_t w, std::int64_t version);

    net::session::Fabric &fabric_;
    Workload &workload_;
    NodeTrainConfig cfg_;
    NodeLogger log_;

    std::unique_ptr<nn::Model> model_; //!< canonical replica.
    std::unique_ptr<FlatModel> flat_;
    std::unique_ptr<RowPartition> partition_;
    std::unique_ptr<nn::SgdMomentum> opt_;

    net::session::SessionTable table_;
    VersionStorage versions_;
    ServerState state_;
    MtaTimeTracker mta_;
    MembershipTracker tracker_;

    std::vector<WorkerPeer> peers_;
    std::vector<float> scaled_; //!< scratch: decoded / num_workers.
    net::session::FabricTimer member_timer_ = 0;
    std::uint32_t ctrl_seq_ = 1; //!< server control-message keys.
    std::size_t applied_pushes_ = 0;
    std::size_t duplicate_pushes_ = 0;
    std::size_t stale_drops_ = 0;
    std::size_t applies_since_ckpt_ = 0;
    bool recovered_ = false;
    std::function<void(std::int64_t)> apply_hook_;
    bool done_ = false;
};

/** Training worker node. */
class WorkerNode
{
  public:
    WorkerNode(net::session::Fabric &fabric, Workload &workload,
               const NodeTrainConfig &cfg, std::size_t worker,
               const WorkerResumeState &resume, NodeLogger log = {});
    ~WorkerNode();

    WorkerNode(const WorkerNode &) = delete;
    WorkerNode &operator=(const WorkerNode &) = delete;

    /** Connect to the server and start the handshake. */
    void start(const std::string &server_host,
               std::uint16_t server_port);

    /** Finished max_iters and sent Bye. */
    bool done() const { return phase_ == Phase::Done; }

    /** Gave up (handshake retries exhausted or fabric failure). */
    bool failed() const { return phase_ == Phase::Failed; }

    bool admitted() const
    {
        return phase_ != Phase::Hello && phase_ != Phase::Failed;
    }

    std::int64_t iter() const { return iter_; }
    net::session::AdmitMode admitMode() const { return admit_mode_; }
    /** Run epoch this worker currently believes in (updated by
     *  Welcome adoption and BadEpoch rejects). */
    std::uint64_t epoch() const { return epoch_; }
    std::uint32_t session() const { return session_; }
    nn::Model &model() { return *model_; }

  private:
    enum class Phase {
        Hello,    //!< (re)handshaking.
        Pushing,  //!< unit pushes of iter_ in flight.
        PullWait, //!< PullReq sent, waiting for PullData.
        Leaving,  //!< Bye in flight.
        Done,
        Failed,
    };

    void onMessage(const net::session::MessageKey &key,
                   std::vector<std::uint8_t> &&bytes);
    void sendHello();
    void armHelloRetry();
    void onWelcome(std::vector<std::uint8_t> &&bytes);
    void onReject(std::vector<std::uint8_t> &&bytes);
    void onPullData(std::vector<std::uint8_t> &&bytes);
    void beginIteration();
    void onPushesSettled();
    void finishRun();
    void armHeartbeat();
    void sendHeartbeat();
    /** Server-response phi accrual: note life, watch for silence. */
    void noteServerAlive();
    void armServerWatch();
    void checkServer();
    /** Re-send the parked push under the new session scope. */
    void repushParked();
    /** Ship parked_ as iter_'s unit pushes under the live session. */
    void sendParked();
    void applyUnit(std::uint32_t unit, std::span<const float> values);
    void writeLocalCheckpoint();
    /** Transport trouble: tear down and re-handshake. */
    void resync(const char *why);
    void logLine(const std::string &line);
    std::int64_t pushVersion(std::int64_t iter) const;

    net::session::Fabric &fabric_;
    Workload &workload_;
    NodeTrainConfig cfg_;
    std::size_t worker_ = 0;
    NodeLogger log_;

    std::unique_ptr<nn::Model> model_;
    std::unique_ptr<FlatModel> flat_;
    std::unique_ptr<RowPartition> partition_;
    std::unique_ptr<nn::SgdMomentum> opt_;
    std::unique_ptr<compress::Codec> codec_;
    data::BatchSampler sampler_;

    std::string server_host_;
    std::uint16_t server_port_ = 0;

    Phase phase_ = Phase::Hello;
    std::uint32_t incarnation_ = 0;
    std::uint64_t resume_token_ = 0;
    std::uint64_t epoch_ = 0;
    std::uint64_t hello_nonce_ = 0;
    std::uint32_t hello_seq_ = 1;
    std::size_t hello_tries_ = 0;
    net::session::FabricTimer hello_timer_ = 0;
    net::session::FabricTimer heartbeat_timer_ = 0;

    std::uint32_t session_ = 0;
    net::session::AdmitMode admit_mode_ = net::session::AdmitMode::Fresh;
    std::int64_t iter_ = 0;       //!< iteration in flight (1-based).
    std::int64_t done_iter_ = 0;  //!< last fully applied iteration.
    std::size_t pushes_in_flight_ = 0;
    bool push_failed_ = false;
    std::uint32_t hb_seq_ = 1;
    std::vector<float> grad_;    //!< scratch: gathered unit gradient.
    std::vector<float> decoded_; //!< scratch: codec reconstruction.

    /** Consecutive best-effort heartbeat send failures. */
    std::size_t hb_fail_streak_ = 0;

    /** Server-response failure detection (see NodeTrainConfig). */
    net::session::FabricTimer server_watch_timer_ = 0;
    double last_server_msg_ = 0.0; //!< 0 = nothing heard yet.
    double server_gap_ewma_ = 0.0;
    std::size_t server_gap_samples_ = 0;

    /**
     * The in-flight iteration's encoded unit payloads, parked so a
     * server restart mid-push can re-send them under the new session
     * instead of recomputing (the codec residual already advanced —
     * a recompute would not reproduce these bytes).
     */
    std::vector<std::vector<std::uint8_t>> parked_;
    std::int64_t parked_iter_ = 0;
};

} // namespace core
} // namespace rog

#endif // ROG_CORE_NODE_ENGINE_HPP
