#include "core/server_shard.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"

namespace rog {
namespace core {

ServerShard::ServerShard(std::size_t workers,
                         std::vector<std::size_t> unit_widths)
    : workers_(workers), unit_widths_(std::move(unit_widths)),
      tracker_(workers)
{
    ROG_ASSERT(workers_ > 0, "shard needs at least one worker");
    ROG_ASSERT(!unit_widths_.empty(), "shard needs at least one unit");
    unit_offsets_.reserve(unit_widths_.size());
    for (std::size_t w : unit_widths_) {
        unit_offsets_.push_back(floats_per_worker_);
        floats_per_worker_ += w;
    }
    outbox_.assign(workers_ * floats_per_worker_, 0.0f);
    has_pending_.assign(workers_ * unit_widths_.size(), 0);
    last_update_.assign(unit_widths_.size(), 0);
    versions_.assign(workers_ * unit_widths_.size(), 0);
    retired_.assign(workers_, 0);
}

void
ServerShard::accumulate(std::size_t unit, std::span<const float> decoded)
{
    ROG_ASSERT(unit < unit_widths_.size(), "unit out of range");
    ROG_ASSERT(decoded.size() == unit_widths_[unit],
               "decoded width mismatch");
    // Same float op order as the legacy ServerState::accumulate: one
    // worker copy at a time, scale*decoded[j] added in ascending j —
    // bit-identity with the unsharded server depends on this.
    const auto scale =
        static_cast<float>(1.0 / static_cast<double>(workers_));
    const std::size_t off = unit_offsets_[unit];
    for (std::size_t w = 0; w < workers_; ++w) {
        float *dst = outbox_.data() + w * floats_per_worker_ + off;
        for (std::size_t j = 0; j < decoded.size(); ++j)
            dst[j] += scale * decoded[j];
        has_pending_[cell(w, unit)] = 1;
    }
}

std::span<float>
ServerShard::pending(std::size_t worker, std::size_t unit)
{
    ROG_ASSERT(worker < workers_ && unit < unit_widths_.size(),
               "pending index out of range");
    return {outbox_.data() + worker * floats_per_worker_ +
                unit_offsets_[unit],
            unit_widths_[unit]};
}

bool
ServerShard::hasPending(std::size_t worker, std::size_t unit) const
{
    ROG_ASSERT(worker < workers_ && unit < unit_widths_.size(),
               "pending index out of range");
    return has_pending_[cell(worker, unit)] != 0;
}

void
ServerShard::clearPending(std::size_t worker, std::size_t unit)
{
    ROG_ASSERT(worker < workers_ && unit < unit_widths_.size(),
               "pending index out of range");
    float *dst = outbox_.data() + worker * floats_per_worker_ +
                 unit_offsets_[unit];
    std::fill(dst, dst + unit_widths_[unit], 0.0f);
    has_pending_[cell(worker, unit)] = 0;
}

void
ServerShard::clearWorker(std::size_t worker)
{
    ROG_ASSERT(worker < workers_, "worker out of range");
    for (std::size_t u = 0; u < unit_widths_.size(); ++u)
        clearPending(worker, u);
}

double
ServerShard::pendingMeanAbs(std::size_t worker, std::size_t unit) const
{
    ROG_ASSERT(worker < workers_ && unit < unit_widths_.size(),
               "pending index out of range");
    const std::size_t width = unit_widths_[unit];
    if (width == 0)
        return 0.0;
    const float *buf = outbox_.data() + worker * floats_per_worker_ +
                       unit_offsets_[unit];
    double s = 0.0;
    for (std::size_t j = 0; j < width; ++j)
        s += std::fabs(buf[j]);
    return s / static_cast<double>(width);
}

std::int64_t
ServerShard::lastUpdate(std::size_t unit) const
{
    ROG_ASSERT(unit < last_update_.size(), "unit out of range");
    return last_update_[unit];
}

void
ServerShard::noteUpdate(std::size_t unit, std::int64_t iter)
{
    ROG_ASSERT(unit < last_update_.size(), "unit out of range");
    last_update_[unit] = std::max(last_update_[unit], iter);
}

std::int64_t
ServerShard::version(std::size_t worker, std::size_t unit) const
{
    ROG_ASSERT(worker < workers_ && unit < unit_widths_.size(),
               "version index out of range");
    return versions_[cell(worker, unit)];
}

void
ServerShard::updateVersion(std::size_t worker, std::size_t unit,
                           std::int64_t iter)
{
    ROG_ASSERT(worker < workers_ && unit < unit_widths_.size(),
               "version index out of range");
    ROG_ASSERT(iter >= versions_[cell(worker, unit)],
               "versions must be monotone");
    versions_[cell(worker, unit)] = iter;
}

bool
ServerShard::retired(std::size_t worker) const
{
    ROG_ASSERT(worker < workers_, "worker out of range");
    return retired_[worker] != 0;
}

void
ServerShard::retireWorker(std::size_t worker)
{
    ROG_ASSERT(worker < workers_, "worker out of range");
    retired_[worker] = 1;
}

void
ServerShard::rejoinWorker(std::size_t worker, std::int64_t iter)
{
    ROG_ASSERT(worker < workers_, "worker out of range");
    for (std::size_t u = 0; u < unit_widths_.size(); ++u) {
        ROG_ASSERT(iter >= versions_[cell(worker, u)],
                   "rejoin would move a version backwards");
        versions_[cell(worker, u)] = iter;
    }
    retired_[worker] = 0;
}

std::int64_t
ServerShard::maxVersionOfWorker(std::size_t worker) const
{
    ROG_ASSERT(worker < workers_, "worker out of range");
    std::int64_t m = std::numeric_limits<std::int64_t>::min();
    for (std::size_t u = 0; u < unit_widths_.size(); ++u)
        m = std::max(m, versions_[cell(worker, u)]);
    return m;
}

std::int64_t
ServerShard::minVersionOfWorker(std::size_t worker) const
{
    ROG_ASSERT(worker < workers_, "worker out of range");
    std::int64_t m = std::numeric_limits<std::int64_t>::max();
    for (std::size_t u = 0; u < unit_widths_.size(); ++u)
        m = std::min(m, versions_[cell(worker, u)]);
    return m;
}

void
ServerShard::report(std::size_t worker, double bytes_transmitted,
                    double elapsed_seconds, double mta_bytes)
{
    tracker_.report(worker, bytes_transmitted, elapsed_seconds,
                    mta_bytes);
}

VersionSnapshot
ServerShard::versionSnapshot() const
{
    VersionSnapshot s;
    s.versions.resize(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
        s.versions[w].assign(
            versions_.begin() +
                static_cast<std::ptrdiff_t>(w * unit_widths_.size()),
            versions_.begin() + static_cast<std::ptrdiff_t>(
                                    (w + 1) * unit_widths_.size()));
    }
    s.retired.assign(retired_.begin(), retired_.end());
    return s;
}

ServerStateSnapshot
ServerShard::serverSnapshot() const
{
    ServerStateSnapshot s;
    s.outbox.resize(workers_);
    s.has_pending.resize(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
        s.outbox[w].resize(unit_widths_.size());
        s.has_pending[w].assign(
            has_pending_.begin() +
                static_cast<std::ptrdiff_t>(w * unit_widths_.size()),
            has_pending_.begin() + static_cast<std::ptrdiff_t>(
                                       (w + 1) * unit_widths_.size()));
        const float *block = outbox_.data() + w * floats_per_worker_;
        for (std::size_t u = 0; u < unit_widths_.size(); ++u)
            s.outbox[w][u].assign(block + unit_offsets_[u],
                                  block + unit_offsets_[u] +
                                      unit_widths_[u]);
    }
    s.last_update = last_update_;
    return s;
}

void
ServerShard::restore(const VersionSnapshot &versions,
                     const ServerStateSnapshot &server,
                     const MtaTrackerSnapshot &tracker)
{
    if (versions.versions.size() != workers_ ||
        versions.retired.size() != workers_ ||
        server.outbox.size() != workers_ ||
        server.has_pending.size() != workers_ ||
        server.last_update.size() != unit_widths_.size())
        ROG_FATAL("shard snapshot shape mismatch");
    for (std::size_t w = 0; w < workers_; ++w) {
        if (versions.versions[w].size() != unit_widths_.size() ||
            server.outbox[w].size() != unit_widths_.size() ||
            server.has_pending[w].size() != unit_widths_.size())
            ROG_FATAL("shard snapshot unit count mismatch");
        for (std::size_t u = 0; u < unit_widths_.size(); ++u)
            if (server.outbox[w][u].size() != unit_widths_[u])
                ROG_FATAL("shard snapshot unit width mismatch");
    }
    for (std::size_t w = 0; w < workers_; ++w) {
        std::copy(versions.versions[w].begin(),
                  versions.versions[w].end(),
                  versions_.begin() + static_cast<std::ptrdiff_t>(
                                          w * unit_widths_.size()));
        std::copy(server.has_pending[w].begin(),
                  server.has_pending[w].end(),
                  has_pending_.begin() + static_cast<std::ptrdiff_t>(
                                             w * unit_widths_.size()));
        float *block = outbox_.data() + w * floats_per_worker_;
        for (std::size_t u = 0; u < unit_widths_.size(); ++u)
            std::copy(server.outbox[w][u].begin(),
                      server.outbox[w][u].end(),
                      block + unit_offsets_[u]);
        retired_[w] = versions.retired[w];
    }
    last_update_ = server.last_update;
    tracker_.restore(tracker);
}

ShardedServer::ShardedServer(std::size_t workers,
                             const RowPartition &partition,
                             std::size_t shards)
{
    std::vector<std::size_t> widths;
    widths.reserve(partition.unitCount());
    for (const Unit &u : partition.units())
        widths.push_back(u.width);
    init(workers, widths, shards);
}

ShardedServer::ShardedServer(std::size_t workers,
                             const std::vector<std::size_t> &unit_widths,
                             std::size_t shards)
{
    init(workers, unit_widths, shards);
}

void
ShardedServer::init(std::size_t workers,
                    const std::vector<std::size_t> &unit_widths,
                    std::size_t shards)
{
    const std::size_t units = unit_widths.size();
    ROG_ASSERT(units > 0, "sharded server needs at least one unit");
    const std::size_t n = std::max<std::size_t>(
        1, std::min(shards == 0 ? 1 : shards, units));

    unit_shard_.resize(units);
    unit_local_.resize(units);
    shards_.reserve(n);

    // Contiguous balanced ranges: the first (units % n) shards take
    // one extra unit. Contiguity keeps a worker's pull of neighboring
    // rows within one shard and makes shard membership a range check.
    const std::size_t base = units / n;
    const std::size_t rem = units % n;
    std::size_t next = 0;
    for (std::size_t s = 0; s < n; ++s) {
        const std::size_t count = base + (s < rem ? 1 : 0);
        std::vector<std::size_t> widths;
        widths.reserve(count);
        for (std::size_t k = 0; k < count; ++k) {
            const std::size_t u = next + k;
            unit_shard_[u] = static_cast<std::uint32_t>(s);
            unit_local_[u] = static_cast<std::uint32_t>(k);
            widths.push_back(unit_widths[u]);
        }
        shards_.emplace_back(workers, std::move(widths));
        next += count;
    }
    ROG_ASSERT(next == units, "shard ranges must cover every unit");
}

void
ShardedServer::accumulate(std::size_t unit,
                          std::span<const float> decoded)
{
    shards_[unit_shard_[unit]].accumulate(unit_local_[unit], decoded);
}

std::span<float>
ShardedServer::pending(std::size_t worker, std::size_t unit)
{
    return shards_[unit_shard_[unit]].pending(worker,
                                              unit_local_[unit]);
}

bool
ShardedServer::hasPending(std::size_t worker, std::size_t unit) const
{
    return shards_[unit_shard_[unit]].hasPending(worker,
                                                 unit_local_[unit]);
}

void
ShardedServer::clearPending(std::size_t worker, std::size_t unit)
{
    shards_[unit_shard_[unit]].clearPending(worker, unit_local_[unit]);
}

void
ShardedServer::clearWorker(std::size_t worker)
{
    for (auto &s : shards_)
        s.clearWorker(worker);
}

double
ShardedServer::pendingMeanAbs(std::size_t worker,
                              std::size_t unit) const
{
    return shards_[unit_shard_[unit]].pendingMeanAbs(
        worker, unit_local_[unit]);
}

std::int64_t
ShardedServer::lastUpdate(std::size_t unit) const
{
    return shards_[unit_shard_[unit]].lastUpdate(unit_local_[unit]);
}

void
ShardedServer::noteUpdate(std::size_t unit, std::int64_t iter)
{
    shards_[unit_shard_[unit]].noteUpdate(unit_local_[unit], iter);
}

std::int64_t
ShardedServer::version(std::size_t worker, std::size_t unit) const
{
    return shards_[unit_shard_[unit]].version(worker,
                                              unit_local_[unit]);
}

void
ShardedServer::updateVersion(std::size_t worker, std::size_t unit,
                             std::int64_t iter)
{
    shards_[unit_shard_[unit]].updateVersion(worker, unit_local_[unit],
                                             iter);
}

void
ShardedServer::retireWorker(std::size_t worker)
{
    for (auto &s : shards_)
        s.retireWorker(worker);
}

void
ShardedServer::rejoinWorker(std::size_t worker, std::int64_t iter)
{
    for (auto &s : shards_)
        s.rejoinWorker(worker, iter);
}

std::int64_t
ShardedServer::maxVersionOfWorker(std::size_t worker) const
{
    std::int64_t m = std::numeric_limits<std::int64_t>::min();
    for (const auto &s : shards_)
        m = std::max(m, s.maxVersionOfWorker(worker));
    return m;
}

void
ShardedServer::report(std::size_t worker, double bytes_transmitted,
                      double elapsed_seconds, double mta_bytes)
{
    for (auto &s : shards_)
        s.report(worker, bytes_transmitted, elapsed_seconds, mta_bytes);
}

} // namespace core
} // namespace rog
