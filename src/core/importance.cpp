#include "core/importance.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "parallel/parallel_for.hpp"

namespace rog {
namespace core {

std::vector<std::size_t>
rankUnits(ImportanceMode mode, const ImportanceConfig &cfg,
          const std::vector<double> &mean_abs_grad,
          const std::vector<std::int64_t> &iters, Rng &rng)
{
    ROG_ASSERT(mean_abs_grad.size() == iters.size(),
               "importance input size mismatch");
    const std::size_t n = mean_abs_grad.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    if (n <= 1)
        return order;

    if (cfg.random) {
        rng.shuffle(order);
        return order;
    }

    // Normalize the magnitude term by its mean so the two terms weigh
    // comparable scales.
    double mag_mean = 0.0;
    for (double m : mean_abs_grad)
        mag_mean += m;
    mag_mean /= static_cast<double>(n);
    const double mag_scale = mag_mean > 0.0 ? 1.0 / mag_mean : 0.0;

    const auto [min_it, max_it] =
        std::minmax_element(iters.begin(), iters.end());
    const std::int64_t min_iter = *min_it;
    const std::int64_t max_iter = *max_it;

    // Scores are independent per unit; chunks write disjoint slices.
    std::vector<double> score(n);
    parallel::parallelFor(
        0, n, 256, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const double mag = cfg.f1 * mean_abs_grad[i] * mag_scale;
                const double age = (mode == ImportanceMode::Worker)
                    ? static_cast<double>(max_iter - iters[i])
                    : static_cast<double>(iters[i] - min_iter);
                score[i] = mag + cfg.f2 * age;
            }
        });

    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         if (score[a] != score[b])
                             return score[a] > score[b];
                         return a < b;
                     });
    return order;
}

} // namespace core
} // namespace rog
