/**
 * @file
 * Crash-consistent parameter-server checkpointing.
 *
 * The server's volatile state — the RSP version matrix, the
 * one-copy-per-worker gradient outbox, and ATP's MTA-time estimates —
 * is periodically serialized as a write-ahead checkpoint ("ROGS"
 * format: magic, version, payload size, CRC32C, payload). Files are
 * written to `<path>.tmp` and atomically renamed into place so a
 * crash mid-write can never leave a half-written checkpoint where a
 * good one stood; the CRC trailer catches torn or bit-rotten files at
 * restore time. A server that crashes recovers by loading the newest
 * checkpoint and resuming: pushes that arrived after the checkpoint
 * are re-sent by the workers' reliable links, and the monotone
 * version matrix plus the transport's exactly-once dedup guarantee no
 * gradient is applied twice.
 */
#ifndef ROG_CORE_SERVER_CHECKPOINT_HPP
#define ROG_CORE_SERVER_CHECKPOINT_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/server_state.hpp"
#include "core/version_storage.hpp"
#include "net/session/session.hpp"

namespace rog {
namespace core {

/** Everything the server must persist to survive a crash. */
struct ServerCheckpoint
{
    /** Training iteration the checkpoint was cut at. */
    std::int64_t iteration = 0;

    /**
     * High-water transport message sequence number: restored with
     * max() so a recovered server never reuses a sequence number an
     * old in-flight frame may still carry.
     */
    std::uint64_t msg_seq = 0;

    VersionSnapshot versions;
    ServerStateSnapshot server;
    MtaTrackerSnapshot tracker;

    /**
     * Run epoch the checkpoint was cut under. A recovering server
     * restarts at `epoch + 1` so every pre-crash scope is fenced off.
     */
    std::uint64_t epoch = 0;

    /**
     * Session-recovery state: resume tokens, incarnations, and
     * progress watermarks per worker. May be empty (the in-process
     * DES engine has no session layer).
     */
    net::session::SessionSnapshot sessions;

    /**
     * Serialized model parameters at the checkpointed iteration, so a
     * restarted server can hand Rejoin workers a consistent model.
     * May be empty for engines that persist the model elsewhere.
     */
    std::vector<std::uint8_t> model;

    /**
     * Per-worker "said Bye" flags (1 = finished). Distinguishes a
     * finished worker from an evicted one — both retire their version
     * rows, but only the finished one will never Hello again, and a
     * restarted server must not wait on it. Empty or workers-sized.
     */
    std::vector<std::uint8_t> worker_done;
};

/** Serialize @p ckpt (with CRC32C trailer) to @p os. @throws on I/O
 *  error. */
void writeServerCheckpoint(std::ostream &os,
                           const ServerCheckpoint &ckpt);

/**
 * Parse a checkpoint, verifying magic, version, payload size, and
 * CRC32C before trusting a single payload byte.
 *
 * @throws std::runtime_error on any malformed input.
 */
ServerCheckpoint readServerCheckpoint(std::istream &is);

/**
 * Write to `path + ".tmp"`, then atomically rename onto @p path —
 * readers see either the old complete file or the new complete file,
 * never a prefix.
 */
void writeServerCheckpointFile(const std::string &path,
                               const ServerCheckpoint &ckpt);

/** @throws std::runtime_error if missing, torn, or corrupt. */
ServerCheckpoint readServerCheckpointFile(const std::string &path);

} // namespace core
} // namespace rog

#endif // ROG_CORE_SERVER_CHECKPOINT_HPP
