#include "core/dynamic_batching.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace rog {
namespace core {

namespace {

BatchAssignment
finalize(const std::vector<double> &sps,
         std::vector<std::size_t> batches)
{
    BatchAssignment a;
    a.batch_sizes = std::move(batches);
    a.compute_seconds.resize(sps.size());
    double lo = 1e300, hi = 0.0;
    for (std::size_t i = 0; i < sps.size(); ++i) {
        a.compute_seconds[i] =
            static_cast<double>(a.batch_sizes[i]) * sps[i];
        lo = std::min(lo, a.compute_seconds[i]);
        hi = std::max(hi, a.compute_seconds[i]);
    }
    a.iteration_seconds = hi;
    a.imbalance = lo > 0.0 ? hi / lo : 1.0;
    return a;
}

} // namespace

BatchAssignment
assignDynamicBatches(const std::vector<double> &seconds_per_sample,
                     std::size_t total_batch)
{
    const std::size_t n = seconds_per_sample.size();
    ROG_ASSERT(n > 0, "need at least one device");
    ROG_ASSERT(total_batch >= n, "batch smaller than device count");
    for (double s : seconds_per_sample)
        ROG_ASSERT(s > 0.0, "seconds per sample must be positive");

    // Ideal share: batch_i proportional to speed 1/sps_i. Floor the
    // real-valued shares, then hand out the remainder to the devices
    // that finish earliest (largest-remainder with a speed tiebreak).
    double speed_sum = 0.0;
    for (double s : seconds_per_sample)
        speed_sum += 1.0 / s;

    std::vector<std::size_t> batches(n);
    std::vector<double> ideal(n);
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < n; ++i) {
        ideal[i] = static_cast<double>(total_batch) *
                   (1.0 / seconds_per_sample[i]) / speed_sum;
        batches[i] =
            std::max<std::size_t>(1, static_cast<std::size_t>(ideal[i]));
        assigned += batches[i];
    }
    // Trim overshoot (possible due to the >=1 floor) from the slowest
    // devices, then distribute any shortfall to minimize the maximum
    // finish time.
    while (assigned > total_batch) {
        std::size_t slowest = 0;
        for (std::size_t i = 1; i < n; ++i)
            if (batches[i] > 1 &&
                (batches[slowest] <= 1 ||
                 seconds_per_sample[i] > seconds_per_sample[slowest]))
                slowest = i;
        ROG_ASSERT(batches[slowest] > 1, "cannot trim batch below 1");
        --batches[slowest];
        --assigned;
    }
    while (assigned < total_batch) {
        // Give the next sample to the device whose finish time after
        // the increment stays lowest.
        std::size_t best = 0;
        double best_time = 1e300;
        for (std::size_t i = 0; i < n; ++i) {
            const double t = static_cast<double>(batches[i] + 1) *
                             seconds_per_sample[i];
            if (t < best_time) {
                best_time = t;
                best = i;
            }
        }
        ++batches[best];
        ++assigned;
    }
    return finalize(seconds_per_sample, std::move(batches));
}

BatchAssignment
assignUniformBatches(const std::vector<double> &seconds_per_sample,
                     std::size_t total_batch)
{
    const std::size_t n = seconds_per_sample.size();
    ROG_ASSERT(n > 0, "need at least one device");
    ROG_ASSERT(total_batch >= n, "batch smaller than device count");
    std::vector<std::size_t> batches(n, total_batch / n);
    for (std::size_t i = 0; i < total_batch % n; ++i)
        ++batches[i];
    return finalize(seconds_per_sample, std::move(batches));
}

} // namespace core
} // namespace rog
