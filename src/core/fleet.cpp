/**
 * @file
 * Fleet-scale parallel DES — implementation. See fleet.hpp for the
 * architecture and DESIGN.md Sec. 17 for the determinism argument.
 *
 * Structure: a sequential COORDINATOR event queue drives the worker
 * state machines (compute -> push -> pull -> gate -> next iteration)
 * and the airtime-fair fluid channel; S shard lanes, each a private
 * event queue plus the ServerShard it feeds, absorb the server-side
 * work (gradient accumulation, version updates, MTA reports,
 * deliveries into worker replicas). The coordinator only ever READS
 * shard state after flushShards(), which drains every lane on the
 * thread pool (parallelFor, grain 1) — lanes touch disjoint state
 * (their ServerShard plus the disjoint replica rows their units map
 * to), so any interleaving of lanes yields the same memory image, and
 * the flush points themselves are a pure function of the event
 * timeline. Hence: bitwise-identical results for every thread count
 * and for both event-queue implementations.
 *
 * Synthetic workload: each worker descends ||x - target||^2 on its own
 * replica with hash-derived gradient noise; ATP partial pushes pick
 * mtaUnits(S, rows) rows per iteration by deterministic rotation, so
 * every row ships within ceil(rows / MTA) iterations — the coverage
 * bound the paper's MTA table guarantees probabilistically. Rows a
 * worker does not push in an iteration simply do not contribute that
 * iteration (no residual accumulation) — the convergence gap this
 * opens versus BSP is exactly the "accuracy gap" the fleet bench
 * charts.
 */
#include "core/fleet.hpp"

#include <cmath>
#include <cstring>
#include <deque>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/crc32c.hpp"
#include "core/mta.hpp"
#include "core/server_checkpoint.hpp"
#include "core/server_shard.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/event_queue.hpp"
#include "sim/event_queue_ref.hpp"

namespace rog {
namespace core {

namespace {

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Deterministic hash of up to four indices, chained through
 *  splitmix64 so every coordinate perturbs every output bit. */
std::uint64_t
hashMix(std::uint64_t seed, std::uint64_t a, std::uint64_t b = 0,
        std::uint64_t c = 0, std::uint64_t d = 0)
{
    std::uint64_t h = splitmix64(seed ^ 0x243F6A8885A308D3ull);
    h = splitmix64(h ^ a);
    h = splitmix64(h ^ b);
    h = splitmix64(h ^ c);
    h = splitmix64(h ^ d);
    return h;
}

/** Map a hash to [-1, 1). */
double
signedUnit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * (1.0 / 4503599627370496.0) -
           1.0;
}

/**
 * The engine, templated over the event-queue type so the bench can run
 * the identical simulation on the heap event core (sim::EventQueue)
 * and the std::map baseline (sim::MapEventQueue). Both produce the
 * same state_digest — the fuzz oracle's firing-order equivalence,
 * end to end.
 */
template <class Q> class FleetEngine
{
  public:
    FleetEngine(const FleetConfig &cfg, parallel::ThreadPool &pool)
        : cfg_(cfg), pool_(pool)
    {
        if (cfg.workers == 0 || cfg.rows == 0 || cfg.row_width == 0 ||
            cfg.iterations == 0)
            throw std::invalid_argument(
                "FleetConfig: workers/rows/row_width/iterations "
                "must be positive");
        if (cfg_.staleness_threshold == 0)
            cfg_.staleness_threshold = 1; // RSP floor; 1 == BSP.
        shards_ = cfg.shards == 0 ? 1 : cfg.shards;
        if (shards_ > cfg.rows)
            shards_ = cfg.rows;
        push_rows_ = cfg.atp
                         ? mtaUnits(cfg.staleness_threshold, cfg.rows)
                         : cfg.rows;

        std::vector<std::size_t> widths(cfg.rows, cfg.row_width);
        server_ = std::make_unique<ShardedServer>(cfg.workers, widths,
                                                  shards_);
        for (std::size_t s = 0; s < shards_; ++s)
            lanes_.emplace_back();

        target_.resize(cfg.rows * cfg.row_width);
        for (std::size_t i = 0; i < target_.size(); ++i)
            target_[i] = static_cast<float>(
                signedUnit(hashMix(cfg.seed, 0x7A, i)));
        replicas_.assign(cfg.workers * target_.size(), 0.0f);

        workers_.resize(cfg.workers);
        const double spread =
            cfg.bandwidth_spread < 0.9 ? cfg.bandwidth_spread : 0.9;
        for (std::size_t w = 0; w < cfg.workers; ++w)
            workers_[w].link_rate =
                cfg.mean_bandwidth *
                (1.0 + spread * signedUnit(hashMix(cfg.seed, 1, w)));
        last_pushed_.assign(cfg.workers, 0);
    }

    FleetResult
    run()
    {
        for (std::size_t w = 0; w < cfg_.workers; ++w)
            beginIteration(w);
        while (!coord_.empty()) {
            coord_.step();
            ++coord_events_;
        }
        flushShards();

        for (std::size_t w = 0; w < cfg_.workers; ++w)
            if (!workers_[w].retired)
                throw std::runtime_error(
                    "fleet simulation deadlocked: worker never "
                    "retired");

        FleetResult r;
        r.workers = cfg_.workers;
        r.shards = shards_;
        r.sim_seconds = coord_.now();
        r.total_bytes = total_bytes_;
        r.events_processed = coord_events_;
        for (const Lane &lane : lanes_)
            r.events_processed += lane.events;
        r.iterations_completed = iterations_done_;
        r.final_metric = finalMetric();
        r.state_digest = stateDigest();
        r.checkpoint_files_written = ckpt_files_;
        return r;
    }

  private:
    enum : std::uint32_t
    {
        kTagCompute = 1,
        kTagPushDone = 2,
        kTagPullDone = 3,
        kTagApply = 4,
        kTagReport = 5,
        kTagDeliver = 6,
        kTagRetire = 7,
    };

    struct FleetWorker
    {
        std::int64_t iter = 0; //!< iteration in flight (1-based).
        bool blocked = false;
        bool retired = false;
        double link_rate = 0.0;
        double push_start = 0.0;
        BufferPool::Lease<float> push_buf;
        BufferPool::Lease<std::uint8_t> pull_buf;
    };

    /** One shard lane: a private event queue feeding one ServerShard,
     *  plus its event counter and log digest (combined in shard order
     *  at the end — the ordered-combine discipline). */
    struct Lane
    {
        Q queue;
        std::uint64_t events = 0;
        std::uint32_t crc = 0;
    };

    struct Transfer
    {
        std::uint32_t worker = 0;
        bool is_pull = false;
        std::uint64_t seq = 0; //!< start order (completion tie-break).
        double remaining = 0.0;
        double rate = 0.0;
    };

    // ---- deterministic hashes ----
    double
    computeDuration(std::size_t w, std::int64_t n) const
    {
        const double jitter =
            cfg_.compute_jitter < 0.9 ? cfg_.compute_jitter : 0.9;
        const double u = signedUnit(
            hashMix(cfg_.seed, 2, w, static_cast<std::uint64_t>(n)));
        const double d = cfg_.compute_seconds * (1.0 + jitter * u);
        return d > 1e-9 ? d : 1e-9;
    }

    float
    gradientNoise(std::size_t w, std::int64_t n, std::size_t row,
                  std::size_t j) const
    {
        return cfg_.gradient_noise *
               static_cast<float>(signedUnit(
                   hashMix(cfg_.seed, 3 + w,
                           static_cast<std::uint64_t>(n), row, j)));
    }

    /** Global row pushed as the @p i-th element of iteration @p n's
     *  rotation window. */
    std::size_t
    rotationRow(std::int64_t n, std::size_t i) const
    {
        const std::size_t start =
            (static_cast<std::size_t>(n - 1) * push_rows_) % cfg_.rows;
        return (start + i) % cfg_.rows;
    }

    float *
    replicaRow(std::size_t w, std::size_t row)
    {
        return replicas_.data() +
               (w * cfg_.rows + row) * cfg_.row_width;
    }

    // ---- event logs ----
    void
    logCoord(std::uint32_t tag, std::size_t w, std::int64_t n)
    {
        std::uint8_t buf[24];
        const std::uint32_t w32 = static_cast<std::uint32_t>(w);
        const double now = coord_.now();
        std::memcpy(buf, &tag, 4);
        std::memcpy(buf + 4, &w32, 4);
        std::memcpy(buf + 8, &n, 8);
        std::memcpy(buf + 16, &now, 8);
        coord_crc_ = crc32c({buf, sizeof buf}, coord_crc_);
    }

    void
    logLane(std::size_t s, std::uint32_t tag, std::size_t w,
            std::int64_t n, std::size_t row)
    {
        Lane &lane = lanes_[s];
        std::uint8_t buf[24];
        const std::uint32_t w32 = static_cast<std::uint32_t>(w);
        const std::uint32_t r32 = static_cast<std::uint32_t>(row);
        std::memcpy(buf, &tag, 4);
        std::memcpy(buf + 4, &w32, 4);
        std::memcpy(buf + 8, &n, 8);
        std::memcpy(buf + 16, &r32, 4);
        std::memcpy(buf + 20, &tag, 4);
        lane.crc = crc32c({buf, sizeof buf}, lane.crc);
        ++lane.events;
    }

    // ---- shard lanes ----
    template <typename F>
    void
    enqueueShard(std::size_t s, F &&op)
    {
        lanes_[s].queue.schedule(coord_.now(), std::forward<F>(op));
        ++pending_ops_;
    }

    /**
     * Drain every shard lane on the pool. Grain 1 puts each shard in
     * its own chunk; lanes touch disjoint state, so the flush result
     * is independent of which thread drains which lane.
     */
    void
    flushShards()
    {
        if (pending_ops_ == 0)
            return;
        parallel::parallelFor(
            0, shards_, 1,
            [this](std::size_t lo, std::size_t hi) {
                for (std::size_t s = lo; s < hi; ++s) {
                    Lane &lane = lanes_[s];
                    while (!lane.queue.empty())
                        lane.queue.step();
                }
            },
            pool_);
        pending_ops_ = 0;
    }

    // ---- airtime-fair fluid channel ----
    double
    shareRate(const Transfer &t) const
    {
        return t.rate / static_cast<double>(active_.size());
    }

    void
    channelAdvance(double t)
    {
        if (!active_.empty()) {
            const double dt = t - channel_last_;
            for (Transfer &tr : active_)
                tr.remaining -= dt * shareRate(tr);
        }
        channel_last_ = t;
    }

    /** Cancel the pending completion event (O(1) on the heap core)
     *  and re-arm it for the transfer that finishes next under the
     *  current airtime shares. */
    void
    channelReschedule()
    {
        if (channel_ev_.valid()) {
            coord_.cancel(channel_ev_);
            channel_ev_ = {};
        }
        if (active_.empty())
            return;
        double best_dt = 0.0;
        std::uint64_t best_seq = 0;
        for (const Transfer &tr : active_) {
            const double rem = tr.remaining > 0.0 ? tr.remaining : 0.0;
            const double dt = rem / shareRate(tr);
            if (best_seq == 0 || dt < best_dt ||
                (dt == best_dt && tr.seq < best_seq)) {
                best_dt = dt;
                best_seq = tr.seq;
            }
        }
        const std::uint64_t seq = best_seq;
        channel_ev_ = coord_.schedule(coord_.now() + best_dt,
                                      [this, seq] {
                                          onChannelFire(seq);
                                      });
    }

    void
    channelStart(std::size_t w, bool is_pull, double bytes)
    {
        channelAdvance(coord_.now());
        Transfer tr;
        tr.worker = static_cast<std::uint32_t>(w);
        tr.is_pull = is_pull;
        tr.seq = next_transfer_seq_++;
        tr.remaining = bytes;
        tr.rate = workers_[w].link_rate;
        active_.push_back(tr);
        total_bytes_ += bytes;
        channelReschedule();
    }

    void
    onChannelFire(std::uint64_t seq)
    {
        channel_ev_ = {};
        channelAdvance(coord_.now());
        std::size_t idx = active_.size();
        for (std::size_t i = 0; i < active_.size(); ++i)
            if (active_[i].seq == seq) {
                idx = i;
                break;
            }
        if (idx == active_.size())
            return; // stale completion; nothing to do.
        const Transfer done = active_[idx];
        active_[idx] = active_.back();
        active_.pop_back();
        if (done.is_pull)
            onPullComplete(done.worker);
        else
            onPushComplete(done.worker);
        channelReschedule();
    }

    // ---- worker state machine ----
    /** RSP gate: every other active worker's last pushed iteration
     *  must be within the staleness threshold of @p next. Reads only
     *  coordinator-owned mirrors (last_pushed_, retired), never shard
     *  state. */
    bool
    gatePasses(std::size_t w, std::int64_t next) const
    {
        const std::int64_t floor =
            next - static_cast<std::int64_t>(cfg_.staleness_threshold);
        for (std::size_t o = 0; o < cfg_.workers; ++o) {
            if (o == w || workers_[o].retired)
                continue;
            if (last_pushed_[o] < floor)
                return false;
        }
        return true;
    }

    void
    beginIteration(std::size_t w)
    {
        FleetWorker &fw = workers_[w];
        fw.blocked = false;
        fw.iter += 1;
        const std::int64_t n = fw.iter;
        coord_.schedule(coord_.now() + computeDuration(w, n),
                        [this, w] { onComputeDone(w); });
    }

    /** Re-check every gate-blocked worker (ascending index — the
     *  deterministic unblock order) after progress or membership
     *  changed. O(workers), not O(workers^2): for threshold >= 1 a
     *  worker's own last_pushed never trips its gate (it pushed
     *  next - 1 >= next - threshold), so gatePasses reduces to one
     *  fleet-wide minimum over active workers, computed once. */
    void
    unblockScan()
    {
        std::int64_t min_pushed = 0;
        bool first = true;
        for (std::size_t o = 0; o < cfg_.workers; ++o) {
            if (workers_[o].retired)
                continue;
            if (first || last_pushed_[o] < min_pushed)
                min_pushed = last_pushed_[o];
            first = false;
        }
        const std::int64_t s =
            static_cast<std::int64_t>(cfg_.staleness_threshold);
        for (std::size_t w = 0; w < cfg_.workers; ++w)
            if (workers_[w].blocked &&
                (first || min_pushed >= workers_[w].iter + 1 - s))
                beginIteration(w);
    }

    void
    onComputeDone(std::size_t w)
    {
        // The gradient reads this worker's replica rows, which pending
        // deliver ops may still own — settle the lanes first.
        flushShards();

        FleetWorker &fw = workers_[w];
        const std::int64_t n = fw.iter;
        logCoord(kTagCompute, w, n);

        const std::size_t width = cfg_.row_width;
        fw.push_buf =
            BufferPool::global().leaseFloats(push_rows_ * width);
        for (std::size_t i = 0; i < push_rows_; ++i) {
            const std::size_t row = rotationRow(n, i);
            const float *x = replicaRow(w, row);
            const float *t = target_.data() + row * width;
            float *g = fw.push_buf.data() + i * width;
            for (std::size_t j = 0; j < width; ++j)
                g[j] = (x[j] - t[j]) + gradientNoise(w, n, row, j);
        }

        fw.push_start = coord_.now();
        const double bytes =
            static_cast<double>(push_rows_ * width) * 4.0 +
            cfg_.header_bytes;
        channelStart(w, /*is_pull=*/false, bytes);
    }

    void
    onPushComplete(std::size_t w)
    {
        FleetWorker &fw = workers_[w];
        const std::int64_t n = fw.iter;
        logCoord(kTagPushDone, w, n);
        last_pushed_[w] = n;

        const double bytes =
            static_cast<double>(push_rows_ * cfg_.row_width) * 4.0 +
            cfg_.header_bytes;
        const double elapsed = coord_.now() - fw.push_start;
        const double mta_bytes =
            mtaFraction(cfg_.staleness_threshold) *
            static_cast<double>(cfg_.rows * cfg_.row_width) * 4.0;

        // Apply ops: one per shard that owns a pushed row. The op
        // routes through the ShardedServer facade, which touches only
        // shard s's state for units it owns — lane-disjoint.
        for (std::size_t s = 0; s < shards_; ++s) {
            bool owns = false;
            for (std::size_t i = 0; i < push_rows_ && !owns; ++i)
                owns = server_->shardOf(rotationRow(n, i)) == s;
            if (owns)
                enqueueShard(s, [this, s, w, n] {
                    applyPush(s, w, n);
                });
            // MTA reports replicate into every lane's tracker so the
            // per-shard EWMAs stay identical replicas.
            enqueueShard(s, [this, s, w, bytes, elapsed, mta_bytes] {
                server_->shard(s).report(w, bytes, elapsed, mta_bytes);
                logLane(s, kTagReport, w, 0, s);
            });
        }

        // Reading the pending-row count is a shard-state read: flush
        // first (this also settles the apply ops just enqueued, after
        // which the push staging lease can recycle).
        flushShards();
        fw.push_buf.release();

        std::size_t pending_rows = 0;
        for (std::size_t row = 0; row < cfg_.rows; ++row)
            if (server_->hasPending(w, row))
                ++pending_rows;
        const double pull_bytes =
            static_cast<double>(pending_rows * cfg_.row_width) * 4.0 +
            cfg_.header_bytes;
        fw.pull_buf = BufferPool::global().leaseBytes(
            static_cast<std::size_t>(pull_bytes));
        channelStart(w, /*is_pull=*/true, pull_bytes);

        unblockScan();
    }

    void
    applyPush(std::size_t s, std::size_t w, std::int64_t n)
    {
        const std::size_t width = cfg_.row_width;
        const float *buf = workers_[w].push_buf.data();
        for (std::size_t i = 0; i < push_rows_; ++i) {
            const std::size_t row = rotationRow(n, i);
            if (server_->shardOf(row) != s)
                continue;
            server_->accumulate(
                row, std::span<const float>(buf + i * width, width));
            server_->updateVersion(w, row, n);
            server_->noteUpdate(row, n);
            logLane(s, kTagApply, w, n, row);
        }
    }

    void
    onPullComplete(std::size_t w)
    {
        FleetWorker &fw = workers_[w];
        const std::int64_t n = fw.iter;
        logCoord(kTagPullDone, w, n);
        fw.pull_buf.release();

        for (std::size_t s = 0; s < shards_; ++s)
            enqueueShard(s, [this, s, w] { deliverPending(s, w); });
        ++iterations_done_;

        if (w == 0)
            maybeCheckpoint(n);

        if (n >= static_cast<std::int64_t>(cfg_.iterations)) {
            fw.retired = true;
            for (std::size_t s = 0; s < shards_; ++s)
                enqueueShard(s, [this, s, w] {
                    server_->shard(s).retireWorker(w);
                    logLane(s, kTagRetire, w, 0, s);
                });
            unblockScan();
            return;
        }
        if (gatePasses(w, n + 1))
            beginIteration(w);
        else
            fw.blocked = true;
    }

    void
    deliverPending(std::size_t s, std::size_t w)
    {
        const std::size_t width = cfg_.row_width;
        for (std::size_t row = 0; row < cfg_.rows; ++row) {
            if (server_->shardOf(row) != s ||
                !server_->hasPending(w, row))
                continue;
            std::span<float> p = server_->pending(w, row);
            float *x = replicaRow(w, row);
            for (std::size_t j = 0; j < width; ++j)
                x[j] -= cfg_.learning_rate * p[j];
            server_->clearPending(w, row);
            logLane(s, kTagDeliver, w, 0, row);
        }
    }

    // ---- checkpointing ----
    void
    maybeCheckpoint(std::int64_t n)
    {
        if (cfg_.checkpoint_dir.empty() || cfg_.checkpoint_every == 0)
            return;
        if (n % static_cast<std::int64_t>(cfg_.checkpoint_every) != 0)
            return;
        flushShards(); // snapshots read shard state.
        for (std::size_t s = 0; s < shards_; ++s) {
            ServerCheckpoint ckpt;
            ckpt.iteration = n;
            ckpt.versions = server_->shard(s).versionSnapshot();
            ckpt.server = server_->shard(s).serverSnapshot();
            ckpt.tracker = server_->shard(s).trackerSnapshot();
            std::string path = cfg_.checkpoint_dir + "/fleet.rogs";
            if (s != 0)
                path += ".shard" + std::to_string(s);
            writeServerCheckpointFile(path, ckpt);
            ++ckpt_files_;
        }
    }

    // ---- final accounting ----
    double
    finalMetric() const
    {
        double acc = 0.0;
        for (std::size_t w = 0; w < cfg_.workers; ++w)
            for (std::size_t i = 0; i < target_.size(); ++i) {
                const double d =
                    static_cast<double>(
                        replicas_[w * target_.size() + i]) -
                    static_cast<double>(target_[i]);
                acc += d * d;
            }
        return acc / static_cast<double>(replicas_.size());
    }

    std::uint32_t
    stateDigest() const
    {
        std::uint32_t crc = coord_crc_;
        crc = crc32c({reinterpret_cast<const std::uint8_t *>(
                          replicas_.data()),
                      replicas_.size() * sizeof(float)},
                     crc);
        for (const Lane &lane : lanes_) {
            std::uint8_t buf[12];
            std::memcpy(buf, &lane.crc, 4);
            std::memcpy(buf + 4, &lane.events, 8);
            crc = crc32c({buf, sizeof buf}, crc);
        }
        return crc;
    }

    FleetConfig cfg_;
    parallel::ThreadPool &pool_;
    std::size_t shards_ = 1;
    std::size_t push_rows_ = 0;

    std::unique_ptr<ShardedServer> server_;
    std::deque<Lane> lanes_; //!< deque: Q is pinned (non-movable).
    std::size_t pending_ops_ = 0;

    std::vector<float> target_;
    std::vector<float> replicas_;
    std::vector<FleetWorker> workers_;
    std::vector<std::int64_t> last_pushed_;

    Q coord_;
    std::uint64_t coord_events_ = 0;
    std::uint32_t coord_crc_ = 0;

    std::vector<Transfer> active_;
    typename Q::id_type channel_ev_{};
    std::uint64_t next_transfer_seq_ = 1;
    double channel_last_ = 0.0;

    double total_bytes_ = 0.0;
    std::uint64_t iterations_done_ = 0;
    std::size_t ckpt_files_ = 0;
};

void
fillPoolDeltas(FleetResult &r, const BufferPool::Stats &before,
               const BufferPool::Stats &after)
{
    r.pool_leases = after.leases - before.leases;
    r.pool_reuses = after.reuses - before.reuses;
    r.pool_allocations = after.allocations - before.allocations;
    r.pool_hit_rate =
        r.pool_leases == 0
            ? 0.0
            : static_cast<double>(r.pool_reuses) /
                  static_cast<double>(r.pool_leases);
}

} // namespace

FleetResult
runFleetSimulation(const FleetConfig &cfg, parallel::ThreadPool &pool)
{
    const BufferPool::Stats before = BufferPool::global().stats();
    FleetResult r;
    if (cfg.use_map_queue)
        r = FleetEngine<sim::MapEventQueue>(cfg, pool).run();
    else
        r = FleetEngine<sim::EventQueue>(cfg, pool).run();
    fillPoolDeltas(r, before, BufferPool::global().stats());
    return r;
}

FleetResult
runFleetSimulation(const FleetConfig &cfg)
{
    return runFleetSimulation(cfg, parallel::ThreadPool::global());
}

} // namespace core
} // namespace rog
