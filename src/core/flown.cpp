#include "core/flown.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace rog {
namespace core {

FlownScheduler::FlownScheduler(std::size_t workers, FlownConfig cfg)
    : cfg_(cfg), rate_(workers, Ewma(cfg.ewma_alpha))
{
    ROG_ASSERT(workers > 0, "scheduler needs workers");
    ROG_ASSERT(cfg.min_threshold >= 1 &&
               cfg.max_threshold >= cfg.min_threshold,
               "bad FLOWN threshold bounds");
}

void
FlownScheduler::reportThroughput(std::size_t worker, double bytes_per_sec)
{
    ROG_ASSERT(worker < rate_.size(), "worker out of range");
    rate_[worker].observe(std::max(bytes_per_sec, 1.0));
}

double
FlownScheduler::estimatedRate(std::size_t worker) const
{
    ROG_ASSERT(worker < rate_.size(), "worker out of range");
    return rate_[worker].seeded() ? rate_[worker].value() : 0.0;
}

std::size_t
FlownScheduler::thresholdFor(std::size_t worker) const
{
    ROG_ASSERT(worker < rate_.size(), "worker out of range");
    // Until every estimate is seeded, stay conservative (min).
    double sum = 0.0;
    for (const auto &e : rate_) {
        if (!e.seeded())
            return cfg_.min_threshold;
        sum += e.value();
    }
    const double mean_rate = sum / static_cast<double>(rate_.size());
    const double mine = std::max(rate_[worker].value(), 1.0);
    const double scaled =
        std::round(static_cast<double>(cfg_.base_threshold) *
                   (mean_rate / mine));
    const double clamped =
        clamp(scaled, static_cast<double>(cfg_.min_threshold),
              static_cast<double>(cfg_.max_threshold));
    return static_cast<std::size_t>(clamped);
}

} // namespace core
} // namespace rog
