#include "core/convergence.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace rog {
namespace core {

namespace {

/** Project x onto the L2 ball of the given radius. */
void
project(std::vector<double> &x, double radius)
{
    double norm = 0.0;
    for (double v : x)
        norm += v * v;
    norm = std::sqrt(norm);
    if (norm <= radius || norm == 0.0)
        return;
    const double scale = radius / norm;
    for (double &v : x)
        v *= scale;
}

} // namespace

RegretResult
simulateRspRegret(const RegretConfig &cfg)
{
    ROG_ASSERT(cfg.rows > 0 && cfg.workers > 0 && cfg.iterations > 0,
               "invalid regret config");
    Rng rng(cfg.seed);
    const std::size_t m = cfg.rows;
    const double radius = cfg.diameter / 2.0;

    // History of iterates so stale reads can look back; x_hist[k] is
    // the iterate after k updates.
    std::deque<std::vector<double>> history;
    std::vector<double> x(m, 0.0);
    history.push_back(x);

    // Running sum of targets defines the comparator x* (projected).
    std::vector<double> target_sum(m, 0.0);

    RegretResult res;
    res.cumulative_regret.reserve(cfg.iterations);

    std::vector<double> c(m);
    std::vector<double> stale_x(m);
    std::vector<std::double_t> losses;
    std::vector<std::vector<double>> targets;
    targets.reserve(cfg.iterations);

    double cumulative = 0.0;
    for (std::size_t t = 1; t <= cfg.iterations; ++t) {
        // Draw the component f_t(x) = 1/2 ||x - c_t||^2.
        for (auto &v : c)
            v = rng.uniform(-1.0, 1.0);
        targets.push_back(c);
        for (std::size_t i = 0; i < m; ++i)
            target_sum[i] += c[i];

        // Worker reads a per-row stale iterate: row i comes from the
        // iterate `d_i` updates ago, d_i ~ U{0..S_max} independently —
        // the divergence pattern RSP permits (different rows of one
        // worker at different versions; Sec. III "Row Stale Parallel").
        std::size_t max_delay = 0;
        for (std::size_t i = 0; i < m; ++i) {
            const auto d = static_cast<std::size_t>(
                rng.uniformInt(cfg.staleness + 1));
            const std::size_t avail = history.size() - 1;
            const std::size_t use = std::min(d, avail);
            max_delay = std::max(max_delay, use);
            stale_x[i] = history[history.size() - 1 - use][i];
        }
        res.max_realized_staleness =
            std::max(res.max_realized_staleness, max_delay);

        // Regret accounts f_t at the (stale) read iterate, as in the
        // theorem's R[X] = sum_t f_t(x~_t) - f_t(x*).
        double loss = 0.0;
        double grad_norm = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
            const double g = stale_x[i] - c[i];
            loss += 0.5 * g * g;
            grad_norm += g * g;
        }
        res.lipschitz = std::max(res.lipschitz, std::sqrt(grad_norm));

        // P workers contribute 1/P-averaged updates per iteration;
        // eta_t = sigma / sqrt(t) with sigma = F / (L sqrt(2(S+1)P)).
        const double sigma_l = // sigma * L, L folded in later.
            cfg.diameter /
            std::sqrt(2.0 * static_cast<double>(cfg.staleness + 1) *
                      static_cast<double>(cfg.workers));
        const double eta =
            sigma_l / std::sqrt(static_cast<double>(t)) /
            std::max(res.lipschitz, 1e-9);
        for (std::size_t i = 0; i < m; ++i)
            x[i] -= eta * (stale_x[i] - c[i]);
        project(x, radius);
        history.push_back(x);
        if (history.size() > cfg.staleness + 2)
            history.pop_front();

        losses.push_back(loss);
        cumulative += loss; // comparator part subtracted at the end.
        res.cumulative_regret.push_back(cumulative);
    }

    // Comparator: the best fixed point in hindsight is the projected
    // mean of the targets; subtract sum_t f_t(x*) from every prefix.
    std::vector<double> x_star(m);
    for (std::size_t i = 0; i < m; ++i)
        x_star[i] = target_sum[i] / static_cast<double>(cfg.iterations);
    project(x_star, radius);
    double comparator_prefix = 0.0;
    for (std::size_t t = 0; t < cfg.iterations; ++t) {
        double loss_star = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
            const double d = x_star[i] - targets[t][i];
            loss_star += 0.5 * d * d;
        }
        comparator_prefix += loss_star;
        res.cumulative_regret[t] -= comparator_prefix;
    }

    const double total_regret = res.cumulative_regret.back();
    res.average_regret =
        total_regret / static_cast<double>(cfg.iterations);
    res.theorem_bound =
        4.0 * cfg.diameter * res.lipschitz *
        std::sqrt(2.0 * static_cast<double>(cfg.staleness + 1) *
                  static_cast<double>(cfg.workers) *
                  static_cast<double>(cfg.iterations));
    res.within_bound = total_regret <= res.theorem_bound;
    return res;
}

} // namespace core
} // namespace rog
