#include "core/row_partition.hpp"

#include "common/logging.hpp"

namespace rog {
namespace core {

std::string_view
granularityName(Granularity g)
{
    switch (g) {
      case Granularity::Element:
        return "element";
      case Granularity::Row:
        return "row";
      case Granularity::Layer:
        return "layer";
      case Granularity::WholeModel:
        return "whole-model";
      default:
        return "invalid";
    }
}

RowPartition::RowPartition(const FlatModel &flat, Granularity g,
                           double per_unit_overhead_bytes)
    : granularity_(g), overhead_bytes_(per_unit_overhead_bytes),
      total_elements_(flat.flatSize())
{
    ROG_ASSERT(per_unit_overhead_bytes >= 0.0, "negative unit overhead");
    switch (g) {
      case Granularity::Element:
        units_.reserve(flat.flatSize());
        for (std::size_t i = 0; i < flat.flatSize(); ++i)
            units_.push_back(Unit{i, 1});
        break;
      case Granularity::Row:
        units_.reserve(flat.rowCount());
        for (std::size_t r = 0; r < flat.rowCount(); ++r) {
            const RowInfo &info = flat.rowInfo(r);
            units_.push_back(Unit{info.flat_begin, info.width});
        }
        break;
      case Granularity::Layer: {
        // A layer unit spans all rows of one parameter matrix.
        std::size_t begin = 0;
        std::size_t width = 0;
        std::size_t param = flat.rowInfo(0).param;
        for (std::size_t r = 0; r < flat.rowCount(); ++r) {
            const RowInfo &info = flat.rowInfo(r);
            if (info.param != param) {
                units_.push_back(Unit{begin, width});
                begin = info.flat_begin;
                width = 0;
                param = info.param;
            }
            width += info.width;
        }
        units_.push_back(Unit{begin, width});
        break;
      }
      case Granularity::WholeModel:
        units_.push_back(Unit{0, flat.flatSize()});
        break;
    }
    ROG_ASSERT(!units_.empty(), "partition produced no units");
}

const Unit &
RowPartition::unit(std::size_t u) const
{
    ROG_ASSERT(u < units_.size(), "unit out of range");
    return units_[u];
}

double
RowPartition::indexOverheadFraction() const
{
    const double raw_bytes = 4.0 * static_cast<double>(total_elements_);
    const double overhead =
        overhead_bytes_ * static_cast<double>(units_.size());
    return overhead / raw_bytes;
}

} // namespace core
} // namespace rog
