/**
 * @file
 * Flattened row-indexed view over a model's parameters.
 *
 * ROG "transparently inspects the underlying tensors storing parameters
 * of the model and tracks each row's versions" (Sec. V). FlatModel is
 * that inspection layer: it assigns every parameter-matrix row a global
 * row index and every element a global flat offset, and translates
 * between flat element ranges (the general synchronization unit, see
 * row_partition.hpp) and (parameter, row, column) coordinates.
 */
#ifndef ROG_CORE_FLAT_MODEL_HPP
#define ROG_CORE_FLAT_MODEL_HPP

#include <functional>
#include <span>
#include <vector>

#include "nn/model.hpp"

namespace rog {
namespace core {

/** Descriptor of one global matrix row. */
struct RowInfo
{
    std::size_t param = 0;       //!< index into Model::parameters().
    std::size_t local_row = 0;   //!< row within that parameter matrix.
    std::size_t flat_begin = 0;  //!< offset of the row's first element.
    std::size_t width = 0;       //!< elements in the row.
};

/** Flat view over a model's parameters (non-owning). */
class FlatModel
{
  public:
    /** Bind to a model; the model must outlive this view. */
    explicit FlatModel(nn::Model &model);

    /** Total number of elements across all parameters. */
    std::size_t flatSize() const { return flat_size_; }

    /** Total number of global rows. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Descriptor of global row @p r. @pre r < rowCount() */
    const RowInfo &rowInfo(std::size_t r) const;

    /** Global row containing flat offset @p off. @pre off<flatSize() */
    std::size_t rowOfOffset(std::size_t off) const;

    /**
     * Copy the current parameter *gradients* of the flat range
     * [begin, begin+out.size()) into @p out.
     */
    void gatherGrad(std::size_t begin, std::span<float> out) const;

    /**
     * Add the current parameter *gradients* of the flat range
     * [begin, begin+acc.size()) into @p acc (acc[i] += grad[i]).
     */
    void accumulateGrad(std::size_t begin, std::span<float> acc) const;

    /**
     * Visit the flat range [begin, begin + length) as per-(global row,
     * column range) chunks: fn(row, col_begin, count, range_offset)
     * where range_offset is the chunk's offset within the visited
     * range. Chunks are visited in ascending order and cover the range
     * exactly once.
     */
    void forEachRowChunk(
        std::size_t begin, std::size_t length,
        const std::function<void(std::size_t row, std::size_t col_begin,
                                 std::size_t count,
                                 std::size_t range_offset)> &fn) const;

    /** Parameter values of global row @p r (mutable). */
    std::span<float> rowValues(std::size_t r);

    /** Parameter gradients of global row @p r (mutable). */
    std::span<float> rowGrad(std::size_t r);

    nn::Model &model() { return *model_; }

  private:
    nn::Model *model_;
    std::vector<nn::Parameter *> params_;
    std::vector<RowInfo> rows_;
    std::vector<std::size_t> row_flat_begin_; //!< for binary search.
    std::size_t flat_size_ = 0;
};

} // namespace core
} // namespace rog

#endif // ROG_CORE_FLAT_MODEL_HPP
