/**
 * @file
 * Sharded parameter server: the fleet-scale layout of the server-side
 * state (ROADMAP item 1).
 *
 * The original server trio — VersionStorage, ServerState,
 * MtaTimeTracker — keeps one nested heap allocation per (worker, unit)
 * cell: `vector<vector<vector<float>>>` outboxes and
 * `vector<vector<int64>>` version matrices. At 1024 workers that is
 * hundreds of thousands of small allocations with no locality between
 * the cells one request touches. This file replaces the trio on the
 * engine's hot path with N `ServerShard`s behind a `ShardedServer`
 * facade:
 *
 *  - Model rows (synchronization units) are partitioned across shards
 *    in contiguous ranges; `unit -> (shard, local unit)` is two O(1)
 *    table lookups.
 *  - Each shard stores its outbox as ONE flat float arena (worker
 *    blocks contiguous), pending flags and version cells as flat
 *    arrays, and owns its own MtaTimeTracker bookkeeping, membership
 *    (retired) view, and ROGS checkpoint payload.
 *  - MTA throughput reports are replicated into every shard's tracker:
 *    the EWMA streams are identical, so every shard derives the same
 *    tMTA a single global tracker would — while remaining
 *    self-contained for checkpointing and for the parallel fleet DES,
 *    where each shard is driven by its own event queue.
 *
 * Numerical contract: for any shard count, a sharded run is
 * row-for-row bit-identical to the single-shard (and to the legacy
 * trio) run. Accumulation order within a unit never crosses a shard
 * boundary (units are atomic), the float op order inside
 * `accumulate()` matches ServerState exactly, and version/tracker
 * arithmetic is integer or replicated. The sharded_server_test
 * verifies this by differential runs.
 */
#ifndef ROG_CORE_SERVER_SHARD_HPP
#define ROG_CORE_SERVER_SHARD_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/row_partition.hpp"
#include "core/server_state.hpp"
#include "core/version_storage.hpp"

namespace rog {
namespace core {

/**
 * One shard: contiguous-arena server state for a contiguous range of
 * synchronization units. Unit indices here are SHARD-LOCAL; the
 * ShardedServer facade owns the global->local mapping.
 */
class ServerShard
{
  public:
    /**
     * @param workers    global worker count (gradient scaling uses
     *                   1/workers regardless of sharding).
     * @param unit_widths widths of this shard's units, in shard order.
     */
    ServerShard(std::size_t workers,
                std::vector<std::size_t> unit_widths);

    std::size_t workers() const { return workers_; }
    std::size_t units() const { return unit_widths_.size(); }

    // ---- gradient outbox (ServerState semantics) ----
    void accumulate(std::size_t unit, std::span<const float> decoded);
    std::span<float> pending(std::size_t worker, std::size_t unit);
    bool hasPending(std::size_t worker, std::size_t unit) const;
    void clearPending(std::size_t worker, std::size_t unit);
    void clearWorker(std::size_t worker);
    double pendingMeanAbs(std::size_t worker, std::size_t unit) const;
    std::int64_t lastUpdate(std::size_t unit) const;
    void noteUpdate(std::size_t unit, std::int64_t iter);

    // ---- version matrix (VersionStorage semantics) ----
    std::int64_t version(std::size_t worker, std::size_t unit) const;
    void updateVersion(std::size_t worker, std::size_t unit,
                       std::int64_t iter);
    bool retired(std::size_t worker) const;
    void retireWorker(std::size_t worker);
    void rejoinWorker(std::size_t worker, std::int64_t iter);
    std::int64_t maxVersionOfWorker(std::size_t worker) const;
    std::int64_t minVersionOfWorker(std::size_t worker) const;

    // ---- MTA bookkeeping (replicated tracker) ----
    void report(std::size_t worker, double bytes_transmitted,
                double elapsed_seconds, double mta_bytes);
    double mtaTime() const { return tracker_.mtaTime(); }
    double estimateFor(std::size_t worker) const
    {
        return tracker_.estimateFor(worker);
    }

    // ---- checkpointing (shard-local shapes, ROGS-compatible) ----
    VersionSnapshot versionSnapshot() const;
    ServerStateSnapshot serverSnapshot() const;
    MtaTrackerSnapshot trackerSnapshot() const
    {
        return tracker_.snapshot();
    }
    void restore(const VersionSnapshot &versions,
                 const ServerStateSnapshot &server,
                 const MtaTrackerSnapshot &tracker);

  private:
    std::size_t cell(std::size_t worker, std::size_t unit) const
    {
        return worker * unit_widths_.size() + unit;
    }

    std::size_t workers_;
    std::vector<std::size_t> unit_widths_;
    std::vector<std::size_t> unit_offsets_; //!< into a worker block.
    std::size_t floats_per_worker_ = 0;

    // Flat arenas, indexed by cell(worker, unit) / worker block.
    std::vector<float> outbox_;
    std::vector<std::uint8_t> has_pending_;
    std::vector<std::int64_t> last_update_; //!< per unit.
    std::vector<std::int64_t> versions_;
    std::vector<std::uint8_t> retired_;     //!< per worker.
    MtaTimeTracker tracker_;
};

/**
 * Facade presenting N shards as one server. Global unit indices are
 * routed with two flat lookups; worker-scoped operations (retire,
 * rejoin, clearWorker, MTA reports) broadcast to every shard so the
 * per-shard membership views and trackers stay replicas of each other.
 */
class ShardedServer
{
  public:
    /**
     * @param workers   worker count.
     * @param partition global row partition (unit widths).
     * @param shards    requested shard count; clamped to
     *                  [1, unitCount()].
     */
    ShardedServer(std::size_t workers, const RowPartition &partition,
                  std::size_t shards);

    /** Same, from raw unit widths (synthetic fleet workloads). */
    ShardedServer(std::size_t workers,
                  const std::vector<std::size_t> &unit_widths,
                  std::size_t shards);

    std::size_t shardCount() const { return shards_.size(); }
    std::size_t workers() const { return shards_[0].workers(); }
    std::size_t units() const { return unit_shard_.size(); }
    std::size_t shardOf(std::size_t unit) const
    {
        return unit_shard_[unit];
    }
    ServerShard &shard(std::size_t s) { return shards_[s]; }
    const ServerShard &shard(std::size_t s) const { return shards_[s]; }

    // ---- gradient outbox ----
    void accumulate(std::size_t unit, std::span<const float> decoded);
    std::span<float> pending(std::size_t worker, std::size_t unit);
    bool hasPending(std::size_t worker, std::size_t unit) const;
    void clearPending(std::size_t worker, std::size_t unit);
    void clearWorker(std::size_t worker);
    double pendingMeanAbs(std::size_t worker, std::size_t unit) const;
    std::int64_t lastUpdate(std::size_t unit) const;
    void noteUpdate(std::size_t unit, std::int64_t iter);

    // ---- version matrix ----
    std::int64_t version(std::size_t worker, std::size_t unit) const;
    void updateVersion(std::size_t worker, std::size_t unit,
                       std::int64_t iter);
    bool retired(std::size_t worker) const
    {
        return shards_[0].retired(worker);
    }
    void retireWorker(std::size_t worker);
    void rejoinWorker(std::size_t worker, std::int64_t iter);
    /** Max over every shard's units — the worker's last pushed iter. */
    std::int64_t maxVersionOfWorker(std::size_t worker) const;

    // ---- MTA ----
    /** Replicated into every shard's tracker (identical EWMAs). */
    void report(std::size_t worker, double bytes_transmitted,
                double elapsed_seconds, double mta_bytes);
    double mtaTime() const { return shards_[0].mtaTime(); }
    double estimateFor(std::size_t worker) const
    {
        return shards_[0].estimateFor(worker);
    }

  private:
    void init(std::size_t workers,
              const std::vector<std::size_t> &unit_widths,
              std::size_t shards);

    std::vector<ServerShard> shards_;
    std::vector<std::uint32_t> unit_shard_;
    std::vector<std::uint32_t> unit_local_;
};

} // namespace core
} // namespace rog

#endif // ROG_CORE_SERVER_SHARD_HPP
