/**
 * @file
 * Workload abstraction: what the team of robots trains.
 *
 * A Workload owns the task data, knows how to build identically
 * initialized model replicas (possibly pretrained), hands each worker
 * its data shard, and evaluates a model into the paper's metric
 * (training accuracy for CRUDA, trajectory error for CRIMP).
 */
#ifndef ROG_CORE_WORKLOAD_HPP
#define ROG_CORE_WORKLOAD_HPP

#include <memory>
#include <string>

#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"

namespace rog {
namespace core {

/** Abstract training workload. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Number of workers this workload was sharded for. */
    virtual std::size_t workers() const = 0;

    /**
     * A fresh model replica with the workload's canonical initial
     * weights (identical across calls, as every robot starts from the
     * same pretrained model).
     */
    virtual std::unique_ptr<nn::Model> buildReplica() = 0;

    /** Minibatch sampler over worker @p w's data shard. */
    virtual data::BatchSampler makeSampler(std::size_t w) = 0;

    /** Per-worker training minibatch size. */
    virtual std::size_t batchSize() const = 0;

    /** Optimizer hyperparameters. */
    virtual nn::OptimizerConfig optimizerConfig() const = 0;

    /** Evaluate a replica into the reported metric. */
    virtual double evaluate(nn::Model &model) = 0;

    /** Metric name, e.g. "accuracy_pct" or "trajectory_error". */
    virtual std::string metricName() const = 0;

    /** True when a smaller metric is better (CRIMP error). */
    virtual bool lowerIsBetter() const = 0;
};

} // namespace core
} // namespace rog

#endif // ROG_CORE_WORKLOAD_HPP
