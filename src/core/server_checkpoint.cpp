#include "core/server_checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/crc32c.hpp"
#include "common/logging.hpp"

namespace rog {
namespace core {

namespace {

constexpr char kMagic[4] = {'R', 'O', 'G', 'S'};
// v2 appends server-recovery state: run epoch, the session table
// (resume tokens + watermarks), and the model blob. v1 files predate
// recoverable socket servers and are rejected rather than guessed at.
constexpr std::uint32_t kVersion = 2;

// A server checkpoint holds one float per (worker, unit, element):
// anything past this is a corrupted size field, not a real file.
constexpr std::uint64_t kMaxPayload = 1ull << 30;

void
putU32(std::string &out, std::uint32_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putU64(std::string &out, std::uint64_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putI64(std::string &out, std::int64_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putF64(std::string &out, double v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

/** Bounds-checked cursor over the verified payload. */
class Cursor
{
  public:
    Cursor(const char *data, std::size_t size)
        : data_(data), size_(size)
    {}

    template <typename T>
    T
    take()
    {
        if (size_ - pos_ < sizeof(T))
            ROG_FATAL("server checkpoint: truncated payload");
        T v;
        std::memcpy(&v, data_ + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    void
    takeFloats(std::vector<float> &dst, std::size_t n)
    {
        if ((size_ - pos_) / sizeof(float) < n)
            ROG_FATAL("server checkpoint: truncated payload");
        dst.resize(n);
        if (n > 0) // empty vector data() may be null.
            std::memcpy(dst.data(), data_ + pos_, n * sizeof(float));
        pos_ += n * sizeof(float);
    }

    void
    takeBytes(std::vector<std::uint8_t> &dst, std::size_t n)
    {
        if (size_ - pos_ < n)
            ROG_FATAL("server checkpoint: truncated payload");
        dst.resize(n);
        if (n > 0)
            std::memcpy(dst.data(), data_ + pos_, n);
        pos_ += n;
    }

    bool exhausted() const { return pos_ == size_; }

  private:
    const char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

std::string
encodePayload(const ServerCheckpoint &c)
{
    const std::size_t workers = c.versions.versions.size();
    const std::size_t units =
        workers > 0 ? c.versions.versions[0].size() : 0;
    ROG_ASSERT(workers > 0 && units > 0, "empty checkpoint");
    ROG_ASSERT(c.versions.retired.size() == workers &&
                   c.server.outbox.size() == workers &&
                   c.server.has_pending.size() == workers &&
                   c.server.last_update.size() == units &&
                   c.tracker.rate.size() == workers &&
                   c.tracker.seeded.size() == workers &&
                   c.tracker.mta_bytes.size() == workers,
               "inconsistent checkpoint shape");

    std::string out;
    putI64(out, c.iteration);
    putU64(out, c.msg_seq);
    putU32(out, static_cast<std::uint32_t>(workers));
    putU32(out, static_cast<std::uint32_t>(units));
    for (const auto &row : c.versions.versions) {
        ROG_ASSERT(row.size() == units, "ragged version matrix");
        for (std::int64_t v : row)
            putI64(out, v);
    }
    out.append(reinterpret_cast<const char *>(c.versions.retired.data()),
               workers);
    for (std::size_t w = 0; w < workers; ++w) {
        ROG_ASSERT(c.server.outbox[w].size() == units &&
                       c.server.has_pending[w].size() == units,
                   "ragged outbox");
        for (std::size_t u = 0; u < units; ++u) {
            const auto &buf = c.server.outbox[w][u];
            putU32(out, static_cast<std::uint32_t>(buf.size()));
            out.append(reinterpret_cast<const char *>(buf.data()),
                       buf.size() * sizeof(float));
        }
        out.append(reinterpret_cast<const char *>(
                       c.server.has_pending[w].data()),
                   units);
    }
    for (std::int64_t v : c.server.last_update)
        putI64(out, v);
    for (std::size_t w = 0; w < workers; ++w) {
        putF64(out, c.tracker.rate[w]);
        out.push_back(static_cast<char>(c.tracker.seeded[w]));
        putF64(out, c.tracker.mta_bytes[w]);
    }
    putU64(out, c.epoch);
    ROG_ASSERT(c.sessions.entries.empty() ||
                   c.sessions.entries.size() == workers,
               "session snapshot fleet-size mismatch");
    putU32(out, static_cast<std::uint32_t>(c.sessions.entries.size()));
    for (const auto &e : c.sessions.entries) {
        putU64(out, e.token);
        putU32(out, e.incarnation);
        putI64(out, e.last_done_iter);
        putI64(out, e.last_response_iter);
        out.push_back(static_cast<char>(e.admitted_once ? 1 : 0));
    }
    putU32(out, c.sessions.next_session);
    putU64(out, c.sessions.admissions);
    ROG_ASSERT(c.worker_done.empty() || c.worker_done.size() == workers,
               "worker_done fleet-size mismatch");
    putU32(out, static_cast<std::uint32_t>(c.worker_done.size()));
    for (std::uint8_t d : c.worker_done)
        out.push_back(static_cast<char>(d ? 1 : 0));
    putU64(out, static_cast<std::uint64_t>(c.model.size()));
    if (!c.model.empty())
        out.append(reinterpret_cast<const char *>(c.model.data()),
                   c.model.size());
    return out;
}

ServerCheckpoint
decodePayload(const std::string &payload)
{
    Cursor cur(payload.data(), payload.size());
    ServerCheckpoint c;
    c.iteration = cur.take<std::int64_t>();
    c.msg_seq = cur.take<std::uint64_t>();
    const auto workers = cur.take<std::uint32_t>();
    const auto units = cur.take<std::uint32_t>();
    if (workers == 0 || units == 0 || workers > 4096 || units > 1u << 20)
        ROG_FATAL("server checkpoint: implausible shape ", workers, "x",
                  units);
    c.versions.versions.resize(workers);
    for (auto &row : c.versions.versions) {
        row.resize(units);
        for (auto &v : row)
            v = cur.take<std::int64_t>();
    }
    c.versions.retired.resize(workers);
    for (auto &r : c.versions.retired)
        r = cur.take<std::uint8_t>();
    c.server.outbox.resize(workers);
    c.server.has_pending.resize(workers);
    for (std::uint32_t w = 0; w < workers; ++w) {
        c.server.outbox[w].resize(units);
        for (std::uint32_t u = 0; u < units; ++u) {
            const auto width = cur.take<std::uint32_t>();
            cur.takeFloats(c.server.outbox[w][u], width);
        }
        c.server.has_pending[w].resize(units);
        for (auto &p : c.server.has_pending[w])
            p = cur.take<std::uint8_t>();
    }
    c.server.last_update.resize(units);
    for (auto &v : c.server.last_update)
        v = cur.take<std::int64_t>();
    c.tracker.rate.resize(workers);
    c.tracker.seeded.resize(workers);
    c.tracker.mta_bytes.resize(workers);
    for (std::uint32_t w = 0; w < workers; ++w) {
        c.tracker.rate[w] = cur.take<double>();
        c.tracker.seeded[w] = cur.take<std::uint8_t>();
        c.tracker.mta_bytes[w] = cur.take<double>();
    }
    c.epoch = cur.take<std::uint64_t>();
    const auto session_count = cur.take<std::uint32_t>();
    if (session_count != 0 && session_count != workers)
        ROG_FATAL("server checkpoint: session table size ",
                  session_count, " != fleet size ", workers);
    c.sessions.entries.resize(session_count);
    for (auto &e : c.sessions.entries) {
        e.token = cur.take<std::uint64_t>();
        e.incarnation = cur.take<std::uint32_t>();
        e.last_done_iter = cur.take<std::int64_t>();
        e.last_response_iter = cur.take<std::int64_t>();
        const auto admitted = cur.take<std::uint8_t>();
        if (admitted > 1)
            ROG_FATAL("server checkpoint: bad admitted flag ",
                      admitted);
        e.admitted_once = admitted != 0;
    }
    c.sessions.next_session = cur.take<std::uint32_t>();
    c.sessions.admissions = cur.take<std::uint64_t>();
    const auto done_count = cur.take<std::uint32_t>();
    if (done_count != 0 && done_count != workers)
        ROG_FATAL("server checkpoint: worker_done size ", done_count,
                  " != fleet size ", workers);
    c.worker_done.resize(done_count);
    for (auto &d : c.worker_done) {
        d = cur.take<std::uint8_t>();
        if (d > 1)
            ROG_FATAL("server checkpoint: bad worker_done flag ",
                      static_cast<unsigned>(d));
    }
    const auto model_len = cur.take<std::uint64_t>();
    if (model_len > kMaxPayload)
        ROG_FATAL("server checkpoint: implausible model size ",
                  model_len);
    cur.takeBytes(c.model, static_cast<std::size_t>(model_len));
    if (!cur.exhausted())
        ROG_FATAL("server checkpoint: trailing garbage in payload");
    return c;
}

} // namespace

void
writeServerCheckpoint(std::ostream &os, const ServerCheckpoint &ckpt)
{
    const std::string payload = encodePayload(ckpt);
    const std::uint32_t crc = crc32c(
        {reinterpret_cast<const std::uint8_t *>(payload.data()),
         payload.size()});
    os.write(kMagic, sizeof(kMagic));
    const std::uint32_t version = kVersion;
    os.write(reinterpret_cast<const char *>(&version), sizeof(version));
    const std::uint64_t size = payload.size();
    os.write(reinterpret_cast<const char *>(&size), sizeof(size));
    os.write(reinterpret_cast<const char *>(&crc), sizeof(crc));
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
    if (!os)
        ROG_FATAL("server checkpoint: write failed");
}

ServerCheckpoint
readServerCheckpoint(std::istream &is)
{
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    if (!is || std::string(magic, 4) != std::string(kMagic, 4))
        ROG_FATAL("server checkpoint: bad magic");
    std::uint32_t version = 0;
    is.read(reinterpret_cast<char *>(&version), sizeof(version));
    if (!is)
        ROG_FATAL("server checkpoint: truncated header");
    if (version != kVersion)
        ROG_FATAL("server checkpoint: unsupported version ", version);
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
    is.read(reinterpret_cast<char *>(&size), sizeof(size));
    is.read(reinterpret_cast<char *>(&crc), sizeof(crc));
    if (!is)
        ROG_FATAL("server checkpoint: truncated header");
    if (size > kMaxPayload)
        ROG_FATAL("server checkpoint: implausible payload size ", size);
    std::string payload(size, '\0');
    is.read(payload.data(), static_cast<std::streamsize>(size));
    if (!is || static_cast<std::uint64_t>(is.gcount()) != size)
        ROG_FATAL("server checkpoint: truncated payload");
    const std::uint32_t actual = crc32c(
        {reinterpret_cast<const std::uint8_t *>(payload.data()),
         payload.size()});
    if (actual != crc)
        ROG_FATAL("server checkpoint: CRC mismatch (stored ", crc,
                  ", computed ", actual, ")");
    return decodePayload(payload);
}

void
writeServerCheckpointFile(const std::string &path,
                          const ServerCheckpoint &ckpt)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            ROG_FATAL("cannot open '", tmp, "' for writing");
        writeServerCheckpoint(os, ckpt);
        os.flush();
        if (!os)
            ROG_FATAL("server checkpoint: flush of '", tmp, "' failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        ROG_FATAL("server checkpoint: rename '", tmp, "' -> '", path,
                  "' failed");
}

ServerCheckpoint
readServerCheckpointFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        ROG_FATAL("cannot open '", path, "' for reading");
    return readServerCheckpoint(is);
}

} // namespace core
} // namespace rog
